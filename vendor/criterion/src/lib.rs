//! Offline stand-in for `criterion`: enough of the 0.5 API to register and
//! run the workspace's bench targets. Each benchmark is warmed up once,
//! then timed over a short fixed window; per-iteration samples feed the
//! [`stats`] module, so every printed line carries a bootstrap 95%
//! confidence interval and a Tukey outlier census — real statistics, not
//! just a mean.

use std::fmt;
use std::time::{Duration, Instant};

pub mod stats;

pub use std::hint::black_box;

/// Per-iteration samples recorded for the statistics pass are capped so
/// nanosecond-scale routines (millions of iterations per window) don't
/// allocate unboundedly; timing continues past the cap and the mean is
/// computed over **all** iterations.
const MAX_RECORDED_SAMPLES: usize = 1024;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`, criterion's canonical two-part id.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Batch-size hint for [`Bencher::iter_batched`]; the stand-in runs one
/// setup per measured invocation regardless of the variant.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Passed to benchmark closures; drives the measured loop.
pub struct Bencher<'a> {
    total: &'a mut Duration,
    iters: &'a mut u64,
    samples: &'a mut Vec<f64>,
    window: Duration,
}

impl Bencher<'_> {
    fn record(&mut self, elapsed: Duration) {
        *self.total += elapsed;
        *self.iters += 1;
        if self.samples.len() < MAX_RECORDED_SAMPLES {
            self.samples.push(elapsed.as_secs_f64());
        }
    }

    /// Times `routine` repeatedly over the measurement window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        loop {
            let t0 = Instant::now();
            black_box(routine());
            self.record(t0.elapsed());
            if start.elapsed() >= self.window {
                break;
            }
        }
    }

    /// Times `routine` on fresh input from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let start = Instant::now();
        loop {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.record(t0.elapsed());
            if start.elapsed() >= self.window {
                break;
            }
        }
    }
}

fn run_one(group: Option<&str>, id: &str, window: Duration, f: &mut dyn FnMut(&mut Bencher)) {
    let full = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    // One warm-up pass with a tiny window.
    let (mut warm_total, mut warm_iters, mut warm_samples) = (Duration::ZERO, 0u64, Vec::new());
    f(&mut Bencher {
        total: &mut warm_total,
        iters: &mut warm_iters,
        samples: &mut warm_samples,
        window: Duration::ZERO,
    });
    let (mut total, mut iters, mut samples) = (Duration::ZERO, 0u64, Vec::new());
    f(&mut Bencher {
        total: &mut total,
        iters: &mut iters,
        samples: &mut samples,
        window,
    });
    let mean = total.checked_div(iters.max(1) as u32).unwrap_or_default();
    let summary = stats::summarize(
        &stats::Sample::new(samples),
        &stats::BootstrapConfig::default(),
    );
    let fmt = |secs: f64| format!("{:.2?}", Duration::from_secs_f64(secs.max(0.0)));
    println!(
        "bench: {full:<60} {mean:>12.2?}/iter  [{} {}]  ({iters} iters, {} sampled, {} outliers)",
        fmt(summary.mean.lo),
        fmt(summary.mean.hi),
        summary.samples,
        summary.outliers.total(),
    );
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    window: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Criterion's sample-size knob; the stand-in ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Shrinks or grows the per-benchmark measurement window.
    pub fn measurement_time(&mut self, window: Duration) -> &mut Self {
        self.window = window;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(Some(&self.name), &id.into().id, self.window, &mut f);
        self
    }

    /// Runs one benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(Some(&self.name), &id.into().id, self.window, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (a no-op beyond matching criterion's API).
    pub fn finish(&mut self) {}
}

/// The benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    window: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            // Short by design: the stand-in is a smoke-runner.
            window: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Accepts (and ignores) command-line configuration.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let window = self.window;
        BenchmarkGroup {
            name: name.into(),
            window,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(None, &id.into().id, self.window, &mut f);
        self
    }
}

/// Declares a group function running each target with a shared [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_and_counts_iterations() {
        let mut c = Criterion {
            window: Duration::from_millis(5),
        };
        let mut ran = 0u32;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn batched_runs_setup_per_iteration() {
        let mut c = Criterion {
            window: Duration::from_millis(5),
        };
        let mut group = c.benchmark_group("g");
        group.measurement_time(Duration::from_millis(5));
        group.bench_function(BenchmarkId::new("b", 1), |b| {
            b.iter_batched(Vec::<u32>::new, |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
