//! Real statistics for the stand-in: percentile estimation,
//! percentile-bootstrap confidence intervals, and Tukey-fence outlier
//! classification.
//!
//! Everything here is **deterministic**: bootstrap resampling is driven
//! by a seeded [`rand::rngs::StdRng`] (no wall clock, no OS randomness),
//! so identical inputs and seeds produce byte-identical intervals — the
//! property that lets a CI job compare two benchmark documents without
//! chasing resampling noise.
//!
//! The percentile convention matches the workspace's serving harness:
//! linear interpolation at rank `(n − 1)·p` over the sorted sample, so
//! the p50 of an even-length sample is the true midpoint rather than the
//! upper middle.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Default bootstrap resample count. 200 percentile-bootstrap resamples
/// put the 95% interval endpoints within a few percent of their
/// asymptotic positions — plenty for a regression gate — while keeping
/// the runner cheap.
pub const DEFAULT_RESAMPLES: usize = 200;

/// Default confidence level of the reported intervals.
pub const DEFAULT_CONFIDENCE: f64 = 0.95;

/// Default resampling seed ("SPQSTAT" in ASCII-ish hex). Fixed so every
/// run of the same sample reports the same interval.
pub const DEFAULT_SEED: u64 = 0x5350_5153_5441_5400;

/// A set of observations, held sorted ascending.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    sorted: Vec<f64>,
}

impl Sample {
    /// Builds a sample from raw observations (any order).
    ///
    /// # Panics
    ///
    /// Panics if any value is non-finite — NaN has no place in a latency
    /// vector and would poison every statistic below.
    pub fn new(values: impl Into<Vec<f64>>) -> Self {
        let mut sorted: Vec<f64> = values.into();
        assert!(
            sorted.iter().all(|v| v.is_finite()),
            "sample values must be finite"
        );
        sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        Self { sorted }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `true` when the sample holds no observations.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The observations, sorted ascending.
    pub fn values(&self) -> &[f64] {
        &self.sorted
    }

    /// Arithmetic mean (`0.0` for an empty sample).
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// Sample standard deviation (n − 1 denominator; `0.0` when fewer
    /// than two observations).
    pub fn std_dev(&self) -> f64 {
        let n = self.sorted.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let var = self
            .sorted
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / (n - 1) as f64;
        var.sqrt()
    }

    /// Smallest observation (`0.0` for an empty sample).
    pub fn min(&self) -> f64 {
        self.sorted.first().copied().unwrap_or(0.0)
    }

    /// Largest observation (`0.0` for an empty sample).
    pub fn max(&self) -> f64 {
        self.sorted.last().copied().unwrap_or(0.0)
    }

    /// Linear-interpolation percentile at `p ∈ [0, 1]` (clamped). The
    /// estimate sits at rank `(n − 1)·p` between the two bracketing order
    /// statistics; `0.0` for an empty sample.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let rank = (self.sorted.len() - 1) as f64 * p.clamp(0.0, 1.0);
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        self.sorted[lo] + (self.sorted[hi] - self.sorted[lo]) * frac
    }
}

/// A point estimate with its bootstrap confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// The statistic evaluated on the full sample.
    pub point: f64,
    /// Lower confidence bound.
    pub lo: f64,
    /// Upper confidence bound.
    pub hi: f64,
}

impl Estimate {
    /// Width of the interval.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// `true` when `v` lies inside the interval (inclusive).
    pub fn contains(&self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// `true` when the two intervals share at least one point — the
    /// "statistically indistinguishable" test the compare gate uses.
    pub fn overlaps(&self, other: &Estimate) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }
}

/// Bootstrap parameters: resample count, confidence level, RNG seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootstrapConfig {
    /// Number of with-replacement resamples drawn.
    pub resamples: usize,
    /// Confidence level of the reported interval (e.g. `0.95`).
    pub confidence: f64,
    /// Seed of the deterministic resampling RNG.
    pub seed: u64,
}

impl Default for BootstrapConfig {
    fn default() -> Self {
        Self {
            resamples: DEFAULT_RESAMPLES,
            confidence: DEFAULT_CONFIDENCE,
            seed: DEFAULT_SEED,
        }
    }
}

/// Percentile-bootstrap confidence interval of an arbitrary statistic:
/// draw `resamples` with-replacement resamples of the sample, evaluate
/// `statistic` on each, and take the `(1 − confidence)/2` and
/// `1 − (1 − confidence)/2` percentiles of the resulting distribution.
///
/// Fully deterministic for a given `(sample, cfg)`. Degenerate inputs
/// (fewer than two observations, or zero resamples) collapse the
/// interval onto the point estimate.
pub fn bootstrap<F: Fn(&Sample) -> f64>(
    sample: &Sample,
    cfg: &BootstrapConfig,
    statistic: F,
) -> Estimate {
    let point = statistic(sample);
    if sample.len() < 2 || cfg.resamples == 0 {
        return Estimate {
            point,
            lo: point,
            hi: point,
        };
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = sample.len();
    let mut stats = Vec::with_capacity(cfg.resamples);
    let mut scratch = Vec::with_capacity(n);
    for _ in 0..cfg.resamples {
        scratch.clear();
        for _ in 0..n {
            scratch.push(sample.sorted[rng.gen_range(0..n)]);
        }
        stats.push(statistic(&Sample::new(scratch.clone())));
    }
    interval(point, &Sample::new(stats), cfg.confidence)
}

/// Bootstrap interval of the mean.
pub fn bootstrap_mean(sample: &Sample, cfg: &BootstrapConfig) -> Estimate {
    bootstrap(sample, cfg, Sample::mean)
}

/// Bootstrap interval of the percentile at `p`.
pub fn bootstrap_percentile(sample: &Sample, p: f64, cfg: &BootstrapConfig) -> Estimate {
    bootstrap(sample, cfg, |s| s.percentile(p))
}

fn interval(point: f64, dist: &Sample, confidence: f64) -> Estimate {
    let alpha = (1.0 - confidence.clamp(0.0, 1.0)) / 2.0;
    Estimate {
        point,
        lo: dist.percentile(alpha),
        hi: dist.percentile(1.0 - alpha),
    }
}

/// Outlier counts by Tukey-fence class.
///
/// With `Q1`/`Q3` the sample quartiles and `IQR = Q3 − Q1`: *mild*
/// outliers fall outside `[Q1 − 1.5·IQR, Q3 + 1.5·IQR]`, *severe*
/// outliers outside `[Q1 − 3·IQR, Q3 + 3·IQR]` (severe is not also
/// counted as mild).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Outliers {
    /// Below the severe low fence.
    pub severe_low: usize,
    /// Between the severe and mild low fences.
    pub mild_low: usize,
    /// Between the mild and severe high fences.
    pub mild_high: usize,
    /// Above the severe high fence.
    pub severe_high: usize,
}

impl Outliers {
    /// Total outliers of any class.
    pub fn total(&self) -> usize {
        self.severe_low + self.mild_low + self.mild_high + self.severe_high
    }
}

/// Classifies every observation against the sample's own Tukey fences.
pub fn tukey(sample: &Sample) -> Outliers {
    let mut out = Outliers::default();
    if sample.len() < 2 {
        return out;
    }
    let q1 = sample.percentile(0.25);
    let q3 = sample.percentile(0.75);
    let iqr = q3 - q1;
    let (mild_lo, mild_hi) = (q1 - 1.5 * iqr, q3 + 1.5 * iqr);
    let (severe_lo, severe_hi) = (q1 - 3.0 * iqr, q3 + 3.0 * iqr);
    for &v in sample.values() {
        if v < severe_lo {
            out.severe_low += 1;
        } else if v < mild_lo {
            out.mild_low += 1;
        } else if v > severe_hi {
            out.severe_high += 1;
        } else if v > mild_hi {
            out.mild_high += 1;
        }
    }
    out
}

/// The full statistical digest of one benchmark's sample: bootstrap
/// intervals for mean/p50/p99 plus the Tukey outlier census.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleSummary {
    /// Number of observations summarized.
    pub samples: usize,
    /// Mean with its bootstrap interval.
    pub mean: Estimate,
    /// Median with its bootstrap interval.
    pub p50: Estimate,
    /// 99th percentile with its bootstrap interval.
    pub p99: Estimate,
    /// Tukey-fence outlier counts.
    pub outliers: Outliers,
}

/// Summarizes a sample in one resampling pass: each resample is drawn
/// and sorted once, then yields all three statistics — identical results
/// to three separate [`bootstrap`] calls would require three RNG streams,
/// so the single pass is both faster and the canonical definition.
pub fn summarize(sample: &Sample, cfg: &BootstrapConfig) -> SampleSummary {
    let point = |f: fn(&Sample) -> f64| f(sample);
    let (mean_pt, p50_pt, p99_pt) = (
        point(Sample::mean),
        sample.percentile(0.50),
        sample.percentile(0.99),
    );
    if sample.len() < 2 || cfg.resamples == 0 {
        let degenerate = |p: f64| Estimate {
            point: p,
            lo: p,
            hi: p,
        };
        return SampleSummary {
            samples: sample.len(),
            mean: degenerate(mean_pt),
            p50: degenerate(p50_pt),
            p99: degenerate(p99_pt),
            outliers: tukey(sample),
        };
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = sample.len();
    let (mut means, mut p50s, mut p99s) = (
        Vec::with_capacity(cfg.resamples),
        Vec::with_capacity(cfg.resamples),
        Vec::with_capacity(cfg.resamples),
    );
    let mut scratch = Vec::with_capacity(n);
    for _ in 0..cfg.resamples {
        scratch.clear();
        for _ in 0..n {
            scratch.push(sample.sorted[rng.gen_range(0..n)]);
        }
        let resample = Sample::new(scratch.clone());
        means.push(resample.mean());
        p50s.push(resample.percentile(0.50));
        p99s.push(resample.percentile(0.99));
    }
    SampleSummary {
        samples: n,
        mean: interval(mean_pt, &Sample::new(means), cfg.confidence),
        p50: interval(p50_pt, &Sample::new(p50s), cfg.confidence),
        p99: interval(p99_pt, &Sample::new(p99s), cfg.confidence),
        outliers: tukey(sample),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_interpolates_linearly() {
        let s = Sample::new(vec![4.0, 1.0, 2.0, 3.0]);
        assert_eq!(s.percentile(0.50), 2.5);
        assert!((s.percentile(0.99) - 3.97).abs() < 1e-12);
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(1.0), 4.0);
        let odd = Sample::new(vec![3.0, 1.0, 2.0]);
        assert_eq!(odd.percentile(0.50), 2.0);
    }

    #[test]
    fn empty_and_singleton_samples_are_inert() {
        let empty = Sample::new(Vec::new());
        assert!(empty.is_empty());
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.percentile(0.5), 0.0);
        let one = Sample::new(vec![7.0]);
        assert_eq!(one.mean(), 7.0);
        assert_eq!(one.std_dev(), 0.0);
        let e = bootstrap_mean(&one, &BootstrapConfig::default());
        assert_eq!((e.point, e.lo, e.hi), (7.0, 7.0, 7.0));
        assert_eq!(tukey(&one), Outliers::default());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_values_are_rejected() {
        let _ = Sample::new(vec![1.0, f64::NAN]);
    }

    #[test]
    fn bootstrap_is_deterministic_per_seed() {
        let s = Sample::new((0..40).map(|i| (i * i) as f64).collect::<Vec<_>>());
        let cfg = BootstrapConfig::default();
        let a = bootstrap_mean(&s, &cfg);
        let b = bootstrap_mean(&s, &cfg);
        assert_eq!(a.lo.to_bits(), b.lo.to_bits());
        assert_eq!(a.hi.to_bits(), b.hi.to_bits());
        let other = bootstrap_mean(
            &s,
            &BootstrapConfig {
                seed: cfg.seed ^ 1,
                ..cfg
            },
        );
        assert!(
            a.lo.to_bits() != other.lo.to_bits() || a.hi.to_bits() != other.hi.to_bits(),
            "different seeds should resample differently"
        );
    }

    #[test]
    fn summary_matches_its_parts() {
        let s = Sample::new((0..30).map(|i| i as f64).collect::<Vec<_>>());
        let cfg = BootstrapConfig::default();
        let sum = summarize(&s, &cfg);
        assert_eq!(sum.samples, 30);
        assert_eq!(sum.mean.point, s.mean());
        assert_eq!(sum.p50.point, s.percentile(0.50));
        assert_eq!(sum.p99.point, s.percentile(0.99));
        assert!(sum.mean.lo <= sum.mean.point && sum.mean.point <= sum.mean.hi);
        assert_eq!(sum.outliers, tukey(&s));
    }
}
