//! Properties and fixtures for `criterion::stats` — the statistics every
//! benchmark record in `BENCH_MATRIX.json` is built from.
//!
//! The suite pins four contracts: bootstrap intervals are *calibrated*
//! (they contain the sample statistic and tighten as samples grow),
//! percentiles match hand-computed fixtures, outlier classification
//! agrees with manually applied Tukey fences, and everything is
//! bit-deterministic per seed.

use criterion::stats::{
    bootstrap, bootstrap_mean, bootstrap_percentile, summarize, tukey, BootstrapConfig, Estimate,
    Outliers, Sample,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn bootstrap_ci_contains_the_sample_mean_on_fixtures() {
    let cfg = BootstrapConfig::default();
    for (label, values) in [
        ("uniformish", (0..50).map(|i| i as f64).collect::<Vec<_>>()),
        ("skewed", vec![1.0, 1.0, 1.0, 2.0, 2.0, 3.0, 50.0]),
        ("constant", vec![5.0; 20]),
        ("two-point", vec![0.0, 1000.0]),
    ] {
        let s = Sample::new(values);
        let e = bootstrap_mean(&s, &cfg);
        assert!(
            e.contains(s.mean()),
            "{label}: mean {} outside [{}, {}]",
            s.mean(),
            e.lo,
            e.hi
        );
        assert!(e.lo <= e.hi, "{label}: inverted interval");
    }
}

#[test]
fn ci_width_shrinks_monotonically_with_sample_count() {
    // Same synthetic distribution (exponential-ish via -ln U), three
    // nested sizes; the mean interval must tighten roughly as 1/sqrt(n).
    let mut rng = StdRng::seed_from_u64(42);
    let draws: Vec<f64> = (0..2048)
        .map(|_| -(1.0 - rng.gen::<f64>()).ln() * 10.0)
        .collect();
    let cfg = BootstrapConfig::default();
    let width = |n: usize| bootstrap_mean(&Sample::new(draws[..n].to_vec()), &cfg).width();
    let (w32, w256, w2048) = (width(32), width(256), width(2048));
    assert!(
        w32 > w256 && w256 > w2048,
        "widths must shrink: {w32} > {w256} > {w2048}"
    );
    // And not by a hair: an 8x sample should tighten by well over 1.5x.
    assert!(w32 / w256 > 1.5, "w32/w256 = {}", w32 / w256);
    assert!(w256 / w2048 > 1.5, "w256/w2048 = {}", w256 / w2048);
}

#[test]
fn percentiles_match_hand_computed_fixtures() {
    // Even length: p50 interpolates the true midpoint, p99 sits at rank
    // 2.97 between the 3rd and 4th order statistics.
    let s = Sample::new(vec![4.0, 1.0, 2.0, 3.0]);
    assert_eq!(s.percentile(0.50), 2.5);
    assert!((s.percentile(0.99) - 3.97).abs() < 1e-12);
    assert!((s.percentile(0.25) - 1.75).abs() < 1e-12);
    assert!((s.percentile(0.75) - 3.25).abs() < 1e-12);
    // Odd length: exact middle element.
    assert_eq!(Sample::new(vec![3.0, 1.0, 2.0]).percentile(0.50), 2.0);
    // Bounds clamp.
    assert_eq!(s.percentile(-1.0), 1.0);
    assert_eq!(s.percentile(2.0), 4.0);
    // A longer fixture: 0..=100 has percentile(p) = 100p exactly.
    let long = Sample::new((0..=100).map(|i| i as f64).collect::<Vec<_>>());
    for p in [0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 1.0] {
        assert!((long.percentile(p) - 100.0 * p).abs() < 1e-9, "p={p}");
    }
}

#[test]
fn tukey_classification_on_crafted_distributions() {
    // Core 1..=20 with two extremes. Sorted sample: [-35, -8, 1..=20, 28, 60],
    // n = 24: Q1 = 4.75, Q3 = 16.25, IQR = 11.5; mild fences
    // [-12.5, 33.5], severe fences [-29.75, 50.75]. -35 and 60 breach the
    // severe fences; -8 and 28 sit inside the mild fences.
    let mut values: Vec<f64> = (1..=20).map(|i| i as f64).collect();
    values.extend([-35.0, -8.0, 28.0, 60.0]);
    assert_eq!(
        tukey(&Sample::new(values)),
        Outliers {
            severe_low: 1,
            mild_low: 0,
            mild_high: 0,
            severe_high: 1,
        }
    );

    // Same core with milder extremes: -15 ∈ [-29.75, -12.5) and
    // 40 ∈ (33.5, 50.75] are mild, not severe.
    let mut values: Vec<f64> = (1..=20).map(|i| i as f64).collect();
    values.extend([-15.0, -8.0, 28.0, 40.0]);
    assert_eq!(
        tukey(&Sample::new(values)),
        Outliers {
            severe_low: 0,
            mild_low: 1,
            mild_high: 1,
            severe_high: 0,
        }
    );

    // A tight cluster has no outliers at all.
    assert_eq!(
        tukey(&Sample::new(vec![10.0, 10.5, 11.0, 10.2, 10.8])),
        Outliers::default()
    );
}

#[test]
fn identical_seeds_give_byte_identical_intervals() {
    let s = Sample::new((0..64).map(|i| ((i * 37) % 101) as f64).collect::<Vec<_>>());
    let cfg = BootstrapConfig::default();
    let (a, b) = (summarize(&s, &cfg), summarize(&s, &cfg));
    for (x, y) in [(a.mean, b.mean), (a.p50, b.p50), (a.p99, b.p99)] {
        assert_eq!(x.point.to_bits(), y.point.to_bits());
        assert_eq!(x.lo.to_bits(), y.lo.to_bits());
        assert_eq!(x.hi.to_bits(), y.hi.to_bits());
    }
    // A different seed moves at least one interval endpoint.
    let other = summarize(
        &s,
        &BootstrapConfig {
            seed: cfg.seed.wrapping_add(1),
            ..cfg
        },
    );
    assert!(
        a.mean.lo.to_bits() != other.mean.lo.to_bits()
            || a.mean.hi.to_bits() != other.mean.hi.to_bits(),
        "reseeding should change the resampling stream"
    );
}

#[test]
fn estimate_overlap_and_containment() {
    let a = Estimate {
        point: 5.0,
        lo: 4.0,
        hi: 6.0,
    };
    let b = Estimate {
        point: 6.5,
        lo: 5.5,
        hi: 7.5,
    };
    let c = Estimate {
        point: 9.0,
        lo: 8.0,
        hi: 10.0,
    };
    assert!(a.overlaps(&b) && b.overlaps(&a));
    assert!(!a.overlaps(&c) && !c.overlaps(&a));
    assert!(a.contains(4.0) && a.contains(6.0) && !a.contains(6.01));
    assert_eq!(a.width(), 2.0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The mean's percentile-bootstrap interval contains the sample mean
    /// for arbitrary (finite, non-degenerate) samples.
    #[test]
    fn prop_bootstrap_mean_ci_contains_sample_mean(
        values in proptest::collection::vec(0.0f64..1000.0, 3..40),
    ) {
        let s = Sample::new(values);
        let e = bootstrap_mean(&s, &BootstrapConfig::default());
        prop_assert!(e.contains(s.mean()), "mean {} outside [{}, {}]", s.mean(), e.lo, e.hi);
    }

    /// Percentile bootstrap endpoints always stay within the sample's
    /// observed range, and the interval is ordered.
    #[test]
    fn prop_bootstrap_percentile_is_ordered_and_bounded(
        values in proptest::collection::vec(-500.0f64..500.0, 2..30),
        p in 0.0f64..1.0,
    ) {
        let s = Sample::new(values);
        let e = bootstrap_percentile(&s, p, &BootstrapConfig::default());
        prop_assert!(e.lo <= e.hi);
        prop_assert!(e.lo >= s.min() - 1e-9 && e.hi <= s.max() + 1e-9);
    }

    /// Outlier classification agrees with Tukey fences re-applied by
    /// hand from the sample's own quartiles.
    #[test]
    fn prop_tukey_agrees_with_manual_fences(
        values in proptest::collection::vec(-100.0f64..100.0, 2..50),
    ) {
        let s = Sample::new(values.clone());
        let out = tukey(&s);
        let (q1, q3) = (s.percentile(0.25), s.percentile(0.75));
        let iqr = q3 - q1;
        let mut manual = Outliers::default();
        for &v in &values {
            if v < q1 - 3.0 * iqr {
                manual.severe_low += 1;
            } else if v < q1 - 1.5 * iqr {
                manual.mild_low += 1;
            } else if v > q3 + 3.0 * iqr {
                manual.severe_high += 1;
            } else if v > q3 + 1.5 * iqr {
                manual.mild_high += 1;
            }
        }
        prop_assert_eq!(out, manual);
    }

    /// An arbitrary statistic's bootstrap is reproducible bit-for-bit.
    #[test]
    fn prop_bootstrap_deterministic(
        values in proptest::collection::vec(0.0f64..10.0, 2..20),
        seed in 0u64..1000,
    ) {
        let s = Sample::new(values);
        let cfg = BootstrapConfig { seed, ..BootstrapConfig::default() };
        let a = bootstrap(&s, &cfg, |x| x.max() - x.min());
        let b = bootstrap(&s, &cfg, |x| x.max() - x.min());
        prop_assert_eq!(a.lo.to_bits(), b.lo.to_bits());
        prop_assert_eq!(a.hi.to_bits(), b.hi.to_bits());
    }
}
