//! Offline stand-in for the `rand` crate (0.8-compatible subset).
//!
//! Provides exactly the API surface the spq workspace uses: the [`Rng`]
//! extension trait (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`] with
//! `seed_from_u64`, and [`rngs::StdRng`]. The generator is xoshiro256++
//! seeded through SplitMix64 — deterministic and statistically sound for
//! synthetic-data purposes, but *not* the same stream as the real crate's
//! ChaCha12-based `StdRng`.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be produced uniformly from raw bits (the `Standard`
/// distribution of real rand).
pub trait Standard: Sized {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types over which `gen_range` can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self {
                let lo = low as i128;
                let hi = high as i128;
                let span = if inclusive { hi - lo + 1 } else { hi - lo };
                assert!(span > 0, "cannot sample from empty range");
                // Modulo bias is < 2^-64 for every in-repo span; fine here.
                lo.wrapping_add((rng.next_u64() as i128).rem_euclid(span)) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, _inclusive: bool) -> Self {
                assert!(low < high || (_inclusive && low <= high), "cannot sample from empty range");
                low + <$t as Standard>::from_rng(rng) * (high - low)
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_between(rng, lo, hi, true)
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`] (including `&mut R`).
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64`/`f32` in `[0, 1)`, full range for integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from integer seeds.
pub trait SeedableRng: Sized {
    /// Expands a 64-bit seed into the full generator state.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: f64 = a.gen();
            let y: f64 = b.gen();
            assert_eq!(x, y);
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_hit_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.gen_range(-2i64..=2);
            assert!((-2..=2).contains(&v));
            let f = rng.gen_range(1.0f64..2.0);
            assert!((1.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn works_through_mut_ref() {
        fn sample(rng: &mut impl Rng) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let _ = sample(&mut rng);
    }
}
