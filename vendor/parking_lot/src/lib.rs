//! Offline stand-in for `parking_lot`: a [`Mutex`] whose `lock()` returns
//! the guard directly (no poisoning), backed by `std::sync::Mutex`.

use std::sync::MutexGuard;

/// A mutual-exclusion primitive with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available. A panic in a
    /// previous holder does not poison the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_survives_holder_panic() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
