//! Offline stand-in for `proptest`: deterministic random sampling of the
//! strategy combinators the spq workspace uses (ranges, tuples,
//! `collection::vec`, `prop_map`), driven by a `proptest!` macro that runs
//! `ProptestConfig::cases` samples per property. No shrinking — a failing
//! case panics with its case index, and the fixed seed makes every run
//! reproducible.

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The [`Strategy::prop_map`] adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// How many elements a generated collection may hold.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of `element` with a length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// proptest's `collection::vec` combinator.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.rng.gen_range(self.size.min..self.size.max_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-property configuration (only `cases` is honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` samples.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// The deterministic RNG handed to strategies.
    pub struct TestRng {
        pub rng: StdRng,
    }

    impl TestRng {
        /// Every property starts from this fixed seed, so failures
        /// reproduce exactly.
        pub fn deterministic() -> Self {
            Self {
                rng: StdRng::seed_from_u64(0x5EED_CAFE_2017),
            }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Runs each contained `fn name(pat in strategy, ...) { body }` as a
/// `#[test]` over `ProptestConfig::cases` random samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            #[allow(unused_imports)]
            use $crate::strategy::Strategy as _;
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic();
            for case in 0..config.cases {
                let run = || {
                    $(let $pat = ($strat).generate(&mut rng);)+
                    $body
                };
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(run));
                if let Err(payload) = outcome {
                    eprintln!(
                        "proptest stand-in: property {} failed at case {case}/{} \
                         (fixed seed; re-run reproduces it)",
                        stringify!($name),
                        config.cases,
                    );
                    std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

/// `assert!` that reads like proptest.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// `assert_eq!` that reads like proptest.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Ranges respect their bounds.
        #[test]
        fn range_bounds(x in 3u32..10, f in 0.25f64..0.75, i in -2i64..=2) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
            prop_assert!((-2..=2).contains(&i));
        }

        /// Vec + tuple + prop_map compose.
        #[test]
        fn combinators((len, v) in (1usize..4, crate::collection::vec((0u32..5, 0.0f64..1.0), 2..6))
            .prop_map(|(a, v)| (a, v))) {
            prop_assert!((1..4).contains(&len));
            prop_assert!((2..6).contains(&v.len()), "len {}", v.len());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_form_compiles(x in 0u8..2) {
            prop_assert!(x < 2);
        }
    }

    #[test]
    #[should_panic]
    fn failing_property_panics() {
        proptest! {
            fn inner(x in 0u32..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        inner();
    }
}
