//! Rank candidate locations by the relevance of tweets in their vicinity
//! — the paper's motivating scenario for user-generated spatio-textual
//! data, on a Twitter-like synthetic dataset.
//!
//! Also contrasts the three algorithms on the same query, reporting how
//! much work early termination saves (the paper's Section 7 narrative in
//! miniature).
//!
//! ```text
//! cargo run --release --example tweet_hotspots
//! ```

use spq::data::{KeywordSelection, QueryGenerator};
use spq::prelude::*;
use std::time::Instant;

fn main() {
    // ~200k objects: 100k candidate locations, 100k geotagged "tweets"
    // with Zipf-skewed terms from an 88,706-word dictionary (the TW
    // statistics reported in the paper).
    println!("generating Twitter-like dataset…");
    let dataset = TwitterLike.generate(200_000, 7);
    println!(
        "  {} locations, {} tweets, mean {:.1} keywords/tweet",
        dataset.data.len(),
        dataset.features.len(),
        dataset.mean_keywords(),
    );

    // Three frequent hashtag-like terms; top-10 locations within a
    // neighbourhood of 0.4% of the map.
    let mut qgen = QueryGenerator::new(
        dataset.vocab_size,
        KeywordSelection::Weighted { exponent: 1.0 },
        99,
    );
    let query = qgen.generate(10, 0.004, 3);
    println!("  query: {query}");

    let data_splits = [dataset.data.clone()];
    let feature_splits = [dataset.features.clone()];
    let mut best: Option<Vec<RankedObject>> = None;

    for algo in [Algorithm::PSpq, Algorithm::ESpqLen, Algorithm::ESpqSco] {
        let executor = SpqExecutor::new(Rect::unit()).algorithm(algo).grid_size(50);
        let t0 = Instant::now();
        let result = executor
            .run(&data_splits, &feature_splits, &query)
            .expect("query should run");
        let elapsed = t0.elapsed();
        println!(
            "\n{}: {:?} — examined {} of {} shuffled records, skew {:.2}",
            algo.name(),
            elapsed,
            result.stats.counters.get("reduce.features_examined"),
            result.stats.shuffle_records,
            result.stats.reduce_skew(),
        );

        // All three must agree on the score multiset.
        if let Some(reference) = &best {
            assert!(
                spq::core::validate::same_score_multiset(reference, &result.top_k),
                "algorithms disagree"
            );
        } else {
            best = Some(result.top_k.clone());
        }

        if algo == Algorithm::ESpqSco {
            println!("top hotspot locations:");
            for (rank, entry) in result.top_k.iter().enumerate() {
                println!("  {}. {entry}", rank + 1);
            }
        }
    }
}
