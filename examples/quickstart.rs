//! Quickstart: generate a small dataset, run one spatial preference query
//! using keywords, print the top-k.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use spq::prelude::*;

fn main() {
    // A uniform synthetic dataset in the unit square: 20,000 objects, half
    // data objects (the things we rank) and half feature objects
    // (spatio-textual annotations that drive the ranking).
    let dataset = UniformGen.generate(20_000, 42);
    println!(
        "dataset: {} data objects, {} feature objects, vocabulary {} terms",
        dataset.data.len(),
        dataset.features.len(),
        dataset.vocab_size,
    );

    // Find the top-5 data objects that have a highly relevant feature
    // object within distance 0.01 of them. Relevance = Jaccard similarity
    // between the query keywords and the feature's annotations.
    let query = SpqQuery::new(5, 0.01, KeywordSet::from_ids([1, 17, 256]));

    // Run the paper's best algorithm (eSPQsco) over a query-time grid.
    let executor = SpqExecutor::new(Rect::unit())
        .algorithm(Algorithm::ESpqSco)
        .auto_grid(64);
    let result = executor
        .run(
            std::slice::from_ref(&dataset.data),
            std::slice::from_ref(&dataset.features),
            &query,
        )
        .expect("query should run");

    println!(
        "\ntop-{} for {} over a query-time grid of {} cells:",
        query.k,
        query,
        result.partition.num_cells(),
    );
    for (rank, entry) in result.top_k.iter().enumerate() {
        println!("  {}. {entry}", rank + 1);
    }

    println!(
        "\njob: {:?} total ({} map tasks, {} reduce tasks, {} records shuffled)",
        result.stats.total_wall,
        result.stats.map_tasks.len(),
        result.stats.reduce_tasks.len(),
        result.stats.shuffle_records,
    );
    println!(
        "early termination examined only {} of {} shuffled feature records",
        result.stats.counters.get("reduce.features_examined"),
        result.stats.shuffle_records,
    );
}
