//! Ingest a real-shaped dump, build a **sharded** engine and serve a
//! hotspot stream through the typed facade — the shard-per-node serving
//! shape end to end:
//!
//! 1. fabricate and ingest a Flickr-shaped TSV dump,
//! 2. build an `SpqService` on the `sharded` backend: data objects sliced
//!    into per-shard stores (features broadcast by `Arc`), one build-once
//!    engine per shard,
//! 3. serve a hotspot query stream as typed `QueryRequest`s — every query
//!    scatters to the relevant shards and gathers serialized 12-byte wire
//!    records into a top-k merge that is byte-identical to a single-store
//!    engine,
//! 4. print the per-query stats and the per-shard traffic counters.
//!
//! ```text
//! cargo run --release --example sharded_serve
//! ```

use spq::prelude::*;
use std::time::Instant;

const SHARDS: usize = 4;
const GRID: u32 = 32;

fn main() {
    // 1. Synthesize + ingest (see examples/ingest_serve.rs for the
    //    ingest path in detail).
    let dir = std::env::temp_dir();
    let data_path = dir.join(format!("spq-sharded-{}-data.tsv", std::process::id()));
    let features_path = dir.join(format!("spq-sharded-{}-features.tsv", std::process::id()));
    let cfg = DumpConfig {
        objects: 40_000,
        seed: 42,
    };
    println!("synthesizing a {}-object Flickr-shaped dump…", cfg.objects);
    synthesize_dump(&cfg, &data_path, &features_path).expect("write dump");
    let loaded: Ingested =
        ingest_files(&data_path, &features_path, &IngestOptions::default()).expect("ingest dump");
    println!(
        "ingested {} objects, {} distinct keywords",
        loaded.objects(),
        loaded.vocab.len()
    );

    // 2. Build the sharded service. The same `SpqExecutor` configuration
    //    drives every shard; swapping `Backend::Sharded` for
    //    `Backend::Local` changes placement, never answers.
    let bounds = loaded.dataset.bounds;
    let executor = SpqExecutor::new(bounds)
        .algorithm(Algorithm::ESpqSco)
        .grid_size(GRID);
    let dataset = SharedDataset::new(loaded.dataset.data, loaded.dataset.features);
    let t0 = Instant::now();
    let service = SpqService::build(executor, dataset, Backend::Sharded { shards: SHARDS })
        .expect("build sharded service");
    println!(
        "built {} in {:.0} ms",
        service.backend(),
        t0.elapsed().as_secs_f64() * 1e3
    );

    // 3. Author a hotspot-heavy stream against the ingested vocabulary
    //    and serve it as typed requests.
    let cell = bounds.width().max(bounds.height()) / GRID as f64;
    let defaults = StreamConfig::default();
    let mut stream = QueryStream::new(
        loaded.vocab.len(),
        StreamConfig {
            radius_classes: vec![cell * 0.1, cell * 0.25],
            hotspot_fraction: 0.7, // hotspot-heavy: plan caches should hit
            hotspots: 4,
            seed: 7,
            keywords_per_query: defaults.keywords_per_query.min(loaded.vocab.len().max(1)),
            ..defaults
        },
    );
    let requests: Vec<QueryRequest> = stream
        .batch(64)
        .into_iter()
        .map(QueryRequest::new)
        .collect();

    let t0 = Instant::now();
    let responses = service.serve_requests(&requests, 4).expect("serve stream");
    let wall = t0.elapsed();
    println!(
        "served {} requests in {:.0} ms ({:.0} q/s)",
        responses.len(),
        wall.as_secs_f64() * 1e3,
        responses.len() as f64 / wall.as_secs_f64(),
    );

    // 4. Per-query stats from the typed responses…
    let hits = responses.iter().filter(|r| !r.results.is_empty()).count();
    let plan_hits = responses.iter().filter(|r| r.stats.plan_cache_hit).count();
    let wire_bytes: u64 = responses.iter().map(|r| r.stats.shuffle_bytes).sum();
    let mean_shards = responses
        .iter()
        .map(|r| r.stats.shards_touched as f64)
        .sum::<f64>()
        / responses.len() as f64;
    println!(
        "  {hits} non-empty answers, {plan_hits}/{} plan-cache hits, \
         {mean_shards:.1} shards/query, {wire_bytes} gather wire bytes total",
        responses.len()
    );
    if let Some(response) = responses.iter().find(|r| !r.results.is_empty()) {
        let best = &response.results[0];
        println!(
            "  e.g. object {} at {} with score {} ({} µs, {} B gathered)",
            best.object,
            best.location,
            best.score,
            response.stats.wall_micros,
            response.stats.shuffle_bytes
        );
    }

    // …and the per-shard counters, the observability surface a
    // cluster-monitoring stack would scrape.
    if let SpqService::Sharded(engine) = &service {
        println!("per-shard stats:");
        for s in engine.shard_stats() {
            println!(
                "  shard {}: {} data objects, {} queries served, {} records / {} B shipped, {} cached plans",
                s.shard, s.data_objects, s.queries, s.records_shipped, s.bytes_shipped, s.cached_plans
            );
        }
        let m = engine.metrics();
        println!(
            "aggregate: {} shard queries, {} plan-cache hits / {} misses, {}/{} keyword probes hit",
            m.queries, m.plan_cache_hits, m.plan_cache_misses, m.keyword_hits, m.keyword_probes
        );
        // The same counters in the scrape-friendly text format — what an
        // HTTP /metrics endpoint would return verbatim.
        println!("--- /metrics ---");
        print!("{}", export_metrics(&m, &engine.shard_stats(), None, None));
    }

    for p in [&data_path, &features_path] {
        std::fs::remove_file(p).ok();
    }
}
