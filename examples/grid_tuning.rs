//! Section-6 analysis in practice: how the query radius and grid size
//! drive feature duplication and per-reducer cost, and how the executor's
//! automatic grid sizing uses that model.
//!
//! ```text
//! cargo run --release --example grid_tuning
//! ```

use spq::core::{partitioning, theory};
use spq::data::DatasetGenerator;
use spq::prelude::*;

fn main() {
    // --- The closed-form duplication factor (Section 6.2) -------------
    println!("duplication factor df = πr²/a² + 4r/a + 1 (cell side a = 1):");
    println!("{:<12}{:>10}", "r / a", "df");
    for pct in [5, 10, 25, 50] {
        let df = theory::duplication_factor(1.0, pct as f64 / 100.0);
        println!("{:<12}{:>10.4}", format!("{pct}%"), df);
    }
    println!(
        "worst case at a = 2r: df = {:.4}\n",
        theory::MAX_DUPLICATION_FACTOR
    );

    // --- Measured duplication on a real dataset ------------------------
    let dataset = UniformGen.generate(100_000, 3);
    let query = SpqQuery::new(10, 0.01, KeywordSet::from_ids([0]));
    println!("measured duplicates per routed feature (uniform data, r = 0.01):");
    println!("{:<12}{:>14}{:>14}", "grid", "measured df", "predicted df");
    for n in [15u32, 25, 50] {
        let grid: spq::spatial::SpacePartition = Grid::square(Rect::unit(), n).into();
        let mut emissions = 0u64;
        let mut routed = 0u64;
        for f in &dataset.features {
            // Count routing fan-out irrespective of keyword pruning.
            let all_match = SpqQuery::new(10, 0.01, f.keywords.clone());
            let d = partitioning::duplicate_count(&grid, &all_match, f);
            emissions += 1 + d;
            routed += 1;
        }
        let measured = emissions as f64 / routed as f64;
        let predicted = theory::duplication_factor(1.0 / n as f64, query.radius);
        println!(
            "{:<12}{measured:>14.4}{predicted:>14.4}",
            format!("{n}x{n}")
        );
    }

    // --- The §6.3 cost indicator df·a⁴ ---------------------------------
    println!("\ncost indicator df·a⁴ (normalised to the 10x10 grid):");
    println!("{:<12}{:>14}", "grid", "relative cost");
    let base = theory::cost_indicator(1.0 / 10.0, query.radius);
    for n in [10u32, 15, 25, 50, 100] {
        let c = theory::cost_indicator(1.0 / n as f64, query.radius) / base;
        println!("{:<12}{c:>14.6}", format!("{n}x{n}"));
    }
    println!("(finer grids are cheaper per reducer — Section 6.3)\n");

    // --- Automatic grid sizing in the executor -------------------------
    for radius in [0.1, 0.02, 0.004] {
        let q = SpqQuery::new(10, radius, KeywordSet::from_ids([0]));
        let grid = SpqExecutor::new(Rect::unit()).auto_grid(64).plan_grid(&q);
        println!(
            "auto grid for r = {radius}: {}x{} (cell side {:.4} >= r, capped at 64)",
            grid.nx(),
            grid.ny(),
            grid.cell_width()
        );
    }
}
