//! The paper's running example (Figure 1 / Table 2): find the best hotels
//! that have an Italian restaurant nearby.
//!
//! Data objects are hotels, feature objects are restaurants annotated
//! with keywords; the query asks for the top-1 hotel with a highly
//! "italian" restaurant within 1.5 distance units. Expected output: hotel
//! p1 wins with score 1.0 (restaurant f4 is a perfect keyword match),
//! p4 and p5 follow with 0.5 — and all three algorithms agree.
//!
//! ```text
//! cargo run --release --example hotel_finder
//! ```

use spq::core::centralized;
use spq::prelude::*;

fn main() {
    let mut vocab = Vocabulary::new();

    // Table 2 of the paper, verbatim.
    let hotels = vec![
        DataObject::new(1, Point::new(4.6, 4.8)),
        DataObject::new(2, Point::new(7.5, 1.7)),
        DataObject::new(3, Point::new(8.9, 5.2)),
        DataObject::new(4, Point::new(1.8, 1.8)),
        DataObject::new(5, Point::new(1.9, 9.0)),
    ];
    let mut restaurant =
        |id, x, y, words: &str| FeatureObject::new(id, Point::new(x, y), vocab.intern_set(words));
    let restaurants = vec![
        restaurant(1, 2.8, 1.2, "italian gourmet"),
        restaurant(2, 5.0, 3.8, "chinese cheap"),
        restaurant(3, 8.7, 1.9, "sushi wine"),
        restaurant(4, 3.8, 5.5, "italian"),
        restaurant(5, 5.2, 5.1, "mexican exotic"),
        restaurant(6, 7.4, 5.4, "greek traditional"),
        restaurant(7, 3.0, 8.1, "italian spaghetti"),
        restaurant(8, 9.5, 7.0, "indian"),
    ];

    // "Find the top-1 hotel with an italian restaurant within 1.5 units."
    let italian = vocab.get("italian").expect("interned above");
    let query = SpqQuery::new(1, 1.5, KeywordSet::new(vec![italian]));

    println!("restaurants and their relevance to q.W = {{italian}}:");
    for f in &restaurants {
        println!(
            "  f{} @ {}  [{}]  w(f,q) = {}",
            f.id,
            f.location,
            vocab.render(&f.keywords),
            query.score(&f.keywords),
        );
    }

    println!("\nexact hotel scores (τ = best relevant restaurant within r=1.5):");
    for p in &hotels {
        let tau = centralized::tau(p, &restaurants, &query);
        println!("  p{} @ {}  τ = {}", p.id, p.location, tau);
    }

    let bounds = Rect::from_coords(0.0, 0.0, 10.0, 10.0);
    println!("\ndistributed evaluation over the paper's 4x4 grid:");
    for algo in [Algorithm::PSpq, Algorithm::ESpqLen, Algorithm::ESpqSco] {
        let result = SpqExecutor::new(bounds)
            .algorithm(algo)
            .grid_size(4)
            .run(
                std::slice::from_ref(&hotels),
                std::slice::from_ref(&restaurants),
                &query,
            )
            .expect("query should run");
        let winner = &result.top_k[0];
        println!(
            "  {:<8} -> top-1 = hotel p{} with score {}  ({} features examined)",
            algo.name(),
            winner.object,
            winner.score,
            result.stats.counters.get("reduce.features_examined"),
        );
        assert_eq!(winner.object, 1, "the paper's answer is p1");
    }
}
