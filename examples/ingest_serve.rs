//! Ingest a real-shaped TSV dump and serve a query stream over it —
//! the full "zero to serving" path for external data:
//!
//! 1. fabricate a Flickr-shaped dump (`id<TAB>x<TAB>y<TAB>kw1,kw2,...`,
//!    the layout real photo/tweet dumps and streaming systems use),
//! 2. stream it through `spq_data::ingest` (keyword strings interned to
//!    dense term ids, CSR-packed keyword lists, malformed-line policy),
//! 3. build a persistent `QueryEngine` over the loaded objects and serve
//!    a stream of queries authored against the *ingested* vocabulary.
//!
//! ```text
//! cargo run --release --example ingest_serve
//! ```

use spq::prelude::*;
use std::time::Instant;

fn main() {
    // 1. Synthesize the dump (deterministic, seedable — a stand-in for
    //    downloading a real Flickr/Twitter extract).
    let dir = std::env::temp_dir();
    let data_path = dir.join(format!("spq-example-{}-data.tsv", std::process::id()));
    let features_path = dir.join(format!("spq-example-{}-features.tsv", std::process::id()));
    let cfg = DumpConfig {
        objects: 40_000,
        seed: 42,
    };
    println!("synthesizing a {}-object Flickr-shaped dump…", cfg.objects);
    let summary = synthesize_dump(&cfg, &data_path, &features_path).expect("write dump");
    println!(
        "  {} data + {} feature lines, {} keyword occurrences",
        summary.data_objects, summary.feature_objects, summary.keywords
    );

    // 2. Stream it back in. `IngestOptions::default()` fails on the first
    //    malformed line; `IngestOptions::lossy()` would skip and count.
    let t0 = Instant::now();
    let loaded: Ingested =
        ingest_files(&data_path, &features_path, &IngestOptions::default()).expect("ingest dump");
    let elapsed = t0.elapsed();
    println!(
        "ingested {} objects in {:.0} ms ({:.0} objects/s), {} distinct keywords",
        loaded.objects(),
        elapsed.as_secs_f64() * 1e3,
        loaded.objects() as f64 / elapsed.as_secs_f64(),
        loaded.vocab.len(),
    );

    // 3. Build the engine over the ingested objects and inspect the
    //    vocabulary through the dataset-stats surface.
    let bounds = loaded.dataset.bounds;
    let executor = SpqExecutor::new(bounds)
        .algorithm(Algorithm::ESpqSco)
        .grid_size(32);
    let engine = QueryEngine::from_ingested(executor, loaded.dataset.data, loaded.dataset.features);
    let stats = engine.dataset_stats();
    println!(
        "engine: {} data / {} features, {:.1} mean keywords, busiest posting {}",
        stats.data_objects, stats.feature_objects, stats.mean_keywords, stats.max_posting
    );
    print!("  most frequent keywords:");
    for (term, count) in engine.keyword_index().top_terms(5) {
        let word = loaded.vocab.name(term).unwrap_or("?");
        print!(" {word}×{count}");
    }
    println!();

    // 4. Serve a stream authored against the real vocabulary: Zipf-skewed
    //    keywords, radius classes scaled to the loaded bounds.
    let cell = bounds.width().max(bounds.height()) / 32.0;
    let defaults = StreamConfig::default();
    let mut stream = QueryStream::new(
        loaded.vocab.len(),
        StreamConfig {
            radius_classes: vec![cell * 0.1, cell * 0.25],
            hotspot_fraction: 0.5,
            hotspots: 4,
            seed: 7,
            // Tiny dumps can intern fewer words than the default
            // keywords-per-query; clamp to stay servable.
            keywords_per_query: defaults.keywords_per_query.min(loaded.vocab.len().max(1)),
            ..defaults
        },
    );
    let requests: Vec<QueryRequest> = stream
        .batch(64)
        .into_iter()
        .map(QueryRequest::new)
        .collect();
    let workers = ClusterConfig::auto().workers;
    let t0 = Instant::now();
    let responses = engine
        .serve_requests(&requests, workers)
        .expect("serve stream");
    let wall = t0.elapsed();
    println!(
        "served {} queries in {:.0} ms ({:.0} q/s)",
        responses.len(),
        wall.as_secs_f64() * 1e3,
        responses.len() as f64 / wall.as_secs_f64(),
    );

    let hits = responses.iter().filter(|r| !r.results.is_empty()).count();
    println!("  {hits} queries returned results");
    if let Some(response) = responses.iter().find(|r| !r.results.is_empty()) {
        let best = &response.results[0];
        println!(
            "  e.g. object {} at {} with score {}",
            best.object, best.location, best.score
        );
    }

    for p in [&data_path, &features_path] {
        std::fs::remove_file(p).ok();
    }
}
