//! The paper's worked example, end to end through the public API:
//! Table 2 / Figure 1 (the hotels-and-restaurants query) and the
//! Figure 2 duplication walkthrough.

use spq::core::partitioning;
use spq::prelude::*;
use spq::text::Score;

fn hotels() -> Vec<DataObject> {
    vec![
        DataObject::new(1, Point::new(4.6, 4.8)),
        DataObject::new(2, Point::new(7.5, 1.7)),
        DataObject::new(3, Point::new(8.9, 5.2)),
        DataObject::new(4, Point::new(1.8, 1.8)),
        DataObject::new(5, Point::new(1.9, 9.0)),
    ]
}

/// Keyword ids: 0=italian 1=gourmet 2=chinese 3=cheap 4=sushi 5=wine
/// 6=mexican 7=exotic 8=greek 9=traditional 10=spaghetti 11=indian.
fn restaurants() -> Vec<FeatureObject> {
    let f = |id, x, y, kw: &[u32]| {
        FeatureObject::new(
            id,
            Point::new(x, y),
            KeywordSet::from_ids(kw.iter().copied()),
        )
    };
    vec![
        f(1, 2.8, 1.2, &[0, 1]),
        f(2, 5.0, 3.8, &[2, 3]),
        f(3, 8.7, 1.9, &[4, 5]),
        f(4, 3.8, 5.5, &[0]),
        f(5, 5.2, 5.1, &[6, 7]),
        f(6, 7.4, 5.4, &[8, 9]),
        f(7, 3.0, 8.1, &[0, 10]),
        f(8, 9.5, 7.0, &[11]),
    ]
}

fn paper_query(k: usize) -> SpqQuery {
    SpqQuery::new(k, 1.5, KeywordSet::from_ids([0]))
}

fn bounds() -> Rect {
    Rect::from_coords(0.0, 0.0, 10.0, 10.0)
}

#[test]
fn example_1_top1_is_p1() {
    for algo in [Algorithm::PSpq, Algorithm::ESpqLen, Algorithm::ESpqSco] {
        let result = SpqExecutor::new(bounds())
            .algorithm(algo)
            .grid_size(4)
            .run(&[hotels()], &[restaurants()], &paper_query(1))
            .unwrap();
        assert_eq!(result.top_k.len(), 1, "{algo}");
        assert_eq!(result.top_k[0].object, 1, "{algo}");
        assert_eq!(result.top_k[0].score, Score::ONE, "{algo}");
    }
}

#[test]
fn example_1_full_ranking() {
    // τ(p1)=1 (f4), τ(p4)=0.5 (f1), τ(p5)=0.5 (f7); p2, p3 unranked.
    let result = SpqExecutor::new(bounds())
        .grid_size(4)
        .run(&[hotels()], &[restaurants()], &paper_query(5))
        .unwrap();
    let got: Vec<(u64, Score)> = result.top_k.iter().map(|r| (r.object, r.score)).collect();
    assert_eq!(
        got,
        vec![
            (1, Score::ONE),
            (4, Score::ratio(1, 2)),
            (5, Score::ratio(1, 2)),
        ]
    );
}

#[test]
fn table_2_jaccard_scores() {
    let q = paper_query(1);
    let expected = [
        Score::ratio(1, 2), // f1 italian,gourmet
        Score::ZERO,        // f2
        Score::ZERO,        // f3
        Score::ONE,         // f4 italian
        Score::ZERO,        // f5
        Score::ZERO,        // f6 (the paper marks it notInRange; score 0 anyway)
        Score::ratio(1, 2), // f7 italian,spaghetti
        Score::ZERO,        // f8
    ];
    for (f, want) in restaurants().iter().zip(expected) {
        assert_eq!(q.score(&f.keywords), want, "f{}", f.id);
    }
}

#[test]
fn figure_2_duplication_of_f7() {
    // f7 sits in the paper's cell 14 (our id 13) and must duplicate into
    // the paper's cells 9, 10, 13 (our ids 8, 9, 12) for r = 1.5.
    let grid: spq::spatial::SpacePartition = Grid::square(bounds(), 4).into();
    let f7 = &restaurants()[6];
    assert_eq!(grid.cell_of(&f7.location).0, 13);
    let mut cells = Vec::new();
    let kept = partitioning::route_feature(&grid, &paper_query(1), f7, |c| cells.push(c.0));
    assert!(kept);
    cells.sort_unstable();
    assert_eq!(cells, vec![8, 9, 12, 13]);
}

#[test]
fn map_phase_prunes_non_matching_restaurants() {
    // Only f1, f4, f7 share "italian"; the other five must be pruned.
    let result = SpqExecutor::new(bounds())
        .algorithm(Algorithm::PSpq)
        .grid_size(4)
        .run(&[hotels()], &[restaurants()], &paper_query(1))
        .unwrap();
    assert_eq!(result.stats.counters.get("map.features_pruned"), 5);
    assert_eq!(result.stats.counters.get("map.feature_records"), 3);
    assert_eq!(result.stats.counters.get("map.data_records"), 5);
}
