//! Facade smoke test: the `spq` crate's public API (prelude + re-exported
//! subcrates) is enough to run every distributed algorithm on the paper's
//! running example and reproduce the centralized baseline — no direct
//! dependency on the `spq-*` workspace crates.

use spq::core::centralized;
use spq::prelude::*;

/// The running example of Section 1 (Figure 1 / Table 2), built through
/// the facade's [`Vocabulary`] instead of raw term ids.
fn running_example() -> (Vec<DataObject>, Vec<FeatureObject>, SpqQuery) {
    let mut vocab = Vocabulary::new();
    let mut kw = |words: &[&str]| KeywordSet::new(words.iter().map(|w| vocab.intern(w)).collect());

    let restaurants = vec![
        FeatureObject::new(1, Point::new(2.8, 1.2), kw(&["italian", "gourmet"])),
        FeatureObject::new(2, Point::new(5.0, 3.8), kw(&["chinese", "cheap"])),
        FeatureObject::new(3, Point::new(8.7, 1.9), kw(&["sushi", "wine"])),
        FeatureObject::new(4, Point::new(3.8, 5.5), kw(&["italian"])),
        FeatureObject::new(5, Point::new(5.2, 5.1), kw(&["mexican", "exotic"])),
        FeatureObject::new(6, Point::new(7.4, 5.4), kw(&["greek", "traditional"])),
        FeatureObject::new(7, Point::new(3.0, 8.1), kw(&["italian", "spaghetti"])),
        FeatureObject::new(8, Point::new(9.5, 7.0), kw(&["indian"])),
    ];
    let hotels = vec![
        DataObject::new(1, Point::new(4.6, 4.8)),
        DataObject::new(2, Point::new(7.5, 1.7)),
        DataObject::new(3, Point::new(8.9, 5.2)),
        DataObject::new(4, Point::new(1.8, 1.8)),
        DataObject::new(5, Point::new(1.9, 9.0)),
    ];
    let query = SpqQuery::new(5, 1.5, kw(&["italian"]));
    (hotels, restaurants, query)
}

const ALGORITHMS: [Algorithm; 3] = [Algorithm::PSpq, Algorithm::ESpqLen, Algorithm::ESpqSco];

#[test]
fn all_algorithms_agree_with_centralized_baseline() {
    let (hotels, restaurants, query) = running_example();
    let baseline = centralized::brute_force(&hotels, &restaurants, &query);
    assert_eq!(baseline.len(), 3, "p1, p4, p5 are the only ranked hotels");

    for algo in ALGORITHMS {
        let result = SpqExecutor::new(Rect::from_coords(0.0, 0.0, 10.0, 10.0))
            .algorithm(algo)
            .grid_size(4)
            .run(
                std::slice::from_ref(&hotels),
                std::slice::from_ref(&restaurants),
                &query,
            )
            .unwrap();
        let got: Vec<_> = result.top_k.iter().map(|r| (r.object, r.score)).collect();
        let want: Vec<_> = baseline.iter().map(|r| (r.object, r.score)).collect();
        assert_eq!(got, want, "{algo} disagrees with the centralized baseline");
    }
}

#[test]
fn agreement_is_stable_across_grids_and_splits() {
    let (hotels, restaurants, query) = running_example();
    let baseline = centralized::brute_force(&hotels, &restaurants, &query);

    // Split the inputs across two map splits each, the way a distributed
    // deployment would see them.
    let (h1, h2) = hotels.split_at(2);
    let (r1, r2) = restaurants.split_at(4);

    for algo in ALGORITHMS {
        for grid in [1, 2, 4, 6] {
            let result = SpqExecutor::new(Rect::from_coords(0.0, 0.0, 10.0, 10.0))
                .algorithm(algo)
                .grid_size(grid)
                .cluster(ClusterConfig::with_workers(2))
                .run(
                    &[h1.to_vec(), h2.to_vec()],
                    &[r1.to_vec(), r2.to_vec()],
                    &query,
                )
                .unwrap();
            let got: Vec<_> = result.top_k.iter().map(|r| (r.object, r.score)).collect();
            let want: Vec<_> = baseline.iter().map(|r| (r.object, r.score)).collect();
            assert_eq!(got, want, "{algo} on a {grid}x{grid} grid");
        }
    }
}

#[test]
fn prelude_exposes_the_documented_entry_points() {
    // The prelude names the ISSUE/README contract: Vocabulary, Point,
    // DataObject, FeatureObject, KeywordSet and the algorithm selector.
    let mut vocab = Vocabulary::new();
    let term = vocab.intern("italian");
    let set = KeywordSet::new(vec![term]);
    let _data = DataObject::new(0, Point::new(0.0, 0.0));
    let _feature = FeatureObject::new(0, Point::new(0.0, 0.0), set.clone());
    let _query = SpqQuery::new(1, 0.5, set);
    for algo in ALGORITHMS {
        // Each selector variant renders a distinct, stable name.
        assert!(!algo.to_string().is_empty());
    }
}
