//! Round-trip properties of the remote frame and job codecs.
//!
//! The remote backend's correctness argument leans on exact
//! serialization: a task batch shipped to a worker and the grouped output
//! shipped back must decode to precisely what was encoded, for any
//! content — including empty batches, empty splits, empty outputs and
//! records near the frame-size cap. These tests mirror the
//! `sharded::wire` round-trip style one layer down, at the frame and job
//! codec (`spq::mapreduce::remote`) the TCP transport actually speaks.

use proptest::prelude::*;
use spq::mapreduce::remote::codec::{
    decode_counters, encode_counters, put_str, put_u64, ByteReader,
};
use spq::mapreduce::remote::frame::MAGIC;
use spq::mapreduce::remote::job::{decode_job, decode_job_output, encode_job, encode_job_output};
use spq::mapreduce::remote::{read_frame, write_frame, CodecError, FrameError};
use spq::mapreduce::ExecutionBackend;
use spq::mapreduce::{
    ClusterConfig, Counters, GroupValues, JobContext, LocalPool, MapContext, MapReduceTask,
    ReduceContext,
};
use std::cmp::Ordering;
use std::io::Cursor;

/// The remotable task the job codec is exercised with: word count over
/// string records, the canonical MapReduce shape.
struct WireCount {
    reducers: usize,
}

impl MapReduceTask for WireCount {
    type Input = String;
    type Key = String;
    type Value = u64;
    type Output = (String, u64);

    const REMOTE_KIND: Option<&'static str> = Some("test.wire_count");

    fn encode_spec(&self, out: &mut Vec<u8>) {
        put_u64(out, self.reducers as u64);
    }

    fn decode_spec(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            reducers: r.u64()? as usize,
        })
    }

    fn encode_input(record: &String, out: &mut Vec<u8>) {
        put_str(out, record);
    }

    fn decode_input(r: &mut ByteReader<'_>) -> Result<String, CodecError> {
        Ok(r.str()?.to_owned())
    }

    fn encode_output(record: &(String, u64), out: &mut Vec<u8>) {
        put_str(out, &record.0);
        put_u64(out, record.1);
    }

    fn decode_output(r: &mut ByteReader<'_>) -> Result<(String, u64), CodecError> {
        Ok((r.str()?.to_owned(), r.u64()?))
    }

    fn num_reducers(&self) -> usize {
        self.reducers
    }

    fn map(&self, record: &String, ctx: &mut MapContext<'_, Self>) {
        for word in record.split_whitespace() {
            ctx.emit(self, word.to_owned(), 1);
        }
    }

    fn partition(&self, key: &String) -> usize {
        key.len() % self.reducers
    }

    fn sort_cmp(&self, a: &String, b: &String) -> Ordering {
        a.cmp(b)
    }

    fn reduce(
        &self,
        group: &String,
        values: &mut GroupValues<'_, Self>,
        ctx: &mut ReduceContext<'_, (String, u64)>,
    ) {
        ctx.emit((group.clone(), values.map(|(_, v)| v).sum()));
    }
}

/// Strategy: input splits of lowercase-and-space records (what the word
/// count maps over), including empty splits and empty batches.
fn splits_strategy(max_splits: usize) -> impl Strategy<Value = Vec<Vec<String>>> {
    proptest::collection::vec(
        proptest::collection::vec(proptest::collection::vec(0u8..27, 0..12), 0..6),
        0..max_splits,
    )
    .prop_map(|splits| {
        splits
            .into_iter()
            .map(|records| {
                records
                    .into_iter()
                    .map(|bytes| {
                        bytes
                            .into_iter()
                            .map(|b| if b == 26 { ' ' } else { (b'a' + b) as char })
                            .collect()
                    })
                    .collect()
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A frame written through a stream reads back with the same opcode
    /// and payload, for any opcode and any payload bytes.
    #[test]
    fn prop_frame_round_trips(
        opcode in 0u16..=u16::MAX,
        payload in proptest::collection::vec(0u8..=u8::MAX, 0..2048),
    ) {
        let mut stream = Vec::new();
        write_frame(&mut stream, opcode, &payload).unwrap();
        let (got_op, got_payload) = read_frame(&mut Cursor::new(&stream)).unwrap();
        prop_assert_eq!(got_op, opcode);
        prop_assert_eq!(got_payload, payload);
    }

    /// Flipping a payload byte is always detected by the checksum, a torn
    /// magic is always detected, and every strict prefix of a frame reads
    /// as truncated — corruption never decodes as a valid frame.
    #[test]
    fn prop_frame_corruption_is_detected(
        opcode in 0u16..=u16::MAX,
        payload in proptest::collection::vec(0u8..=u8::MAX, 1..512),
        position in 0usize..4096,
    ) {
        let mut stream = Vec::new();
        write_frame(&mut stream, opcode, &payload).unwrap();
        let header_len = stream.len() - payload.len();

        // Corrupt one payload byte.
        let mut corrupted = stream.clone();
        let at = header_len + position % payload.len();
        corrupted[at] ^= 0x01;
        prop_assert!(matches!(
            read_frame(&mut Cursor::new(&corrupted)),
            Err(FrameError::Corrupt { .. })
        ));

        // Corrupt the magic.
        let mut bad_magic = stream.clone();
        bad_magic[0] ^= 0xFF;
        match read_frame(&mut Cursor::new(&bad_magic)) {
            Err(FrameError::BadMagic { found }) => prop_assert!(found != MAGIC),
            other => prop_assert!(false, "expected BadMagic, got {:?}", other),
        }

        // Every strict prefix is an error, not a wild read.
        let cut = position % stream.len();
        prop_assert!(read_frame(&mut Cursor::new(&stream[..cut])).is_err());
    }

    /// A task batch (spec + splits) round-trips exactly, including empty
    /// batches and empty splits.
    #[test]
    fn prop_job_batch_round_trips(
        reducers in 1usize..5,
        splits in splits_strategy(5),
    ) {
        let task = WireCount { reducers };
        let payload = encode_job("test.wire_count", &task, &splits);
        let mut r = ByteReader::new(&payload);
        let kind = r.str().unwrap().to_owned();
        prop_assert_eq!(kind, "test.wire_count");
        let (decoded_task, decoded_splits) = decode_job::<WireCount>(&mut r).unwrap();
        prop_assert_eq!(decoded_task.reducers, reducers);
        prop_assert_eq!(decoded_splits, splits);
    }

    /// A grouped job output (per-reducer records + statistics + counters)
    /// round-trips exactly, including jobs that produce nothing.
    #[test]
    fn prop_job_output_round_trips(
        reducers in 1usize..4,
        splits in splits_strategy(4),
    ) {
        let task = WireCount { reducers };
        let output = LocalPool::new(ClusterConfig::with_workers(2))
            .execute(&JobContext::new(), &task, &splits)
            .unwrap();
        let payload = encode_job_output::<WireCount>(&output);
        let decoded = decode_job_output::<WireCount>(&payload).unwrap();
        prop_assert_eq!(decoded.per_reducer(), output.per_reducer());
        prop_assert_eq!(decoded.len(), output.len());
        prop_assert_eq!(
            decoded.stats.shuffle_records,
            output.stats.shuffle_records
        );
        prop_assert_eq!(decoded.stats.map_tasks.len(), output.stats.map_tasks.len());
        prop_assert_eq!(
            decoded.stats.counters.iter().collect::<Vec<_>>(),
            output.stats.counters.iter().collect::<Vec<_>>()
        );
    }

    /// Counter sets round-trip exactly.
    #[test]
    fn prop_counters_round_trip(
        values in proptest::collection::vec(0u64..1_000_000, 0..4),
    ) {
        static NAMES: [&str; 4] = ["wire.a", "wire.b", "wire.c", "wire.d"];
        let mut counters = Counters::new();
        for (i, v) in values.iter().enumerate() {
            counters.add(NAMES[i], *v);
        }
        let mut bytes = Vec::new();
        encode_counters(&counters, &mut bytes);
        let decoded = decode_counters(&mut ByteReader::new(&bytes)).unwrap();
        prop_assert_eq!(
            decoded.iter().collect::<Vec<_>>(),
            counters.iter().collect::<Vec<_>>()
        );
    }
}

/// A record at the upper end of what one frame can carry (a few MiB,
/// under the 64 MiB cap) survives the batch codec byte-for-byte.
#[test]
fn max_size_records_round_trip() {
    let big = "x".repeat(4 << 20);
    let task = WireCount { reducers: 2 };
    let splits = vec![vec![big.clone()], Vec::new()];
    let payload = encode_job("test.wire_count", &task, &splits);
    assert!(payload.len() > 4 << 20);
    let mut r = ByteReader::new(&payload);
    assert_eq!(r.str().unwrap(), "test.wire_count");
    let (_, decoded_splits) = decode_job::<WireCount>(&mut r).unwrap();
    assert_eq!(decoded_splits, splits);

    // And the frame layer carries it whole through a stream.
    let mut stream = Vec::new();
    write_frame(&mut stream, 3, &payload).unwrap();
    let (_, got) = read_frame(&mut Cursor::new(&stream)).unwrap();
    assert_eq!(got, payload);
}

/// Truncating a job payload anywhere inside the spec or a record is a
/// typed decode error, never a panic.
#[test]
fn truncated_job_payloads_are_errors() {
    let task = WireCount { reducers: 2 };
    let splits = vec![vec!["hello world".to_owned()]];
    let payload = encode_job("test.wire_count", &task, &splits);
    for cut in 0..payload.len() {
        let mut r = ByteReader::new(&payload[..cut]);
        let kind = r.str();
        if kind.is_err() {
            continue; // truncated inside the kind marker — also an error
        }
        assert!(
            decode_job::<WireCount>(&mut r).is_err(),
            "cut={cut} decoded from a truncated payload"
        );
    }
}
