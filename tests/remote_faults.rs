//! Fault injection against the remote backend: byte-identity under
//! worker loss, plus exhaustive transport-failure unit tests.
//!
//! The property at stake is the tentpole's recovery claim: for **any**
//! deterministic fault schedule that kills at most `N − 1` of `N`
//! workers, the remote engine still answers byte-identically to the
//! single-store local engine — the dead worker's shards fail over to
//! survivors, and every re-ask is visible as a retry in the per-query
//! [`QueryStats`] and the engine-level counter. The unit tests then pin
//! each low-level failure mode one by one: truncated frames, corrupt
//! length prefixes, checksum mismatches, connect timeouts and mid-batch
//! worker death.

use proptest::prelude::*;
use spq::mapreduce::remote::{
    read_frame, write_frame, ClientConfig, FaultPlan, FrameError, RemoteError, WorkerClient,
    WorkerServer, MAX_FRAME_LEN, OP_PING, OP_PONG,
};
use spq::prelude::*;
use std::io::{Cursor, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::time::Duration;

fn feature(id: u64, x: f64, y: f64, kw: &[u32]) -> FeatureObject {
    FeatureObject::new(
        id,
        Point::new(x, y),
        KeywordSet::from_ids(kw.iter().copied()),
    )
}

/// The paper's running example, with enough objects that every shard of
/// a three-worker layout is non-empty and every term 0..12 is matched.
fn dataset() -> SharedDataset {
    SharedDataset::new(
        vec![
            DataObject::new(1, Point::new(4.6, 4.8)),
            DataObject::new(2, Point::new(7.5, 1.7)),
            DataObject::new(3, Point::new(8.9, 5.2)),
            DataObject::new(4, Point::new(1.8, 1.8)),
            DataObject::new(5, Point::new(1.9, 9.0)),
            DataObject::new(6, Point::new(5.5, 5.5)),
        ],
        vec![
            feature(1, 2.8, 1.2, &[0, 1]),
            feature(2, 5.0, 3.8, &[2, 3]),
            feature(3, 8.7, 1.9, &[4, 5]),
            feature(4, 3.8, 5.5, &[0]),
            feature(5, 5.2, 5.1, &[6, 7]),
            feature(6, 7.4, 5.4, &[8, 9]),
            feature(7, 3.0, 8.1, &[0, 10]),
            feature(8, 9.5, 7.0, &[11]),
        ],
    )
}

fn executor() -> SpqExecutor {
    SpqExecutor::new(Rect::from_coords(0.0, 0.0, 10.0, 10.0)).grid_size(4)
}

fn request(k: usize, r: f64, kw: &[u32]) -> QueryRequest {
    QueryRequest::new(SpqQuery::new(
        k,
        r,
        KeywordSet::from_ids(kw.iter().copied()),
    ))
}

const WORKERS: usize = 3;
const RADII: [f64; 3] = [1.0, 1.8, 3.0];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any fault schedule killing ≤ N−1 of N workers (at any
    /// response threshold, optionally mixed with recoverable drop and
    /// corruption faults on a survivor), every query answers
    /// byte-identically to the local engine, and the re-asks the
    /// recovery took are reported through `QueryStats::retries`.
    #[test]
    fn prop_worker_loss_preserves_byte_identity(
        killed in 1usize..WORKERS,       // at most N − 1 deaths
        first_kill in 0usize..WORKERS,   // which workers die
        kill_threshold in 0u32..2,       // die before response 0 or 1
        survivor_faults in 0u8..4,       // bit 0: drop, bit 1: corrupt
        queries in proptest::collection::vec(
            (1usize..5, 0usize..RADII.len(), proptest::collection::vec(0u32..12, 1..3)),
            3,
        ),
    ) {
        let local = QueryEngine::new(executor(), dataset());
        let remote = RemoteEngine::self_hosted(executor(), dataset(), WORKERS).unwrap();

        for i in 0..killed {
            remote.inject_fault(
                (first_kill + i) % WORKERS,
                &FaultPlan {
                    kill_after_responses: Some(kill_threshold),
                    ..FaultPlan::none()
                },
            ).unwrap();
        }
        // Recoverable one-shot faults on a survivor — but only while two
        // survivors remain: an unluckily-timed drop during a failover
        // provision legitimately excludes the survivor it fired on, and
        // with a lone survivor that would (correctly) be WorkerLost.
        if killed == 1 {
            remote.inject_fault(
                (first_kill + killed) % WORKERS,
                &FaultPlan {
                    drop_after_responses: (survivor_faults & 1 != 0).then_some(0),
                    corrupt_response: (survivor_faults & 2 != 0).then_some(1),
                    ..FaultPlan::none()
                },
            ).unwrap();
        }

        let mut retries_seen = 0u64;
        for (k, r, kw) in &queries {
            let req = request(*k, RADII[*r], kw);
            let expect = local.execute(&req).unwrap();
            let got = remote.execute(&req).unwrap();
            prop_assert_eq!(&got.results, &expect.results);
            retries_seen += got.stats.retries;
        }
        // Every seed kills at least one worker before its second
        // response; three all-shard queries guarantee the death fired
        // and the recovery was observed as at least one retry.
        prop_assert!(retries_seen >= 1, "no retry reported despite {killed} kill(s)");
        prop_assert_eq!(remote.retries() >= retries_seen, true);
        prop_assert!(remote.excluded_workers() >= killed);
        prop_assert!(remote.excluded_workers() < WORKERS, "lone survivor was excluded");

        // The engine keeps serving identically after the storm, with no
        // fresh retries: the failover placement is sticky.
        let req = request(3, 1.8, &[0, 4]);
        let settled = remote.execute(&req).unwrap();
        prop_assert_eq!(&settled.results, &local.execute(&req).unwrap().results);
        prop_assert_eq!(settled.stats.retries, 0);
    }
}

fn bind_test_server() -> WorkerServer {
    WorkerServer::bind("127.0.0.1:0", Vec::new(), false).unwrap()
}

/// A frame cut off mid-payload makes the worker drop the connection
/// without answering — truncation is never silently accepted.
#[test]
fn truncated_frame_drops_the_connection() {
    let server = bind_test_server();
    let mut full = Vec::new();
    write_frame(&mut full, OP_PING, b"hello worker").unwrap();
    for cut in [1, 7, full.len() - 1] {
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(&full[..cut]).unwrap();
        stream.shutdown(Shutdown::Write).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut reply = Vec::new();
        let got = stream.read_to_end(&mut reply);
        assert!(
            matches!(got, Ok(0) | Err(_)),
            "cut={cut}: worker answered a truncated frame with {reply:?}"
        );
    }
    server.shutdown();
}

/// A header whose length field exceeds the frame cap is rejected as
/// `Oversize` by the codec, and a worker receiving one hangs up instead
/// of trying to allocate the claimed payload.
#[test]
fn corrupt_length_prefix_is_rejected() {
    // Codec level: craft a header claiming an impossible payload.
    let mut frame = Vec::new();
    write_frame(&mut frame, OP_PING, b"x").unwrap();
    let huge = (MAX_FRAME_LEN + 1).to_le_bytes();
    frame[8..12].copy_from_slice(&huge);
    match read_frame(&mut Cursor::new(&frame)) {
        Err(FrameError::Oversize { len }) => assert_eq!(len, MAX_FRAME_LEN + 1),
        other => panic!("expected Oversize, got {other:?}"),
    }

    // A plausible-but-wrong length desynchronizes the checksum instead.
    let mut frame = Vec::new();
    write_frame(&mut frame, OP_PING, b"four").unwrap();
    frame[8..12].copy_from_slice(&2u32.to_le_bytes());
    assert!(read_frame(&mut Cursor::new(&frame)).is_err());

    // Socket level: the worker drops the connection without a reply.
    let server = bind_test_server();
    let mut frame = Vec::new();
    write_frame(&mut frame, OP_PING, b"x").unwrap();
    frame[8..12].copy_from_slice(&huge);
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.write_all(&frame).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut reply = Vec::new();
    assert!(matches!(stream.read_to_end(&mut reply), Ok(0) | Err(_)));
    server.shutdown();
}

/// Connecting to a port nobody listens on exhausts the backoff schedule
/// and surfaces as a typed `Connect` error naming the attempt count.
#[test]
fn connect_timeout_surfaces_after_backoff() {
    // Grab an ephemeral port and free it again: nothing listens there.
    let dead_addr = {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap().to_string()
    };
    let config = ClientConfig {
        connect_timeout: Duration::from_millis(100),
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(4),
        connect_attempts: 3,
        ..ClientConfig::fast()
    };
    let mut client = WorkerClient::new(dead_addr.clone(), config);
    match client.call(OP_PING, b"anyone home") {
        Err(RemoteError::Connect { addr, attempts, .. }) => {
            assert_eq!(addr, dead_addr);
            assert_eq!(attempts, 3);
        }
        other => panic!("expected Connect error, got {other:?}"),
    }
}

/// A worker that dies mid-batch (kill fault before its next response)
/// fails the in-flight call and every later one — the client observes a
/// dead worker, not a hang.
#[test]
fn mid_batch_worker_death_fails_current_and_later_calls() {
    let server = bind_test_server();
    let mut client = WorkerClient::new(server.addr().to_string(), ClientConfig::fast());
    let (op, _) = client.call(OP_PING, b"warm").unwrap();
    assert_eq!(op, OP_PONG);

    let mut plan = Vec::new();
    FaultPlan {
        kill_after_responses: Some(0),
        ..FaultPlan::none()
    }
    .encode(&mut plan);
    client
        .call(spq::mapreduce::remote::OP_SET_FAULT, &plan)
        .unwrap();

    assert!(
        client.call(OP_PING, b"mid-batch").is_err(),
        "call survived the kill"
    );
    assert!(server.is_stopped());
    assert!(client.call(OP_PING, b"after death").is_err());
}

/// A one-shot connection drop fails exactly one call; the client's lazy
/// reconnect heals the next one without outside help.
#[test]
fn dropped_connection_heals_on_reconnect() {
    let server = bind_test_server();
    let mut client = WorkerClient::new(server.addr().to_string(), ClientConfig::fast());
    let mut plan = Vec::new();
    FaultPlan {
        drop_after_responses: Some(0),
        ..FaultPlan::none()
    }
    .encode(&mut plan);
    client
        .call(spq::mapreduce::remote::OP_SET_FAULT, &plan)
        .unwrap();

    assert!(client.call(OP_PING, b"dropped").is_err());
    let (op, payload) = client.call(OP_PING, b"healed").unwrap();
    assert_eq!((op, payload.as_slice()), (OP_PONG, b"healed".as_slice()));
    server.shutdown();
}

/// A corrupted response payload is caught by the frame checksum and
/// reported as `Corrupt`, never handed to the decoder.
#[test]
fn corrupt_response_is_a_checksum_mismatch() {
    let server = bind_test_server();
    let mut client = WorkerClient::new(server.addr().to_string(), ClientConfig::fast());
    let mut plan = Vec::new();
    FaultPlan {
        corrupt_response: Some(0),
        ..FaultPlan::none()
    }
    .encode(&mut plan);
    client
        .call(spq::mapreduce::remote::OP_SET_FAULT, &plan)
        .unwrap();

    match client.call(OP_PING, b"checksummed") {
        Err(RemoteError::Frame(FrameError::Corrupt { expected, found })) => {
            assert_ne!(expected, found);
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
    // One-shot: the retry goes through clean.
    assert!(client.call(OP_PING, b"checksummed").is_ok());
    server.shutdown();
}

/// A worker that answers slower than the per-task deadline counts as a
/// deadline miss (`is_deadline`), distinguishable from a dead worker.
#[test]
fn slow_worker_misses_the_deadline() {
    let server = bind_test_server();
    let config = ClientConfig {
        io_timeout: Duration::from_millis(80),
        ..ClientConfig::fast()
    };
    let mut client = WorkerClient::new(server.addr().to_string(), config);
    let mut plan = Vec::new();
    FaultPlan {
        delay_response_ms: Some(1_000),
        ..FaultPlan::none()
    }
    .encode(&mut plan);
    client
        .call(spq::mapreduce::remote::OP_SET_FAULT, &plan)
        .unwrap();

    let err = client.call(OP_PING, b"slow").unwrap_err();
    assert!(err.is_deadline(), "expected a deadline miss, got {err:?}");
    server.shutdown();
}
