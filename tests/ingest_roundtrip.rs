//! Integration tests of the real-dump ingestion path:
//!
//! * proptest: `synthesize_dump → ingest → Vocabulary → tsv::save_with_vocab
//!   → ingest` is byte-stable (same dataset, same vocabulary, and a second
//!   save produces byte-identical files),
//! * malformed-line fixtures (bad coords, empty keywords, duplicate ids,
//!   CRLF endings) assert line-numbered errors under `Fail` and skip
//!   counters under `Skip`,
//! * a loaded dump serves every algorithm byte-identically to the
//!   in-memory path over the same objects.

use proptest::prelude::*;
use spq::data::ingest::{self, synthesize_dump_with, LineErrorKind};
use spq::data::{tsv, UniformGen};
use spq::prelude::*;
use std::path::PathBuf;

fn temp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("spq-it-{}-{name}", std::process::id()))
}

struct TempFiles(Vec<PathBuf>);

impl TempFiles {
    fn path(&mut self, name: &str) -> PathBuf {
        let p = temp(name);
        self.0.push(p.clone());
        p
    }
}

impl Drop for TempFiles {
    fn drop(&mut self) {
        for p in &self.0 {
            std::fs::remove_file(p).ok();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The full external round trip is a fixed point: ingesting a
    /// synthesized dump, saving it with its vocabulary, and re-ingesting
    /// reproduces the same dataset, the same vocabulary, and byte-stable
    /// save output.
    #[test]
    fn prop_dump_roundtrip_is_byte_stable(objects in 40usize..300, seed in 0u64..1000) {
        let flickr = seed % 2 == 0; // alternate vocabulary shapes
        let mut files = TempFiles(Vec::new());
        let tag = format!("prop-{objects}-{seed}-{flickr}");
        let d = files.path(&format!("{tag}-d.tsv"));
        let f = files.path(&format!("{tag}-f.tsv"));
        // Two generators with very different vocabulary shapes.
        if flickr {
            synthesize_dump_with(&FlickrLike, objects, seed, &d, &f).unwrap();
        } else {
            synthesize_dump_with(&UniformGen, objects, seed, &d, &f).unwrap();
        }

        let first = ingest_files(&d, &f, &IngestOptions::default()).unwrap();
        prop_assert_eq!(first.skips.total(), 0);
        prop_assert_eq!(first.objects(), objects);
        prop_assert_eq!(first.dataset.vocab_size, first.vocab.len());

        let saved = files.path(&format!("{tag}-save1.tsv"));
        tsv::save_with_vocab(&first.dataset, &first.vocab, &saved).unwrap();
        let second = ingest::ingest_combined(&saved, &IngestOptions::default()).unwrap();
        prop_assert_eq!(&second.dataset.data, &first.dataset.data);
        prop_assert_eq!(&second.dataset.features, &first.dataset.features);
        prop_assert_eq!(&second.dataset.bounds, &first.dataset.bounds);
        prop_assert_eq!(second.dataset.vocab_size, first.dataset.vocab_size);
        prop_assert_eq!(&second.vocab, &first.vocab);

        let saved_again = files.path(&format!("{tag}-save2.tsv"));
        tsv::save_with_vocab(&second.dataset, &second.vocab, &saved_again).unwrap();
        prop_assert_eq!(
            std::fs::read(&saved).unwrap(),
            std::fs::read(&saved_again).unwrap(),
            "save → ingest → save must be byte-identical"
        );
    }
}

/// One malformed-line fixture: data file, feature file, expected error
/// line, and a predicate on the expected error kind.
type MalformedCase = (
    &'static str,
    &'static str,
    usize,
    fn(&LineErrorKind) -> bool,
);

#[test]
fn malformed_fixtures_fail_with_line_numbers() {
    let mut files = TempFiles(Vec::new());
    let cases: &[MalformedCase] = &[
        // Bad coordinates, on line 2 of the data file.
        ("1\t0.1\t0.2\n2\t0.3\tnope\n", "", 2, |k| {
            matches!(k, LineErrorKind::BadCoordinate(_))
        }),
        // Non-finite coordinate.
        ("1\tNaN\t0.2\n", "", 1, |k| {
            matches!(k, LineErrorKind::BadCoordinate(_))
        }),
        // Empty keyword list on a feature line.
        ("", "9\t0.5\t0.5\t\n", 1, |k| {
            matches!(k, LineErrorKind::EmptyKeywords)
        }),
        // Duplicate id within one dataset, reported on the second line.
        ("", "9\t0.1\t0.1\ta\n9\t0.2\t0.2\tb\n", 2, |k| {
            matches!(k, LineErrorKind::DuplicateId(9))
        }),
        // Wrong field count.
        ("1\t0.5\n", "", 1, |k| {
            matches!(k, LineErrorKind::FieldCount { want: 3, got: 2 })
        }),
    ];
    for (i, (data, features, line, matcher)) in cases.iter().enumerate() {
        let d = files.path(&format!("bad-{i}-d.tsv"));
        let f = files.path(&format!("bad-{i}-f.tsv"));
        std::fs::write(&d, data).unwrap();
        std::fs::write(&f, features).unwrap();
        let err = ingest_files(&d, &f, &IngestOptions::default()).unwrap_err();
        let detail = err.line().expect("line-numbered error");
        assert_eq!(detail.line, *line, "case {i}: {err}");
        assert!(matcher(&detail.kind), "case {i}: {err}");
        // The display form names the offending file and line.
        let rendered = err.to_string();
        assert!(rendered.contains(&format!("line {line}")), "{rendered}");
    }
}

#[test]
fn lossy_skip_counts_instead_of_failing() {
    let mut files = TempFiles(Vec::new());
    let d = files.path("lossy-d.tsv");
    let f = files.path("lossy-f.tsv");
    std::fs::write(&d, "1\t0.1\t0.2\n2\t0.3\tnope\n3\t0.5\t0.6\n3\t0.7\t0.8\n").unwrap();
    std::fs::write(
        &f,
        "7\t0.5\t0.5\tcafe,bar\n8\t0.6\t0.6\t\n9\t0.7\t0.7\tbar\n",
    )
    .unwrap();
    let loaded = ingest_files(&d, &f, &IngestOptions::lossy()).unwrap();
    assert_eq!(loaded.dataset.data.len(), 2); // ids 1 and 3
    assert_eq!(loaded.dataset.features.len(), 2); // ids 7 and 9
    assert_eq!(loaded.skips.bad_lines, 1);
    assert_eq!(loaded.skips.duplicate_ids, 1);
    assert_eq!(loaded.skips.empty_keywords, 1);
    assert_eq!(loaded.skips.total(), 3);
    assert_eq!(loaded.vocab.len(), 2); // cafe, bar — skipped lines intern nothing
    assert_eq!(loaded.lines, 7);
}

#[test]
fn crlf_dumps_ingest_like_unix_dumps() {
    let mut files = TempFiles(Vec::new());
    let unix_d = files.path("crlf-unix-d.tsv");
    let unix_f = files.path("crlf-unix-f.tsv");
    let dos_d = files.path("crlf-dos-d.tsv");
    let dos_f = files.path("crlf-dos-f.tsv");
    let data = "1\t0.25\t0.5\n2\t0.75\t0.5\n";
    let features = "10\t0.5\t0.25\tpizza,sushi\n11\t0.5\t0.75\tsushi\n";
    std::fs::write(&unix_d, data).unwrap();
    std::fs::write(&unix_f, features).unwrap();
    std::fs::write(&dos_d, data.replace('\n', "\r\n")).unwrap();
    std::fs::write(&dos_f, features.replace('\n', "\r\n")).unwrap();

    let unix = ingest_files(&unix_d, &unix_f, &IngestOptions::default()).unwrap();
    let dos = ingest_files(&dos_d, &dos_f, &IngestOptions::default()).unwrap();
    assert_eq!(unix.dataset.data, dos.dataset.data);
    assert_eq!(unix.dataset.features, dos.dataset.features);
    assert_eq!(unix.vocab, dos.vocab);
    assert_eq!(dos.skips.total(), 0);
}

/// A loaded dump must answer queries byte-identically to the in-memory
/// path (a fresh executor job over the same objects), for all three
/// algorithms — the property the CI ingest gate asserts at 100k+ objects.
///
/// Deliberately exercises the deprecated `query` shim: `SpqResult` is the
/// only surface exposing the raw MapReduce counters this parity check
/// compares against the fresh job.
#[allow(deprecated)]
#[test]
fn loaded_dump_serves_all_algorithms_byte_identically() {
    let mut files = TempFiles(Vec::new());
    let d = files.path("serve-d.tsv");
    let f = files.path("serve-f.tsv");
    synthesize_dump(
        &DumpConfig {
            objects: 3000,
            seed: 23,
        },
        &d,
        &f,
    )
    .unwrap();
    let loaded = ingest_files(&d, &f, &IngestOptions::default()).unwrap();
    let bounds = loaded.dataset.bounds;
    let cell = bounds.width().max(bounds.height()) / 16.0;

    let mut stream = QueryStream::new(
        loaded.vocab.len(),
        StreamConfig {
            radius_classes: vec![cell * 0.1, cell * 0.3],
            hotspot_fraction: 0.25,
            hotspots: 2,
            seed: 3,
            ..StreamConfig::default()
        },
    );
    let queries = stream.batch(8);

    for algorithm in [Algorithm::PSpq, Algorithm::ESpqLen, Algorithm::ESpqSco] {
        let exec = SpqExecutor::new(bounds).algorithm(algorithm).grid_size(16);
        let engine = QueryEngine::from_ingested(
            exec.clone(),
            loaded.dataset.data.clone(),
            loaded.dataset.features.clone(),
        );
        let (shared, _) = loaded.dataset.to_shared_splits(8);
        for q in &queries {
            let from_engine = engine.query(q).expect("engine query");
            let in_memory = exec.run_dataset(&shared, q).expect("fresh job");
            assert_eq!(
                from_engine.top_k, in_memory.top_k,
                "{algorithm}: loaded-dump path diverged on {q}"
            );
            assert_eq!(from_engine.stats.counters, in_memory.stats.counters);
        }
    }
}
