//! Membership-layer tests: tick-driven probing, hysteresis, warm
//! re-admission, rebalance budgets and the event-interleaving proptest.
//!
//! Everything here runs against in-process workers, so temporary worker
//! death is emulated with the `FaultPlan` refusal seam (drop the current
//! stream, refuse the next `n` connections, then heal) instead of killing
//! processes — an in-process `WorkerServer` killed by a kill fault never
//! comes back, but a refusing one recovers the moment its budget drains,
//! which is exactly the restart shape the probe scheduler is built for.
//! Real process kill/restart re-admission is covered by
//! `tests/remote_process.rs`; this suite owns the deterministic state
//! machine: every tick is driven by the test, no wall clock anywhere.

use proptest::prelude::*;
use spq::mapreduce::remote::{FaultPlan, WorkerServer};
use spq::prelude::*;

fn feature(id: u64, x: f64, y: f64, kw: &[u32]) -> FeatureObject {
    FeatureObject::new(
        id,
        Point::new(x, y),
        KeywordSet::from_ids(kw.iter().copied()),
    )
}

/// The paper's running example: five data objects so every shard of a
/// three-worker layout is non-empty, terms 0..12 all matched.
fn dataset() -> SharedDataset {
    SharedDataset::new(
        vec![
            DataObject::new(1, Point::new(4.6, 4.8)),
            DataObject::new(2, Point::new(7.5, 1.7)),
            DataObject::new(3, Point::new(8.9, 5.2)),
            DataObject::new(4, Point::new(1.8, 1.8)),
            DataObject::new(5, Point::new(1.9, 9.0)),
        ],
        vec![
            feature(1, 2.8, 1.2, &[0, 1]),
            feature(2, 5.0, 3.8, &[2, 3]),
            feature(3, 8.7, 1.9, &[4, 5]),
            feature(4, 3.8, 5.5, &[0]),
            feature(5, 5.2, 5.1, &[6, 7]),
            feature(6, 7.4, 5.4, &[8, 9]),
            feature(7, 3.0, 8.1, &[0, 10]),
            feature(8, 9.5, 7.0, &[11]),
        ],
    )
}

fn executor() -> SpqExecutor {
    SpqExecutor::new(Rect::from_coords(0.0, 0.0, 10.0, 10.0)).grid_size(4)
}

fn request(k: usize, r: f64, kw: &[u32]) -> QueryRequest {
    QueryRequest::new(SpqQuery::new(
        k,
        r,
        KeywordSet::from_ids(kw.iter().copied()),
    ))
}

fn config() -> MembershipConfig {
    MembershipConfig {
        replication_factor: 2,
        probe_interval_ticks: 1,
        readmit_threshold: 2,
        max_moves_per_tick: 8,
    }
}

/// Emulates a worker restart: evict the manager's stream on its next
/// response, then refuse the next `refusals` connections.
fn temp_kill(remote: &RemoteEngine, worker: usize, refusals: u32) {
    let _ = remote.inject_fault(
        worker,
        &FaultPlan {
            drop_after_responses: Some(0),
            refuse_connections: Some(refusals),
            ..FaultPlan::none()
        },
    );
}

/// The full scripted lifecycle, tick by tick: a worker goes down, queries
/// fail over warm, probes fail while it refuses, hysteresis builds only on
/// *consecutive* successes (a mid-probe flap resets the streak), and
/// re-admission recovers the worker's still-warm shards via
/// `OP_SHARD_STATUS` without shipping a single provision payload for them.
#[test]
fn flapping_worker_readmits_only_after_consecutive_probes() {
    let local = QueryEngine::new(executor(), dataset());
    let remote = RemoteEngine::self_hosted_with(executor(), dataset(), 3, config()).unwrap();
    assert_eq!(remote.provisions_sent(), 6); // 3 shards × replication 2

    // Worker 0 "restarts": stream evicted, next 2 connections refused.
    temp_kill(&remote, 0, 2);
    let req = request(4, 1.5, &[0]);
    let got = remote.execute(&req).unwrap();
    assert_eq!(got.results, local.execute(&req).unwrap().results);
    // Eviction → retry same worker → refused reconnect → excluded →
    // warm flip to worker 1: two re-asks, one warm failover, no payload.
    assert_eq!(got.stats.retries, 2, "stats: {:?}", got.stats);
    assert_eq!(got.stats.warm_failovers, 1);
    assert_eq!(got.stats.cold_reprovisions, 0);
    assert_eq!(remote.provisions_sent(), 6);
    assert_eq!(remote.excluded_workers(), 1);

    // Tick 1: the probe eats the last refusal and fails; meanwhile the
    // rebalancer restores two-way replication over the two survivors
    // (shard 0 and shard 2 each lost their copy on worker 0).
    let t1 = remote.tick();
    assert_eq!((t1.probes, t1.probe_successes), (1, 0));
    assert_eq!(t1.provisions, 2);
    assert!(t1.readmitted.is_empty());

    // Tick 2: refusals drained — the probe succeeds, but one success is
    // below the hysteresis threshold: still out of rotation.
    let t2 = remote.tick();
    assert_eq!((t2.probes, t2.probe_successes), (1, 1));
    assert!(t2.readmitted.is_empty());
    assert_eq!(remote.excluded_workers(), 1);

    // Flap: the worker goes down again mid-probation. The next probe
    // fails and the streak resets — one more success alone won't readmit.
    temp_kill(&remote, 0, 1);
    let t3 = remote.tick();
    assert_eq!((t3.probes, t3.probe_successes), (1, 0));
    let t4 = remote.tick(); // eats the refusal
    assert_eq!((t4.probes, t4.probe_successes), (1, 0));
    let t5 = remote.tick(); // healthy again: streak 1
    assert_eq!((t5.probes, t5.probe_successes), (1, 1));
    assert!(t5.readmitted.is_empty(), "readmitted below the threshold");

    // Streak reaches the threshold: the worker reports its (still warm)
    // shards over OP_SHARD_STATUS and re-enters with zero provisioning.
    let provisions_before = remote.provisions_sent();
    let t6 = remote.tick();
    assert_eq!(t6.readmitted, vec![0]);
    assert_eq!(t6.provisions, 0);
    assert_eq!(remote.provisions_sent(), provisions_before);
    assert_eq!(remote.readmissions(), 1);
    assert_eq!(remote.excluded_workers(), 0);

    // One more tick settles the primaries back to the canonical layout.
    let t7 = remote.tick();
    assert!(t7.quiescent(), "not settled: {t7:?}");
    remote.check_replication().unwrap();
    let view = remote.membership();
    assert_eq!(view.states, vec![WorkerState::Live; 3]);
    assert_eq!(view.primaries, vec![0, 1, 2]);

    let again = remote.execute(&req).unwrap();
    assert_eq!(again.results, local.execute(&req).unwrap().results);
    assert_eq!(again.stats.retries, 0);

    // The facade-level snapshot carries the whole story.
    let metrics = remote.metrics();
    assert_eq!(metrics.warm_failovers, 1);
    assert_eq!(metrics.cold_reprovisions, 0);
    assert_eq!(metrics.readmissions, 1);
    assert_eq!(metrics.excluded_workers, 0);
    assert!(metrics.remote_retries >= 2);
}

/// An admitted worker starts empty and the rebalancer migrates shard
/// copies onto it under the per-tick move budget — one provision per tick
/// here, so a join never stalls serving behind a bulk migration.
#[test]
fn rebalance_respects_the_move_budget() {
    let local = QueryEngine::new(executor(), dataset());
    let remote = RemoteEngine::self_hosted_with(
        executor(),
        dataset(),
        3,
        MembershipConfig {
            replication_factor: 3,
            max_moves_per_tick: 1,
            ..config()
        },
    )
    .unwrap();
    assert_eq!(remote.provisions_sent(), 9); // 3 shards × replication 3

    let joiner =
        WorkerServer::bind("127.0.0.1:0", vec![Box::new(ShardHost::new())], false).unwrap();
    let index = remote.admit(&joiner.addr().to_string()).unwrap();
    assert_eq!(index, 3);

    // Canonical layout over 4 workers wants worker 3 to hold shards 1
    // and 2 — two moves, budgeted one per tick.
    let t1 = remote.tick();
    assert_eq!(t1.provisions, 1);
    let t2 = remote.tick();
    assert_eq!(t2.provisions, 1);
    let t3 = remote.tick();
    assert!(t3.quiescent(), "not settled: {t3:?}");
    assert_eq!(remote.rebalance_moves(), 2);
    remote.check_replication().unwrap();
    let view = remote.membership();
    assert_eq!(
        view.replicas.iter().filter(|set| set.contains(&3)).count(),
        2,
        "view: {view:?}"
    );

    let req = request(4, 1.5, &[0]);
    let got = remote.execute(&req).unwrap();
    assert_eq!(got.results, local.execute(&req).unwrap().results);
    assert_eq!(got.stats.retries, 0);

    // Admission is validated: junk addresses and unreachable workers are
    // typed errors, not silent placements.
    assert!(matches!(
        remote.admit("no-port"),
        Err(SpqError::InvalidConfig { .. })
    ));
    let dead = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };
    assert!(matches!(remote.admit(&dead), Err(SpqError::Remote { .. })));
    joiner.shutdown();
}

/// `SPQ_REPLICATION_FACTOR` overrides the default replication factor on
/// the environment-driven build path, and junk values are typed config
/// errors. (The only test in this binary touching the variable.)
#[test]
fn replication_factor_env_override() {
    std::env::set_var("SPQ_REPLICATION_FACTOR", "1");
    let remote = RemoteEngine::build(executor(), dataset(), 3).unwrap();
    assert_eq!(remote.membership_config().replication_factor, 1);
    assert_eq!(remote.provisions_sent(), 3); // one copy per shard

    for bad in ["0", "-1", "x"] {
        std::env::set_var("SPQ_REPLICATION_FACTOR", bad);
        let err = RemoteEngine::build(executor(), dataset(), 2).unwrap_err();
        assert!(matches!(err, SpqError::InvalidConfig { .. }), "{bad:?}");
        assert!(err.to_string().contains("SPQ_REPLICATION_FACTOR"));
    }
    std::env::remove_var("SPQ_REPLICATION_FACTOR");

    let local = QueryEngine::new(executor(), dataset());
    let req = request(3, 1.5, &[0]);
    assert_eq!(
        remote.execute(&req).unwrap().results,
        local.execute(&req).unwrap().results
    );
}

const WORKERS: usize = 3;
const RADII: [f64; 3] = [1.0, 1.5, 2.5];

/// Ticks until the membership layer reports a quiescent tick, panicking
/// if it never settles — recovery must always converge.
fn settle(remote: &RemoteEngine) {
    for _ in 0..48 {
        if remote.tick().quiescent() {
            return;
        }
    }
    panic!("membership never settled: {:?}", remote.membership());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any interleaving of temporary worker deaths, queries and
    /// tick-driven recovery (probe → re-admit → rebalance) keeps every
    /// query byte-identical to the local engine, and each settled state
    /// satisfies the replica-placement invariant: every shard warm on
    /// `min(replication_factor, live_workers)` workers with a live
    /// primary. Deaths are gated so at least one fault-free worker always
    /// remains — the one regime where answering is possible at all.
    #[test]
    fn prop_membership_events_preserve_byte_identity(
        rounds in proptest::collection::vec(
            (
                // Temporary deaths: (worker, refusal budget).
                proptest::collection::vec((0usize..WORKERS, 1u32..4), 0..3),
                // Queries between death and recovery.
                proptest::collection::vec(
                    (1usize..5, 0usize..RADII.len(), proptest::collection::vec(0u32..12, 1..3)),
                    1..3,
                ),
            ),
            1..4,
        ),
    ) {
        let local = QueryEngine::new(executor(), dataset());
        let remote =
            RemoteEngine::self_hosted_with(executor(), dataset(), WORKERS, config()).unwrap();

        let mut armed = [false; WORKERS];
        for (kills, queries) in &rounds {
            for &(victim, refusals) in kills {
                // Keep one fault-free available worker at all times: with
                // every worker simultaneously dead, WorkerLost would be
                // the *correct* answer, not byte-identity.
                let states = remote.membership().states;
                let fallback_exists = (0..WORKERS).any(|u| {
                    u != victim && !armed[u] && states[u].is_available()
                });
                if !fallback_exists {
                    continue;
                }
                temp_kill(&remote, victim, refusals);
                armed[victim] = true;
            }

            for (k, r, kw) in queries {
                let req = request(*k, RADII[*r], kw);
                let expect = local.execute(&req).unwrap();
                let got = remote.execute(&req).unwrap();
                prop_assert_eq!(&got.results, &expect.results);
                prop_assert_eq!(
                    got.stats.retries >= got.stats.warm_failovers + got.stats.cold_reprovisions,
                    true
                );
            }

            // Recovery: tick until quiescent, then clear any armed fault
            // that never fired (a drop waiting on a worker no query
            // happened to touch). Clearing may eat leftover refusals, so
            // settle once more before asserting the invariant.
            settle(&remote);
            for (w, armed_flag) in armed.iter_mut().enumerate() {
                if !*armed_flag {
                    continue;
                }
                let mut cleared = false;
                for _ in 0..8 {
                    if remote.inject_fault(w, &FaultPlan::none()).is_ok() {
                        cleared = true;
                        break;
                    }
                }
                prop_assert!(cleared, "could not clear faults on worker {w}");
                *armed_flag = false;
            }
            settle(&remote);

            // The settled invariant: everyone re-admitted, every shard
            // warm on min(replication_factor, live) workers.
            let view = remote.membership();
            prop_assert_eq!(&view.states, &vec![WorkerState::Live; WORKERS]);
            if let Err(violation) = remote.check_replication() {
                prop_assert!(false, "replication invariant broken: {violation}");
            }

            // And the recovered cluster answers byte-identically with no
            // fresh recovery work.
            let req = request(3, 1.5, &[0, 4]);
            let got = remote.execute(&req).unwrap();
            prop_assert_eq!(&got.results, &local.execute(&req).unwrap().results);
            prop_assert_eq!(got.stats.retries, 0);
        }
    }
}
