//! Cross-process byte-identity: the remote backend against real
//! `spq-worker` child processes.
//!
//! Everything else in the test suite exercises the remote transport
//! against in-process workers. These tests close the last gap the paper's
//! distributed setting cares about: the manager and the workers live in
//! **different processes**, connected only by the framed TCP protocol —
//! provisioning, shard queries, fault installation and worker death all
//! cross a real process boundary. The assertions are the same as
//! everywhere else: results byte-identical to the single-store local
//! engine, recovery visible as retries.

use spq::mapreduce::remote::{FaultPlan, FAULT_EXIT_CODE};
use spq::prelude::*;
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};

fn feature(id: u64, x: f64, y: f64, kw: &[u32]) -> FeatureObject {
    FeatureObject::new(
        id,
        Point::new(x, y),
        KeywordSet::from_ids(kw.iter().copied()),
    )
}

fn dataset() -> SharedDataset {
    SharedDataset::new(
        vec![
            DataObject::new(1, Point::new(4.6, 4.8)),
            DataObject::new(2, Point::new(7.5, 1.7)),
            DataObject::new(3, Point::new(8.9, 5.2)),
            DataObject::new(4, Point::new(1.8, 1.8)),
            DataObject::new(5, Point::new(1.9, 9.0)),
            DataObject::new(6, Point::new(5.5, 5.5)),
        ],
        vec![
            feature(1, 2.8, 1.2, &[0, 1]),
            feature(2, 5.0, 3.8, &[2, 3]),
            feature(3, 8.7, 1.9, &[4, 5]),
            feature(4, 3.8, 5.5, &[0]),
            feature(5, 5.2, 5.1, &[6, 7]),
            feature(6, 7.4, 5.4, &[8, 9]),
            feature(7, 3.0, 8.1, &[0, 10]),
            feature(8, 9.5, 7.0, &[11]),
        ],
    )
}

fn executor() -> SpqExecutor {
    SpqExecutor::new(Rect::from_coords(0.0, 0.0, 10.0, 10.0)).grid_size(4)
}

fn request(k: usize, r: f64, kw: &[u32]) -> QueryRequest {
    QueryRequest::new(SpqQuery::new(
        k,
        r,
        KeywordSet::from_ids(kw.iter().copied()),
    ))
}

/// A spawned `spq-worker` child, killed on drop so a panicking test
/// never leaks worker processes.
struct Worker {
    child: Child,
    addr: String,
}

impl Worker {
    fn spawn() -> Self {
        Self::spawn_at("127.0.0.1:0").expect("spawn spq-worker")
    }

    fn spawn_at(listen: &str) -> Result<Self, String> {
        let mut child = Command::new(env!("CARGO_BIN_EXE_spq-worker"))
            .args(["--listen", listen])
            .stdout(Stdio::piped())
            .spawn()
            .map_err(|e| format!("spawn spq-worker: {e}"))?;
        let stdout = child.stdout.take().expect("worker stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .map_err(|e| format!("read worker banner: {e}"))?;
        match line.trim().strip_prefix("spq-worker listening on ") {
            Some(addr) => Ok(Self {
                child,
                addr: addr.to_owned(),
            }),
            // EOF or junk: the worker died (e.g. the port was still
            // held). Reap it and report, so callers can retry.
            None => {
                let _ = child.kill();
                let _ = child.wait();
                Err(format!("unexpected worker banner: {line:?}"))
            }
        }
    }

    /// Restarts a worker on a fixed address, retrying briefly in case the
    /// OS has not released the port of the killed predecessor yet.
    fn respawn_at(listen: &str) -> Self {
        let mut last = String::new();
        for _ in 0..50 {
            match Self::spawn_at(listen) {
                Ok(worker) => return worker,
                Err(e) => last = e,
            }
            std::thread::sleep(std::time::Duration::from_millis(100));
        }
        panic!("cannot respawn spq-worker on {listen}: {last}");
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_workers(n: usize) -> (Vec<Worker>, Vec<String>) {
    let workers: Vec<Worker> = (0..n).map(|_| Worker::spawn()).collect();
    let addrs = workers.iter().map(|w| w.addr.clone()).collect();
    (workers, addrs)
}

/// Every query against three real worker processes returns the same
/// bytes as the single-store local engine, with zero retries when nobody
/// dies.
#[test]
fn cross_process_results_are_byte_identical() {
    let (_workers, addrs) = spawn_workers(3);
    let remote = RemoteEngine::connect(executor(), dataset(), &addrs).unwrap();
    assert!(!remote.is_self_hosted());
    assert_eq!(remote.worker_addrs(), addrs);

    let local = QueryEngine::new(executor(), dataset());
    for req in [
        request(1, 1.0, &[0]),
        request(3, 1.8, &[0, 4]),
        request(6, 3.0, &[0, 2, 6, 11]),
        request(2, 1.0, &[99]), // unmatched keywords: empty on both sides
    ] {
        let expect = local.execute(&req).unwrap();
        let got = remote.execute(&req).unwrap();
        assert_eq!(got.results, expect.results);
        assert_eq!(got.stats.retries, 0);
    }
    assert_eq!(remote.retries(), 0);
    assert!(remote.traffic_bytes() > 0);
}

/// Killing a worker *process* mid-serving moves its shard to a survivor:
/// results stay byte-identical and the recovery is visible as retries and
/// an exclusion.
#[test]
fn killed_worker_process_fails_over_to_survivors() {
    let (mut workers, addrs) = spawn_workers(3);
    let remote = RemoteEngine::connect(executor(), dataset(), &addrs).unwrap();
    let local = QueryEngine::new(executor(), dataset());

    let req = request(4, 1.8, &[0]);
    assert_eq!(
        remote.execute(&req).unwrap().results,
        local.execute(&req).unwrap().results
    );

    workers[0].child.kill().expect("kill worker 0");
    workers[0].child.wait().expect("reap worker 0");

    let got = remote.execute(&req).unwrap();
    assert_eq!(got.results, local.execute(&req).unwrap().results);
    assert!(got.stats.retries >= 1, "stats: {:?}", got.stats);
    assert_eq!(remote.excluded_workers(), 1);

    // Steady state after the failover: no fresh retries.
    let again = remote.execute(&req).unwrap();
    assert_eq!(again.results, local.execute(&req).unwrap().results);
    assert_eq!(again.stats.retries, 0);
}

/// A fault plan installed over the wire kills the real process (exit code
/// [`FAULT_EXIT_CODE`]), and the engine recovers exactly as it does for
/// an externally killed worker.
#[test]
fn injected_kill_fault_terminates_the_process() {
    let (mut workers, addrs) = spawn_workers(2);
    let remote = RemoteEngine::connect(executor(), dataset(), &addrs).unwrap();
    let local = QueryEngine::new(executor(), dataset());

    remote
        .inject_fault(
            1,
            &FaultPlan {
                kill_after_responses: Some(0),
                ..FaultPlan::none()
            },
        )
        .unwrap();

    let req = request(3, 1.8, &[0, 4]);
    let got = remote.execute(&req).unwrap();
    assert_eq!(got.results, local.execute(&req).unwrap().results);
    assert!(got.stats.retries >= 1);

    let status = workers[1].child.wait().expect("reap faulted worker");
    assert_eq!(status.code(), Some(FAULT_EXIT_CODE));
}

/// `SPQ_REMOTE_WORKERS` routes `SpqService::build(remote:N)` to external
/// worker processes, and the worker-count mismatch is a typed config
/// error.
#[test]
fn service_uses_external_workers_from_the_environment() {
    let (_workers, addrs) = spawn_workers(2);
    std::env::set_var("SPQ_REMOTE_WORKERS", addrs.join(","));
    let service = SpqService::build(executor(), dataset(), Backend::Remote { workers: 2 });
    let mismatch = SpqService::build(executor(), dataset(), Backend::Remote { workers: 3 });
    std::env::remove_var("SPQ_REMOTE_WORKERS");

    let service = service.unwrap();
    assert_eq!(service.backend(), Backend::Remote { workers: 2 });
    let local = QueryEngine::new(executor(), dataset());
    let req = request(3, 1.8, &[0, 4]);
    assert_eq!(
        service.execute(&req).unwrap().results,
        local.execute(&req).unwrap().results
    );

    let err = mismatch.unwrap_err();
    assert!(
        matches!(err, SpqError::InvalidConfig { .. }),
        "want InvalidConfig, got {err:?}"
    );
    assert!(err.to_string().contains("SPQ_REMOTE_WORKERS"));
}

/// The tentpole's acceptance path, across real process boundaries: a
/// killed `spq-worker` is restarted on the same address, the tick-driven
/// probe scheduler re-admits it after the hysteresis threshold, the
/// rebalancer re-provisions its shards (the restarted process reports an
/// empty shard status), and the canonical placement — worker 0 primary
/// for shard 0 — is restored, with every query byte-identical throughout.
/// The interim failover is warm: the frame-level provision counter proves
/// no `OP_PROVISION` round-trip happened until the rebalancer's.
#[test]
fn killed_and_restarted_worker_is_readmitted() {
    let (mut workers, addrs) = spawn_workers(3);
    let config = MembershipConfig {
        replication_factor: 2,
        probe_interval_ticks: 1,
        readmit_threshold: 2,
        max_moves_per_tick: 8,
    };
    let remote = RemoteEngine::connect_with(executor(), dataset(), &addrs, config).unwrap();
    let local = QueryEngine::new(executor(), dataset());
    let provisions_after_build = remote.provisions_sent();
    assert_eq!(provisions_after_build, 6); // 3 shards × replication 2

    let req = request(4, 1.8, &[0]);
    assert_eq!(
        remote.execute(&req).unwrap().results,
        local.execute(&req).unwrap().results
    );

    // Kill the real process behind worker 0.
    workers[0].child.kill().expect("kill worker 0");
    workers[0].child.wait().expect("reap worker 0");

    // The failover is warm: worker 1 already holds shard 0, so the
    // pointer flips and no provision payload crosses the wire.
    let got = remote.execute(&req).unwrap();
    assert_eq!(got.results, local.execute(&req).unwrap().results);
    assert!(got.stats.warm_failovers >= 1, "stats: {:?}", got.stats);
    assert_eq!(got.stats.cold_reprovisions, 0, "stats: {:?}", got.stats);
    assert_eq!(remote.provisions_sent(), provisions_after_build);
    assert_eq!(remote.excluded_workers(), 1);

    // Ticks while the process is down probe it and keep it excluded.
    let report = remote.tick();
    assert_eq!(report.probes, 1);
    assert_eq!(report.probe_successes, 0);
    assert!(report.readmitted.is_empty());
    assert_eq!(remote.excluded_workers(), 1);

    // Restart the worker on the same address and tick until the
    // membership layer settles: probe hysteresis (2 consecutive
    // successes), re-admission, re-provisioning, primary restoration.
    workers[0] = Worker::respawn_at(&addrs[0]);
    let mut readmitted = false;
    let mut settled = false;
    for _ in 0..16 {
        let report = remote.tick();
        readmitted |= report.readmitted.contains(&0);
        if report.quiescent() {
            settled = true;
            break;
        }
    }
    assert!(readmitted, "worker 0 was never re-admitted");
    assert!(settled, "membership never settled");
    assert_eq!(remote.readmissions(), 1);
    assert_eq!(remote.excluded_workers(), 0);
    remote.check_replication().unwrap();

    // The restarted process reported an empty shard status, so the
    // rebalancer had to ship its shards again — and the canonical layout
    // is back: worker 0 is the primary for shard 0 and serves queries.
    assert!(remote.provisions_sent() > provisions_after_build);
    let view = remote.membership();
    assert_eq!(view.states, vec![WorkerState::Live; 3]);
    assert_eq!(view.primaries[0], 0);
    let again = remote.execute(&req).unwrap();
    assert_eq!(again.results, local.execute(&req).unwrap().results);
    assert_eq!(again.stats.retries, 0);
}

/// A worker admitted at runtime takes load: the rebalancer migrates
/// replicas onto it over ticks, and when every original worker dies it
/// carries the whole dataset — across real process boundaries.
#[test]
fn admitted_worker_takes_over_after_total_loss_of_the_original_set() {
    let (mut workers, addrs) = spawn_workers(2);
    let config = MembershipConfig {
        replication_factor: 2,
        max_moves_per_tick: 8,
        ..MembershipConfig::default()
    };
    let remote = RemoteEngine::connect_with(executor(), dataset(), &addrs, config).unwrap();
    let local = QueryEngine::new(executor(), dataset());

    let joiner = Worker::spawn();
    let index = remote.admit(&joiner.addr).unwrap();
    assert_eq!(index, 2);
    assert_eq!(remote.num_workers(), 3);
    // Double admission of the same address is a config error.
    assert!(matches!(
        remote.admit(&joiner.addr),
        Err(SpqError::InvalidConfig { .. })
    ));

    // The join is empty until the rebalancer migrates shards onto it.
    for _ in 0..8 {
        if remote.tick().quiescent() {
            break;
        }
    }
    remote.check_replication().unwrap();
    let view = remote.membership();
    assert!(
        view.replicas.iter().any(|set| set.contains(&2)),
        "rebalancer never placed a shard on the admitted worker: {view:?}"
    );

    // Kill both original processes: the admitted worker must carry every
    // shard (warm where it holds a copy, cold re-provision otherwise).
    for worker in workers.iter_mut() {
        worker.child.kill().expect("kill original worker");
        worker.child.wait().expect("reap original worker");
    }
    let req = request(4, 1.8, &[0]);
    let got = remote.execute(&req).unwrap();
    assert_eq!(got.results, local.execute(&req).unwrap().results);
    assert!(got.stats.retries >= 1, "stats: {:?}", got.stats);
    assert_eq!(remote.excluded_workers(), 2);
    assert!(remote.membership().primaries.iter().all(|&p| p == 2));
}
