//! Cross-process byte-identity: the remote backend against real
//! `spq-worker` child processes.
//!
//! Everything else in the test suite exercises the remote transport
//! against in-process workers. These tests close the last gap the paper's
//! distributed setting cares about: the manager and the workers live in
//! **different processes**, connected only by the framed TCP protocol —
//! provisioning, shard queries, fault installation and worker death all
//! cross a real process boundary. The assertions are the same as
//! everywhere else: results byte-identical to the single-store local
//! engine, recovery visible as retries.

use spq::mapreduce::remote::{FaultPlan, FAULT_EXIT_CODE};
use spq::prelude::*;
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};

fn feature(id: u64, x: f64, y: f64, kw: &[u32]) -> FeatureObject {
    FeatureObject::new(
        id,
        Point::new(x, y),
        KeywordSet::from_ids(kw.iter().copied()),
    )
}

fn dataset() -> SharedDataset {
    SharedDataset::new(
        vec![
            DataObject::new(1, Point::new(4.6, 4.8)),
            DataObject::new(2, Point::new(7.5, 1.7)),
            DataObject::new(3, Point::new(8.9, 5.2)),
            DataObject::new(4, Point::new(1.8, 1.8)),
            DataObject::new(5, Point::new(1.9, 9.0)),
            DataObject::new(6, Point::new(5.5, 5.5)),
        ],
        vec![
            feature(1, 2.8, 1.2, &[0, 1]),
            feature(2, 5.0, 3.8, &[2, 3]),
            feature(3, 8.7, 1.9, &[4, 5]),
            feature(4, 3.8, 5.5, &[0]),
            feature(5, 5.2, 5.1, &[6, 7]),
            feature(6, 7.4, 5.4, &[8, 9]),
            feature(7, 3.0, 8.1, &[0, 10]),
            feature(8, 9.5, 7.0, &[11]),
        ],
    )
}

fn executor() -> SpqExecutor {
    SpqExecutor::new(Rect::from_coords(0.0, 0.0, 10.0, 10.0)).grid_size(4)
}

fn request(k: usize, r: f64, kw: &[u32]) -> QueryRequest {
    QueryRequest::new(SpqQuery::new(
        k,
        r,
        KeywordSet::from_ids(kw.iter().copied()),
    ))
}

/// A spawned `spq-worker` child, killed on drop so a panicking test
/// never leaks worker processes.
struct Worker {
    child: Child,
    addr: String,
}

impl Worker {
    fn spawn() -> Self {
        let mut child = Command::new(env!("CARGO_BIN_EXE_spq-worker"))
            .args(["--listen", "127.0.0.1:0"])
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn spq-worker");
        let stdout = child.stdout.take().expect("worker stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read worker banner");
        let addr = line
            .trim()
            .strip_prefix("spq-worker listening on ")
            .unwrap_or_else(|| panic!("unexpected worker banner: {line:?}"))
            .to_owned();
        Self { child, addr }
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_workers(n: usize) -> (Vec<Worker>, Vec<String>) {
    let workers: Vec<Worker> = (0..n).map(|_| Worker::spawn()).collect();
    let addrs = workers.iter().map(|w| w.addr.clone()).collect();
    (workers, addrs)
}

/// Every query against three real worker processes returns the same
/// bytes as the single-store local engine, with zero retries when nobody
/// dies.
#[test]
fn cross_process_results_are_byte_identical() {
    let (_workers, addrs) = spawn_workers(3);
    let remote = RemoteEngine::connect(executor(), dataset(), &addrs).unwrap();
    assert!(!remote.is_self_hosted());
    assert_eq!(remote.worker_addrs(), addrs);

    let local = QueryEngine::new(executor(), dataset());
    for req in [
        request(1, 1.0, &[0]),
        request(3, 1.8, &[0, 4]),
        request(6, 3.0, &[0, 2, 6, 11]),
        request(2, 1.0, &[99]), // unmatched keywords: empty on both sides
    ] {
        let expect = local.execute(&req).unwrap();
        let got = remote.execute(&req).unwrap();
        assert_eq!(got.results, expect.results);
        assert_eq!(got.stats.retries, 0);
    }
    assert_eq!(remote.retries(), 0);
    assert!(remote.traffic_bytes() > 0);
}

/// Killing a worker *process* mid-serving moves its shard to a survivor:
/// results stay byte-identical and the recovery is visible as retries and
/// an exclusion.
#[test]
fn killed_worker_process_fails_over_to_survivors() {
    let (mut workers, addrs) = spawn_workers(3);
    let remote = RemoteEngine::connect(executor(), dataset(), &addrs).unwrap();
    let local = QueryEngine::new(executor(), dataset());

    let req = request(4, 1.8, &[0]);
    assert_eq!(
        remote.execute(&req).unwrap().results,
        local.execute(&req).unwrap().results
    );

    workers[0].child.kill().expect("kill worker 0");
    workers[0].child.wait().expect("reap worker 0");

    let got = remote.execute(&req).unwrap();
    assert_eq!(got.results, local.execute(&req).unwrap().results);
    assert!(got.stats.retries >= 1, "stats: {:?}", got.stats);
    assert_eq!(remote.excluded_workers(), 1);

    // Steady state after the failover: no fresh retries.
    let again = remote.execute(&req).unwrap();
    assert_eq!(again.results, local.execute(&req).unwrap().results);
    assert_eq!(again.stats.retries, 0);
}

/// A fault plan installed over the wire kills the real process (exit code
/// [`FAULT_EXIT_CODE`]), and the engine recovers exactly as it does for
/// an externally killed worker.
#[test]
fn injected_kill_fault_terminates_the_process() {
    let (mut workers, addrs) = spawn_workers(2);
    let remote = RemoteEngine::connect(executor(), dataset(), &addrs).unwrap();
    let local = QueryEngine::new(executor(), dataset());

    remote
        .inject_fault(
            1,
            &FaultPlan {
                kill_after_responses: Some(0),
                ..FaultPlan::none()
            },
        )
        .unwrap();

    let req = request(3, 1.8, &[0, 4]);
    let got = remote.execute(&req).unwrap();
    assert_eq!(got.results, local.execute(&req).unwrap().results);
    assert!(got.stats.retries >= 1);

    let status = workers[1].child.wait().expect("reap faulted worker");
    assert_eq!(status.code(), Some(FAULT_EXIT_CODE));
}

/// `SPQ_REMOTE_WORKERS` routes `SpqService::build(remote:N)` to external
/// worker processes, and the worker-count mismatch is a typed config
/// error.
#[test]
fn service_uses_external_workers_from_the_environment() {
    let (_workers, addrs) = spawn_workers(2);
    std::env::set_var("SPQ_REMOTE_WORKERS", addrs.join(","));
    let service = SpqService::build(executor(), dataset(), Backend::Remote { workers: 2 });
    let mismatch = SpqService::build(executor(), dataset(), Backend::Remote { workers: 3 });
    std::env::remove_var("SPQ_REMOTE_WORKERS");

    let service = service.unwrap();
    assert_eq!(service.backend(), Backend::Remote { workers: 2 });
    let local = QueryEngine::new(executor(), dataset());
    let req = request(3, 1.8, &[0, 4]);
    assert_eq!(
        service.execute(&req).unwrap().results,
        local.execute(&req).unwrap().results
    );

    let err = mismatch.unwrap_err();
    assert!(
        matches!(err, SpqError::InvalidConfig { .. }),
        "want InvalidConfig, got {err:?}"
    );
    assert!(err.to_string().contains("SPQ_REMOTE_WORKERS"));
}
