//! End-to-end correctness: every algorithm × every generator × several
//! queries, validated against the centralized oracles.

use spq::core::{centralized, validate};
use spq::data::{DatasetGenerator, KeywordSelection, QueryGenerator};
use spq::prelude::*;

fn generators() -> Vec<Box<dyn DatasetGenerator>> {
    vec![
        Box::new(UniformGen),
        Box::new(ClusteredGen),
        Box::new(FlickrLike),
        Box::new(TwitterLike),
    ]
}

#[test]
fn all_algorithms_match_brute_force_on_all_generators() {
    for gen in generators() {
        let dataset = gen.generate(4000, 11);
        let mut qgen = QueryGenerator::new(dataset.vocab_size, KeywordSelection::Frequent, 5);
        for (k, radius, kw) in [(1, 0.05, 1), (10, 0.02, 3), (25, 0.1, 5)] {
            let query = qgen.generate(k, radius, kw);
            let baseline = centralized::brute_force(&dataset.data, &dataset.features, &query);
            for algo in [Algorithm::PSpq, Algorithm::ESpqLen, Algorithm::ESpqSco] {
                let result = SpqExecutor::new(dataset.bounds)
                    .algorithm(algo)
                    .grid_size(8)
                    .cluster(ClusterConfig::with_workers(4))
                    .run(
                        std::slice::from_ref(&dataset.data),
                        std::slice::from_ref(&dataset.features),
                        &query,
                    )
                    .unwrap();
                validate::check_result(
                    &result.top_k,
                    &baseline,
                    &dataset.data,
                    &dataset.features,
                    &query,
                )
                .unwrap_or_else(|e| panic!("{} on {} ({query}): {e}", algo, gen.name()));
            }
        }
    }
}

#[test]
fn grid_index_oracle_agrees_with_brute_force() {
    for gen in generators() {
        let dataset = gen.generate(3000, 13);
        let mut qgen = QueryGenerator::new(dataset.vocab_size, KeywordSelection::Frequent, 3);
        for _ in 0..3 {
            let query = qgen.generate(10, 0.04, 2);
            let a = centralized::brute_force(&dataset.data, &dataset.features, &query);
            let b = centralized::grid_index_topk(
                dataset.bounds,
                &dataset.data,
                &dataset.features,
                &query,
            );
            assert_eq!(a, b, "{}", gen.name());
        }
    }
}

#[test]
fn results_invariant_under_grid_worker_and_split_choices() {
    let dataset = UniformGen.generate(3000, 17);
    let mut qgen = QueryGenerator::new(dataset.vocab_size, KeywordSelection::Frequent, 7);
    let query = qgen.generate(10, 0.03, 2);
    let baseline = centralized::brute_force(&dataset.data, &dataset.features, &query);

    for algo in [Algorithm::PSpq, Algorithm::ESpqLen, Algorithm::ESpqSco] {
        for grid in [1u32, 3, 10, 40] {
            for workers in [1usize, 8] {
                for splits in [1usize, 7] {
                    let split_data: Vec<Vec<DataObject>> = (0..splits)
                        .map(|s| {
                            dataset
                                .data
                                .iter()
                                .skip(s)
                                .step_by(splits)
                                .copied()
                                .collect()
                        })
                        .collect();
                    let split_features: Vec<Vec<FeatureObject>> = (0..splits)
                        .map(|s| {
                            dataset
                                .features
                                .iter()
                                .skip(s)
                                .step_by(splits)
                                .cloned()
                                .collect()
                        })
                        .collect();
                    let result = SpqExecutor::new(dataset.bounds)
                        .algorithm(algo)
                        .grid_size(grid)
                        .cluster(ClusterConfig::with_workers(workers))
                        .run(&split_data, &split_features, &query)
                        .unwrap();
                    validate::check_result(
                        &result.top_k,
                        &baseline,
                        &dataset.data,
                        &dataset.features,
                        &query,
                    )
                    .unwrap_or_else(|e| {
                        panic!("{algo} grid={grid} workers={workers} splits={splits}: {e}")
                    });
                }
            }
        }
    }
}

#[test]
fn extension_similarities_are_correct_end_to_end() {
    use spq::text::SetSimilarity;
    let dataset = FlickrLike.generate(2000, 23);
    let mut qgen = QueryGenerator::new(dataset.vocab_size, KeywordSelection::Frequent, 9);
    let base = qgen.generate(10, 0.05, 3);
    for sim in [SetSimilarity::Dice, SetSimilarity::Overlap] {
        let query = SpqQuery::with_similarity(base.k, base.radius, base.keywords.clone(), sim);
        let baseline = centralized::brute_force(&dataset.data, &dataset.features, &query);
        // eSPQlen relies on the length bound, which is trivial (1) for
        // Overlap — it must still be *correct*, only without savings.
        for algo in [Algorithm::PSpq, Algorithm::ESpqLen, Algorithm::ESpqSco] {
            let result = SpqExecutor::new(dataset.bounds)
                .algorithm(algo)
                .grid_size(6)
                .run(
                    std::slice::from_ref(&dataset.data),
                    std::slice::from_ref(&dataset.features),
                    &query,
                )
                .unwrap();
            validate::check_result(
                &result.top_k,
                &baseline,
                &dataset.data,
                &dataset.features,
                &query,
            )
            .unwrap_or_else(|e| panic!("{algo} with {sim:?}: {e}"));
        }
    }
}

#[test]
fn early_termination_examines_fewer_features() {
    let dataset = UniformGen.generate(20_000, 31);
    let mut qgen = QueryGenerator::new(dataset.vocab_size, KeywordSelection::Random, 2);
    let query = qgen.generate(10, 0.02, 3);
    let mut examined = std::collections::HashMap::new();
    for algo in [Algorithm::PSpq, Algorithm::ESpqLen, Algorithm::ESpqSco] {
        let result = SpqExecutor::new(dataset.bounds)
            .algorithm(algo)
            .grid_size(10)
            .run(
                std::slice::from_ref(&dataset.data),
                std::slice::from_ref(&dataset.features),
                &query,
            )
            .unwrap();
        examined.insert(
            algo.name(),
            result.stats.counters.get("reduce.features_examined"),
        );
    }
    // The paper's whole point: eSPQsco examines a handful, pSPQ everything.
    assert!(examined["eSPQsco"] < examined["pSPQ"] / 10);
    assert!(examined["eSPQlen"] <= examined["pSPQ"]);
}

#[test]
fn disabling_keyword_pruning_changes_cost_not_results() {
    let dataset = FlickrLike.generate(3000, 41);
    let mut qgen = QueryGenerator::new(
        dataset.vocab_size,
        KeywordSelection::Weighted { exponent: 1.0 },
        13,
    );
    let query = qgen.generate(10, 0.03, 3);
    for algo in [Algorithm::PSpq, Algorithm::ESpqLen, Algorithm::ESpqSco] {
        let with = SpqExecutor::new(dataset.bounds)
            .algorithm(algo)
            .grid_size(8)
            .run(
                std::slice::from_ref(&dataset.data),
                std::slice::from_ref(&dataset.features),
                &query,
            )
            .unwrap();
        let without = SpqExecutor::new(dataset.bounds)
            .algorithm(algo)
            .grid_size(8)
            .keyword_pruning(false)
            .run(
                std::slice::from_ref(&dataset.data),
                std::slice::from_ref(&dataset.features),
                &query,
            )
            .unwrap();
        // Identical answers…
        assert_eq!(with.top_k, without.top_k, "{algo}");
        // …but the unpruned job shuffles every feature object.
        assert!(
            without.stats.shuffle_records > with.stats.shuffle_records,
            "{algo}: {} !> {}",
            without.stats.shuffle_records,
            with.stats.shuffle_records
        );
        assert_eq!(without.stats.counters.get("map.features_pruned"), 0);
    }
}

#[test]
fn adaptive_quadtree_partition_is_correct_and_balances_skew() {
    use spq::prelude::LoadBalancing;
    let dataset = ClusteredGen.generate(30_000, 47);
    let mut qgen = QueryGenerator::new(dataset.vocab_size, KeywordSelection::Random, 17);
    let query = qgen.generate(10, 0.01, 3);
    let baseline = centralized::brute_force(&dataset.data, &dataset.features, &query);

    let mut skews = std::collections::HashMap::new();
    for (name, balancing) in [
        ("uniform", LoadBalancing::UniformGrid),
        (
            "adaptive",
            LoadBalancing::AdaptiveQuadtree { sample_size: 4096 },
        ),
    ] {
        for algo in [Algorithm::PSpq, Algorithm::ESpqLen, Algorithm::ESpqSco] {
            let result = SpqExecutor::new(dataset.bounds)
                .algorithm(algo)
                .grid_size(15)
                .load_balancing(balancing)
                .run(
                    std::slice::from_ref(&dataset.data),
                    std::slice::from_ref(&dataset.features),
                    &query,
                )
                .unwrap();
            validate::check_result(
                &result.top_k,
                &baseline,
                &dataset.data,
                &dataset.features,
                &query,
            )
            .unwrap_or_else(|e| panic!("{algo} under {name}: {e}"));
            if algo == Algorithm::PSpq {
                skews.insert(name, result.stats.reduce_skew());
            }
        }
    }
    // The quadtree must spread the clusters over far more reducers: the
    // busiest-to-mean ratio drops by at least 2x on this workload
    // (observed: ~11.7 -> ~4.7).
    assert!(
        skews["adaptive"] * 2.0 < skews["uniform"],
        "adaptive skew {} vs uniform skew {}",
        skews["adaptive"],
        skews["uniform"]
    );
}

#[test]
fn tsv_persisted_dataset_answers_identically() {
    // Save -> load -> query must equal querying the in-memory dataset.
    let dataset = UniformGen.generate(2000, 53);
    let path = std::env::temp_dir().join(format!("spq-e2e-{}.tsv", std::process::id()));
    spq::data::tsv::save(&dataset, &path).unwrap();
    let loaded = spq::data::tsv::load(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let mut qgen = QueryGenerator::new(dataset.vocab_size, KeywordSelection::Frequent, 3);
    let query = qgen.generate(10, 0.05, 2);
    let run = |data: &Vec<DataObject>, features: &Vec<FeatureObject>| {
        SpqExecutor::new(dataset.bounds)
            .grid_size(8)
            .run(
                std::slice::from_ref(data),
                std::slice::from_ref(features),
                &query,
            )
            .unwrap()
            .top_k
    };
    assert_eq!(
        run(&dataset.data, &dataset.features),
        run(&loaded.data, &loaded.features)
    );
}
