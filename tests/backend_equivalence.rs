//! Backend equivalence: the sharded scatter/gather engine and the remote
//! TCP engine must be byte-identical to the single-store local engine.
//!
//! The sharded backend slices the data objects into per-shard stores,
//! evaluates each shard with its own build-once engine, ships serialized
//! 12-byte wire records across the shard boundary and merges. Because no
//! data object lives in two shards and every shard sees the complete
//! feature set, each shard's τ values are exact — so for **any** world,
//! shard count, algorithm and partitioning, the merged results (objects,
//! scores *and* order) must equal the single-store engine's, and the
//! typed facade must return the same bytes as the plain shim API. The
//! remote backend (`remote:N`) places the same shard layout on worker
//! processes behind real localhost sockets — provisioning, queries and
//! gather records all cross the frame codec — and must answer the same
//! bytes again. The result-invariant request options (worker budgets,
//! pruning override) must also change nothing.

use proptest::prelude::*;
use spq::core::centralized::brute_force;
use spq::core::service::DEFAULT_SHARDS;
use spq::prelude::*;
use spq::text::Term;

/// Strategy: a small spatio-textual world plus query draws (keywords,
/// radius class, k). Ids are sequential, hence unique — the sharded wire
/// format's documented requirement.
#[allow(clippy::type_complexity)]
fn world() -> impl Strategy<
    Value = (
        Vec<DataObject>,
        Vec<FeatureObject>,
        Vec<(Vec<u32>, u8, u8)>, // queries: (keywords, radius class, k)
        u8,                      // grid cells per axis
    ),
> {
    let coord = 0.0f64..1.0;
    let data = proptest::collection::vec((coord.clone(), coord.clone()), 0..25);
    let features = proptest::collection::vec(
        (
            coord.clone(),
            coord,
            proptest::collection::vec(0u32..10, 1..5),
        ),
        0..35,
    );
    let queries = proptest::collection::vec(
        (proptest::collection::vec(0u32..10, 1..4), 0u8..3, 1u8..5),
        3,
    );
    (data, features, queries, 1u8..8).prop_map(|(d, f, qs, g)| {
        let data: Vec<DataObject> = d
            .into_iter()
            .enumerate()
            .map(|(i, (x, y))| DataObject::new(i as u64, Point::new(x, y)))
            .collect();
        let features: Vec<FeatureObject> = f
            .into_iter()
            .enumerate()
            .map(|(i, (x, y, w))| {
                FeatureObject::new(
                    i as u64,
                    Point::new(x, y),
                    KeywordSet::new(w.into_iter().map(Term).collect()),
                )
            })
            .collect();
        (data, features, qs, g)
    })
}

const RADIUS_CLASSES: [f64; 3] = [0.05, 0.15, 0.4];
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const REMOTE_WORKER_COUNTS: [usize; 3] = [1, 2, 4];
const ALGORITHMS: [Algorithm; 3] = [Algorithm::PSpq, Algorithm::ESpqLen, Algorithm::ESpqSco];
const BALANCERS: [LoadBalancing; 2] = [
    LoadBalancing::UniformGrid,
    LoadBalancing::AdaptiveQuadtree { sample_size: 16 },
];

fn build_requests(specs: &[(Vec<u32>, u8, u8)]) -> Vec<QueryRequest> {
    specs
        .iter()
        .map(|(kw, r, k)| {
            QueryRequest::new(SpqQuery::new(
                *k as usize,
                RADIUS_CLASSES[*r as usize % RADIUS_CLASSES.len()],
                KeywordSet::from_ids(kw.iter().copied()),
            ))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `Sharded{1,2,4,8}` answers byte-identically — results, τ scores
    /// and canonical order — to the local single-store engine, for every
    /// algorithm × partitioning, through every facade entry point.
    #[test]
    fn prop_sharded_matches_local_backend(
        (data, features, query_specs, g) in world()
    ) {
        let requests = build_requests(&query_specs);
        let dataset = SharedDataset::new(data, features);
        for algo in ALGORITHMS {
            for balancing in BALANCERS {
                let exec = SpqExecutor::new(Rect::unit())
                    .algorithm(algo)
                    .grid_size(g as u32)
                    .load_balancing(balancing)
                    .cluster(ClusterConfig::with_workers(2));
                let local = SpqService::build(exec.clone(), dataset.clone(), Backend::Local)
                    .unwrap();
                let reference: Vec<QueryResponse> = requests
                    .iter()
                    .map(|r| local.execute(r).unwrap())
                    .collect();
                // The facade's local backend returns the shim API's bytes,
                // and — because every reducer now produces the canonical
                // top-k of its cell — those bytes equal the centralized
                // brute force even under k-boundary score ties.
                let engine = QueryEngine::new(exec.clone(), dataset.clone());
                for (request, response) in requests.iter().zip(&reference) {
                    // Deliberate use of the deprecated shim: this is the
                    // parity coverage keeping it byte-identical to the
                    // typed path for as long as it lives.
                    #[allow(deprecated)]
                    let shim = engine.query(&request.query).unwrap().top_k;
                    prop_assert_eq!(
                        &response.results,
                        &shim,
                        "{} balancing={:?}: facade diverged from shim",
                        algo, balancing
                    );
                    let oracle =
                        brute_force(dataset.data(), dataset.features(), &request.query);
                    prop_assert_eq!(
                        &response.results, &oracle,
                        "{} balancing={:?}: diverged from the canonical brute force",
                        algo, balancing
                    );
                }
                for shards in SHARD_COUNTS {
                    let sharded = SpqService::build(
                        exec.clone(),
                        dataset.clone(),
                        Backend::Sharded { shards },
                    )
                    .unwrap();
                    for (request, expect) in requests.iter().zip(&reference) {
                        let got = sharded.execute(request).unwrap();
                        // Results, scores and order — byte identity.
                        prop_assert_eq!(
                            &got.results, &expect.results,
                            "{} balancing={:?} shards={}: execute diverged",
                            algo, balancing, shards
                        );
                        prop_assert!(got.stats.shards_touched <= shards);
                    }
                    // Batch and serve reproduce execute, in order.
                    let batch = sharded.execute_batch(&requests).unwrap();
                    let served = sharded.serve_requests(&requests, 4).unwrap();
                    for i in 0..requests.len() {
                        prop_assert_eq!(&batch[i].results, &reference[i].results);
                        prop_assert_eq!(&served[i].results, &reference[i].results);
                    }
                }
                // The remote backend crosses real sockets (in-process
                // workers on ephemeral localhost ports) and must still
                // return the same bytes, through every entry point.
                for workers in REMOTE_WORKER_COUNTS {
                    let remote = SpqService::build(
                        exec.clone(),
                        dataset.clone(),
                        Backend::Remote { workers },
                    )
                    .unwrap();
                    for (request, expect) in requests.iter().zip(&reference) {
                        let got = remote.execute(request).unwrap();
                        prop_assert_eq!(
                            &got.results, &expect.results,
                            "{} balancing={:?} remote workers={}: execute diverged",
                            algo, balancing, workers
                        );
                        prop_assert!(got.stats.shards_touched <= workers);
                        prop_assert_eq!(got.stats.retries, 0);
                    }
                    let batch = remote.execute_batch(&requests).unwrap();
                    let served = remote.serve_requests(&requests, 4).unwrap();
                    for i in 0..requests.len() {
                        prop_assert_eq!(&batch[i].results, &reference[i].results);
                        prop_assert_eq!(&served[i].results, &reference[i].results);
                    }
                }
            }
        }
    }

    /// The result-invariant options — worker budget, pruning override,
    /// tracing — change statistics, never bytes, on both backends.
    #[test]
    fn prop_options_never_change_results(
        (data, features, query_specs, g) in world()
    ) {
        let requests = build_requests(&query_specs);
        let dataset = SharedDataset::new(data, features);
        let exec = SpqExecutor::new(Rect::unit()).grid_size(g as u32);
        for backend in [
            Backend::Local,
            Backend::Sharded { shards: 3 },
            Backend::Remote { workers: 2 },
        ] {
            let service = SpqService::build(exec.clone(), dataset.clone(), backend).unwrap();
            for request in &requests {
                let plain = service.execute(request).unwrap();
                for decorated in [
                    request.clone().with_workers(2),
                    request.clone().with_keyword_pruning(false),
                    request.clone().with_trace(),
                    request.clone().with_workers(5).with_trace(),
                ] {
                    let got = service.execute(&decorated).unwrap();
                    prop_assert_eq!(
                        &got.results, &plain.results,
                        "{}: options changed result bytes", backend
                    );
                }
                // Algorithm override steers to that algorithm's (equal
                // by correctness, not byte-compared) result path; here we
                // just confirm it executes and reports the override.
                let overridden = service
                    .execute(&request.clone().with_algorithm(Algorithm::PSpq))
                    .unwrap();
                prop_assert_eq!(overridden.stats.algorithm, Algorithm::PSpq);
            }
        }
    }
}

#[test]
fn facade_surfaces_typed_errors() {
    let dataset = SharedDataset::new(
        vec![DataObject::new(1, Point::new(0.5, 0.5))],
        vec![FeatureObject::new(
            1,
            Point::new(0.5, 0.6),
            KeywordSet::from_ids([0]),
        )],
    );
    let exec = SpqExecutor::new(Rect::unit()).grid_size(4);
    for backend in [
        Backend::Local,
        Backend::Sharded { shards: 2 },
        Backend::Remote { workers: 2 },
    ] {
        let service = SpqService::build(exec.clone(), dataset.clone(), backend).unwrap();
        let mut bad = QueryRequest::new(SpqQuery::new(1, 0.2, KeywordSet::from_ids([0])));
        bad.query.radius = f64::NAN;
        assert!(matches!(
            service.execute(&bad),
            Err(SpqError::InvalidQuery { .. })
        ));
        let zero_budget =
            QueryRequest::new(SpqQuery::new(1, 0.2, KeywordSet::from_ids([0]))).with_workers(0);
        assert!(service.execute(&zero_budget).is_err());
    }
    // Zero shards / zero workers are build-time config errors.
    assert!(matches!(
        SpqService::build(
            exec.clone(),
            dataset.clone(),
            Backend::Sharded { shards: 0 }
        ),
        Err(SpqError::InvalidConfig { .. })
    ));
    assert!(matches!(
        SpqService::build(exec, dataset, Backend::Remote { workers: 0 }),
        Err(SpqError::InvalidConfig { .. })
    ));
}

#[test]
fn stats_reflect_backend_shape() {
    let dataset = SharedDataset::new(
        (0..40)
            .map(|i| DataObject::new(i, Point::new(i as f64 / 40.0, 0.5)))
            .collect(),
        (0..40)
            .map(|i| {
                FeatureObject::new(
                    i,
                    Point::new(i as f64 / 40.0, 0.52),
                    KeywordSet::from_ids([(i % 5) as u32]),
                )
            })
            .collect(),
    );
    let exec = SpqExecutor::new(Rect::unit()).grid_size(4);
    let request = QueryRequest::new(SpqQuery::new(5, 0.1, KeywordSet::from_ids([0, 1])));

    let local = SpqService::build(exec.clone(), dataset.clone(), Backend::Local).unwrap();
    let response = local.execute(&request).unwrap();
    assert_eq!(response.stats.shards_touched, 1);
    assert_eq!(response.stats.keyword_terms_probed, 2);
    assert_eq!(response.stats.keyword_terms_matched, 2);
    assert!(
        !response.stats.plan_cache_hit,
        "first query builds the plan"
    );
    assert!(local.execute(&request).unwrap().stats.plan_cache_hit);
    assert!(response.stats.shuffle_records > 0);
    assert!(response.stats.shuffle_bytes >= response.stats.shuffle_records);

    let sharded = SpqService::build(
        exec,
        dataset.clone(),
        Backend::Sharded {
            shards: DEFAULT_SHARDS,
        },
    )
    .unwrap();
    let response = sharded.execute(&request).unwrap();
    assert_eq!(response.stats.shards_touched, DEFAULT_SHARDS);
    // The gather ships 12-byte wire records.
    assert_eq!(
        response.stats.shuffle_bytes,
        response.stats.shuffle_records * 12
    );
    assert!(sharded.execute(&request).unwrap().stats.plan_cache_hit);
    // Tracing attaches one JobStats per touched shard.
    let traced = sharded.execute(&request.clone().with_trace()).unwrap();
    assert_eq!(traced.trace.unwrap().len(), DEFAULT_SHARDS);

    // The remote backend reports the same gather shape — 12-byte wire
    // records, one JobStats per touched worker — plus a zero retry count
    // on a healthy fleet.
    let remote = SpqService::build(
        SpqExecutor::new(Rect::unit()).grid_size(4),
        dataset,
        Backend::Remote { workers: 3 },
    )
    .unwrap();
    assert_eq!(remote.backend(), Backend::Remote { workers: 3 });
    let response = remote.execute(&request).unwrap();
    assert_eq!(response.stats.shards_touched, 3);
    assert_eq!(
        response.stats.shuffle_bytes,
        response.stats.shuffle_records * 12
    );
    assert_eq!(response.stats.retries, 0);
    assert!(remote.execute(&request).unwrap().stats.plan_cache_hit);
    let traced = remote.execute(&request.with_trace()).unwrap();
    assert_eq!(traced.trace.unwrap().len(), 3);
}
