//! Degenerate and adversarial inputs: the distributed pipeline must
//! behave like the oracle on all of them.

use spq::core::{centralized, validate};
use spq::prelude::*;
use spq::text::Score;

const ALGOS: [Algorithm; 3] = [Algorithm::PSpq, Algorithm::ESpqLen, Algorithm::ESpqSco];

fn run(
    algo: Algorithm,
    grid: u32,
    data: &[DataObject],
    features: &[FeatureObject],
    query: &SpqQuery,
) -> Vec<RankedObject> {
    SpqExecutor::new(Rect::unit())
        .algorithm(algo)
        .grid_size(grid)
        .run(&[data.to_vec()], &[features.to_vec()], query)
        .unwrap()
        .top_k
}

#[test]
fn empty_data_set() {
    let features = vec![FeatureObject::new(
        1,
        Point::new(0.5, 0.5),
        KeywordSet::from_ids([0]),
    )];
    let q = SpqQuery::new(3, 0.2, KeywordSet::from_ids([0]));
    for algo in ALGOS {
        assert!(run(algo, 4, &[], &features, &q).is_empty(), "{algo}");
    }
}

#[test]
fn empty_feature_set() {
    let data = vec![DataObject::new(1, Point::new(0.5, 0.5))];
    let q = SpqQuery::new(3, 0.2, KeywordSet::from_ids([0]));
    for algo in ALGOS {
        assert!(run(algo, 4, &data, &[], &q).is_empty(), "{algo}");
    }
}

#[test]
fn no_feature_matches_keywords() {
    let data = vec![DataObject::new(1, Point::new(0.5, 0.5))];
    let features = vec![FeatureObject::new(
        1,
        Point::new(0.5, 0.51),
        KeywordSet::from_ids([7]),
    )];
    let q = SpqQuery::new(1, 0.2, KeywordSet::from_ids([0]));
    for algo in ALGOS {
        assert!(run(algo, 4, &data, &features, &q).is_empty(), "{algo}");
    }
}

#[test]
fn k_larger_than_any_possible_result() {
    let data = vec![
        DataObject::new(1, Point::new(0.2, 0.2)),
        DataObject::new(2, Point::new(0.8, 0.8)),
    ];
    let features = vec![FeatureObject::new(
        1,
        Point::new(0.2, 0.21),
        KeywordSet::from_ids([0]),
    )];
    let q = SpqQuery::new(100, 0.05, KeywordSet::from_ids([0]));
    for algo in ALGOS {
        let got = run(algo, 4, &data, &features, &q);
        assert_eq!(got.len(), 1, "{algo}");
        assert_eq!(got[0].object, 1, "{algo}");
    }
}

#[test]
fn zero_radius_requires_exact_colocation() {
    let data = vec![
        DataObject::new(1, Point::new(0.25, 0.25)),
        DataObject::new(2, Point::new(0.75, 0.75)),
    ];
    let features = vec![
        FeatureObject::new(1, Point::new(0.25, 0.25), KeywordSet::from_ids([0])),
        FeatureObject::new(2, Point::new(0.75, 0.7501), KeywordSet::from_ids([0])),
    ];
    let q = SpqQuery::new(5, 0.0, KeywordSet::from_ids([0]));
    for algo in ALGOS {
        let got = run(algo, 4, &data, &features, &q);
        assert_eq!(got.len(), 1, "{algo}");
        assert_eq!(got[0].object, 1, "{algo}");
        assert_eq!(got[0].score, Score::ONE, "{algo}");
    }
}

#[test]
fn single_cell_grid_degenerates_to_centralized() {
    let dataset = UniformGen.generate(600, 3);
    let q = SpqQuery::new(10, 0.1, KeywordSet::from_ids([1, 2]));
    let baseline = centralized::brute_force(&dataset.data, &dataset.features, &q);
    for algo in ALGOS {
        let got = run(algo, 1, &dataset.data, &dataset.features, &q);
        validate::check_result(&got, &baseline, &dataset.data, &dataset.features, &q)
            .unwrap_or_else(|e| panic!("{algo}: {e}"));
    }
}

#[test]
fn radius_spanning_many_cells() {
    // r = 0.3 over a 10x10 grid (cell 0.1): features duplicate across up
    // to 7x7 windows — correctness must not depend on r <= cell size.
    let dataset = UniformGen.generate(400, 5);
    let q = SpqQuery::new(5, 0.3, KeywordSet::from_ids([1]));
    let baseline = centralized::brute_force(&dataset.data, &dataset.features, &q);
    for algo in ALGOS {
        let got = run(algo, 10, &dataset.data, &dataset.features, &q);
        validate::check_result(&got, &baseline, &dataset.data, &dataset.features, &q)
            .unwrap_or_else(|e| panic!("{algo}: {e}"));
    }
}

#[test]
fn objects_exactly_on_cell_boundaries() {
    // Data objects and features placed exactly on grid lines of a 4x4
    // grid over the unit square (lines at multiples of 0.25).
    let data = vec![
        DataObject::new(1, Point::new(0.25, 0.25)),
        DataObject::new(2, Point::new(0.5, 0.5)),
        DataObject::new(3, Point::new(1.0, 1.0)),
        DataObject::new(4, Point::new(0.0, 0.0)),
    ];
    let features = vec![
        FeatureObject::new(1, Point::new(0.25, 0.25), KeywordSet::from_ids([0])),
        FeatureObject::new(2, Point::new(0.5, 0.45), KeywordSet::from_ids([0, 1])),
        FeatureObject::new(3, Point::new(1.0, 0.95), KeywordSet::from_ids([0, 1, 2])),
    ];
    let q = SpqQuery::new(4, 0.08, KeywordSet::from_ids([0]));
    let baseline = centralized::brute_force(&data, &features, &q);
    assert_eq!(baseline.len(), 3);
    for algo in ALGOS {
        let got = run(algo, 4, &data, &features, &q);
        validate::check_result(&got, &baseline, &data, &features, &q)
            .unwrap_or_else(|e| panic!("{algo}: {e}"));
    }
}

#[test]
fn coincident_objects_and_duplicate_locations() {
    // Many objects stacked on one point, and several features at another.
    let data: Vec<DataObject> = (0..20)
        .map(|i| DataObject::new(i, Point::new(0.3, 0.3)))
        .collect();
    let features: Vec<FeatureObject> = (0..5)
        .map(|i| {
            FeatureObject::new(
                i,
                Point::new(0.31, 0.3),
                KeywordSet::from_ids([0, i as u32 + 1]),
            )
        })
        .collect();
    let q = SpqQuery::new(7, 0.05, KeywordSet::from_ids([0]));
    let baseline = centralized::brute_force(&data, &features, &q);
    assert_eq!(baseline.len(), 7);
    // All 20 objects tie at score 1/2; tie-break by id picks 0..7.
    assert!(baseline.iter().all(|r| r.score == Score::ratio(1, 2)));
    for algo in ALGOS {
        let got = run(algo, 8, &data, &features, &q);
        validate::check_result(&got, &baseline, &data, &features, &q)
            .unwrap_or_else(|e| panic!("{algo}: {e}"));
    }
}

#[test]
fn query_keywords_absent_from_vocabulary() {
    let dataset = UniformGen.generate(500, 9);
    // Terms far beyond the generator's 1000-term vocabulary.
    let q = SpqQuery::new(5, 0.1, KeywordSet::from_ids([50_000, 60_000]));
    for algo in ALGOS {
        assert!(
            run(algo, 5, &dataset.data, &dataset.features, &q).is_empty(),
            "{algo}"
        );
    }
}
