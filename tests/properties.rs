//! Property-based integration tests: random datasets, random queries,
//! random grids — the distributed algorithms must always agree with the
//! brute-force oracle under the paper's tie semantics.

use proptest::prelude::*;
use spq::core::{centralized, validate};
use spq::prelude::*;
use spq::text::Term;

/// Strategy: a small spatio-textual world.
fn world() -> impl Strategy<
    Value = (
        Vec<DataObject>,
        Vec<FeatureObject>,
        Vec<u32>, // query keywords
        f64,      // radius
        u8,       // k
        u8,       // grid cells per axis
    ),
> {
    let coord = 0.0f64..1.0;
    let data = proptest::collection::vec((coord.clone(), coord.clone()), 0..40);
    let features = proptest::collection::vec(
        (
            coord.clone(),
            coord,
            proptest::collection::vec(0u32..12, 1..5),
        ),
        0..60,
    );
    let query_kw = proptest::collection::vec(0u32..12, 1..4);
    (data, features, query_kw, 0.001f64..0.5, 1u8..8, 1u8..12).prop_map(|(d, f, kw, r, k, g)| {
        let data: Vec<DataObject> = d
            .into_iter()
            .enumerate()
            .map(|(i, (x, y))| DataObject::new(i as u64, Point::new(x, y)))
            .collect();
        let features: Vec<FeatureObject> = f
            .into_iter()
            .enumerate()
            .map(|(i, (x, y, w))| {
                FeatureObject::new(
                    i as u64,
                    Point::new(x, y),
                    KeywordSet::new(w.into_iter().map(Term).collect()),
                )
            })
            .collect();
        (data, features, kw, r, k, g)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every algorithm is score-correct on arbitrary inputs.
    #[test]
    fn prop_distributed_matches_oracle((data, features, kw, r, k, g) in world()) {
        let query = SpqQuery::new(k as usize, r, KeywordSet::from_ids(kw));
        let baseline = centralized::brute_force(&data, &features, &query);
        for algo in [Algorithm::PSpq, Algorithm::ESpqLen, Algorithm::ESpqSco] {
            let result = SpqExecutor::new(Rect::unit())
                .algorithm(algo)
                .grid_size(g as u32)
                .cluster(ClusterConfig::with_workers(2))
                .run(std::slice::from_ref(&data), std::slice::from_ref(&features), &query)
                .unwrap();
            let check = validate::check_result(
                &result.top_k, &baseline, &data, &features, &query,
            );
            prop_assert!(check.is_ok(), "{algo}: {}", check.unwrap_err());
        }
    }

    /// The two oracles agree exactly (including tie-broken order).
    #[test]
    fn prop_oracles_agree((data, features, kw, r, k, _) in world()) {
        let query = SpqQuery::new(k as usize, r, KeywordSet::from_ids(kw));
        let a = centralized::brute_force(&data, &features, &query);
        let b = centralized::grid_index_topk(Rect::unit(), &data, &features, &query);
        prop_assert_eq!(a, b);
    }

    /// eSPQsco is *canonical* (it must equal the brute-force result
    /// exactly, ids included), because its per-run flush resolves ties by
    /// id — a stronger guarantee than the other two provide.
    #[test]
    fn prop_espqsco_is_canonical((data, features, kw, r, k, g) in world()) {
        let query = SpqQuery::new(k as usize, r, KeywordSet::from_ids(kw));
        let baseline = centralized::brute_force(&data, &features, &query);
        let result = SpqExecutor::new(Rect::unit())
            .algorithm(Algorithm::ESpqSco)
            .grid_size(g as u32)
            .run(std::slice::from_ref(&data), std::slice::from_ref(&features), &query)
            .unwrap();
        prop_assert_eq!(result.top_k, baseline);
    }

    /// Feature duplication (Lemma 1) covers every scoring pair: removing
    /// the radius entirely (huge r) must rank every data object that has
    /// any relevant feature.
    #[test]
    fn prop_huge_radius_ranks_every_matchable_object(
        (data, features, kw, _, _, g) in world()
    ) {
        let query = SpqQuery::new(data.len().max(1), 2.0, KeywordSet::from_ids(kw));
        let expected = centralized::brute_force(&data, &features, &query);
        let result = SpqExecutor::new(Rect::unit())
            .algorithm(Algorithm::ESpqSco)
            .grid_size(g as u32)
            .run(std::slice::from_ref(&data), std::slice::from_ref(&features), &query)
            .unwrap();
        prop_assert_eq!(result.top_k.len(), expected.len());
    }
}
