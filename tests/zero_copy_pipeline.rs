//! Equivalence and determinism properties of the zero-copy pipeline.
//!
//! The shared-dataset refactor must be invisible to results. For any
//! world, any algorithm, any worker count in {1, 2, 8} and either
//! partitioning strategy — including boundary-duplicate-heavy radii where
//! Lemma-1 copies features into many cells — the handle-based pipeline
//! must return results that are *exact* against the centralized
//! brute-force oracle (same length, same score multiset, every reported
//! score the object's true `τ(p)`, canonical order — the paper's tie
//! contract, see `spq_core::validate`), and **byte-identical** across
//! worker counts. On tie-free worlds the result is byte-identical to the
//! oracle outright. Shuffle record counts must not depend on the worker
//! count either (determinism of the routing, not just of the results).

use proptest::prelude::*;
use spq::core::{centralized, validate, SharedDataset};
use spq::prelude::*;
use spq::text::Term;

/// Strategy: a small spatio-textual world with a radius range reaching
/// half the data space — at fine grids that duplicates every matching
/// feature into dozens of cells.
fn world() -> impl Strategy<
    Value = (
        Vec<DataObject>,
        Vec<FeatureObject>,
        Vec<u32>, // query keywords
        f64,      // radius (up to 0.5 on a unit space: duplicate-heavy)
        u8,       // k
        u8,       // grid cells per axis
    ),
> {
    let coord = 0.0f64..1.0;
    let data = proptest::collection::vec((coord.clone(), coord.clone()), 0..30);
    let features = proptest::collection::vec(
        (
            coord.clone(),
            coord,
            proptest::collection::vec(0u32..10, 1..5),
        ),
        0..40,
    );
    let query_kw = proptest::collection::vec(0u32..10, 1..4);
    (data, features, query_kw, 0.01f64..0.5, 1u8..6, 1u8..10).prop_map(|(d, f, kw, r, k, g)| {
        let data: Vec<DataObject> = d
            .into_iter()
            .enumerate()
            .map(|(i, (x, y))| DataObject::new(i as u64, Point::new(x, y)))
            .collect();
        let features: Vec<FeatureObject> = f
            .into_iter()
            .enumerate()
            .map(|(i, (x, y, w))| {
                FeatureObject::new(
                    i as u64,
                    Point::new(x, y),
                    KeywordSet::new(w.into_iter().map(Term).collect()),
                )
            })
            .collect();
        (data, features, kw, r, k, g)
    })
}

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];
const ALGORITHMS: [Algorithm; 3] = [Algorithm::PSpq, Algorithm::ESpqLen, Algorithm::ESpqSco];
const BALANCERS: [LoadBalancing; 2] = [
    LoadBalancing::UniformGrid,
    LoadBalancing::AdaptiveQuadtree { sample_size: 16 },
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Exactness against the oracle for every algorithm × worker count ×
    /// partitioning, plus byte-identity across worker counts.
    #[test]
    fn prop_zero_copy_pipeline_is_exact_and_worker_invariant(
        (data, features, kw, r, k, g) in world()
    ) {
        let query = SpqQuery::new(k as usize, r, KeywordSet::from_ids(kw));
        let baseline = centralized::brute_force(&data, &features, &query);

        let dataset = SharedDataset::new(data.clone(), features.clone());
        let splits = dataset.ref_splits(3);
        for algo in ALGORITHMS {
            for balancing in BALANCERS {
                let mut first: Option<Vec<RankedObject>> = None;
                for workers in WORKER_COUNTS {
                    let result = SpqExecutor::new(Rect::unit())
                        .algorithm(algo)
                        .grid_size(g as u32)
                        .load_balancing(balancing)
                        .cluster(ClusterConfig::with_workers(workers))
                        .run_shared(&dataset, &splits, &query)
                        .unwrap();
                    let check =
                        validate::check_result(&result.top_k, &baseline, &data, &features, &query);
                    prop_assert!(
                        check.is_ok(),
                        "{} workers={} balancing={:?}: {:?}",
                        algo,
                        workers,
                        balancing,
                        check
                    );
                    match &first {
                        None => first = Some(result.top_k),
                        Some(expect) => prop_assert_eq!(
                            &result.top_k,
                            expect,
                            "{} must be byte-identical across worker counts",
                            algo
                        ),
                    }
                }
            }
        }
    }

    /// Shuffle record counts (and every other counter) are a function of
    /// the input and the grid — never of the worker count.
    #[test]
    fn prop_shuffle_records_worker_count_invariant(
        (data, features, kw, r, k, g) in world()
    ) {
        let query = SpqQuery::new(k as usize, r, KeywordSet::from_ids(kw));
        let dataset = SharedDataset::new(data, features);
        let splits = dataset.ref_splits(4);
        for algo in ALGORITHMS {
            let runs: Vec<_> = WORKER_COUNTS
                .iter()
                .map(|&workers| {
                    SpqExecutor::new(Rect::unit())
                        .algorithm(algo)
                        .grid_size(g as u32)
                        .cluster(ClusterConfig::with_workers(workers))
                        .run_shared(&dataset, &splits, &query)
                        .unwrap()
                })
                .collect();
            for run in &runs[1..] {
                prop_assert_eq!(
                    run.stats.shuffle_records,
                    runs[0].stats.shuffle_records,
                    "{}: shuffle volume must be worker-count-invariant",
                    algo
                );
                prop_assert_eq!(&run.stats.counters, &runs[0].stats.counters);
                prop_assert_eq!(&run.top_k, &runs[0].top_k);
            }
        }
    }
}

/// A deterministic, duplicate-heavy, *tie-free* world: feature `i`
/// carries keywords `{0..=i}` so all scores against `q.W = {0..7}` are
/// distinct — here the distributed result must be byte-identical to the
/// brute-force oracle for every combination, with a radius large enough
/// that every matching feature floods many cells.
#[test]
fn duplicate_storm_is_byte_identical_on_distinct_scores() {
    let features: Vec<FeatureObject> = (0..8)
        .map(|i| {
            FeatureObject::new(
                i,
                Point::new(0.11 * i as f64 + 0.05, 0.48),
                KeywordSet::from_ids(0..=i as u32),
            )
        })
        .collect();
    let data: Vec<DataObject> = (0..8)
        .map(|i| DataObject::new(i, Point::new(0.11 * i as f64 + 0.06, 0.52)))
        .collect();
    let query = SpqQuery::new(5, 0.3, KeywordSet::from_ids(0..8));
    let oracle = centralized::brute_force(&data, &features, &query);
    assert_eq!(oracle.len(), 5);

    let dataset = SharedDataset::new(data, features);
    let splits = dataset.ref_splits(5);
    for algo in ALGORITHMS {
        for balancing in BALANCERS {
            for workers in WORKER_COUNTS {
                let result = SpqExecutor::new(Rect::unit())
                    .algorithm(algo)
                    .grid_size(9)
                    .load_balancing(balancing)
                    .cluster(ClusterConfig::with_workers(workers))
                    .run_shared(&dataset, &splits, &query)
                    .unwrap();
                assert_eq!(result.top_k, oracle, "{algo} workers={workers}");
                // The storm really is a storm on the fixed 9x9 grid: far
                // more shuffle records than input objects. (The quadtree
                // builds coarser cells at this radius and duplicates
                // less — that's its job.)
                if balancing == LoadBalancing::UniformGrid {
                    assert!(result.stats.shuffle_records > 40);
                }
            }
        }
    }
}
