//! Reuse properties of the persistent `QueryEngine`.
//!
//! The engine inverts the job-per-query lifecycle: the shared store,
//! splits, keyword index and per-radius routing plans are built once and
//! reused by every query. That reuse must be invisible: for any world,
//! any algorithm, either partitioning strategy and cluster workers in
//! {1, 2, 8}, a sequence of `engine.query` calls must return results —
//! and counters, and shuffle volumes — **byte-identical** to the same
//! sequence of fresh `SpqExecutor::run_dataset` jobs, with interleaved
//! replays not disturbing later queries. `execute_batch` must match
//! request-for-request, and `serve_requests` must reproduce the
//! sequential results in request order for any worker count.

use proptest::prelude::*;
use spq::core::{QueryEngine, SharedDataset};
use spq::prelude::*;
use spq::text::Term;

/// Strategy: a small spatio-textual world plus a query stream of three
/// (keywords, radius, k) draws — radii repeat across a small class set so
/// the engine's per-radius plan cache actually gets hits.
#[allow(clippy::type_complexity)]
fn world() -> impl Strategy<
    Value = (
        Vec<DataObject>,
        Vec<FeatureObject>,
        Vec<(Vec<u32>, u8, u8)>, // queries: (keywords, radius class, k)
        u8,                      // grid cells per axis
    ),
> {
    let coord = 0.0f64..1.0;
    let data = proptest::collection::vec((coord.clone(), coord.clone()), 0..25);
    let features = proptest::collection::vec(
        (
            coord.clone(),
            coord,
            proptest::collection::vec(0u32..10, 1..5),
        ),
        0..35,
    );
    let queries = proptest::collection::vec(
        (proptest::collection::vec(0u32..10, 1..4), 0u8..3, 1u8..5),
        3,
    );
    (data, features, queries, 1u8..8).prop_map(|(d, f, qs, g)| {
        let data: Vec<DataObject> = d
            .into_iter()
            .enumerate()
            .map(|(i, (x, y))| DataObject::new(i as u64, Point::new(x, y)))
            .collect();
        let features: Vec<FeatureObject> = f
            .into_iter()
            .enumerate()
            .map(|(i, (x, y, w))| {
                FeatureObject::new(
                    i as u64,
                    Point::new(x, y),
                    KeywordSet::new(w.into_iter().map(Term).collect()),
                )
            })
            .collect();
        (data, features, qs, g)
    })
}

/// Three shared radius classes — queries repeating a class share a
/// cached plan inside the engine.
const RADIUS_CLASSES: [f64; 3] = [0.05, 0.15, 0.4];
const WORKER_COUNTS: [usize; 3] = [1, 2, 8];
const ALGORITHMS: [Algorithm; 3] = [Algorithm::PSpq, Algorithm::ESpqLen, Algorithm::ESpqSco];
const BALANCERS: [LoadBalancing; 2] = [
    LoadBalancing::UniformGrid,
    LoadBalancing::AdaptiveQuadtree { sample_size: 16 },
];

fn build_queries(specs: &[(Vec<u32>, u8, u8)]) -> Vec<SpqQuery> {
    specs
        .iter()
        .map(|(kw, r, k)| {
            SpqQuery::new(
                *k as usize,
                RADIUS_CLASSES[*r as usize % RADIUS_CLASSES.len()],
                KeywordSet::from_ids(kw.iter().copied()),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// N sequential `engine.query` calls are byte-identical to N fresh
    /// `Executor::run_dataset` jobs, for every algorithm × partitioning ×
    /// worker count, including counters and shuffle volume; replaying a
    /// query after serving others returns the same bytes again.
    ///
    /// Deliberately exercises the deprecated `query` shim: `SpqResult` is
    /// the only surface exposing the raw MapReduce counters this parity
    /// check compares, and the shim must stay byte-identical to the typed
    /// path for as long as it lives.
    #[allow(deprecated)]
    #[test]
    fn prop_engine_reuse_matches_fresh_jobs(
        (data, features, query_specs, g) in world()
    ) {
        let queries = build_queries(&query_specs);
        let dataset = SharedDataset::new(data, features);
        for algo in ALGORITHMS {
            for balancing in BALANCERS {
                for workers in WORKER_COUNTS {
                    let exec = SpqExecutor::new(Rect::unit())
                        .algorithm(algo)
                        .grid_size(g as u32)
                        .load_balancing(balancing)
                        .cluster(ClusterConfig::with_workers(workers));
                    let engine = QueryEngine::new(exec.clone(), dataset.clone());
                    let mut first_pass = Vec::new();
                    for q in &queries {
                        let served = engine.query(q).unwrap();
                        let fresh = exec.run_dataset(&dataset, q).unwrap();
                        prop_assert_eq!(
                            &served.top_k, &fresh.top_k,
                            "{} workers={} balancing={:?} {}: engine diverged",
                            algo, workers, balancing, q
                        );
                        prop_assert_eq!(
                            &served.stats.counters, &fresh.stats.counters,
                            "{} workers={} {}: counters diverged", algo, workers, q
                        );
                        prop_assert_eq!(served.stats.shuffle_records, fresh.stats.shuffle_records);
                        prop_assert_eq!(served.partition.num_cells(), fresh.partition.num_cells());
                        first_pass.push(served.top_k);
                    }
                    // Replay after the whole stream: prebuilt state is not
                    // corrupted by serving other queries in between.
                    for (q, expect) in queries.iter().zip(&first_pass) {
                        prop_assert_eq!(&engine.query(q).unwrap().top_k, expect);
                    }
                    // The plan cache held one plan per distinct radius.
                    let distinct_radii = {
                        let mut bits: Vec<u64> =
                            queries.iter().map(|q| q.radius.to_bits()).collect();
                        bits.sort_unstable();
                        bits.dedup();
                        bits.len()
                    };
                    prop_assert_eq!(engine.cached_plans(), distinct_radii);
                }
            }
        }
    }

    /// `execute_batch` (keyword-index candidate pruning) and
    /// `serve_requests` (inter-query concurrency, workers 1/2/8)
    /// reproduce the sequential `execute` results exactly, in request
    /// order.
    #[test]
    fn prop_batch_and_serve_match_sequential(
        (data, features, query_specs, g) in world()
    ) {
        let requests: Vec<QueryRequest> = build_queries(&query_specs)
            .into_iter()
            .map(QueryRequest::new)
            .collect();
        let dataset = SharedDataset::new(data, features);
        for algo in ALGORITHMS {
            let exec = SpqExecutor::new(Rect::unit())
                .algorithm(algo)
                .grid_size(g as u32)
                .cluster(ClusterConfig::with_workers(2));
            let engine = QueryEngine::new(exec, dataset.clone());
            let sequential: Vec<_> = requests
                .iter()
                .map(|r| engine.execute(r).unwrap().results)
                .collect();
            let batch = engine.execute_batch(&requests).unwrap();
            for (i, (b, s)) in batch.iter().zip(&sequential).enumerate() {
                prop_assert_eq!(&b.results, s, "{} request {}: batch diverged", algo, i);
            }
            for workers in WORKER_COUNTS {
                let served = engine.serve_requests(&requests, workers).unwrap();
                prop_assert_eq!(served.len(), requests.len());
                for (i, (r, s)) in served.iter().zip(&sequential).enumerate() {
                    prop_assert_eq!(
                        &r.results, s,
                        "{} workers={} request {}: serve diverged", algo, workers, i
                    );
                }
            }
        }
    }
}

/// Deterministic end-to-end check on a bigger-than-proptest world: a
/// hotspot-heavy stream served concurrently must equal the sequential
/// pass for every worker count, and plan-cache growth is bounded by the
/// radius classes.
#[test]
fn serve_on_generated_workload_is_worker_invariant() {
    use spq::data::{QueryStream, StreamConfig, UniformGen};

    let dataset = UniformGen.generate(2_000, 42);
    let (shared, _) = dataset.to_shared_splits(8);
    let mut stream = QueryStream::new(
        dataset.vocab_size,
        StreamConfig {
            radius_classes: vec![0.03, 0.08],
            hotspot_fraction: 0.5,
            hotspots: 4,
            seed: 9,
            ..StreamConfig::default()
        },
    );
    let requests: Vec<QueryRequest> = stream
        .batch(24)
        .into_iter()
        .map(QueryRequest::new)
        .collect();
    for algo in ALGORITHMS {
        let exec = SpqExecutor::new(Rect::unit())
            .algorithm(algo)
            .grid_size(8)
            .cluster(ClusterConfig::sequential());
        let engine = QueryEngine::new(exec, shared.clone());
        let sequential: Vec<_> = requests
            .iter()
            .map(|r| engine.execute(r).unwrap().results)
            .collect();
        for workers in WORKER_COUNTS {
            let served = engine.serve_requests(&requests, workers).unwrap();
            let got: Vec<_> = served.into_iter().map(|r| r.results).collect();
            assert_eq!(got, sequential, "{algo} workers={workers}");
        }
        assert_eq!(
            engine.cached_plans(),
            2,
            "{algo}: one plan per radius class"
        );
    }
}
