//! Properties of the admission-controlled serving front-end
//! (`spq_core::serve::AdmissionQueue`), checked against an independent
//! model of its documented state machine:
//!
//! * for ANY interleaving of submits and ticks, any in-flight cap, any
//!   coalescing window (size and tick age) and any deadline/priority
//!   assignment, every admitted request that executes answers
//!   **byte-identically** to the sequential single-store engine,
//! * the shed set is **exactly** the requests whose deadline tick is
//!   behind the clock at the window close that dequeued them — never a
//!   request without a deadline, never one whose deadline still holds,
//! * over-cap submissions under `OverflowPolicy::Reject` fail with the
//!   retryable `SpqError::Overloaded` exactly when the model says the
//!   cap is hit, and sheds carry the retryable `SpqError::DeadlineExceeded`
//!   with the model's exact `{deadline, now}`,
//! * multi-threaded producers under `OverflowPolicy::Block` all complete
//!   with byte-identical answers — arrival order moves *when* a request
//!   runs, never what it returns.

use proptest::prelude::*;
use spq::core::{QueryEngine, SharedDataset};
use spq::prelude::*;
use spq::text::Term;

/// Strategy: a small spatio-textual world plus a request stream of
/// (keywords, radius class, k, deadline, priority) draws.
#[allow(clippy::type_complexity)]
fn world() -> impl Strategy<
    Value = (
        Vec<DataObject>,
        Vec<FeatureObject>,
        Vec<(Vec<u32>, u8, u8, u64, u8)>,
        u8, // grid cells per axis
    ),
> {
    let coord = 0.0f64..1.0;
    let data = proptest::collection::vec((coord.clone(), coord.clone()), 0..15);
    let features = proptest::collection::vec(
        (
            coord.clone(),
            coord,
            proptest::collection::vec(0u32..8, 1..4),
        ),
        0..25,
    );
    let requests = proptest::collection::vec(
        (
            proptest::collection::vec(0u32..8, 1..3),
            0u8..2,   // radius class
            1u8..4,   // k
            0u64..12, // deadline draw: < 6 is a deadline tick, ≥ 6 is none
            0u8..4,   // priority
        ),
        1..12,
    );
    (data, features, requests, 1u8..6).prop_map(|(d, f, qs, g)| {
        let data: Vec<DataObject> = d
            .into_iter()
            .enumerate()
            .map(|(i, (x, y))| DataObject::new(i as u64, Point::new(x, y)))
            .collect();
        let features: Vec<FeatureObject> = f
            .into_iter()
            .enumerate()
            .map(|(i, (x, y, w))| {
                FeatureObject::new(
                    i as u64,
                    Point::new(x, y),
                    KeywordSet::new(w.into_iter().map(Term).collect()),
                )
            })
            .collect();
        (data, features, qs, g)
    })
}

const RADIUS_CLASSES: [f64; 2] = [0.1, 0.3];

/// Deadline draws below 6 are deadline ticks; the rest mean "none" —
/// the stand-in proptest has no `option::of` combinator.
fn deadline_of(draw: u64) -> Option<u64> {
    (draw < 6).then_some(draw)
}

fn build_requests(specs: &[(Vec<u32>, u8, u8, u64, u8)]) -> Vec<QueryRequest> {
    specs
        .iter()
        .map(|(kw, r, k, deadline, priority)| {
            let mut request = QueryRequest::new(SpqQuery::new(
                *k as usize,
                RADIUS_CLASSES[*r as usize % RADIUS_CLASSES.len()],
                KeywordSet::from_ids(kw.iter().copied()),
            ))
            .with_priority(*priority);
            request.deadline = deadline_of(*deadline);
            request
        })
        .collect()
}

/// What the model predicts for one submitted request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Expected {
    /// Rejected at the cap (`OverflowPolicy::Reject`).
    Rejected,
    /// Shed at the window close at tick `now`, deadline already behind.
    Shed { deadline: u64, now: u64 },
    /// Dequeued into a coalesced window — must answer byte-identically.
    Executed,
}

/// An independent replay of the documented admission state machine:
/// cap at submit, window closes on size or tick age, shed-at-dequeue
/// (`now > deadline`), dequeue order priority-descending then arrival.
struct Model {
    cap: usize,
    batch_max: usize,
    batch_ticks: u64,
    clock: u64,
    /// (request index, seq, deadline, priority)
    pending: Vec<(usize, u64, Option<u64>, u8)>,
    next_seq: u64,
    window_open: Option<u64>,
    outcome: Vec<Option<Expected>>,
}

impl Model {
    fn new(cap: usize, batch_max: usize, batch_ticks: u64, requests: usize) -> Self {
        Self {
            cap,
            batch_max,
            batch_ticks,
            clock: 0,
            pending: Vec::new(),
            next_seq: 0,
            window_open: None,
            outcome: vec![None; requests],
        }
    }

    /// In single-threaded use nothing executes between submits, so the
    /// in-flight count the cap bounds equals the queued count.
    fn submit(&mut self, index: usize, deadline: Option<u64>, priority: u8) {
        if self.pending.len() >= self.cap {
            self.outcome[index] = Some(Expected::Rejected);
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.window_open.is_none() {
            self.window_open = Some(self.clock);
        }
        self.pending.push((index, seq, deadline, priority));
    }

    fn tick(&mut self) {
        self.clock += 1;
        let Some(opened) = self.window_open else {
            return;
        };
        let size_due = self.pending.len() >= self.batch_max;
        let time_due = self.clock >= opened.saturating_add(self.batch_ticks);
        if !size_due && !time_due {
            return;
        }
        let now = self.clock;
        let (shed, mut survivors): (Vec<_>, Vec<_>) = self
            .pending
            .drain(..)
            .partition(|(_, _, deadline, _)| deadline.is_some_and(|d| now > d));
        for (index, _, deadline, _) in shed {
            self.outcome[index] = Some(Expected::Shed {
                deadline: deadline.expect("shed requests carry a deadline"),
                now,
            });
        }
        survivors.sort_by_key(|&(_, seq, _, priority)| (std::cmp::Reverse(priority), seq));
        let take = survivors.len().min(self.batch_max);
        for (index, _, _, _) in survivors.drain(..take) {
            self.outcome[index] = Some(Expected::Executed);
        }
        survivors.sort_by_key(|&(_, seq, _, _)| seq);
        self.window_open = (!survivors.is_empty()).then_some(now);
        self.pending = survivors;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The queue agrees with the model on every request's fate, and the
    /// executed ones answer byte-identically to the sequential
    /// single-store engine.
    #[test]
    fn prop_any_interleaving_matches_the_model_and_the_engine(
        (data, features, specs, g) in world(),
        cap in 1usize..6,
        batch_max in 1usize..4,
        batch_ticks in 0u64..4,
        // One schedule draw per request: how many ticks to run before
        // submitting it (0 = back-to-back submits).
        gaps in proptest::collection::vec(0usize..4, 12),
    ) {
        let requests = build_requests(&specs);
        let engine = QueryEngine::new(
            SpqExecutor::new(Rect::unit()).grid_size(g as u32),
            SharedDataset::new(data, features),
        );
        let queue = AdmissionQueue::new(
            &engine,
            AdmissionConfig::default()
                .with_max_in_flight(cap)
                .with_batch_max(batch_max)
                .with_batch_ticks(batch_ticks),
        )
        .unwrap();
        let mut model = Model::new(cap, batch_max, batch_ticks, requests.len());

        // Drive queue and model through the same interleaving.
        let mut tickets: Vec<Option<Ticket>> = Vec::new();
        for (index, request) in requests.iter().enumerate() {
            for _ in 0..gaps[index % gaps.len()] {
                queue.tick();
                model.tick();
            }
            let submitted = queue.submit(request.clone());
            model.submit(index, request.deadline, request.priority);
            match (submitted, model.outcome[index]) {
                (Err(err), Some(Expected::Rejected)) => {
                    prop_assert_eq!(&err, &SpqError::Overloaded { capacity: cap });
                    prop_assert!(err.is_retryable(), "Overloaded must invite a retry");
                    tickets.push(None);
                }
                (Ok(ticket), None) => tickets.push(Some(ticket)),
                (got, want) => panic!(
                    "request {index}: queue said {:?}, model said {want:?}",
                    got.map(|_| "admitted")
                ),
            }
        }
        // Drain both in lockstep (bounded — the queue empties a window
        // per tick once everything is submitted).
        for _ in 0..10_000 {
            let report = queue.tick();
            model.tick();
            if report.remaining == 0 && model.pending.is_empty() {
                break;
            }
        }
        prop_assert!(model.pending.is_empty(), "model failed to drain");

        // Every request's fate matches the model; executed ones are
        // byte-identical to the sequential single-store path.
        for (index, (ticket, request)) in tickets.into_iter().zip(&requests).enumerate() {
            match (ticket, model.outcome[index]) {
                (None, Some(Expected::Rejected)) => {}
                (Some(ticket), Some(Expected::Executed)) => {
                    let response = ticket
                        .wait()
                        .unwrap_or_else(|e| panic!("request {index} failed: {e}"));
                    let expect = engine.execute_sequential(request).unwrap();
                    prop_assert_eq!(
                        &response.results, &expect.results,
                        "request {}: admitted response diverged from the engine", index
                    );
                }
                (Some(ticket), Some(Expected::Shed { deadline, now })) => {
                    let err = ticket.wait().unwrap_err();
                    prop_assert_eq!(&err, &SpqError::DeadlineExceeded { deadline, now });
                    prop_assert!(err.is_retryable(), "sheds must invite a retry");
                }
                (ticket, outcome) => panic!(
                    "request {index}: ticket {:?} vs model {outcome:?}",
                    ticket.map(|_| "present")
                ),
            }
        }

        // The counters tell the same story.
        let stats = queue.stats();
        let rejected = model
            .outcome
            .iter()
            .filter(|o| matches!(o, Some(Expected::Rejected)))
            .count() as u64;
        let shed = model
            .outcome
            .iter()
            .filter(|o| matches!(o, Some(Expected::Shed { .. })))
            .count() as u64;
        let executed = model
            .outcome
            .iter()
            .filter(|o| matches!(o, Some(Expected::Executed)))
            .count() as u64;
        prop_assert_eq!(stats.submitted, requests.len() as u64);
        prop_assert_eq!(stats.admitted, requests.len() as u64 - rejected);
        prop_assert_eq!(stats.rejected_overload, rejected);
        prop_assert_eq!(stats.shed_deadline, shed);
        prop_assert_eq!(stats.executed, executed);
        prop_assert_eq!(stats.failed, 0);
        prop_assert_eq!(stats.queue_depth, 0);
    }
}

/// Multi-threaded producers under `OverflowPolicy::Block`: every
/// submission completes (backpressure, not rejection), and every answer
/// is byte-identical to the sequential single-store engine no matter how
/// the producer threads interleave with the serve loop.
#[test]
fn blocked_producers_all_answer_byte_identically() {
    use spq::data::{QueryStream, StreamConfig, UniformGen};
    use std::sync::atomic::{AtomicUsize, Ordering};

    let dataset = UniformGen.generate(500, 11);
    let (shared, _) = dataset.to_shared_splits(4);
    let engine = QueryEngine::new(SpqExecutor::new(Rect::unit()).grid_size(8), shared);
    let mut stream = QueryStream::new(
        dataset.vocab_size,
        StreamConfig {
            radius_classes: vec![0.05, 0.15],
            seed: 4,
            ..StreamConfig::default()
        },
    );
    let requests: Vec<QueryRequest> = stream
        .batch(24)
        .into_iter()
        .map(QueryRequest::new)
        .collect();
    let queue = AdmissionQueue::new(
        &engine,
        AdmissionConfig::default()
            .with_max_in_flight(4)
            .with_batch_max(3)
            .with_batch_ticks(0)
            .with_overflow(OverflowPolicy::Block),
    )
    .unwrap();

    const PRODUCERS: usize = 4;
    let done = AtomicUsize::new(0);
    let outcomes: Vec<Vec<(usize, Result<QueryResponse, SpqError>)>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..PRODUCERS)
                .map(|p| {
                    let queue = &queue;
                    let requests = &requests;
                    let done = &done;
                    scope.spawn(move || {
                        // Each producer owns a strided slice of the stream and
                        // waits each ticket inline — capacity is what limits it.
                        let mut got = Vec::new();
                        for (i, request) in requests.iter().enumerate() {
                            if i % PRODUCERS != p {
                                continue;
                            }
                            let ticket = queue.submit(request.clone()).unwrap();
                            got.push((i, ticket.wait()));
                        }
                        done.fetch_add(1, Ordering::SeqCst);
                        got
                    })
                })
                .collect();
            // The serve loop: tick until every producer has finished.
            while done.load(Ordering::SeqCst) < PRODUCERS {
                queue.tick();
                std::thread::yield_now();
            }
            queue.drain();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

    let mut seen = 0;
    for (i, outcome) in outcomes.into_iter().flatten() {
        let response = outcome.unwrap_or_else(|e| panic!("request {i} failed: {e}"));
        let expect = engine.execute_sequential(&requests[i]).unwrap();
        assert_eq!(
            response.results, expect.results,
            "request {i}: concurrent admission changed the answer"
        );
        seen += 1;
    }
    assert_eq!(seen, requests.len());
    let stats = queue.stats();
    assert_eq!(stats.rejected_overload, 0, "Block must never reject");
    assert_eq!(stats.executed, requests.len() as u64);
    assert_eq!(stats.shed_deadline, 0);
    assert!(stats.queue_depth_watermark <= 4, "cap bounds the queue");
}
