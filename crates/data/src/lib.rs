//! Dataset generation, partitioning and workloads for SPQ experiments.
//!
//! The paper evaluates on four datasets (Section 7.1): two real ones
//! (Flickr — 40M images, avg 7.9 keywords, 34,716-term dictionary;
//! Twitter — 80M tweets, avg 9.8 keywords, 88,706 terms) and two synthetic
//! ones (UN — uniform, 10–100 keywords from a 1,000-term vocabulary;
//! CL — 16 random clusters, otherwise like UN). In every case half of the
//! objects act as data objects and half as feature objects.
//!
//! The real dumps are not redistributable, so this crate provides
//! generators that reproduce their *algorithm-relevant* statistics —
//! spatial density profile, keyword-count distribution, and term-frequency
//! skew — which is what the algorithms' relative costs depend on:
//!
//! * [`UniformGen`] — the paper's UN dataset, exactly as described.
//! * [`ClusteredGen`] — the paper's CL dataset (16 Gaussian clusters).
//! * [`FlickrLike`] / [`TwitterLike`] — hotspot-mixture spatial skew with
//!   shifted-Poisson keyword counts and Zipf term frequencies matching the
//!   reported dictionary sizes and means.
//!
//! [`Dataset::to_splits`] produces the horizontally partitioned input the
//! distributed algorithms consume, [`tsv`] round-trips datasets to disk,
//! and [`QueryGenerator`] draws query keyword sets (random / frequent /
//! infrequent, footnote 2 of the paper).
//!
//! Real (or real-shaped) dumps enter through [`ingest`]: a streaming
//! `id<TAB>x<TAB>y<TAB>keywords` loader that interns keyword strings into
//! a [`vocab::Vocabulary`] and CSR-packs the keyword lists, with a
//! line-numbered malformed-line policy and a deterministic
//! [`ingest::synthesize_dump`] writer for tests and CI.

pub mod dataset;
pub mod distributions;
pub mod generators;
pub mod ingest;
pub mod tsv;
pub mod vocab;
pub mod workload;

pub use dataset::Dataset;
pub use generators::{ClusteredGen, DatasetGenerator, FlickrLike, TwitterLike, UniformGen};
pub use ingest::{
    ingest_combined, ingest_files, synthesize_dump, DumpConfig, IngestError, IngestOptions,
    Ingested, MalformedPolicy, SkipCounters,
};
pub use vocab::CsrKeywords;
pub use workload::{KeywordSelection, QueryGenerator, QueryStream, StreamConfig};
