//! Tab-separated persistence for datasets.
//!
//! The on-disk format mirrors how the paper's datasets live in HDFS: one
//! object per line, loadable as independent splits.
//!
//! ```text
//! # bounds\t<minx>\t<miny>\t<maxx>\t<maxy>\t<vocab size>
//! D\t<id>\t<x>\t<y>
//! F\t<id>\t<x>\t<y>\t<term,term,...>
//! ```
//!
//! Two term encodings share that line grammar, both parsed by the
//! streaming loader in [`crate::ingest`]:
//!
//! * [`save`] / [`load`] — **numeric** terms (`0,17,42`): the internal
//!   round-trip format for generated datasets, no vocabulary required.
//! * [`save_with_vocab`] / [`load_with_vocab`] — **textual** terms
//!   (`pizza,sushi`) resolved through a [`Vocabulary`]: the same shape as
//!   an external dump, so a dataset saved this way re-ingests through the
//!   interner and round-trips byte-stably (words re-intern to the ids
//!   they had, because interning follows first occurrence and `F` lines
//!   are written in dataset order).

use crate::dataset::Dataset;
use crate::ingest::{self, IngestOptions};
use crate::vocab::Vocabulary;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// Writes a dataset to a TSV file with numeric term ids.
pub fn save(dataset: &Dataset, path: &Path) -> io::Result<()> {
    save_impl(dataset, path, |out, t| write!(out, "{}", t.0))
}

/// Writes a dataset to a TSV file with textual keywords resolved through
/// `vocab` — the interchange format for external tools and the stable
/// round-trip target of [`crate::ingest`]. Terms missing from the
/// vocabulary render as `t<id>` (matching [`spq_text::Term`]'s display),
/// which re-ingests as an ordinary word.
pub fn save_with_vocab(dataset: &Dataset, vocab: &Vocabulary, path: &Path) -> io::Result<()> {
    save_impl(dataset, path, |out, t| match vocab.name(t) {
        Some(word) => out.write_all(word.as_bytes()),
        None => write!(out, "{t}"),
    })
}

fn save_impl(
    dataset: &Dataset,
    path: &Path,
    mut write_term: impl FnMut(&mut BufWriter<std::fs::File>, spq_text::Term) -> io::Result<()>,
) -> io::Result<()> {
    let mut out = BufWriter::new(std::fs::File::create(path)?);
    writeln!(
        out,
        "# bounds\t{}\t{}\t{}\t{}\t{}",
        dataset.bounds.min().x,
        dataset.bounds.min().y,
        dataset.bounds.max().x,
        dataset.bounds.max().y,
        dataset.vocab_size
    )?;
    for o in &dataset.data {
        writeln!(out, "D\t{}\t{}\t{}", o.id, o.location.x, o.location.y)?;
    }
    for f in &dataset.features {
        write!(out, "F\t{}\t{}\t{}\t", f.id, f.location.x, f.location.y)?;
        for (i, t) in f.keywords.iter().enumerate() {
            if i > 0 {
                out.write_all(b",")?;
            }
            write_term(&mut out, t)?;
        }
        out.write_all(b"\n")?;
    }
    out.flush()
}

/// Reads a dataset from a TSV file written by [`save`] (numeric terms).
///
/// Parsing runs through the [`crate::ingest`] loader, which is stricter
/// than the pre-ingest parser deliberately: duplicate ids within a
/// dataset and non-finite coordinates — inputs [`save`] can technically
/// emit for a hand-built [`Dataset`] but that no generator produces and
/// that would misbehave downstream (ambiguous results, grids with
/// NaN/infinite extents) — are now reported as line-numbered errors
/// instead of being loaded silently.
pub fn load(path: &Path) -> io::Result<Dataset> {
    Ok(ingest::ingest_combined_numeric(path)
        .map_err(io::Error::from)?
        .dataset)
}

/// Reads a dataset and its vocabulary from a TSV file written by
/// [`save_with_vocab`] (textual terms, interned on load).
pub fn load_with_vocab(path: &Path) -> io::Result<(Dataset, Vocabulary)> {
    let ingested =
        ingest::ingest_combined(path, &IngestOptions::default()).map_err(io::Error::from)?;
    Ok((ingested.dataset, ingested.vocab))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{DatasetGenerator, UniformGen};
    use spq_spatial::Rect;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("spq-tsv-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let d = UniformGen.generate(200, 11);
        let path = temp_path("roundtrip.tsv");
        save(&d, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.bounds, d.bounds);
        assert_eq!(loaded.vocab_size, d.vocab_size);
        assert_eq!(loaded.data, d.data);
        assert_eq!(loaded.features, d.features);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_dataset_roundtrips() {
        let d = Dataset {
            bounds: Rect::from_coords(0.0, 0.0, 5.0, 5.0),
            data: vec![],
            features: vec![],
            vocab_size: 9,
        };
        let path = temp_path("empty.tsv");
        save(&d, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.bounds, d.bounds);
        assert_eq!(loaded.vocab_size, 9);
        assert!(loaded.data.is_empty() && loaded.features.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_malformed_lines() {
        let path = temp_path("bad.tsv");
        std::fs::write(&path, "D\t1\tnot-a-number\t2\n").unwrap();
        let err = load(&path).unwrap_err();
        assert!(err.to_string().contains("line 1"));
        std::fs::write(&path, "X\t1\n").unwrap();
        assert!(load(&path).is_err());
        std::fs::write(&path, "F\t1\t0.5\n").unwrap();
        assert!(load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(load(Path::new("/nonexistent/spq.tsv")).is_err());
    }

    #[test]
    fn vocab_roundtrip_is_byte_stable() {
        // Build a small worded dataset through the interner.
        let mut vocab = Vocabulary::new();
        let text = "# bounds\t0\t0\t1\t1\t0\nD\t1\t0.25\t0.5\nF\t9\t0.5\t0.5\tramen,izakaya\nF\t10\t0.75\t0.5\tizakaya\n";
        let raw = temp_path("worded.tsv");
        std::fs::write(&raw, text).unwrap();
        let (d1, v1) = load_with_vocab(&raw).unwrap();
        assert_eq!(v1.len(), 2);
        assert_eq!(d1.vocab_size, 2);
        vocab.intern("ramen");
        vocab.intern("izakaya");
        assert_eq!(v1, vocab);

        // save_with_vocab → load_with_vocab is a fixed point.
        let saved = temp_path("worded-2.tsv");
        save_with_vocab(&d1, &v1, &saved).unwrap();
        let (d2, v2) = load_with_vocab(&saved).unwrap();
        assert_eq!(d1.data, d2.data);
        assert_eq!(d1.features, d2.features);
        assert_eq!(d1.bounds, d2.bounds);
        assert_eq!(d1.vocab_size, d2.vocab_size);
        assert_eq!(v1, v2);
        let saved_again = temp_path("worded-3.tsv");
        save_with_vocab(&d2, &v2, &saved_again).unwrap();
        assert_eq!(
            std::fs::read(&saved).unwrap(),
            std::fs::read(&saved_again).unwrap(),
            "second save is byte-identical"
        );
        for p in [&raw, &saved, &saved_again] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn unknown_terms_render_as_placeholders() {
        let d = Dataset {
            bounds: Rect::unit(),
            data: vec![],
            features: vec![spq_core::FeatureObject::new(
                1,
                spq_spatial::Point::new(0.5, 0.5),
                spq_text::KeywordSet::from_ids([3]),
            )],
            vocab_size: 4,
        };
        let path = temp_path("placeholder.tsv");
        save_with_vocab(&d, &Vocabulary::new(), &path).unwrap();
        let (loaded, vocab) = load_with_vocab(&path).unwrap();
        assert_eq!(vocab.get("t3"), Some(spq_text::Term(0)));
        assert_eq!(loaded.features[0].keywords.len(), 1);
        std::fs::remove_file(&path).ok();
    }
}
