//! Tab-separated persistence for datasets.
//!
//! The on-disk format mirrors how the paper's datasets live in HDFS: one
//! object per line, loadable as independent splits.
//!
//! ```text
//! D\t<id>\t<x>\t<y>
//! F\t<id>\t<x>\t<y>\t<term,term,...>
//! ```

use crate::dataset::Dataset;
use spq_core::{DataObject, FeatureObject};
use spq_spatial::{Point, Rect};
use spq_text::KeywordSet;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Writes a dataset to a TSV file.
pub fn save(dataset: &Dataset, path: &Path) -> io::Result<()> {
    let mut out = BufWriter::new(std::fs::File::create(path)?);
    writeln!(
        out,
        "# bounds\t{}\t{}\t{}\t{}\t{}",
        dataset.bounds.min().x,
        dataset.bounds.min().y,
        dataset.bounds.max().x,
        dataset.bounds.max().y,
        dataset.vocab_size
    )?;
    for o in &dataset.data {
        writeln!(out, "D\t{}\t{}\t{}", o.id, o.location.x, o.location.y)?;
    }
    for f in &dataset.features {
        let kw: Vec<String> = f.keywords.iter().map(|t| t.0.to_string()).collect();
        writeln!(
            out,
            "F\t{}\t{}\t{}\t{}",
            f.id,
            f.location.x,
            f.location.y,
            kw.join(",")
        )?;
    }
    out.flush()
}

fn parse_err(line_no: usize, msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("line {line_no}: {msg}"))
}

/// Reads a dataset from a TSV file written by [`save`].
pub fn load(path: &Path) -> io::Result<Dataset> {
    let reader = BufReader::new(std::fs::File::open(path)?);
    let mut bounds = Rect::unit();
    let mut vocab_size = 0usize;
    let mut data = Vec::new();
    let mut features = Vec::new();

    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let line_no = i + 1;
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        let num = |s: &str| -> io::Result<f64> {
            s.parse::<f64>()
                .map_err(|_| parse_err(line_no, &format!("bad number {s:?}")))
        };
        match fields[0] {
            "# bounds" => {
                if fields.len() != 6 {
                    return Err(parse_err(line_no, "bounds header needs 5 fields"));
                }
                bounds = Rect::from_coords(
                    num(fields[1])?,
                    num(fields[2])?,
                    num(fields[3])?,
                    num(fields[4])?,
                );
                vocab_size = fields[5]
                    .parse()
                    .map_err(|_| parse_err(line_no, "bad vocab size"))?;
            }
            "D" => {
                if fields.len() != 4 {
                    return Err(parse_err(line_no, "data line needs 3 fields"));
                }
                let id = fields[1]
                    .parse()
                    .map_err(|_| parse_err(line_no, "bad id"))?;
                data.push(DataObject::new(
                    id,
                    Point::new(num(fields[2])?, num(fields[3])?),
                ));
            }
            "F" => {
                if fields.len() != 5 {
                    return Err(parse_err(line_no, "feature line needs 4 fields"));
                }
                let id = fields[1]
                    .parse()
                    .map_err(|_| parse_err(line_no, "bad id"))?;
                let location = Point::new(num(fields[2])?, num(fields[3])?);
                let mut terms = Vec::new();
                if !fields[4].is_empty() {
                    for t in fields[4].split(',') {
                        terms
                            .push(spq_text::Term(t.parse().map_err(|_| {
                                parse_err(line_no, &format!("bad term {t:?}"))
                            })?));
                    }
                }
                features.push(FeatureObject::new(id, location, KeywordSet::new(terms)));
            }
            other => return Err(parse_err(line_no, &format!("unknown record tag {other:?}"))),
        }
    }

    Ok(Dataset {
        bounds,
        data,
        features,
        vocab_size,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{DatasetGenerator, UniformGen};

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("spq-tsv-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let d = UniformGen.generate(200, 11);
        let path = temp_path("roundtrip.tsv");
        save(&d, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.bounds, d.bounds);
        assert_eq!(loaded.vocab_size, d.vocab_size);
        assert_eq!(loaded.data, d.data);
        assert_eq!(loaded.features, d.features);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_dataset_roundtrips() {
        let d = Dataset {
            bounds: Rect::from_coords(0.0, 0.0, 5.0, 5.0),
            data: vec![],
            features: vec![],
            vocab_size: 9,
        };
        let path = temp_path("empty.tsv");
        save(&d, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.bounds, d.bounds);
        assert_eq!(loaded.vocab_size, 9);
        assert!(loaded.data.is_empty() && loaded.features.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_malformed_lines() {
        let path = temp_path("bad.tsv");
        std::fs::write(&path, "D\t1\tnot-a-number\t2\n").unwrap();
        let err = load(&path).unwrap_err();
        assert!(err.to_string().contains("line 1"));
        std::fs::write(&path, "X\t1\n").unwrap();
        assert!(load(&path).is_err());
        std::fs::write(&path, "F\t1\t0.5\n").unwrap();
        assert!(load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(load(Path::new("/nonexistent/spq.tsv")).is_err());
    }
}
