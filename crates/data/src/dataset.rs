//! Generated datasets and their horizontal partitioning into splits.

use spq_core::{DataObject, FeatureObject, ObjectRef, SharedDataset, SpqObject};
use spq_spatial::Rect;

/// A complete SPQ input: the data objects `O`, the feature objects `F`,
/// the data-space bounds and the vocabulary cardinality.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The data-space bounds used at generation time.
    pub bounds: Rect,
    /// Data objects `O` (ranked and returned by queries).
    pub data: Vec<DataObject>,
    /// Feature objects `F` (spatio-textual, drive the scores).
    pub features: Vec<FeatureObject>,
    /// Number of distinct terms the generator drew from.
    pub vocab_size: usize,
}

impl Dataset {
    /// Total number of objects, `|O| + |F|`.
    pub fn total(&self) -> usize {
        self.data.len() + self.features.len()
    }

    /// Mean keyword count over the feature objects.
    pub fn mean_keywords(&self) -> f64 {
        if self.features.is_empty() {
            return 0.0;
        }
        let total: usize = self.features.iter().map(|f| f.keywords.len()).sum();
        total as f64 / self.features.len() as f64
    }

    /// Horizontally partitions the dataset into `num_splits` mixed splits
    /// (round-robin over data then feature objects — "no assumption on
    /// the partitioning method", Section 3.1). Objects are cloned; call
    /// once per dataset and reuse the splits across queries.
    ///
    /// # Panics
    ///
    /// Panics if `num_splits == 0`.
    pub fn to_splits(&self, num_splits: usize) -> Vec<Vec<SpqObject>> {
        assert!(num_splits > 0, "need at least one split");
        let mut splits: Vec<Vec<SpqObject>> = (0..num_splits)
            .map(|_| Vec::with_capacity(self.total() / num_splits + 1))
            .collect();
        for (i, o) in self.data.iter().enumerate() {
            splits[i % num_splits].push(SpqObject::Data(*o));
        }
        for (i, f) in self.features.iter().enumerate() {
            splits[i % num_splits].push(SpqObject::Feature(f.clone()));
        }
        splits
    }

    /// The shared-store counterpart of [`to_splits`](Self::to_splits):
    /// copies the objects **once** into a [`SharedDataset`] (held behind
    /// `Arc`s; this `Dataset` is untouched) and returns reference splits
    /// with the identical round-robin layout. Queries run through
    /// `SpqExecutor::run_shared` then shuffle 8–16 byte handles instead
    /// of cloned objects, however many queries reuse the store.
    ///
    /// # Panics
    ///
    /// Panics if `num_splits == 0`.
    pub fn to_shared_splits(&self, num_splits: usize) -> (SharedDataset, Vec<Vec<ObjectRef>>) {
        let dataset = SharedDataset::new(self.data.clone(), self.features.clone());
        let splits = dataset.ref_splits(num_splits);
        (dataset, splits)
    }

    /// Keeps only the first `data_n` data and `feature_n` feature objects
    /// — used by the scalability experiment (Figure 8) to carve nested
    /// subsets out of one generated dataset.
    pub fn truncated(&self, data_n: usize, feature_n: usize) -> Dataset {
        Dataset {
            bounds: self.bounds,
            data: self.data[..data_n.min(self.data.len())].to_vec(),
            features: self.features[..feature_n.min(self.features.len())].to_vec(),
            vocab_size: self.vocab_size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spq_spatial::Point;
    use spq_text::KeywordSet;

    fn tiny() -> Dataset {
        Dataset {
            bounds: Rect::unit(),
            data: (0..5)
                .map(|i| DataObject::new(i, Point::new(0.1 * i as f64, 0.5)))
                .collect(),
            features: (0..4)
                .map(|i| {
                    FeatureObject::new(i, Point::new(0.2, 0.2), KeywordSet::from_ids([i as u32]))
                })
                .collect(),
            vocab_size: 4,
        }
    }

    #[test]
    fn totals_and_means() {
        let d = tiny();
        assert_eq!(d.total(), 9);
        assert_eq!(d.mean_keywords(), 1.0);
    }

    #[test]
    fn splits_partition_every_object_exactly_once() {
        let d = tiny();
        for s in [1, 2, 3, 9, 20] {
            let splits = d.to_splits(s);
            assert_eq!(splits.len(), s);
            let total: usize = splits.iter().map(Vec::len).sum();
            assert_eq!(total, 9, "splits {s}");
            let data_count = splits.iter().flatten().filter(|o| o.is_data()).count();
            assert_eq!(data_count, 5);
        }
    }

    #[test]
    fn truncated_keeps_prefixes() {
        let d = tiny();
        let t = d.truncated(2, 3);
        assert_eq!(t.data.len(), 2);
        assert_eq!(t.features.len(), 3);
        assert_eq!(t.data[0].id, 0);
        // Oversized requests clamp.
        let u = d.truncated(100, 100);
        assert_eq!(u.total(), 9);
    }

    #[test]
    fn empty_dataset_mean_is_zero() {
        let d = Dataset {
            bounds: Rect::unit(),
            data: vec![],
            features: vec![],
            vocab_size: 0,
        };
        assert_eq!(d.mean_keywords(), 0.0);
    }

    #[test]
    #[should_panic]
    fn zero_splits_rejected() {
        let _ = tiny().to_splits(0);
    }
}
