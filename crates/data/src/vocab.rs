//! Interned-vocabulary support for dataset loading.
//!
//! Real dumps carry keywords as *text*; all hot paths operate on dense
//! [`Term`] ids. The [`Vocabulary`] interner (re-exported from
//! `spq-text`) maps each distinct word to a `u32` id exactly once, and
//! [`CsrKeywords`] accumulates the per-feature keyword lists into one
//! CSR-packed buffer (a flat term slice plus an offset table) while the
//! loader streams the file — so ingesting a million-object dump costs one
//! `String` per *distinct* word and two growable buffers, never a
//! `String` (or an intermediate `Vec`) per keyword occurrence.

pub use spq_text::Vocabulary;

use spq_text::{KeywordSet, Term};

/// CSR-packed keyword lists: list `i` lives at
/// `terms[offsets[i]..offsets[i + 1]]`, sorted and deduplicated.
///
/// The packer is the streaming loader's staging area for feature
/// keywords: each parsed line pushes its terms through a reusable scratch
/// buffer ([`push_list`](Self::push_list)), and only once the whole dump
/// is read are the lists materialised into per-feature [`KeywordSet`]s
/// ([`into_keyword_sets`](Self::into_keyword_sets)) — one exactly-sized
/// allocation per feature instead of a grow-and-shrink per line.
#[derive(Debug, Clone)]
pub struct CsrKeywords {
    /// `offsets[i]..offsets[i + 1]` bounds list `i`; always starts `[0]`.
    offsets: Vec<u32>,
    /// All lists, concatenated in push order.
    terms: Vec<Term>,
}

impl Default for CsrKeywords {
    fn default() -> Self {
        Self::new()
    }
}

impl CsrKeywords {
    /// Creates an empty packer.
    pub fn new() -> Self {
        Self {
            offsets: vec![0],
            terms: Vec::new(),
        }
    }

    /// Appends one keyword list. The scratch buffer is sorted and
    /// deduplicated in place (establishing the [`KeywordSet`] invariant
    /// once, at pack time) and left empty for the caller to reuse.
    ///
    /// # Panics
    ///
    /// Panics if the packed buffer would exceed `u32::MAX` total terms.
    pub fn push_list(&mut self, scratch: &mut Vec<Term>) {
        scratch.sort_unstable();
        scratch.dedup();
        self.terms.extend_from_slice(scratch);
        scratch.clear();
        let end = u32::try_from(self.terms.len()).expect("CSR keyword buffer exceeds u32 terms");
        self.offsets.push(end);
    }

    /// Number of packed lists.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True if no lists have been pushed.
    pub fn is_empty(&self) -> bool {
        self.offsets.len() == 1
    }

    /// Total packed terms across all lists.
    pub fn total_terms(&self) -> usize {
        self.terms.len()
    }

    /// List `i` (sorted, deduplicated).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn get(&self, i: usize) -> &[Term] {
        &self.terms[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Iterates over the packed lists in push order.
    pub fn iter(&self) -> impl Iterator<Item = &[Term]> {
        (0..self.len()).map(|i| self.get(i))
    }

    /// Materialises the lists into per-feature [`KeywordSet`]s — the only
    /// point of the load path that allocates per feature, and each
    /// allocation is exactly sized.
    pub fn into_keyword_sets(self) -> Vec<KeywordSet> {
        self.iter()
            .map(|list| KeywordSet::from_sorted(list.to_vec()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn terms(ids: &[u32]) -> Vec<Term> {
        ids.iter().copied().map(Term).collect()
    }

    #[test]
    fn packs_sorts_and_dedups_lists() {
        let mut csr = CsrKeywords::new();
        let mut scratch = terms(&[5, 1, 5, 3]);
        csr.push_list(&mut scratch);
        assert!(scratch.is_empty(), "scratch is recycled");
        scratch.extend(terms(&[2]));
        csr.push_list(&mut scratch);
        csr.push_list(&mut scratch); // empty list

        assert_eq!(csr.len(), 3);
        assert_eq!(csr.total_terms(), 4);
        assert_eq!(csr.get(0), &terms(&[1, 3, 5])[..]);
        assert_eq!(csr.get(1), &terms(&[2])[..]);
        assert_eq!(csr.get(2), &[] as &[Term]);
    }

    #[test]
    fn empty_packer() {
        let csr = CsrKeywords::new();
        assert!(csr.is_empty());
        assert_eq!(csr.len(), 0);
        assert_eq!(csr.iter().count(), 0);
        assert!(csr.into_keyword_sets().is_empty());
    }

    #[test]
    fn materialises_keyword_sets() {
        let mut csr = CsrKeywords::new();
        csr.push_list(&mut terms(&[9, 2]));
        csr.push_list(&mut terms(&[4]));
        let sets = csr.into_keyword_sets();
        assert_eq!(sets.len(), 2);
        assert_eq!(sets[0], KeywordSet::from_ids([2, 9]));
        assert_eq!(sets[1], KeywordSet::from_ids([4]));
    }

    #[test]
    fn default_is_empty() {
        // Default must uphold the leading-zero offset invariant.
        let mut csr = CsrKeywords::default();
        assert!(csr.is_empty());
        csr.push_list(&mut terms(&[1]));
        assert_eq!(csr.get(0), &terms(&[1])[..]);
    }
}
