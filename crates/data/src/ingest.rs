//! Streaming ingestion of external `id<TAB>x<TAB>y<TAB>keywords` dumps.
//!
//! The paper evaluates on real Flickr and Twitter dumps; streaming
//! spatial-keyword systems (e.g. Tornado) assume the same input shape:
//! one object per line, tab-separated, with a comma-separated textual
//! keyword list on feature objects. This module turns such dumps into a
//! [`Dataset`] ready for the query engine:
//!
//! * [`ingest_files`] — the common two-file layout: a data-object dump
//!   (`id<TAB>x<TAB>y`) plus a feature-object dump
//!   (`id<TAB>x<TAB>y<TAB>kw1,kw2,...`).
//! * [`ingest_combined`] — a single tagged file (`D`/`F` record tags, the
//!   layout [`crate::tsv`] writes), with an optional `# bounds` header.
//! * [`synthesize_dump`] — a deterministic, seedable dump writer with
//!   Flickr-shaped skew, so tests, examples and CI can fabricate
//!   realistic dumps without network access.
//!
//! The loader **streams**: lines are read into one reusable buffer,
//! keywords are interned into a [`Vocabulary`] (one `String` per distinct
//! word, ever) and packed into a CSR buffer ([`CsrKeywords`]) as they are
//! parsed — a million-object dump never allocates per keyword occurrence.
//!
//! ## Malformed lines
//!
//! Every structural defect — wrong field count, non-finite or unparsable
//! coordinate, bad id, empty keyword list, duplicate id within a dataset,
//! unknown record tag — is reported as a line-numbered
//! [`IngestError::Line`] under the default [`MalformedPolicy::Fail`], or
//! counted and skipped under [`MalformedPolicy::Skip`] (the counters come
//! back in [`Ingested::skips`]). Lines use Unix or CRLF endings
//! interchangeably; blank lines and (in untagged files) `#`-prefixed
//! comment lines are ignored.

use crate::dataset::Dataset;
use crate::generators::{DatasetGenerator, FlickrLike};
use crate::vocab::{CsrKeywords, Vocabulary};
use spq_core::{DataObject, FeatureObject};
use spq_spatial::{Point, Rect};
use spq_text::Term;
use std::collections::HashSet;
use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// What to do with a malformed line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MalformedPolicy {
    /// Abort the whole ingest with a line-numbered [`IngestError::Line`].
    #[default]
    Fail,
    /// Drop the line, bump the matching [`SkipCounters`] field, continue.
    Skip,
}

/// Ingestion options.
#[derive(Debug, Clone, Default)]
pub struct IngestOptions {
    /// Malformed-line policy (default: [`MalformedPolicy::Fail`]).
    pub policy: MalformedPolicy,
}

impl IngestOptions {
    /// Options with the lossy [`MalformedPolicy::Skip`] policy.
    pub fn lossy() -> Self {
        Self {
            policy: MalformedPolicy::Skip,
        }
    }
}

/// The structural defect of one malformed line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LineErrorKind {
    /// Wrong number of tab-separated fields.
    FieldCount {
        /// Fields the record layout requires.
        want: usize,
        /// Fields the line actually has.
        got: usize,
    },
    /// A coordinate failed to parse or is not finite.
    BadCoordinate(String),
    /// The id field failed to parse as `u64`.
    BadId(String),
    /// A keyword token is empty (or, in numeric term mode, not a `u32`).
    BadTerm(String),
    /// A feature line with no keywords at all (such a feature can never
    /// match a query and almost always indicates a mangled dump).
    EmptyKeywords,
    /// An id that already appeared in the same dataset.
    DuplicateId(u64),
    /// A combined-file line with an unrecognized record tag.
    UnknownTag(String),
    /// A `# bounds` header with the wrong shape or a degenerate rect.
    BadHeader,
}

impl fmt::Display for LineErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LineErrorKind::FieldCount { want, got } => {
                write!(f, "expected {want} tab-separated fields, got {got}")
            }
            LineErrorKind::BadCoordinate(s) => write!(f, "bad coordinate {s:?}"),
            LineErrorKind::BadId(s) => write!(f, "bad id {s:?}"),
            LineErrorKind::BadTerm(s) => write!(f, "bad term {s:?}"),
            LineErrorKind::EmptyKeywords => write!(f, "feature line has no keywords"),
            LineErrorKind::DuplicateId(id) => write!(f, "duplicate id {id}"),
            LineErrorKind::UnknownTag(s) => write!(f, "unknown record tag {s:?}"),
            LineErrorKind::BadHeader => write!(f, "malformed bounds header"),
        }
    }
}

/// A malformed line: which file, which line (1-based), what was wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineError {
    /// Label of the offending input (the file path for path-based entry
    /// points).
    pub file: String,
    /// 1-based line number within that input.
    pub line: usize,
    /// The defect.
    pub kind: LineErrorKind,
}

impl fmt::Display for LineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} line {}: {}", self.file, self.line, self.kind)
    }
}

/// Why an ingest failed.
#[derive(Debug)]
pub enum IngestError {
    /// The underlying reader failed.
    Io(io::Error),
    /// A malformed line under [`MalformedPolicy::Fail`].
    Line(LineError),
}

impl IngestError {
    /// The line-level detail, if this is a malformed-line error.
    pub fn line(&self) -> Option<&LineError> {
        match self {
            IngestError::Line(e) => Some(e),
            IngestError::Io(_) => None,
        }
    }
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Io(e) => write!(f, "ingest I/O error: {e}"),
            IngestError::Line(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IngestError::Io(e) => Some(e),
            IngestError::Line(_) => None,
        }
    }
}

impl From<io::Error> for IngestError {
    fn from(e: io::Error) -> Self {
        IngestError::Io(e)
    }
}

impl From<IngestError> for io::Error {
    fn from(e: IngestError) -> Self {
        match e {
            IngestError::Io(e) => e,
            IngestError::Line(l) => io::Error::new(io::ErrorKind::InvalidData, l.to_string()),
        }
    }
}

/// Per-category counts of lines dropped under [`MalformedPolicy::Skip`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SkipCounters {
    /// Structurally broken lines: field counts, coordinates, ids, terms,
    /// tags, headers.
    pub bad_lines: u64,
    /// Feature lines with an empty keyword list.
    pub empty_keywords: u64,
    /// Lines whose id already appeared in the same dataset.
    pub duplicate_ids: u64,
}

impl SkipCounters {
    /// Total skipped lines.
    pub fn total(&self) -> u64 {
        self.bad_lines + self.empty_keywords + self.duplicate_ids
    }

    fn bump(&mut self, kind: &LineErrorKind) {
        match kind {
            LineErrorKind::EmptyKeywords => self.empty_keywords += 1,
            LineErrorKind::DuplicateId(_) => self.duplicate_ids += 1,
            _ => self.bad_lines += 1,
        }
    }
}

/// The product of one ingest: the dataset, the vocabulary it was interned
/// against, and load statistics.
#[derive(Debug, Clone)]
pub struct Ingested {
    /// The loaded dataset. `vocab_size` equals the vocabulary length (or
    /// the dump's `# bounds` header value, when larger); `bounds` comes
    /// from the header when present, otherwise it is the tight bounding
    /// box of the loaded objects (degenerate axes padded).
    pub dataset: Dataset,
    /// The interner mapping the dump's keyword strings to the dense
    /// [`Term`] ids the dataset's keyword sets carry. Empty in numeric
    /// term mode (the [`crate::tsv`] path).
    pub vocab: Vocabulary,
    /// Lines dropped under [`MalformedPolicy::Skip`] (all zero under
    /// [`MalformedPolicy::Fail`]).
    pub skips: SkipCounters,
    /// Total lines read across all inputs, including blank, comment and
    /// skipped lines.
    pub lines: u64,
}

impl Ingested {
    /// Objects in the loaded dataset, `|O| + |F|`.
    pub fn objects(&self) -> usize {
        self.dataset.total()
    }
}

/// How keyword tokens map to term ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TermMode {
    /// Tokens are words, interned through the vocabulary (external dumps).
    Intern,
    /// Tokens are raw `u32` ids (the [`crate::tsv`] numeric layout, which
    /// also tolerates an empty keyword field for backward compatibility).
    Numeric,
}

/// Record kind a line is parsed as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RecordKind {
    Data,
    Feature,
}

/// The streaming loader state shared by every entry point.
struct Loader {
    mode: TermMode,
    vocab: Vocabulary,
    scratch: Vec<Term>,
    data: Vec<DataObject>,
    data_ids: HashSet<u64>,
    feature_ids: Vec<u64>,
    feature_locs: Vec<Point>,
    feature_id_set: HashSet<u64>,
    csr: CsrKeywords,
    header: Option<(Rect, usize)>,
    lo: Point,
    hi: Point,
    max_term: Option<u32>,
    skips: SkipCounters,
    lines: u64,
}

impl Loader {
    fn new(mode: TermMode) -> Self {
        Self {
            mode,
            vocab: Vocabulary::new(),
            scratch: Vec::new(),
            data: Vec::new(),
            data_ids: HashSet::new(),
            feature_ids: Vec::new(),
            feature_locs: Vec::new(),
            feature_id_set: HashSet::new(),
            csr: CsrKeywords::new(),
            header: None,
            lo: Point::new(f64::INFINITY, f64::INFINITY),
            hi: Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
            max_term: None,
            skips: SkipCounters::default(),
            lines: 0,
        }
    }

    /// Parses one non-blank line. `fixed` names the record kind for
    /// untagged files; `None` reads the combined tagged layout.
    fn consume(&mut self, raw: &str, fixed: Option<RecordKind>) -> Result<(), LineErrorKind> {
        // Records have at most 6 fields (tagged header); split into a
        // stack array so the hot loop never allocates per line.
        let mut slots = [""; 7];
        let mut total = 0usize;
        for f in raw.split('\t') {
            if total < slots.len() {
                slots[total] = f;
            }
            total += 1;
        }
        let fields = &slots[..total.min(slots.len())];
        let (kind, body): (RecordKind, &[&str]) = match fixed {
            Some(kind) => (kind, fields),
            None => match fields[0] {
                "# bounds" => return self.consume_header(fields),
                "D" => (RecordKind::Data, &fields[1..]),
                "F" => (RecordKind::Feature, &fields[1..]),
                tag => return Err(LineErrorKind::UnknownTag(tag.to_owned())),
            },
        };
        let tag_fields = fields.len() - body.len();
        let want = match kind {
            RecordKind::Data => 3,
            RecordKind::Feature => 4,
        };
        if body.len() != want || total != fields.len() {
            return Err(LineErrorKind::FieldCount {
                want: want + tag_fields,
                got: total,
            });
        }
        let id: u64 = body[0]
            .parse()
            .map_err(|_| LineErrorKind::BadId(body[0].to_owned()))?;
        let location = Point::new(coord(body[1])?, coord(body[2])?);

        match kind {
            RecordKind::Data => {
                if !self.data_ids.insert(id) {
                    return Err(LineErrorKind::DuplicateId(id));
                }
                self.data.push(DataObject::new(id, location));
            }
            RecordKind::Feature => {
                if self.feature_id_set.contains(&id) {
                    return Err(LineErrorKind::DuplicateId(id));
                }
                self.parse_terms(body[3])?;
                self.feature_id_set.insert(id);
                self.feature_ids.push(id);
                self.feature_locs.push(location);
                let scratch = &mut self.scratch;
                self.max_term = scratch.iter().map(|t| t.0).max().max(self.max_term);
                self.csr.push_list(scratch);
            }
        }
        self.lo = Point::new(self.lo.x.min(location.x), self.lo.y.min(location.y));
        self.hi = Point::new(self.hi.x.max(location.x), self.hi.y.max(location.y));
        Ok(())
    }

    /// Validates and stages one keyword list into `self.scratch`.
    ///
    /// Every token is validated **before** any token is interned, so a
    /// rejected line never pollutes the vocabulary — the interner holds
    /// exactly the words of committed features.
    fn parse_terms(&mut self, list: &str) -> Result<(), LineErrorKind> {
        debug_assert!(self.scratch.is_empty());
        if list.is_empty() {
            // The numeric tsv layout writes (and therefore must re-read)
            // keyword-less features; external word dumps reject them.
            return match self.mode {
                TermMode::Numeric => Ok(()),
                TermMode::Intern => Err(LineErrorKind::EmptyKeywords),
            };
        }
        match self.mode {
            TermMode::Numeric => {
                for token in list.split(',') {
                    let id: u32 = token
                        .parse()
                        .map_err(|_| LineErrorKind::BadTerm(token.to_owned()))?;
                    self.scratch.push(Term(id));
                }
            }
            TermMode::Intern => {
                if list.split(',').any(str::is_empty) {
                    return Err(LineErrorKind::BadTerm(String::new()));
                }
                self.scratch
                    .extend(list.split(',').map(|w| self.vocab.intern(w)));
            }
        }
        Ok(())
    }

    fn consume_header(&mut self, fields: &[&str]) -> Result<(), LineErrorKind> {
        if fields.len() != 6 {
            return Err(LineErrorKind::BadHeader);
        }
        let mut nums = [0f64; 4];
        for (slot, field) in nums.iter_mut().zip(&fields[1..5]) {
            *slot = coord(field).map_err(|_| LineErrorKind::BadHeader)?;
        }
        let vocab_size: usize = fields[5].parse().map_err(|_| LineErrorKind::BadHeader)?;
        // Degenerate (zero-area) header rects are rejected here so the
        // failure is a line-numbered error, not a grid-construction panic
        // deep in the serving path (grids need positive cell sides; the
        // header-less path pads for the same reason in `tight_bounds`).
        if nums[0] >= nums[2] || nums[1] >= nums[3] {
            return Err(LineErrorKind::BadHeader);
        }
        self.header = Some((
            Rect::from_coords(nums[0], nums[1], nums[2], nums[3]),
            vocab_size,
        ));
        Ok(())
    }

    /// Drives one input through the loader.
    fn read(
        &mut self,
        mut reader: impl BufRead,
        label: &str,
        fixed: Option<RecordKind>,
        options: &IngestOptions,
    ) -> Result<(), IngestError> {
        let mut buf = String::new();
        let mut line_no = 0usize;
        loop {
            buf.clear();
            if reader.read_line(&mut buf)? == 0 {
                return Ok(());
            }
            line_no += 1;
            self.lines += 1;
            // Tolerate CRLF endings and trailing newline-less last lines.
            let line = buf.trim_end_matches(['\r', '\n']);
            if line.is_empty() || (fixed.is_some() && line.starts_with('#')) {
                continue;
            }
            if let Err(kind) = self.consume(line, fixed) {
                self.scratch.clear(); // may hold a rejected line's terms
                match options.policy {
                    MalformedPolicy::Fail => {
                        return Err(IngestError::Line(LineError {
                            file: label.to_owned(),
                            line: line_no,
                            kind,
                        }))
                    }
                    MalformedPolicy::Skip => self.skips.bump(&kind),
                }
            }
        }
    }

    fn finish(self) -> Ingested {
        let computed_bounds = tight_bounds(self.lo, self.hi);
        let (bounds, vocab_size) = match (self.header, self.mode) {
            (Some((rect, size)), TermMode::Intern) => (rect, size.max(self.vocab.len())),
            (Some((rect, size)), TermMode::Numeric) => (rect, size),
            (None, TermMode::Intern) => (computed_bounds, self.vocab.len()),
            (None, TermMode::Numeric) => {
                (computed_bounds, self.max_term.map_or(0, |t| t as usize + 1))
            }
        };
        let keyword_sets = self.csr.into_keyword_sets();
        let features = self
            .feature_ids
            .into_iter()
            .zip(self.feature_locs)
            .zip(keyword_sets)
            .map(|((id, location), keywords)| FeatureObject::new(id, location, keywords))
            .collect();
        Ingested {
            dataset: Dataset {
                bounds,
                data: self.data,
                features,
                vocab_size,
            },
            vocab: self.vocab,
            skips: self.skips,
            lines: self.lines,
        }
    }
}

fn coord(s: &str) -> Result<f64, LineErrorKind> {
    match s.parse::<f64>() {
        Ok(v) if v.is_finite() => Ok(v),
        _ => Err(LineErrorKind::BadCoordinate(s.to_owned())),
    }
}

/// Tight bounding box of the loaded objects; axes with zero extent are
/// padded by ±0.5 so downstream grids always have positive cell sides,
/// and an empty ingest falls back to the unit square.
fn tight_bounds(lo: Point, hi: Point) -> Rect {
    if !lo.x.is_finite() {
        return Rect::unit();
    }
    let (mut lo, mut hi) = (lo, hi);
    if hi.x - lo.x <= 0.0 {
        lo.x -= 0.5;
        hi.x += 0.5;
    }
    if hi.y - lo.y <= 0.0 {
        lo.y -= 0.5;
        hi.y += 0.5;
    }
    Rect::from_coords(lo.x, lo.y, hi.x, hi.y)
}

/// Ingests the two-file dump layout: `data_path` holds `id<TAB>x<TAB>y`
/// lines, `features_path` holds `id<TAB>x<TAB>y<TAB>kw1,kw2,...` lines.
///
/// Keywords are interned in first-occurrence order; the dataset's bounds
/// are the tight bounding box of the loaded objects.
pub fn ingest_files(
    data_path: &Path,
    features_path: &Path,
    options: &IngestOptions,
) -> Result<Ingested, IngestError> {
    ingest_readers(
        BufReader::new(File::open(data_path)?),
        &data_path.display().to_string(),
        BufReader::new(File::open(features_path)?),
        &features_path.display().to_string(),
        options,
    )
}

/// [`ingest_files`] over arbitrary readers (`label`s name the inputs in
/// error messages).
pub fn ingest_readers(
    data: impl BufRead,
    data_label: &str,
    features: impl BufRead,
    features_label: &str,
    options: &IngestOptions,
) -> Result<Ingested, IngestError> {
    let mut loader = Loader::new(TermMode::Intern);
    loader.read(data, data_label, Some(RecordKind::Data), options)?;
    loader.read(features, features_label, Some(RecordKind::Feature), options)?;
    Ok(loader.finish())
}

/// Ingests a combined tagged dump: `D`/`F` record tags, textual keywords,
/// optional `# bounds` header — the layout [`crate::tsv::save_with_vocab`]
/// writes.
pub fn ingest_combined(path: &Path, options: &IngestOptions) -> Result<Ingested, IngestError> {
    ingest_combined_reader(
        BufReader::new(File::open(path)?),
        &path.display().to_string(),
        options,
    )
}

/// [`ingest_combined`] over an arbitrary reader.
pub fn ingest_combined_reader(
    reader: impl BufRead,
    label: &str,
    options: &IngestOptions,
) -> Result<Ingested, IngestError> {
    let mut loader = Loader::new(TermMode::Intern);
    loader.read(reader, label, None, options)?;
    Ok(loader.finish())
}

/// The numeric-term combined loader behind [`crate::tsv::load`].
pub(crate) fn ingest_combined_numeric(path: &Path) -> Result<Ingested, IngestError> {
    let mut loader = Loader::new(TermMode::Numeric);
    loader.read(
        BufReader::new(File::open(path)?),
        &path.display().to_string(),
        None,
        &IngestOptions::default(),
    )?;
    Ok(loader.finish())
}

/// Configuration of [`synthesize_dump`].
#[derive(Debug, Clone)]
pub struct DumpConfig {
    /// Total objects to write (half data, half features).
    pub objects: usize,
    /// RNG seed; the dump is a pure function of `(objects, seed)`.
    pub seed: u64,
}

impl Default for DumpConfig {
    fn default() -> Self {
        Self {
            objects: 100_000,
            seed: 2017,
        }
    }
}

/// What [`synthesize_dump`] wrote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DumpSummary {
    /// Data objects written to the data dump.
    pub data_objects: usize,
    /// Feature objects written to the feature dump.
    pub feature_objects: usize,
    /// Total keyword occurrences written.
    pub keywords: u64,
}

/// Writes a deterministic two-file dump with Flickr-shaped skew (hotspot
/// spatial clusters, shifted-Poisson keyword counts, Zipf term
/// frequencies over a 34,716-word dictionary) — the stand-in for a real
/// photo-site dump in tests, examples and CI.
///
/// Term `t` is rendered as the word `kw<t>`, so the dump exercises the
/// full interning path on ingest.
pub fn synthesize_dump(
    cfg: &DumpConfig,
    data_path: &Path,
    features_path: &Path,
) -> io::Result<DumpSummary> {
    synthesize_dump_with(&FlickrLike, cfg.objects, cfg.seed, data_path, features_path)
}

/// [`synthesize_dump`] with an explicit generator (any of the
/// [`crate::generators`] work; the dump inherits its spatial and textual
/// statistics).
pub fn synthesize_dump_with(
    generator: &dyn DatasetGenerator,
    objects: usize,
    seed: u64,
    data_path: &Path,
    features_path: &Path,
) -> io::Result<DumpSummary> {
    let dataset = generator.generate(objects, seed);
    let mut out = BufWriter::new(File::create(data_path)?);
    for o in &dataset.data {
        writeln!(out, "{}\t{}\t{}", o.id, o.location.x, o.location.y)?;
    }
    out.flush()?;

    let mut keywords = 0u64;
    let mut out = BufWriter::new(File::create(features_path)?);
    for f in &dataset.features {
        write!(out, "{}\t{}\t{}\t", f.id, f.location.x, f.location.y)?;
        for (i, t) in f.keywords.iter().enumerate() {
            if i > 0 {
                out.write_all(b",")?;
            }
            write!(out, "kw{}", t.0)?;
            keywords += 1;
        }
        out.write_all(b"\n")?;
    }
    out.flush()?;
    Ok(DumpSummary {
        data_objects: dataset.data.len(),
        feature_objects: dataset.features.len(),
        keywords,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn opts() -> IngestOptions {
        IngestOptions::default()
    }

    fn ingest_strs(
        data: &str,
        features: &str,
        options: &IngestOptions,
    ) -> Result<Ingested, IngestError> {
        ingest_readers(
            Cursor::new(data.to_owned()),
            "data.tsv",
            Cursor::new(features.to_owned()),
            "features.tsv",
            options,
        )
    }

    #[test]
    fn ingests_two_file_dump() {
        let got = ingest_strs(
            "1\t0.25\t0.5\n2\t0.75\t0.5\n",
            "10\t0.5\t0.25\tpizza,sushi\n11\t0.5\t0.75\tsushi\n",
            &opts(),
        )
        .unwrap();
        assert_eq!(got.dataset.data.len(), 2);
        assert_eq!(got.dataset.features.len(), 2);
        assert_eq!(got.vocab.len(), 2);
        assert_eq!(got.dataset.vocab_size, 2);
        assert_eq!(got.vocab.get("pizza"), Some(Term(0)));
        assert_eq!(got.vocab.get("sushi"), Some(Term(1)));
        assert_eq!(
            got.dataset.features[0].keywords.terms(),
            &[Term(0), Term(1)]
        );
        assert_eq!(got.dataset.features[1].keywords.terms(), &[Term(1)]);
        assert_eq!(got.skips, SkipCounters::default());
        assert_eq!(got.lines, 4);
        // Tight bounds over the four points.
        assert_eq!(
            got.dataset.bounds,
            Rect::from_coords(0.25, 0.25, 0.75, 0.75)
        );
    }

    #[test]
    fn crlf_and_blank_and_comment_lines() {
        let got = ingest_strs(
            "# a comment\r\n1\t0.1\t0.2\r\n\r\n2\t0.3\t0.4\r\n",
            "7\t0.5\t0.5\tcafe\r\n",
            &opts(),
        )
        .unwrap();
        assert_eq!(got.dataset.data.len(), 2);
        assert_eq!(got.dataset.features.len(), 1);
        assert_eq!(got.vocab.get("cafe"), Some(Term(0)));
    }

    #[test]
    fn fail_policy_reports_file_and_line() {
        let err = ingest_strs("1\t0.1\t0.2\n2\tnope\t0.4\n", "", &opts()).unwrap_err();
        let line = err.line().expect("line error");
        assert_eq!(line.file, "data.tsv");
        assert_eq!(line.line, 2);
        assert_eq!(line.kind, LineErrorKind::BadCoordinate("nope".to_owned()));
        assert!(err.to_string().contains("data.tsv line 2"));
    }

    #[test]
    fn fail_policy_covers_every_defect() {
        let cases: Vec<(&str, &str, LineErrorKind)> = vec![
            (
                "1\t0.1\n",
                "",
                LineErrorKind::FieldCount { want: 3, got: 2 },
            ),
            ("x\t0.1\t0.2\n", "", LineErrorKind::BadId("x".to_owned())),
            (
                "1\t0.1\tinf\n",
                "",
                LineErrorKind::BadCoordinate("inf".to_owned()),
            ),
            (
                "1\t0.1\t0.2\n1\t0.3\t0.4\n",
                "",
                LineErrorKind::DuplicateId(1),
            ),
            ("", "5\t0.1\t0.2\t\n", LineErrorKind::EmptyKeywords),
            (
                "",
                "5\t0.1\t0.2\ta,,b\n",
                LineErrorKind::BadTerm(String::new()),
            ),
        ];
        for (data, features, want) in cases {
            let err = ingest_strs(data, features, &opts()).unwrap_err();
            assert_eq!(err.line().unwrap().kind, want);
        }
    }

    #[test]
    fn skip_policy_counts_and_continues() {
        let got = ingest_strs(
            "1\t0.1\t0.2\nbroken line\n2\t0.3\t0.4\n2\t0.5\t0.6\n",
            "5\t0.1\t0.2\t\n6\t0.2\t0.3\tbar\n",
            &IngestOptions::lossy(),
        )
        .unwrap();
        assert_eq!(got.dataset.data.len(), 2);
        assert_eq!(got.dataset.features.len(), 1);
        assert_eq!(got.skips.bad_lines, 1);
        assert_eq!(got.skips.duplicate_ids, 1);
        assert_eq!(got.skips.empty_keywords, 1);
        assert_eq!(got.skips.total(), 3);
        // A rejected line's words never enter the vocabulary.
        assert_eq!(got.vocab.len(), 1);
        assert_eq!(got.vocab.get("bar"), Some(Term(0)));
    }

    #[test]
    fn duplicate_ids_across_datasets_are_fine() {
        // O and F are separate id namespaces (paper, Section 2).
        let got = ingest_strs("1\t0.1\t0.2\n", "1\t0.3\t0.4\tinn\n", &opts()).unwrap();
        assert_eq!(got.dataset.data[0].id, 1);
        assert_eq!(got.dataset.features[0].id, 1);
    }

    #[test]
    fn combined_tagged_dump_with_header() {
        let text = "# bounds\t0\t0\t2\t2\t7\nD\t1\t0.5\t0.5\nF\t2\t1.5\t1.5\tpub\n";
        let got =
            ingest_combined_reader(Cursor::new(text.to_owned()), "dump.tsv", &opts()).unwrap();
        assert_eq!(got.dataset.bounds, Rect::from_coords(0.0, 0.0, 2.0, 2.0));
        // Header vocab size wins when larger than the interned vocabulary.
        assert_eq!(got.dataset.vocab_size, 7);
        assert_eq!(got.vocab.len(), 1);
        let err =
            ingest_combined_reader(Cursor::new("X\t1\t2\t3\n".to_owned()), "dump.tsv", &opts())
                .unwrap_err();
        assert_eq!(
            err.line().unwrap().kind,
            LineErrorKind::UnknownTag("X".to_owned())
        );
    }

    #[test]
    fn degenerate_header_bounds_are_rejected() {
        // A zero-width header must be a line-numbered error, not a panic
        // later when a grid is built over a zero-area rect.
        for header in [
            "# bounds\t0\t0\t0\t1\t5\n",
            "# bounds\t0\t0\t1\t0\t5\n",
            "# bounds\t2\t2\t2\t2\t5\n",
        ] {
            let text = format!("{header}D\t1\t0\t0\n");
            let err = ingest_combined_reader(Cursor::new(text), "dump.tsv", &opts()).unwrap_err();
            assert_eq!(err.line().unwrap().kind, LineErrorKind::BadHeader);
            assert_eq!(err.line().unwrap().line, 1);
        }
    }

    #[test]
    fn degenerate_bounds_are_padded() {
        let got = ingest_strs("1\t3\t5\n", "", &opts()).unwrap();
        assert_eq!(got.dataset.bounds, Rect::from_coords(2.5, 4.5, 3.5, 5.5));
        let empty = ingest_strs("", "", &opts()).unwrap();
        assert_eq!(empty.dataset.bounds, Rect::unit());
    }

    #[test]
    fn synthesized_dump_round_trips_deterministically() {
        let dir = std::env::temp_dir();
        let d = dir.join(format!("spq-ingest-{}-d.tsv", std::process::id()));
        let f = dir.join(format!("spq-ingest-{}-f.tsv", std::process::id()));
        let cfg = DumpConfig {
            objects: 400,
            seed: 11,
        };
        let summary = synthesize_dump(&cfg, &d, &f).unwrap();
        assert_eq!(summary.data_objects, 200);
        assert_eq!(summary.feature_objects, 200);
        assert!(summary.keywords > 0);

        let a = ingest_files(&d, &f, &opts()).unwrap();
        assert_eq!(a.dataset.data.len(), 200);
        assert_eq!(a.dataset.features.len(), 200);
        assert_eq!(a.skips.total(), 0);
        assert!(!a.vocab.is_empty());
        assert!(a
            .dataset
            .features
            .iter()
            .all(|feat| !feat.keywords.is_empty()));

        // Same config → byte-identical files → identical ingest.
        let d2 = dir.join(format!("spq-ingest-{}-d2.tsv", std::process::id()));
        let f2 = dir.join(format!("spq-ingest-{}-f2.tsv", std::process::id()));
        synthesize_dump(&cfg, &d2, &f2).unwrap();
        assert_eq!(
            std::fs::read(&d).unwrap(),
            std::fs::read(&d2).unwrap(),
            "data dump is deterministic"
        );
        assert_eq!(std::fs::read(&f).unwrap(), std::fs::read(&f2).unwrap());
        let b = ingest_files(&d2, &f2, &opts()).unwrap();
        assert_eq!(a.dataset.data, b.dataset.data);
        assert_eq!(a.dataset.features, b.dataset.features);
        assert_eq!(a.vocab, b.vocab);
        for p in [&d, &f, &d2, &f2] {
            std::fs::remove_file(p).ok();
        }
    }
}
