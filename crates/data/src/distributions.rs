//! Sampling primitives the generators need beyond `rand`'s built-ins:
//! normal (Box–Muller) and Poisson (Knuth) variates.

use rand::Rng;

/// Draws one standard-normal variate via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] to avoid ln(0).
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Draws a normal variate with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    assert!(std_dev >= 0.0, "standard deviation must be >= 0");
    mean + standard_normal(rng) * std_dev
}

/// Draws a Poisson variate with mean `lambda` (Knuth's product method —
/// fine for the small λ ≈ 7–10 used by the keyword-count models).
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    assert!(
        lambda >= 0.0 && lambda.is_finite(),
        "lambda must be finite and >= 0"
    );
    if lambda == 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        // λ is small in all callers; this bound is a safety net against
        // pathological RNG streams, not a statistical correction.
        if k > 10_000 {
            return k;
        }
    }
}

/// The number of keywords attached to a generated feature object.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeywordCount {
    /// Uniform in `[min, max]` — the paper's synthetic datasets use
    /// `[10, 100]`.
    UniformRange {
        /// Inclusive lower bound (>= 1).
        min: usize,
        /// Inclusive upper bound.
        max: usize,
    },
    /// `1 + Poisson(mean - 1)` — at least one keyword, with the requested
    /// mean; models the short annotations of the real datasets.
    ShiftedPoisson {
        /// Target mean number of keywords (> 1).
        mean: f64,
    },
}

impl KeywordCount {
    /// Draws a keyword count (always >= 1).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        match *self {
            KeywordCount::UniformRange { min, max } => {
                assert!(min >= 1 && min <= max, "invalid keyword range");
                rng.gen_range(min..=max)
            }
            KeywordCount::ShiftedPoisson { mean } => {
                assert!(mean >= 1.0, "mean keyword count must be >= 1");
                1 + poisson(rng, mean - 1.0) as usize
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn poisson_mean_matches_lambda() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| poisson(&mut rng, 6.9)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 6.9).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn poisson_zero_lambda() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn keyword_counts_in_range() {
        let mut rng = StdRng::seed_from_u64(4);
        let model = KeywordCount::UniformRange { min: 10, max: 100 };
        for _ in 0..1000 {
            let c = model.sample(&mut rng);
            assert!((10..=100).contains(&c));
        }
    }

    #[test]
    fn shifted_poisson_mean_and_floor() {
        let mut rng = StdRng::seed_from_u64(5);
        let model = KeywordCount::ShiftedPoisson { mean: 7.9 };
        let n = 20_000;
        let mut total = 0usize;
        for _ in 0..n {
            let c = model.sample(&mut rng);
            assert!(c >= 1);
            total += c;
        }
        let mean = total as f64 / n as f64;
        // Matches the Flickr statistic the generator advertises.
        assert!((mean - 7.9).abs() < 0.15, "mean {mean}");
    }

    #[test]
    #[should_panic]
    fn negative_lambda_rejected() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = poisson(&mut rng, -1.0);
    }
}
