//! The four dataset generators of the experimental study.
//!
//! All generators work in the unit square, split objects 50/50 into data
//! and feature objects (Section 7.1: "we randomly select half of the
//! objects to act as data objects and the other half as feature objects"),
//! and are fully deterministic given a seed.

use crate::dataset::Dataset;
use crate::distributions::{normal, KeywordCount};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spq_core::{DataObject, FeatureObject};
use spq_spatial::{Point, Rect};
use spq_text::{KeywordSet, Term, Zipf};

/// A source of synthetic SPQ datasets.
pub trait DatasetGenerator {
    /// Short dataset name as used in the paper's figures (UN, CL, FL, TW).
    fn name(&self) -> &'static str;

    /// Dictionary cardinality the generator draws terms from.
    fn vocab_size(&self) -> usize;

    /// Generates `total_objects` objects (half data, half features),
    /// deterministically for a given seed.
    fn generate(&self, total_objects: usize, seed: u64) -> Dataset;
}

/// Spatial placement model shared by the generators.
#[derive(Debug, Clone)]
enum SpatialModel {
    /// Uniform over the unit square.
    Uniform,
    /// A mixture of Gaussian hotspots (optionally Zipf-weighted, with
    /// per-cluster spreads) plus a uniform background fraction.
    Hotspots {
        clusters: usize,
        /// Spread range `[min_sigma, max_sigma]` sampled per cluster.
        sigma: (f64, f64),
        /// Fraction of points drawn uniformly instead of from a cluster.
        background: f64,
        /// Zipf exponent over cluster popularity (0 = equal-sized
        /// clusters, as in the paper's CL dataset).
        weight_exponent: f64,
    },
}

impl SpatialModel {
    fn build(&self, rng: &mut StdRng) -> PlacedModel {
        match *self {
            SpatialModel::Uniform => PlacedModel::Uniform,
            SpatialModel::Hotspots {
                clusters,
                sigma,
                background,
                weight_exponent,
            } => {
                let centers: Vec<(Point, f64)> = (0..clusters)
                    .map(|_| {
                        let c = Point::new(rng.gen(), rng.gen());
                        let s = rng.gen_range(sigma.0..=sigma.1);
                        (c, s)
                    })
                    .collect();
                PlacedModel::Hotspots {
                    centers,
                    background,
                    picker: Zipf::new(clusters, weight_exponent),
                }
            }
        }
    }
}

/// A spatial model with its cluster centres fixed for one generation run.
enum PlacedModel {
    Uniform,
    Hotspots {
        centers: Vec<(Point, f64)>,
        background: f64,
        picker: Zipf,
    },
}

impl PlacedModel {
    fn sample(&self, rng: &mut StdRng) -> Point {
        match self {
            PlacedModel::Uniform => Point::new(rng.gen(), rng.gen()),
            PlacedModel::Hotspots {
                centers,
                background,
                picker,
            } => {
                if rng.gen::<f64>() < *background {
                    return Point::new(rng.gen(), rng.gen());
                }
                let (center, sigma) = centers[picker.sample(rng)];
                Point::new(
                    normal(rng, center.x, sigma).clamp(0.0, 1.0),
                    normal(rng, center.y, sigma).clamp(0.0, 1.0),
                )
            }
        }
    }
}

/// Shared generation core.
#[derive(Debug, Clone)]
struct GenCore {
    name: &'static str,
    spatial: SpatialModel,
    keyword_count: KeywordCount,
    vocab_size: usize,
    /// Zipf exponent over term popularity (0 = the paper's uniform term
    /// selection for UN/CL; ~1 mimics natural-language dictionaries).
    term_exponent: f64,
}

impl GenCore {
    fn generate(&self, total_objects: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = self.spatial.build(&mut rng);
        let terms = Zipf::new(self.vocab_size, self.term_exponent);
        let n_data = total_objects / 2;
        let n_features = total_objects - n_data;

        let data: Vec<DataObject> = (0..n_data)
            .map(|i| DataObject::new(i as u64, model.sample(&mut rng)))
            .collect();
        let features: Vec<FeatureObject> = (0..n_features)
            .map(|i| {
                let location = model.sample(&mut rng);
                let count = self.keyword_count.sample(&mut rng).min(self.vocab_size);
                let kw: Vec<Term> = terms
                    .sample_distinct(&mut rng, count)
                    .into_iter()
                    .map(|t| Term(t as u32))
                    .collect();
                FeatureObject::new(i as u64, location, KeywordSet::new(kw))
            })
            .collect();

        Dataset {
            bounds: Rect::unit(),
            data,
            features,
            vocab_size: self.vocab_size,
        }
    }
}

macro_rules! generator {
    ($(#[$doc:meta])* $name:ident, $core:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Default)]
        pub struct $name;

        impl DatasetGenerator for $name {
            fn name(&self) -> &'static str {
                $core.name
            }
            fn vocab_size(&self) -> usize {
                $core.vocab_size
            }
            fn generate(&self, total_objects: usize, seed: u64) -> Dataset {
                $core.generate(total_objects, seed)
            }
        }
    };
}

generator!(
    /// The paper's **UN** dataset: uniform spatial distribution, 10–100
    /// keywords per feature drawn uniformly from a 1,000-term vocabulary.
    UniformGen,
    GenCore {
        name: "UN",
        spatial: SpatialModel::Uniform,
        keyword_count: KeywordCount::UniformRange { min: 10, max: 100 },
        vocab_size: 1000,
        term_exponent: 0.0,
    }
);

generator!(
    /// The paper's **CL** dataset: 16 Gaussian clusters at random
    /// positions, all other parameters as UN. Deliberately hostile to the
    /// grid: reducers are imbalanced and boundary clusters duplicate
    /// heavily (Section 7.2.4).
    ClusteredGen,
    GenCore {
        name: "CL",
        spatial: SpatialModel::Hotspots {
            clusters: 16,
            sigma: (0.01, 0.03),
            background: 0.0,
            weight_exponent: 0.0,
        },
        keyword_count: KeywordCount::UniformRange { min: 10, max: 100 },
        vocab_size: 1000,
        term_exponent: 0.0,
    }
);

generator!(
    /// A **Flickr-like** dataset: hotspot spatial skew, shifted-Poisson
    /// keyword counts with mean 7.9 and Zipf term frequencies over a
    /// 34,716-term dictionary — the statistics reported for the paper's
    /// FL dataset.
    FlickrLike,
    GenCore {
        name: "FL",
        spatial: SpatialModel::Hotspots {
            clusters: 256,
            sigma: (0.005, 0.05),
            background: 0.15,
            weight_exponent: 1.0,
        },
        keyword_count: KeywordCount::ShiftedPoisson { mean: 7.9 },
        vocab_size: 34_716,
        term_exponent: 1.0,
    }
);

generator!(
    /// A **Twitter-like** dataset: denser hotspot skew, shifted-Poisson
    /// keyword counts with mean 9.8 and Zipf term frequencies over an
    /// 88,706-term dictionary — the statistics reported for the paper's
    /// TW dataset.
    TwitterLike,
    GenCore {
        name: "TW",
        spatial: SpatialModel::Hotspots {
            clusters: 400,
            sigma: (0.004, 0.04),
            background: 0.2,
            weight_exponent: 1.0,
        },
        keyword_count: KeywordCount::ShiftedPoisson { mean: 9.8 },
        vocab_size: 88_706,
        term_exponent: 1.0,
    }
);

#[cfg(test)]
mod tests {
    use super::*;
    use spq_spatial::Grid;

    fn all() -> Vec<Box<dyn DatasetGenerator>> {
        vec![
            Box::new(UniformGen),
            Box::new(ClusteredGen),
            Box::new(FlickrLike),
            Box::new(TwitterLike),
        ]
    }

    #[test]
    fn names_and_vocab_sizes_match_paper() {
        let names: Vec<&str> = all().iter().map(|g| g.name()).collect();
        assert_eq!(names, vec!["UN", "CL", "FL", "TW"]);
        assert_eq!(UniformGen.vocab_size(), 1000);
        assert_eq!(FlickrLike.vocab_size(), 34_716);
        assert_eq!(TwitterLike.vocab_size(), 88_706);
    }

    #[test]
    fn halves_and_bounds() {
        for g in all() {
            let d = g.generate(2001, 7);
            assert_eq!(d.data.len(), 1000, "{}", g.name());
            assert_eq!(d.features.len(), 1001, "{}", g.name());
            for o in &d.data {
                assert!(d.bounds.contains(&o.location), "{}", g.name());
            }
            for f in &d.features {
                assert!(d.bounds.contains(&f.location), "{}", g.name());
                assert!(!f.keywords.is_empty());
                assert!(f.keywords.iter().all(|t| t.index() < g.vocab_size()));
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        for g in all() {
            let a = g.generate(500, 42);
            let b = g.generate(500, 42);
            assert_eq!(a.data, b.data, "{}", g.name());
            assert_eq!(a.features, b.features, "{}", g.name());
            let c = g.generate(500, 43);
            assert_ne!(
                a.features,
                c.features,
                "{} should differ across seeds",
                g.name()
            );
        }
    }

    #[test]
    fn un_keyword_counts_in_paper_range() {
        let d = UniformGen.generate(2000, 1);
        for f in &d.features {
            assert!((10..=100).contains(&f.keywords.len()));
        }
        let mean = d.mean_keywords();
        assert!((50.0..60.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn fl_tw_keyword_means_match_reported_statistics() {
        let fl = FlickrLike.generate(20_000, 2);
        assert!(
            (fl.mean_keywords() - 7.9).abs() < 0.3,
            "FL mean {}",
            fl.mean_keywords()
        );
        let tw = TwitterLike.generate(20_000, 3);
        assert!(
            (tw.mean_keywords() - 9.8).abs() < 0.3,
            "TW mean {}",
            tw.mean_keywords()
        );
    }

    /// Coefficient of variation of per-cell object counts — a direct
    /// measure of the reducer imbalance the paper attributes to CL.
    fn density_cv(d: &Dataset) -> f64 {
        let grid = Grid::square(d.bounds, 8);
        let mut counts = vec![0f64; grid.num_cells()];
        for o in &d.data {
            counts[grid.cell_of(&o.location).index()] += 1.0;
        }
        let mean = counts.iter().sum::<f64>() / counts.len() as f64;
        let var = counts.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / counts.len() as f64;
        var.sqrt() / mean
    }

    #[test]
    fn clustered_is_much_more_skewed_than_uniform() {
        let un = UniformGen.generate(20_000, 5);
        let cl = ClusteredGen.generate(20_000, 5);
        let (cv_un, cv_cl) = (density_cv(&un), density_cv(&cl));
        assert!(cv_cl > 4.0 * cv_un, "CL cv {cv_cl} not >> UN cv {cv_un}");
    }

    #[test]
    fn zipf_terms_skew_head_of_dictionary() {
        let fl = FlickrLike.generate(4000, 9);
        let head_hits: usize = fl
            .features
            .iter()
            .flat_map(|f| f.keywords.iter())
            .filter(|t| t.index() < 100)
            .count();
        let total: usize = fl.features.iter().map(|f| f.keywords.len()).sum();
        // Under Zipf(1) over ~35k terms, the top-100 terms carry ~40% of
        // occurrences; uniform selection would give ~0.3%.
        assert!(
            head_hits as f64 / total as f64 > 0.2,
            "head fraction {}",
            head_hits as f64 / total as f64
        );
    }

    #[test]
    fn tiny_and_odd_totals() {
        let d = UniformGen.generate(1, 0);
        assert_eq!(d.data.len(), 0);
        assert_eq!(d.features.len(), 1);
        let e = UniformGen.generate(0, 0);
        assert_eq!(e.total(), 0);
    }
}
