//! Global merge of per-cell top-k results.
//!
//! Each reduce task reports the top-k data objects *of its cell*; "the
//! final result is produced by merging the k results of each of the R
//! cells and returning the top-k with the highest score. [...] this last
//! step can be performed in a centralized way without significant
//! overhead" (Section 4.2). Data objects are never duplicated across
//! cells, so the merge needs no deduplication.

use crate::model::RankedObject;

/// Merges per-cell results into the global top-k (canonical order:
/// score desc, id asc).
pub fn merge_top_k(cell_results: Vec<RankedObject>, k: usize) -> Vec<RankedObject> {
    let mut all = cell_results;
    all.sort_by(RankedObject::canonical_cmp);
    all.truncate(k);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use spq_spatial::Point;
    use spq_text::Score;

    fn r(id: u64, num: usize) -> RankedObject {
        RankedObject::new(id, Point::new(0.0, 0.0), Score::ratio(num, 10))
    }

    #[test]
    fn merges_across_cells() {
        // Two cells' local top-2 lists.
        let merged = merge_top_k(vec![r(1, 9), r(2, 3), r(3, 7), r(4, 5)], 2);
        assert_eq!(
            merged.iter().map(|e| e.object).collect::<Vec<_>>(),
            vec![1, 3]
        );
    }

    #[test]
    fn fewer_results_than_k() {
        let merged = merge_top_k(vec![r(1, 5)], 10);
        assert_eq!(merged.len(), 1);
    }

    #[test]
    fn ties_resolved_by_id() {
        let merged = merge_top_k(vec![r(9, 5), r(2, 5), r(5, 5)], 2);
        assert_eq!(
            merged.iter().map(|e| e.object).collect::<Vec<_>>(),
            vec![2, 5]
        );
    }

    #[test]
    fn empty_input() {
        assert!(merge_top_k(vec![], 5).is_empty());
    }
}
