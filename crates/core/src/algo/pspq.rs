//! pSPQ — the parallel grid-based algorithm without early termination
//! (Section 4, Algorithms 1 and 2).
//!
//! Map emits `⟨(cell, tag), handle⟩` with tag 0 for data and 1 for feature
//! objects, so each reducer sees all of its cell's data objects before any
//! feature object. The handle carries an index into the shared dataset
//! store plus the feature's score, computed exactly once per feature on
//! the map side — Lemma-1 boundary duplication copies 16 bytes, not a
//! keyword list. Because the tag *is* the sub-bucket, the shuffle delivers
//! both runs pre-grouped and the reducer never sorts anything.
//!
//! The reducer loads the data objects into memory, then for every feature
//! whose score beats the current threshold `τ` scans them for
//! `d(p, f) <= r` matches, maintaining the top-k list `Lk`. Every feature
//! of the cell is examined — the limitation (Section 4.2.3) that motivates
//! the early-termination variants.

use crate::algo::ObjectHandle;
use crate::model::RankedObject;
use crate::partitioning::{
    route_data, route_scored_feature, CellRouting, COUNTER_MAP_DATA, COUNTER_MAP_DUPLICATES,
    COUNTER_MAP_FEATURES, COUNTER_MAP_PRUNED, COUNTER_REDUCE_DISTANCE_CHECKS,
    COUNTER_REDUCE_FEATURES_EXAMINED,
};
use crate::query::SpqQuery;
use crate::store::{ObjectRef, SharedDataset};
use crate::topk::TopKList;
use spq_mapreduce::{GroupValues, MapContext, MapReduceTask, ReduceContext};
use spq_spatial::{CellId, Point, SpacePartition};
use spq_text::Score;
use std::cmp::Ordering;

/// The composite key of Algorithm 1: cell id plus a tag ordering data
/// objects (0) before feature objects (1) within the cell's reduce group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PSpqKey {
    /// The grid cell (natural key: partitioning and grouping).
    pub cell: u32,
    /// 0 for data objects, 1 for feature objects (doubles as the
    /// sub-bucket, so the shuffle pre-groups the two runs).
    pub tag: u8,
}

/// The pSPQ MapReduce task.
#[derive(Debug)]
pub struct PSpqTask<'a> {
    dataset: &'a SharedDataset,
    grid: &'a SpacePartition,
    query: &'a SpqQuery,
    prune: bool,
    routing: Option<&'a CellRouting>,
}

impl<'a> PSpqTask<'a> {
    /// Creates the task for one query over one query-time partition of a
    /// shared dataset.
    pub fn new(dataset: &'a SharedDataset, grid: &'a SpacePartition, query: &'a SpqQuery) -> Self {
        Self {
            dataset,
            grid,
            query,
            prune: true,
            routing: None,
        }
    }

    /// Disables the map-side keyword pruning rule (ablation; results are
    /// unchanged, the shuffle just carries every feature object).
    pub fn without_pruning(mut self) -> Self {
        self.prune = false;
        self
    }

    /// Routes through prebuilt [`CellRouting`] tables (built for this
    /// query's radius over `grid`) instead of walking the partition per
    /// record — the engine's build-once path. Results are byte-identical.
    pub fn with_routing(mut self, routing: &'a CellRouting) -> Self {
        debug_assert_eq!(routing.radius().to_bits(), self.query.radius.to_bits());
        self.routing = Some(routing);
        self
    }
}

impl MapReduceTask for PSpqTask<'_> {
    type Input = ObjectRef;
    type Key = PSpqKey;
    type Value = ObjectHandle;
    type Output = RankedObject;

    fn num_reducers(&self) -> usize {
        self.grid.num_cells()
    }

    // Algorithm 1.
    fn map(&self, record: &ObjectRef, ctx: &mut MapContext<'_, Self>) {
        match *record {
            ObjectRef::Data(i) => {
                ctx.counters().inc(COUNTER_MAP_DATA);
                let cell = match self.routing {
                    Some(rt) => rt.data_cell(i),
                    None => route_data(self.grid, &self.dataset.data()[i as usize].location),
                };
                ctx.emit(
                    self,
                    PSpqKey {
                        cell: cell.0,
                        tag: 0,
                    },
                    ObjectHandle::Data(i),
                );
            }
            ObjectRef::Feature(i) => {
                let f = &self.dataset.features()[i as usize];
                // Scored once per feature; every routed copy reuses it.
                let mut emit = |c: CellId, w: Score| {
                    ctx.emit(
                        self,
                        PSpqKey { cell: c.0, tag: 1 },
                        ObjectHandle::Feature(i, w),
                    );
                };
                let routed = match self.routing {
                    Some(rt) => rt.route_scored_feature(self.query, f, i, self.prune, &mut emit),
                    None => route_scored_feature(self.grid, self.query, f, self.prune, &mut emit),
                };
                match routed {
                    Some(copies) => {
                        ctx.counters().inc(COUNTER_MAP_FEATURES);
                        ctx.counters().add(COUNTER_MAP_DUPLICATES, copies - 1);
                    }
                    None => ctx.counters().inc(COUNTER_MAP_PRUNED),
                }
            }
        }
    }

    fn partition(&self, key: &PSpqKey) -> usize {
        key.cell as usize
    }

    fn sort_cmp(&self, a: &PSpqKey, b: &PSpqKey) -> Ordering {
        a.cell.cmp(&b.cell).then(a.tag.cmp(&b.tag))
    }

    fn group_eq(&self, a: &PSpqKey, b: &PSpqKey) -> bool {
        a.cell == b.cell
    }

    fn num_subbuckets(&self) -> usize {
        2
    }

    fn subbucket(&self, key: &PSpqKey) -> usize {
        key.tag as usize
    }

    // Data-before-features is delivered by the run order and the reducer
    // accepts features in any order: pSPQ is fully sort-free.
    fn subbucket_needs_sort(&self, _sub: usize) -> bool {
        false
    }

    // Algorithm 2.
    fn reduce(
        &self,
        _group: &PSpqKey,
        values: &mut GroupValues<'_, Self>,
        ctx: &mut ReduceContext<'_, RankedObject>,
    ) {
        let r_sq = self.query.radius * self.query.radius;
        let mut objects: Vec<(u64, Point)> = Vec::new();
        let mut scores: Vec<Score> = Vec::new();
        let mut topk = TopKList::new(self.query.k);
        let mut features_examined = 0u64;
        let mut distance_checks = 0u64;

        for (_key, value) in values.by_ref() {
            match value {
                ObjectHandle::Data(i) => {
                    let o = &self.dataset.data()[i as usize];
                    objects.push((o.id, o.location));
                    scores.push(Score::ZERO); // line 7: initial score 0
                }
                ObjectHandle::Feature(i, w) => {
                    features_examined += 1;
                    // Line 9 of Algorithm 2 skips features with w <= τ.
                    // We keep w == τ (and only drop w < τ or w == 0):
                    // under a k-boundary score tie, a feature at exactly
                    // τ can still swap a smaller-id object into Lk, and
                    // admitting it makes the cell's output the *canonical*
                    // top-k — a pure function of (dataset, query), which
                    // is what lets sharded scatter/gather backends stay
                    // byte-identical to the single-store engine.
                    if !w.is_zero() && w >= topk.tau() {
                        let f_loc = self.dataset.features()[i as usize].location;
                        distance_checks += objects.len() as u64;
                        for (j, &(id, location)) in objects.iter().enumerate() {
                            if location.dist_sq(&f_loc) <= r_sq && w > scores[j] {
                                scores[j] = w; // line 12: running max
                                topk.update(id, location, w); // line 13
                            }
                        }
                    }
                }
            }
        }

        ctx.counters()
            .add(COUNTER_REDUCE_FEATURES_EXAMINED, features_examined);
        ctx.counters()
            .add(COUNTER_REDUCE_DISTANCE_CHECKS, distance_checks);
        for entry in topk.into_vec() {
            ctx.emit(entry); // line 20: score(p) = τ(p) at this point
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{DataObject, FeatureObject, SpqObject};
    use spq_mapreduce::{ClusterConfig, JobRunner};
    use spq_spatial::Rect;
    use spq_text::KeywordSet;

    fn run(query: &SpqQuery, objects: Vec<SpqObject>) -> Vec<RankedObject> {
        let grid: SpacePartition =
            spq_spatial::Grid::square(Rect::from_coords(0.0, 0.0, 10.0, 10.0), 4).into();
        let (dataset, splits) = SharedDataset::from_splits(&[objects]);
        let task = PSpqTask::new(&dataset, &grid, query);
        let runner = JobRunner::new(ClusterConfig::with_workers(2));
        let mut out = runner.run(&task, &splits).unwrap().into_flat();
        out.sort_by(RankedObject::canonical_cmp);
        out
    }

    #[test]
    fn scores_single_cell() {
        let q = SpqQuery::new(2, 1.0, KeywordSet::from_ids([0, 1]));
        let objects = vec![
            DataObject::new(1, Point::new(1.0, 1.0)).into(),
            DataObject::new(2, Point::new(2.0, 1.0)).into(),
            // Within 1.0 of p1 only; Jaccard {0,1} vs {0} = 1/2.
            FeatureObject::new(10, Point::new(1.0, 1.5), KeywordSet::from_ids([0])).into(),
            // Within 1.0 of p2 only; Jaccard {0,1} vs {0,1} = 1.
            FeatureObject::new(11, Point::new(2.0, 0.5), KeywordSet::from_ids([0, 1])).into(),
        ];
        let out = run(&q, objects);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].object, 2);
        assert_eq!(out[0].score, Score::ONE);
        assert_eq!(out[1].object, 1);
        assert_eq!(out[1].score, Score::ratio(1, 2));
    }

    #[test]
    fn feature_across_cell_boundary_scores_neighbor() {
        // Data object near a cell border; its scoring feature sits in the
        // next cell. Lemma-1 duplication must carry it over.
        let q = SpqQuery::new(1, 1.0, KeywordSet::from_ids([0]));
        let objects = vec![
            DataObject::new(1, Point::new(2.4, 1.0)).into(), // cell 0
            FeatureObject::new(10, Point::new(2.6, 1.0), KeywordSet::from_ids([0])).into(), // cell 1
        ];
        let out = run(&q, objects);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].object, 1);
        assert_eq!(out[0].score, Score::ONE);
    }

    #[test]
    fn non_matching_features_are_pruned_and_score_nothing() {
        let q = SpqQuery::new(1, 5.0, KeywordSet::from_ids([0]));
        let objects = vec![
            DataObject::new(1, Point::new(1.0, 1.0)).into(),
            FeatureObject::new(10, Point::new(1.0, 1.2), KeywordSet::from_ids([7, 8])).into(),
        ];
        assert!(run(&q, objects).is_empty());
    }

    #[test]
    fn objects_out_of_range_are_not_reported() {
        let q = SpqQuery::new(5, 0.5, KeywordSet::from_ids([0]));
        let objects = vec![
            DataObject::new(1, Point::new(1.0, 1.0)).into(),
            FeatureObject::new(10, Point::new(1.0, 2.0), KeywordSet::from_ids([0])).into(),
        ];
        assert!(run(&q, objects).is_empty());
    }

    #[test]
    fn returns_fewer_than_k_when_few_qualify() {
        let q = SpqQuery::new(10, 1.0, KeywordSet::from_ids([0]));
        let objects = vec![
            DataObject::new(1, Point::new(1.0, 1.0)).into(),
            FeatureObject::new(10, Point::new(1.0, 1.2), KeywordSet::from_ids([0])).into(),
        ];
        let out = run(&q, objects);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn counters_track_map_side_work() {
        let grid: SpacePartition =
            spq_spatial::Grid::square(Rect::from_coords(0.0, 0.0, 10.0, 10.0), 4).into();
        let q = SpqQuery::new(1, 1.5, KeywordSet::from_ids([0]));
        let objects: Vec<SpqObject> = vec![
            DataObject::new(1, Point::new(1.0, 1.0)).into(),
            // On a border: duplicated at least once.
            FeatureObject::new(10, Point::new(2.4, 1.0), KeywordSet::from_ids([0])).into(),
            // Pruned.
            FeatureObject::new(11, Point::new(1.0, 1.0), KeywordSet::from_ids([9])).into(),
        ];
        let (dataset, splits) = SharedDataset::from_splits(&[objects]);
        let task = PSpqTask::new(&dataset, &grid, &q);
        let out = JobRunner::new(ClusterConfig::sequential())
            .run(&task, &splits)
            .unwrap();
        let c = &out.stats.counters;
        assert_eq!(c.get(COUNTER_MAP_DATA), 1);
        assert_eq!(c.get(COUNTER_MAP_FEATURES), 1);
        assert_eq!(c.get(COUNTER_MAP_PRUNED), 1);
        assert!(c.get(COUNTER_MAP_DUPLICATES) >= 1);
        assert!(c.get(COUNTER_REDUCE_FEATURES_EXAMINED) >= 1);
    }
}
