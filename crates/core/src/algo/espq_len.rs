//! eSPQlen — early termination by increasing keyword length
//! (Section 5.1, Algorithms 3 and 4).
//!
//! The composite key's secondary part is `|f.W|` (0 for data objects), so
//! reducers see features with few keywords first — the ones that can still
//! reach high Jaccard scores. Once the threshold `τ` of the running top-k
//! list reaches the Equation-1 bound `w̄(f, q)` of the *current* feature,
//! no unseen feature (which has at least as many keywords) can beat it and
//! the reducer stops (Lemma 2).
//!
//! Shuffle records are 24-byte `⟨(cell, |f.W|), handle⟩` pairs: the
//! feature's score is computed once per feature on the map side and rides
//! in the handle, keywords never travel. Data and feature records are
//! pre-grouped into separate shuffle runs; only the feature run is sorted
//! (by the keyword length already present in the key).

use crate::algo::ObjectHandle;
use crate::model::RankedObject;
use crate::partitioning::{
    route_data, route_scored_feature, CellRouting, COUNTER_MAP_DATA, COUNTER_MAP_DUPLICATES,
    COUNTER_MAP_FEATURES, COUNTER_MAP_PRUNED, COUNTER_REDUCE_DISTANCE_CHECKS,
    COUNTER_REDUCE_EARLY_TERMINATIONS, COUNTER_REDUCE_FEATURES_EXAMINED,
};
use crate::query::SpqQuery;
use crate::store::{ObjectRef, SharedDataset};
use crate::topk::TopKList;
use spq_mapreduce::{GroupValues, MapContext, MapReduceTask, ReduceContext};
use spq_spatial::{CellId, Point, SpacePartition};
use spq_text::Score;
use std::cmp::Ordering;

/// The composite key of Algorithm 3: cell id plus the keyword length
/// (0 for data objects, `|f.W|` for features).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LenKey {
    /// The grid cell (natural key).
    pub cell: u32,
    /// 0 for data objects; `|f.W|` for feature objects (secondary sort,
    /// increasing).
    pub len: u32,
}

/// The eSPQlen MapReduce task.
#[derive(Debug)]
pub struct ESpqLenTask<'a> {
    dataset: &'a SharedDataset,
    grid: &'a SpacePartition,
    query: &'a SpqQuery,
    prune: bool,
    routing: Option<&'a CellRouting>,
}

impl<'a> ESpqLenTask<'a> {
    /// Creates the task for one query over one query-time partition of a
    /// shared dataset.
    pub fn new(dataset: &'a SharedDataset, grid: &'a SpacePartition, query: &'a SpqQuery) -> Self {
        Self {
            dataset,
            grid,
            query,
            prune: true,
            routing: None,
        }
    }

    /// Disables the map-side keyword pruning rule (ablation; results are
    /// unchanged, the shuffle just carries every feature object).
    pub fn without_pruning(mut self) -> Self {
        self.prune = false;
        self
    }

    /// Routes through prebuilt [`CellRouting`] tables (built for this
    /// query's radius over `grid`) instead of walking the partition per
    /// record — the engine's build-once path. Results are byte-identical.
    pub fn with_routing(mut self, routing: &'a CellRouting) -> Self {
        debug_assert_eq!(routing.radius().to_bits(), self.query.radius.to_bits());
        self.routing = Some(routing);
        self
    }
}

impl MapReduceTask for ESpqLenTask<'_> {
    type Input = ObjectRef;
    type Key = LenKey;
    type Value = ObjectHandle;
    type Output = RankedObject;

    fn num_reducers(&self) -> usize {
        self.grid.num_cells()
    }

    // Algorithm 3.
    fn map(&self, record: &ObjectRef, ctx: &mut MapContext<'_, Self>) {
        match *record {
            ObjectRef::Data(i) => {
                ctx.counters().inc(COUNTER_MAP_DATA);
                let cell = match self.routing {
                    Some(rt) => rt.data_cell(i),
                    None => route_data(self.grid, &self.dataset.data()[i as usize].location),
                };
                ctx.emit(
                    self,
                    LenKey {
                        cell: cell.0,
                        len: 0,
                    },
                    ObjectHandle::Data(i),
                );
            }
            ObjectRef::Feature(i) => {
                let f = &self.dataset.features()[i as usize];
                // A matching feature has >= 1 keyword, so len >= 1 never
                // collides with the data-object marker 0.
                let len = f.keywords.len() as u32;
                // Scored once per feature; every routed copy reuses it.
                let mut emit = |c: CellId, w: Score| {
                    ctx.emit(self, LenKey { cell: c.0, len }, ObjectHandle::Feature(i, w));
                };
                let routed = match self.routing {
                    Some(rt) => rt.route_scored_feature(self.query, f, i, self.prune, &mut emit),
                    None => route_scored_feature(self.grid, self.query, f, self.prune, &mut emit),
                };
                match routed {
                    Some(copies) => {
                        ctx.counters().inc(COUNTER_MAP_FEATURES);
                        ctx.counters().add(COUNTER_MAP_DUPLICATES, copies - 1);
                    }
                    None => ctx.counters().inc(COUNTER_MAP_PRUNED),
                }
            }
        }
    }

    fn partition(&self, key: &LenKey) -> usize {
        key.cell as usize
    }

    fn sort_cmp(&self, a: &LenKey, b: &LenKey) -> Ordering {
        a.cell.cmp(&b.cell).then(a.len.cmp(&b.len))
    }

    fn group_eq(&self, a: &LenKey, b: &LenKey) -> bool {
        a.cell == b.cell
    }

    fn num_subbuckets(&self) -> usize {
        2
    }

    fn subbucket(&self, key: &LenKey) -> usize {
        (key.len != 0) as usize
    }

    // Only the feature run carries a secondary order; the data run is
    // taken as shuffled.
    fn subbucket_needs_sort(&self, sub: usize) -> bool {
        sub == 1
    }

    // Algorithm 4.
    fn reduce(
        &self,
        _group: &LenKey,
        values: &mut GroupValues<'_, Self>,
        ctx: &mut ReduceContext<'_, RankedObject>,
    ) {
        let r_sq = self.query.radius * self.query.radius;
        let mut objects: Vec<(u64, Point)> = Vec::new();
        let mut scores: Vec<Score> = Vec::new();
        let mut topk = TopKList::new(self.query.k);
        let mut features_examined = 0u64;
        let mut distance_checks = 0u64;

        for (key, value) in values.by_ref() {
            match value {
                ObjectHandle::Data(i) => {
                    let o = &self.dataset.data()[i as usize];
                    objects.push((o.id, o.location));
                    scores.push(Score::ZERO);
                }
                ObjectHandle::Feature(i, w) => {
                    // A cell without data objects can never produce a
                    // result: stop before examining any feature. (Lemma 2
                    // with an unreachable k; duplicated features routinely
                    // land in such cells.)
                    if objects.is_empty() {
                        ctx.counters().inc(COUNTER_REDUCE_EARLY_TERMINATIONS);
                        break;
                    }
                    // Lines 9-11: the termination test uses only the
                    // keyword length carried in the composite key. The
                    // paper terminates at τ >= w̄; we require τ > w̄ (and
                    // below admit w == τ) so that boundary-tied features
                    // can still swap smaller-id objects into Lk — the
                    // cell's output is then the *canonical* top-k, a pure
                    // function of (dataset, query), which keeps sharded
                    // backends byte-identical to the single-store engine.
                    let bound = self.query.upper_bound(key.len as usize);
                    if topk.tau() > bound {
                        ctx.counters().inc(COUNTER_REDUCE_EARLY_TERMINATIONS);
                        break;
                    }
                    features_examined += 1;
                    if !w.is_zero() && w >= topk.tau() {
                        let f_loc = self.dataset.features()[i as usize].location;
                        distance_checks += objects.len() as u64;
                        for (j, &(id, location)) in objects.iter().enumerate() {
                            if location.dist_sq(&f_loc) <= r_sq && w > scores[j] {
                                scores[j] = w;
                                topk.update(id, location, w);
                            }
                        }
                    }
                }
            }
        }

        ctx.counters()
            .add(COUNTER_REDUCE_FEATURES_EXAMINED, features_examined);
        ctx.counters()
            .add(COUNTER_REDUCE_DISTANCE_CHECKS, distance_checks);
        for entry in topk.into_vec() {
            ctx.emit(entry);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{DataObject, FeatureObject, SpqObject};
    use spq_mapreduce::{ClusterConfig, JobRunner, JobStats};
    use spq_spatial::Rect;
    use spq_text::KeywordSet;

    fn run(query: &SpqQuery, objects: Vec<SpqObject>) -> (Vec<RankedObject>, JobStats) {
        let grid: SpacePartition =
            spq_spatial::Grid::square(Rect::from_coords(0.0, 0.0, 10.0, 10.0), 4).into();
        let (dataset, splits) = SharedDataset::from_splits(&[objects]);
        let task = ESpqLenTask::new(&dataset, &grid, query);
        let runner = JobRunner::new(ClusterConfig::with_workers(2));
        let out = runner.run(&task, &splits).unwrap();
        let stats = out.stats.clone();
        let mut flat = out.into_flat();
        flat.sort_by(RankedObject::canonical_cmp);
        (flat, stats)
    }

    #[test]
    fn finds_the_same_winners_as_pspq_semantics() {
        let q = SpqQuery::new(2, 1.0, KeywordSet::from_ids([0, 1]));
        let objects = vec![
            DataObject::new(1, Point::new(1.0, 1.0)).into(),
            DataObject::new(2, Point::new(2.0, 1.0)).into(),
            FeatureObject::new(10, Point::new(1.0, 1.5), KeywordSet::from_ids([0])).into(),
            FeatureObject::new(11, Point::new(2.0, 0.5), KeywordSet::from_ids([0, 1])).into(),
        ];
        let (out, _) = run(&q, objects);
        assert_eq!(out.len(), 2);
        assert_eq!((out[0].object, out[0].score), (2, Score::ONE));
        assert_eq!((out[1].object, out[1].score), (1, Score::ratio(1, 2)));
    }

    // The counter-asserting tests below place everything deep inside one
    // cell (4x4 over [0,10]² -> cell 5 spans [2.5,5.0]²) with a radius
    // small enough that Lemma-1 duplication never fires, so the expected
    // counts are exact.

    #[test]
    fn terminates_before_long_features() {
        // k=1, |q.W|=1. A 1-keyword exact match scores 1.0 and τ=1 >= any
        // later bound (features sorted by length), so the bulky features
        // must never be examined.
        let q = SpqQuery::new(1, 0.5, KeywordSet::from_ids([0]));
        let mut objects: Vec<SpqObject> = vec![
            DataObject::new(1, Point::new(3.75, 3.75)).into(),
            FeatureObject::new(10, Point::new(3.75, 3.95), KeywordSet::from_ids([0])).into(),
        ];
        // 50 features with 5 keywords each (bound 1/5), all in range.
        for i in 0..50 {
            objects.push(
                FeatureObject::new(
                    100 + i,
                    Point::new(3.85, 3.85),
                    KeywordSet::from_ids([0, 1, 2, 3, 4]),
                )
                .into(),
            );
        }
        let (out, stats) = run(&q, objects);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].score, Score::ONE);
        assert_eq!(stats.counters.get(COUNTER_REDUCE_FEATURES_EXAMINED), 1);
        assert_eq!(stats.counters.get(COUNTER_REDUCE_EARLY_TERMINATIONS), 1);
        // The break consumed one record to read its bound; the runtime
        // drained the remaining 49.
        assert_eq!(stats.counters.get("reduce.records_skipped"), 49);
    }

    #[test]
    fn short_features_cannot_trigger_termination() {
        // While |f.W| < |q.W| the bound is 1 and τ < 1 keeps scanning.
        let q = SpqQuery::new(1, 0.5, KeywordSet::from_ids([0, 1, 2]));
        let objects: Vec<SpqObject> = vec![
            DataObject::new(1, Point::new(3.75, 3.75)).into(),
            // Scores 1/3 each; bounds stay 1 while len < 3.
            FeatureObject::new(10, Point::new(3.85, 3.75), KeywordSet::from_ids([0])).into(),
            FeatureObject::new(11, Point::new(3.95, 3.75), KeywordSet::from_ids([1])).into(),
            // len 3: exact match scores 1.0.
            FeatureObject::new(12, Point::new(4.05, 3.75), KeywordSet::from_ids([0, 1, 2])).into(),
        ];
        let (out, stats) = run(&q, objects);
        assert_eq!(out[0].score, Score::ONE);
        assert_eq!(stats.counters.get(COUNTER_REDUCE_FEATURES_EXAMINED), 3);
    }

    #[test]
    fn termination_respects_score_correctness() {
        // τ = 1/3 from a len-2 feature; a len-4 feature still has bound
        // 1/2 > τ and must be examined. The result score must be exact.
        let q = SpqQuery::new(1, 0.5, KeywordSet::from_ids([0, 1]));
        let objects: Vec<SpqObject> = vec![
            DataObject::new(1, Point::new(3.75, 3.75)).into(),
            FeatureObject::new(10, Point::new(3.85, 3.75), KeywordSet::from_ids([0, 7])).into(),
            FeatureObject::new(
                11,
                Point::new(3.95, 3.75),
                KeywordSet::from_ids([0, 5, 6, 7]),
            )
            .into(),
        ];
        let (out, stats) = run(&q, objects);
        assert_eq!(out[0].score, Score::ratio(1, 3)); // {0,1} vs {0,7}
        assert_eq!(stats.counters.get(COUNTER_REDUCE_FEATURES_EXAMINED), 2);
    }

    #[test]
    fn dataless_cells_stop_at_first_feature() {
        // One data object far away; the feature's cell has no data, so its
        // reducer terminates without examining anything.
        let q = SpqQuery::new(1, 0.5, KeywordSet::from_ids([0]));
        let objects: Vec<SpqObject> = vec![
            DataObject::new(1, Point::new(8.75, 8.75)).into(),
            FeatureObject::new(10, Point::new(3.75, 3.75), KeywordSet::from_ids([0])).into(),
        ];
        let (out, stats) = run(&q, objects);
        assert!(out.is_empty());
        assert_eq!(stats.counters.get(COUNTER_REDUCE_FEATURES_EXAMINED), 0);
        assert_eq!(stats.counters.get(COUNTER_REDUCE_EARLY_TERMINATIONS), 1);
    }
}
