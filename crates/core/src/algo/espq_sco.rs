//! eSPQsco — early termination by decreasing score
//! (Section 5.2, Algorithms 5 and 6).
//!
//! The Jaccard score `w(f, q)` is computed **in the Map phase** — exactly
//! once per feature, shared by all Lemma-1 routed copies — and used as the
//! secondary sort key, descending; data objects carry the sentinel 2
//! (> any Jaccard value) so they still precede all features. The reducer
//! then reports any unreported data object within `r` of the current
//! feature immediately — its score is final, because every remaining
//! feature scores no higher — and stops after `k` reports (Lemma 3).
//!
//! Implementation notes beyond the paper's pseudocode:
//!
//! * The shuffle value is an 8-byte index into the shared dataset store
//!   (the key carries the score, the store carries the locations), so
//!   eSPQsco ships strictly smaller records than the other two
//!   algorithms. Data and feature records travel as pre-grouped shuffle
//!   runs; only the feature run is sorted, by descending key score.
//! * Reports are buffered per *run of equal scores* and flushed in id
//!   order when the score strictly drops. This makes the per-cell output
//!   canonical under score ties (the paper's pseudocode implicitly
//!   assumes distinct scores); the extra work is bounded by one score run.

use crate::model::RankedObject;
use crate::partitioning::{
    route_data, route_scored_feature, CellRouting, COUNTER_MAP_DATA, COUNTER_MAP_DUPLICATES,
    COUNTER_MAP_FEATURES, COUNTER_MAP_PRUNED, COUNTER_REDUCE_DISTANCE_CHECKS,
    COUNTER_REDUCE_EARLY_TERMINATIONS, COUNTER_REDUCE_FEATURES_EXAMINED,
};
use crate::query::SpqQuery;
use crate::store::{ObjectRef, SharedDataset};
use spq_mapreduce::{GroupValues, MapContext, MapReduceTask, ReduceContext};
use spq_spatial::{CellId, Point, SpacePartition};
use spq_text::Score;
use std::cmp::Ordering;

/// The composite key of Algorithm 5: cell id plus the map-side score
/// (2 for data objects — strictly above any Jaccard value).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScoKey {
    /// The grid cell (natural key).
    pub cell: u32,
    /// `Score::DATA_SENTINEL` for data objects; `w(f, q)` for features.
    /// Sorted descending within a cell.
    pub score: Score,
}

/// The eSPQsco MapReduce task.
#[derive(Debug)]
pub struct ESpqScoTask<'a> {
    dataset: &'a SharedDataset,
    grid: &'a SpacePartition,
    query: &'a SpqQuery,
    prune: bool,
    routing: Option<&'a CellRouting>,
}

impl<'a> ESpqScoTask<'a> {
    /// Creates the task for one query over one query-time partition of a
    /// shared dataset.
    pub fn new(dataset: &'a SharedDataset, grid: &'a SpacePartition, query: &'a SpqQuery) -> Self {
        Self {
            dataset,
            grid,
            query,
            prune: true,
            routing: None,
        }
    }

    /// Disables the map-side keyword pruning rule (ablation; results are
    /// unchanged, the shuffle just carries every feature object).
    pub fn without_pruning(mut self) -> Self {
        self.prune = false;
        self
    }

    /// Routes through prebuilt [`CellRouting`] tables (built for this
    /// query's radius over `grid`) instead of walking the partition per
    /// record — the engine's build-once path. Results are byte-identical.
    pub fn with_routing(mut self, routing: &'a CellRouting) -> Self {
        debug_assert_eq!(routing.radius().to_bits(), self.query.radius.to_bits());
        self.routing = Some(routing);
        self
    }
}

impl MapReduceTask for ESpqScoTask<'_> {
    type Input = ObjectRef;
    type Key = ScoKey;
    // The score rides in the key, so the value is a bare 8-byte store
    // reference — the smallest record of the three algorithms.
    type Value = ObjectRef;
    type Output = RankedObject;

    fn num_reducers(&self) -> usize {
        self.grid.num_cells()
    }

    // Algorithm 5 — note the score computation on the map side.
    fn map(&self, record: &ObjectRef, ctx: &mut MapContext<'_, Self>) {
        match *record {
            ObjectRef::Data(i) => {
                ctx.counters().inc(COUNTER_MAP_DATA);
                let cell = match self.routing {
                    Some(rt) => rt.data_cell(i),
                    None => route_data(self.grid, &self.dataset.data()[i as usize].location),
                };
                ctx.emit(
                    self,
                    ScoKey {
                        cell: cell.0,
                        score: Score::DATA_SENTINEL,
                    },
                    ObjectRef::Data(i),
                );
            }
            ObjectRef::Feature(i) => {
                let f = &self.dataset.features()[i as usize];
                // With pruning enabled, routed features always share a
                // keyword and the score is positive; without it,
                // zero-score features travel too and the reducer stops
                // at them (they sort last). Scored once per feature;
                // every routed copy reuses it.
                let prune = self.prune;
                let mut emit = |c: CellId, w: Score| {
                    debug_assert!(!prune || !w.is_zero());
                    ctx.emit(
                        self,
                        ScoKey {
                            cell: c.0,
                            score: w,
                        },
                        ObjectRef::Feature(i),
                    );
                };
                let routed = match self.routing {
                    Some(rt) => rt.route_scored_feature(self.query, f, i, self.prune, &mut emit),
                    None => route_scored_feature(self.grid, self.query, f, self.prune, &mut emit),
                };
                match routed {
                    Some(copies) => {
                        ctx.counters().inc(COUNTER_MAP_FEATURES);
                        ctx.counters().add(COUNTER_MAP_DUPLICATES, copies - 1);
                    }
                    None => ctx.counters().inc(COUNTER_MAP_PRUNED),
                }
            }
        }
    }

    fn partition(&self, key: &ScoKey) -> usize {
        key.cell as usize
    }

    fn sort_cmp(&self, a: &ScoKey, b: &ScoKey) -> Ordering {
        // Cell ascending, then score DESCENDING — the customized
        // Comparator of Section 5.2.
        a.cell.cmp(&b.cell).then(b.score.cmp(&a.score))
    }

    fn group_eq(&self, a: &ScoKey, b: &ScoKey) -> bool {
        a.cell == b.cell
    }

    fn num_subbuckets(&self) -> usize {
        2
    }

    fn subbucket(&self, key: &ScoKey) -> usize {
        (key.score != Score::DATA_SENTINEL) as usize
    }

    // Only the feature run needs its descending-score order; the data run
    // is taken as shuffled.
    fn subbucket_needs_sort(&self, sub: usize) -> bool {
        sub == 1
    }

    // Algorithm 6.
    fn reduce(
        &self,
        _group: &ScoKey,
        values: &mut GroupValues<'_, Self>,
        ctx: &mut ReduceContext<'_, RankedObject>,
    ) {
        let r_sq = self.query.radius * self.query.radius;
        let k = self.query.k;
        let mut objects: Vec<(u64, Point)> = Vec::new();
        let mut reported: Vec<bool> = Vec::new();
        let mut emitted = 0usize;
        let mut run_score: Option<Score> = None;
        let mut run_buf: Vec<RankedObject> = Vec::new();
        let mut features_examined = 0u64;
        let mut distance_checks = 0u64;
        let mut terminated_early = false;

        // Flushes one equal-score run in id order, up to k total reports.
        let flush = |run_buf: &mut Vec<RankedObject>,
                     emitted: &mut usize,
                     ctx: &mut ReduceContext<'_, RankedObject>| {
            run_buf.sort_by_key(|e| e.object);
            for entry in run_buf.drain(..) {
                if *emitted == k {
                    break;
                }
                ctx.emit(entry); // here: w(x, q) = τ(p)
                *emitted += 1;
            }
        };

        for (key, value) in values.by_ref() {
            match value {
                ObjectRef::Data(i) => {
                    let o = &self.dataset.data()[i as usize];
                    objects.push((o.id, o.location));
                    reported.push(false);
                }
                ObjectRef::Feature(i) => {
                    // A cell without data objects can never report
                    // anything (Lemma 3 with an unreachable k); duplicated
                    // features routinely land in such cells.
                    if objects.is_empty() {
                        terminated_early = true;
                        break;
                    }
                    let w = key.score;
                    // Zero-score features (possible only with keyword
                    // pruning disabled) sort last and cannot rank anything.
                    if w.is_zero() {
                        flush(&mut run_buf, &mut emitted, ctx);
                        terminated_early = true;
                        break;
                    }
                    if run_score != Some(w) {
                        // Score strictly dropped: the previous run's
                        // reports are final.
                        flush(&mut run_buf, &mut emitted, ctx);
                        if emitted == k {
                            terminated_early = true;
                            break; // lines 10-12: k objects reported
                        }
                        run_score = Some(w);
                    }
                    features_examined += 1;
                    distance_checks += objects.len() as u64;
                    let f_loc = self.dataset.features()[i as usize].location;
                    for (j, &(id, location)) in objects.iter().enumerate() {
                        // Line 7: any unreported object in range gets its
                        // final score now.
                        if !reported[j] && location.dist_sq(&f_loc) <= r_sq {
                            reported[j] = true;
                            run_buf.push(RankedObject::new(id, location, w));
                        }
                    }
                    // Every object of the cell already has its final
                    // score: nothing left to find. Flush and stop.
                    if run_buf.len() + emitted == objects.len() {
                        flush(&mut run_buf, &mut emitted, ctx);
                        terminated_early = true;
                        break;
                    }
                }
            }
        }
        if !terminated_early {
            flush(&mut run_buf, &mut emitted, ctx);
        }

        ctx.counters()
            .add(COUNTER_REDUCE_FEATURES_EXAMINED, features_examined);
        ctx.counters()
            .add(COUNTER_REDUCE_DISTANCE_CHECKS, distance_checks);
        if terminated_early {
            ctx.counters().inc(COUNTER_REDUCE_EARLY_TERMINATIONS);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{DataObject, FeatureObject, SpqObject};
    use spq_mapreduce::{ClusterConfig, JobRunner, JobStats};
    use spq_spatial::Rect;
    use spq_text::KeywordSet;

    fn run(query: &SpqQuery, objects: Vec<SpqObject>) -> (Vec<RankedObject>, JobStats) {
        let grid: SpacePartition =
            spq_spatial::Grid::square(Rect::from_coords(0.0, 0.0, 10.0, 10.0), 4).into();
        let (dataset, splits) = SharedDataset::from_splits(&[objects]);
        let task = ESpqScoTask::new(&dataset, &grid, query);
        let runner = JobRunner::new(ClusterConfig::with_workers(2));
        let out = runner.run(&task, &splits).unwrap();
        let stats = out.stats.clone();
        let mut flat = out.into_flat();
        flat.sort_by(RankedObject::canonical_cmp);
        (flat, stats)
    }

    #[test]
    fn reports_scores_in_descending_order() {
        let q = SpqQuery::new(2, 1.0, KeywordSet::from_ids([0, 1]));
        let objects = vec![
            DataObject::new(1, Point::new(1.0, 1.0)).into(),
            DataObject::new(2, Point::new(2.0, 1.0)).into(),
            FeatureObject::new(10, Point::new(1.0, 1.5), KeywordSet::from_ids([0])).into(),
            FeatureObject::new(11, Point::new(2.0, 0.5), KeywordSet::from_ids([0, 1])).into(),
        ];
        let (out, _) = run(&q, objects);
        assert_eq!(out.len(), 2);
        assert_eq!((out[0].object, out[0].score), (2, Score::ONE));
        assert_eq!((out[1].object, out[1].score), (1, Score::ratio(1, 2)));
    }

    // The counter-asserting tests below place everything deep inside one
    // cell (4x4 over [0,10]² -> cell 5 spans [2.5,5.0]²) with a radius
    // small enough that Lemma-1 duplication never fires, so the expected
    // counts are exact.

    #[test]
    fn stops_after_k_reports() {
        // The top-scoring feature matches the single requested object; the
        // scan must ignore every weaker feature.
        let q = SpqQuery::new(1, 0.5, KeywordSet::from_ids([0]));
        let mut objects: Vec<SpqObject> = vec![
            DataObject::new(1, Point::new(3.75, 3.75)).into(),
            FeatureObject::new(10, Point::new(3.75, 3.95), KeywordSet::from_ids([0])).into(),
        ];
        for i in 0..80 {
            objects.push(
                FeatureObject::new(
                    100 + i,
                    Point::new(3.85, 3.85),
                    KeywordSet::from_ids([0, 1]),
                )
                .into(),
            );
        }
        let (out, stats) = run(&q, objects);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].score, Score::ONE);
        assert_eq!(stats.counters.get(COUNTER_REDUCE_FEATURES_EXAMINED), 1);
        assert_eq!(stats.counters.get(COUNTER_REDUCE_EARLY_TERMINATIONS), 1);
        assert_eq!(stats.counters.get("reduce.records_skipped"), 80);
    }

    #[test]
    fn equal_score_run_prefers_smaller_ids() {
        // Three objects each reachable only from its own feature; all
        // features score 1/2. k=2 must pick ids 1 and 2 (not arrival
        // order). Everything sits in one cell, spaced > r apart.
        let q = SpqQuery::new(2, 0.15, KeywordSet::from_ids([0]));
        let objects: Vec<SpqObject> = vec![
            DataObject::new(3, Point::new(3.75, 4.4)).into(),
            DataObject::new(1, Point::new(3.75, 3.6)).into(),
            DataObject::new(2, Point::new(3.75, 4.0)).into(),
            FeatureObject::new(13, Point::new(3.85, 4.4), KeywordSet::from_ids([0, 5])).into(),
            FeatureObject::new(11, Point::new(3.85, 3.6), KeywordSet::from_ids([0, 6])).into(),
            FeatureObject::new(12, Point::new(3.85, 4.0), KeywordSet::from_ids([0, 7])).into(),
        ];
        let (out, _) = run(&q, objects);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].object, 1);
        assert_eq!(out[1].object, 2);
        assert_eq!(out[0].score, Score::ratio(1, 2));
    }

    #[test]
    fn dataless_cells_stop_at_first_feature() {
        let q = SpqQuery::new(1, 0.5, KeywordSet::from_ids([0]));
        let objects: Vec<SpqObject> = vec![
            DataObject::new(1, Point::new(8.75, 8.75)).into(),
            FeatureObject::new(10, Point::new(3.75, 3.75), KeywordSet::from_ids([0])).into(),
        ];
        let (out, stats) = run(&q, objects);
        assert!(out.is_empty());
        assert_eq!(stats.counters.get(COUNTER_REDUCE_FEATURES_EXAMINED), 0);
        assert_eq!(stats.counters.get(COUNTER_REDUCE_EARLY_TERMINATIONS), 1);
    }

    #[test]
    fn all_objects_reported_stops_the_scan() {
        // Two objects, both matched by the two best features; the 40 weak
        // features are never examined even though k is larger.
        let q = SpqQuery::new(10, 0.5, KeywordSet::from_ids([0]));
        let mut objects: Vec<SpqObject> = vec![
            DataObject::new(1, Point::new(3.75, 3.75)).into(),
            DataObject::new(2, Point::new(4.3, 4.3)).into(),
            FeatureObject::new(10, Point::new(3.75, 3.95), KeywordSet::from_ids([0])).into(),
            FeatureObject::new(11, Point::new(4.3, 4.45), KeywordSet::from_ids([0])).into(),
        ];
        for i in 0..40 {
            objects.push(
                FeatureObject::new(
                    100 + i,
                    Point::new(3.85, 3.85),
                    KeywordSet::from_ids([0, 1]),
                )
                .into(),
            );
        }
        let (out, stats) = run(&q, objects);
        assert_eq!(out.len(), 2);
        assert_eq!(stats.counters.get(COUNTER_REDUCE_FEATURES_EXAMINED), 2);
        assert_eq!(stats.counters.get("reduce.records_skipped"), 40);
    }

    #[test]
    fn object_scored_by_first_matching_feature_only() {
        // p is in range of a 1.0 feature and a 0.5 feature: reported once,
        // with 1.0.
        let q = SpqQuery::new(5, 2.0, KeywordSet::from_ids([0]));
        let objects: Vec<SpqObject> = vec![
            DataObject::new(1, Point::new(1.0, 1.0)).into(),
            FeatureObject::new(10, Point::new(1.2, 1.0), KeywordSet::from_ids([0])).into(),
            FeatureObject::new(11, Point::new(1.4, 1.0), KeywordSet::from_ids([0, 9])).into(),
        ];
        let (out, _) = run(&q, objects);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].score, Score::ONE);
    }

    #[test]
    fn empty_cells_produce_nothing() {
        let q = SpqQuery::new(3, 1.0, KeywordSet::from_ids([0]));
        let objects: Vec<SpqObject> = vec![
            DataObject::new(1, Point::new(1.0, 1.0)).into(),
            // Feature too far to matter.
            FeatureObject::new(10, Point::new(9.0, 9.0), KeywordSet::from_ids([0])).into(),
        ];
        let (out, _) = run(&q, objects);
        assert!(out.is_empty());
    }
}
