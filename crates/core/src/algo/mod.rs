//! The three distributed SPQ algorithms as MapReduce tasks.
//!
//! | Algorithm | Map composite key | Reduce-side order | Early termination |
//! |-----------|-------------------|-------------------|-------------------|
//! | [`pspq`] (§4) | `(cell, tag)` | data before features | none |
//! | [`espq_len`] (§5.1) | `(cell, \|f.W\|)` | features by increasing keyword length | `τ >= w̄(f,q)` (Lemma 2) |
//! | [`espq_sco`] (§5.2) | `(cell, w(f,q))` | features by decreasing score | `k` objects reported (Lemma 3) |
//!
//! All three share the Map skeleton of [`crate::partitioning`] (grid
//! assignment, keyword pruning, Lemma-1 duplication) and partition by the
//! cell id with one reducer per grid cell, exactly as the paper configures
//! Hadoop.

pub mod espq_len;
pub mod espq_sco;
pub mod pspq;

use spq_text::Score;
use std::fmt;

/// Selects one of the paper's three algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Algorithm {
    /// The grid-partitioned baseline without early termination (Section 4).
    PSpq,
    /// Early termination by increasing keyword length (Section 5.1).
    ESpqLen,
    /// Early termination by decreasing map-side score (Section 5.2) — the
    /// paper's consistently best performer.
    #[default]
    ESpqSco,
}

impl Algorithm {
    /// All algorithms, in the paper's presentation order.
    pub const ALL: [Algorithm; 3] = [Algorithm::PSpq, Algorithm::ESpqLen, Algorithm::ESpqSco];

    /// The paper's name for the algorithm.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::PSpq => "pSPQ",
            Algorithm::ESpqLen => "eSPQlen",
            Algorithm::ESpqSco => "eSPQsco",
        }
    }

    /// Whether the algorithm can stop before exhausting a cell's features.
    pub fn has_early_termination(self) -> bool {
        !matches!(self, Algorithm::PSpq)
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Shuffle value for pSPQ and eSPQlen: a 16-byte handle into the
/// [`crate::SharedDataset`] plus, for features, the Jaccard score
/// pre-computed **once** per feature on the map side (instead of once per
/// Lemma-1 routed copy on the reduce side). Nothing on the heap travels
/// through the shuffle — reducers resolve ids, locations and keywords
/// from the shared store.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ObjectHandle {
    /// Index into the shared data store.
    Data(u32),
    /// Index into the shared feature store + pre-computed `w(f, q)`.
    Feature(u32, Score),
}

// eSPQsco needs no handle type of its own: the score already lives in
// the composite key, so its shuffle value is a bare [`crate::ObjectRef`]
// (8 bytes) — strictly the smallest record of the three algorithms, as
// the paper's Section-5.2 design implies.

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper() {
        assert_eq!(Algorithm::PSpq.name(), "pSPQ");
        assert_eq!(Algorithm::ESpqLen.to_string(), "eSPQlen");
        assert_eq!(Algorithm::ESpqSco.to_string(), "eSPQsco");
        assert_eq!(Algorithm::ALL.len(), 3);
    }

    #[test]
    fn early_termination_flags() {
        assert!(!Algorithm::PSpq.has_early_termination());
        assert!(Algorithm::ESpqLen.has_early_termination());
        assert!(Algorithm::ESpqSco.has_early_termination());
    }

    #[test]
    fn handles_stay_register_sized() {
        // The whole point of the handle layout: records no longer scale
        // with keyword counts and fit in one or two machine words.
        assert!(std::mem::size_of::<ObjectHandle>() <= 16);
        assert!(std::mem::size_of::<crate::ObjectRef>() <= 8);
    }
}
