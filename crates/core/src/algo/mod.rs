//! The three distributed SPQ algorithms as MapReduce tasks.
//!
//! | Algorithm | Map composite key | Reduce-side order | Early termination |
//! |-----------|-------------------|-------------------|-------------------|
//! | [`pspq`] (§4) | `(cell, tag)` | data before features | none |
//! | [`espq_len`] (§5.1) | `(cell, \|f.W\|)` | features by increasing keyword length | `τ >= w̄(f,q)` (Lemma 2) |
//! | [`espq_sco`] (§5.2) | `(cell, w(f,q))` | features by decreasing score | `k` objects reported (Lemma 3) |
//!
//! All three share the Map skeleton of [`crate::partitioning`] (grid
//! assignment, keyword pruning, Lemma-1 duplication) and partition by the
//! cell id with one reducer per grid cell, exactly as the paper configures
//! Hadoop.

pub mod espq_len;
pub mod espq_sco;
pub mod pspq;

use crate::model::{ObjectId, SpqObject};
use spq_spatial::Point;
use spq_text::KeywordSet;
use std::fmt;

/// Selects one of the paper's three algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Algorithm {
    /// The grid-partitioned baseline without early termination (Section 4).
    PSpq,
    /// Early termination by increasing keyword length (Section 5.1).
    ESpqLen,
    /// Early termination by decreasing map-side score (Section 5.2) — the
    /// paper's consistently best performer.
    #[default]
    ESpqSco,
}

impl Algorithm {
    /// All algorithms, in the paper's presentation order.
    pub const ALL: [Algorithm; 3] = [Algorithm::PSpq, Algorithm::ESpqLen, Algorithm::ESpqSco];

    /// The paper's name for the algorithm.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::PSpq => "pSPQ",
            Algorithm::ESpqLen => "eSPQlen",
            Algorithm::ESpqSco => "eSPQsco",
        }
    }

    /// Whether the algorithm can stop before exhausting a cell's features.
    pub fn has_early_termination(self) -> bool {
        !matches!(self, Algorithm::PSpq)
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Shuffle payload for pSPQ and eSPQlen, whose reducers compute the
/// Jaccard score themselves and therefore need the feature keywords.
#[derive(Debug, Clone)]
pub enum ObjectPayload {
    /// A data object (id, location).
    Data(ObjectId, Point),
    /// A feature object (id, location, keywords).
    Feature(ObjectId, Point, KeywordSet),
}

impl ObjectPayload {
    /// Builds the payload for a record (cloning, as the map phase reads
    /// records from its input split).
    pub fn from_record(record: &SpqObject) -> Self {
        match record {
            SpqObject::Data(o) => ObjectPayload::Data(o.id, o.location),
            SpqObject::Feature(f) => ObjectPayload::Feature(f.id, f.location, f.keywords.clone()),
        }
    }
}

/// Shuffle payload for eSPQsco: the score already lives in the composite
/// key, so feature keywords are *not* shuffled — a bandwidth saving the
/// paper's design implies (the Map phase bears the scoring cost instead,
/// Section 5.2).
#[derive(Debug, Clone, Copy)]
pub enum SlimPayload {
    /// A data object (id, location).
    Data(ObjectId, Point),
    /// A feature object (location only — the reducer never needs more).
    Feature(Point),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{DataObject, FeatureObject};

    #[test]
    fn names_match_paper() {
        assert_eq!(Algorithm::PSpq.name(), "pSPQ");
        assert_eq!(Algorithm::ESpqLen.to_string(), "eSPQlen");
        assert_eq!(Algorithm::ESpqSco.to_string(), "eSPQsco");
        assert_eq!(Algorithm::ALL.len(), 3);
    }

    #[test]
    fn early_termination_flags() {
        assert!(!Algorithm::PSpq.has_early_termination());
        assert!(Algorithm::ESpqLen.has_early_termination());
        assert!(Algorithm::ESpqSco.has_early_termination());
    }

    #[test]
    fn payload_from_record() {
        let d = SpqObject::Data(DataObject::new(1, Point::new(0.0, 0.0)));
        let f = SpqObject::Feature(FeatureObject::new(
            2,
            Point::new(1.0, 1.0),
            KeywordSet::from_ids([3]),
        ));
        assert!(matches!(
            ObjectPayload::from_record(&d),
            ObjectPayload::Data(1, _)
        ));
        assert!(matches!(
            ObjectPayload::from_record(&f),
            ObjectPayload::Feature(2, _, _)
        ));
    }
}
