//! # spq-core — spatial preference queries using keywords
//!
//! The primary contribution of *"Parallel and Distributed Processing of
//! Spatial Preference Queries using Keywords"* (EDBT 2017), implemented
//! over the [`spq_mapreduce`] runtime.
//!
//! ## The query
//!
//! Given data objects `O`, spatio-textual feature objects `F` and a query
//! `q(k, r, W)`, the score of a data object `p` is
//!
//! ```text
//! τ(p) = max { w(f, q) : f ∈ F, d(p, f) <= r }        (Definition 2)
//! w(f, q) = |q.W ∩ f.W| / |q.W ∪ f.W|                  (Definition 1)
//! ```
//!
//! and the query returns the `k` data objects with the highest `τ`.
//! Every data object is a potential result — the spatial predicate bounds
//! the *scoring* neighbourhood, not the result set — which is what makes
//! the query expensive and interesting to distribute.
//!
//! ## The algorithms
//!
//! All three run as a single MapReduce job over a query-time grid whose
//! cells are independent work units (feature objects are duplicated into
//! neighbouring cells per Lemma 1, data objects never are):
//!
//! * [`algo::pspq`] — the baseline: reducers score every feature against
//!   every in-range data object (Section 4).
//! * [`algo::espq_len`] — features sorted by increasing keyword length;
//!   terminates once the Equation-1 bound of the next feature cannot beat
//!   the current top-k threshold (Section 5.1).
//! * [`algo::espq_sco`] — Jaccard scores computed map-side and used as the
//!   sort key (descending); the reducer reports data objects in score
//!   order and stops after `k` (Section 5.2).
//!
//! [`SpqExecutor`] is the high-level per-query entry point; [`engine`]
//! holds the persistent [`QueryEngine`] that builds the dataset store,
//! partition routing and keyword index **once** and then serves an
//! arbitrary query stream (single, batched, or concurrent); [`store`]
//! holds the shared immutable dataset behind the zero-copy shuffle
//! (records travel as 8–16-byte handles, never as cloned objects);
//! [`centralized`] holds the exact baselines used as ground truth;
//! [`theory`] implements the Section-6 duplication-factor and cost
//! analysis.

#![warn(missing_docs)]

pub mod algo;
pub mod centralized;
pub mod engine;
pub mod executor;
pub mod merge;
pub mod model;
pub mod partitioning;
pub mod query;
pub mod remote;
pub mod serve;
pub mod service;
pub mod sharded;
pub mod store;
pub mod theory;
pub mod topk;
pub mod validate;

pub use algo::Algorithm;
pub use engine::{DatasetStats, KeywordIndex, MetricsSnapshot, QueryEngine};
pub use executor::{GridSizing, LoadBalancing, SpqError, SpqExecutor, SpqResult};
pub use model::{DataObject, FeatureObject, ObjectId, RankedObject, SpqObject};
pub use partitioning::CellRouting;
pub use query::SpqQuery;
pub use remote::{
    MembershipConfig, MembershipView, RemoteEngine, ShardHost, TickReport, WorkerState,
    SPQ_REMOTE_WORKERS, SPQ_REPLICATION_FACTOR,
};
pub use serve::{
    export_metrics, AdmissionConfig, AdmissionQueue, AdmissionSnapshot, HistogramSnapshot,
    LatencyHistogram, OverflowPolicy, PumpReport, Ticket,
};
pub use service::{
    Backend, ExecutionMode, QueryExecutor, QueryOptions, QueryRequest, QueryResponse, QueryStats,
    SpqService, TickOutcome,
};
pub use sharded::{ShardStats, ShardedEngine};
pub use store::{ObjectRef, SharedDataset};
pub use topk::TopKList;
