//! The object model: data objects, feature objects, ranked results.

use spq_spatial::Point;
use spq_text::{KeywordSet, Score};
use std::fmt;

/// Identifier of a data or feature object.
///
/// Ids are unique *within* each dataset (`O` and `F` are separate
/// namespaces, as in the paper where `p_i` and `f_j` are distinct worlds).
pub type ObjectId = u64;

/// A spatial data object `p ∈ O` — the kind of object the query ranks and
/// returns. Data objects carry no text (their relevance comes entirely
/// from nearby feature objects).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataObject {
    /// Object identifier, unique within `O`.
    pub id: ObjectId,
    /// Spatial location (`p.x`, `p.y`).
    pub location: Point,
}

impl DataObject {
    /// Creates a data object.
    pub fn new(id: ObjectId, location: Point) -> Self {
        Self { id, location }
    }
}

/// A spatio-textual feature object `f ∈ F`, annotated with keywords `f.W`.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureObject {
    /// Object identifier, unique within `F`.
    pub id: ObjectId,
    /// Spatial location (`f.x`, `f.y`).
    pub location: Point,
    /// Keyword annotations `f.W`.
    pub keywords: KeywordSet,
}

impl FeatureObject {
    /// Creates a feature object.
    pub fn new(id: ObjectId, location: Point, keywords: KeywordSet) -> Self {
        Self {
            id,
            location,
            keywords,
        }
    }
}

/// One record of the horizontally partitioned input: either kind of
/// object. Map tasks receive these "without any assumptions on their
/// location" (Section 4.2) — a split may mix both kinds or hold only one.
#[derive(Debug, Clone, PartialEq)]
pub enum SpqObject {
    /// A data object.
    Data(DataObject),
    /// A feature object.
    Feature(FeatureObject),
}

impl SpqObject {
    /// The object's location, regardless of kind.
    pub fn location(&self) -> Point {
        match self {
            SpqObject::Data(o) => o.location,
            SpqObject::Feature(f) => f.location,
        }
    }

    /// True for data objects.
    pub fn is_data(&self) -> bool {
        matches!(self, SpqObject::Data(_))
    }
}

impl From<DataObject> for SpqObject {
    fn from(o: DataObject) -> Self {
        SpqObject::Data(o)
    }
}

impl From<FeatureObject> for SpqObject {
    fn from(f: FeatureObject) -> Self {
        SpqObject::Feature(f)
    }
}

/// One entry of a query result: a data object together with its exact
/// score `τ(p)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedObject {
    /// The data object's id.
    pub object: ObjectId,
    /// The data object's location.
    pub location: Point,
    /// The score `τ(p)` (always > 0 for reported objects — objects with no
    /// relevant feature in range are never reported).
    pub score: Score,
}

impl RankedObject {
    /// Creates a ranked entry.
    pub fn new(object: ObjectId, location: Point, score: Score) -> Self {
        Self {
            object,
            location,
            score,
        }
    }

    /// The canonical result order: score descending, then id ascending.
    ///
    /// Used by the centralized baselines and the global merge so that the
    /// reference results are unique even under score ties.
    pub fn canonical_cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .score
            .cmp(&self.score)
            .then(self.object.cmp(&other.object))
    }
}

impl fmt::Display for RankedObject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{} @ {} τ={}", self.object, self.location, self.score)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spq_object_accessors() {
        let d: SpqObject = DataObject::new(1, Point::new(0.5, 0.25)).into();
        let f: SpqObject =
            FeatureObject::new(2, Point::new(1.0, 2.0), KeywordSet::from_ids([3])).into();
        assert!(d.is_data());
        assert!(!f.is_data());
        assert_eq!(d.location(), Point::new(0.5, 0.25));
        assert_eq!(f.location(), Point::new(1.0, 2.0));
    }

    #[test]
    fn canonical_order_breaks_ties_by_id() {
        let a = RankedObject::new(5, Point::new(0.0, 0.0), Score::ratio(1, 2));
        let b = RankedObject::new(3, Point::new(0.0, 0.0), Score::ratio(1, 2));
        let c = RankedObject::new(9, Point::new(0.0, 0.0), Score::ONE);
        let mut v = [a, b, c];
        v.sort_by(RankedObject::canonical_cmp);
        assert_eq!(
            v.iter().map(|r| r.object).collect::<Vec<_>>(),
            vec![9, 3, 5]
        );
    }

    #[test]
    fn display_shows_id_and_score() {
        let r = RankedObject::new(7, Point::new(1.0, 2.0), Score::ONE);
        let s = r.to_string();
        assert!(s.contains("p7") && s.contains("1.0000"));
    }
}
