//! The top-k candidate list `Lk` with its threshold `τ`.
//!
//! Algorithms 2 and 4 of the paper maintain "a sorted list Lk of the k
//! data objects with best scores" and use `τ`, the k-th best score so far,
//! both to prune feature objects (`w(x,q) > τ`) and — for eSPQlen — to
//! terminate early (`τ >= w̄(x,q)`).

use crate::model::{ObjectId, RankedObject};
use spq_spatial::Point;
use spq_text::Score;

/// A bounded list of the best-scoring data objects seen so far.
///
/// Kept sorted by `(score desc, id asc)`. An object appears at most once;
/// [`update`](TopKList::update) raises its score in place (scores only
/// ever improve, since `τ(p)` is a running maximum). Capacity `k` is tiny
/// (the paper sweeps 5–100), so linear operations beat any heap here.
#[derive(Debug, Clone)]
pub struct TopKList {
    k: usize,
    entries: Vec<RankedObject>,
}

impl TopKList {
    /// Creates an empty list with capacity `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "top-k list needs k >= 1");
        Self {
            k,
            entries: Vec::with_capacity(k.min(1024)),
        }
    }

    /// The threshold `τ`: the k-th best score so far, or zero while the
    /// list is not yet full (any positive score still qualifies).
    #[inline]
    pub fn tau(&self) -> Score {
        if self.entries.len() < self.k {
            Score::ZERO
        } else {
            self.entries[self.entries.len() - 1].score
        }
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entry qualified yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True once `k` entries are held.
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.k
    }

    /// Offers `(object, score)`; inserts, raises an existing entry, or
    /// ignores the offer if it cannot enter the list.
    ///
    /// Mirrors line 13 of Algorithm 2: "if p already exists in Lk we only
    /// update its score, otherwise p is inserted". Under ties the smaller
    /// id is preferred, matching [`RankedObject::canonical_cmp`].
    pub fn update(&mut self, object: ObjectId, location: Point, score: Score) {
        if score.is_zero() {
            return;
        }
        if let Some(pos) = self.entries.iter().position(|e| e.object == object) {
            if self.entries[pos].score >= score {
                return; // running max: never lower an entry
            }
            self.entries.remove(pos);
        } else if self.is_full() {
            let worst = self.entries[self.entries.len() - 1];
            let candidate = RankedObject::new(object, location, score);
            if candidate.canonical_cmp(&worst).is_ge() {
                return; // cannot displace the current k-th entry
            }
            self.entries.pop();
        }
        let candidate = RankedObject::new(object, location, score);
        let pos = self
            .entries
            .partition_point(|e| e.canonical_cmp(&candidate).is_lt());
        self.entries.insert(pos, candidate);
    }

    /// The entries in canonical order (score desc, id asc).
    pub fn as_slice(&self) -> &[RankedObject] {
        &self.entries
    }

    /// Consumes the list, returning the entries in canonical order.
    pub fn into_vec(self) -> Vec<RankedObject> {
        self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p() -> Point {
        Point::new(0.0, 0.0)
    }

    fn ids(list: &TopKList) -> Vec<ObjectId> {
        list.as_slice().iter().map(|e| e.object).collect()
    }

    #[test]
    fn tau_is_zero_until_full() {
        let mut l = TopKList::new(2);
        assert_eq!(l.tau(), Score::ZERO);
        l.update(1, p(), Score::ratio(1, 2));
        assert_eq!(l.tau(), Score::ZERO);
        l.update(2, p(), Score::ratio(1, 4));
        assert_eq!(l.tau(), Score::ratio(1, 4));
    }

    #[test]
    fn keeps_best_k_in_order() {
        let mut l = TopKList::new(3);
        for (id, num) in [(1, 1), (2, 5), (3, 3), (4, 4), (5, 2)] {
            l.update(id, p(), Score::ratio(num, 10));
        }
        assert_eq!(ids(&l), vec![2, 4, 3]);
        assert_eq!(l.tau(), Score::ratio(3, 10));
    }

    #[test]
    fn update_raises_existing_entry() {
        let mut l = TopKList::new(2);
        l.update(1, p(), Score::ratio(1, 10));
        l.update(2, p(), Score::ratio(2, 10));
        l.update(1, p(), Score::ratio(9, 10));
        assert_eq!(ids(&l), vec![1, 2]);
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn update_never_lowers_a_score() {
        let mut l = TopKList::new(1);
        l.update(1, p(), Score::ratio(9, 10));
        l.update(1, p(), Score::ratio(1, 10));
        assert_eq!(l.as_slice()[0].score, Score::ratio(9, 10));
    }

    #[test]
    fn zero_scores_never_enter() {
        let mut l = TopKList::new(2);
        l.update(1, p(), Score::ZERO);
        assert!(l.is_empty());
    }

    #[test]
    fn ties_prefer_smaller_id() {
        let mut l = TopKList::new(2);
        l.update(9, p(), Score::ratio(1, 2));
        l.update(3, p(), Score::ratio(1, 2));
        l.update(6, p(), Score::ratio(1, 2));
        assert_eq!(ids(&l), vec![3, 6]);
        // An equal-score larger id cannot displace the current k-th.
        l.update(7, p(), Score::ratio(1, 2));
        assert_eq!(ids(&l), vec![3, 6]);
        // But an equal-score *smaller* id can.
        l.update(1, p(), Score::ratio(1, 2));
        assert_eq!(ids(&l), vec![1, 3]);
    }

    #[test]
    #[should_panic]
    fn zero_k_rejected() {
        let _ = TopKList::new(0);
    }

    proptest! {
        /// The list always equals the canonical top-k of everything offered,
        /// where per-object score is the max offered for that object.
        #[test]
        fn prop_matches_reference(offers in proptest::collection::vec(
            (0u64..20, 0usize..30), 0..60), k in 1usize..8) {
            let mut l = TopKList::new(k);
            for &(id, num) in &offers {
                l.update(id, p(), Score::ratio(num, 30));
            }
            // Reference: max score per id, positive only, canonical top-k.
            let mut best: std::collections::HashMap<u64, usize> = Default::default();
            for &(id, num) in &offers {
                if num > 0 {
                    let e = best.entry(id).or_insert(0);
                    *e = (*e).max(num);
                }
            }
            let mut expected: Vec<RankedObject> = best
                .into_iter()
                .map(|(id, num)| RankedObject::new(id, p(), Score::ratio(num, 30)))
                .collect();
            expected.sort_by(RankedObject::canonical_cmp);
            expected.truncate(k);
            let got = l.into_vec();
            prop_assert_eq!(
                got.iter().map(|e| (e.object, e.score)).collect::<Vec<_>>(),
                expected.iter().map(|e| (e.object, e.score)).collect::<Vec<_>>()
            );
        }

        /// τ is monotonically non-decreasing over any offer sequence.
        #[test]
        fn prop_tau_monotone(offers in proptest::collection::vec(
            (0u64..10, 0usize..20), 0..40)) {
            let mut l = TopKList::new(3);
            let mut last_tau = Score::ZERO;
            for &(id, num) in &offers {
                l.update(id, p(), Score::ratio(num, 20));
                let tau = l.tau();
                prop_assert!(tau >= last_tau);
                last_tau = tau;
            }
        }
    }
}
