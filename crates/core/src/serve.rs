//! The admission-controlled serving front-end: bounded in-flight queue,
//! batch coalescing, deadline shedding.
//!
//! The engines execute whatever they are handed; under real traffic the
//! interesting decisions happen *before* execution — how many requests
//! may be in the building at once, how arrivals are grouped into batches
//! (the fastest execution mode), and what to do when the system cannot
//! keep up. [`AdmissionQueue`] is that front door, generic over any
//! [`QueryExecutor`] (a borrowed [`crate::service::SpqService`] works:
//! references execute wherever their referent does):
//!
//! * **Bounded in-flight cap** — [`AdmissionQueue::submit`] admits at
//!   most [`AdmissionConfig::max_in_flight`] requests (queued plus
//!   executing). At the cap, [`OverflowPolicy::Reject`] fails fast with
//!   [`SpqError::Overloaded`] (retryable — the client's signal to back
//!   off), while [`OverflowPolicy::Block`] parks the producer thread
//!   until capacity frees, converting overload into backpressure.
//! * **Batch coalescing** — admitted requests wait in an arrival window
//!   that closes when it holds [`AdmissionConfig::batch_max`] requests
//!   *or* [`AdmissionConfig::batch_ticks`] ticks after it opened,
//!   whichever comes first. A closed window executes as one coalesced
//!   batch ([`ExecutionMode::Coalesced`] per member — exactly what
//!   [`QueryExecutor::execute_batch`] runs), so concurrency converts
//!   into the engines' fastest mode. Responses are byte-identical to
//!   executing each request alone; coalescing and priorities only move
//!   *when* a request runs.
//! * **Deadline shedding** — time is a **manual clock**
//!   ([`AdmissionQueue::tick`], like [`crate::remote::RemoteEngine::tick`]),
//!   so every schedule is deterministic and testable. When a window
//!   closes at tick `t`, every queued request whose
//!   [`QueryRequest::deadline`] is `< t` is shed with
//!   [`SpqError::DeadlineExceeded`] instead of executed late — under
//!   overload the queue degrades by answering fewer requests on time,
//!   never by crashing or answering all of them late.
//! * **Observability** — admitted/shed/coalesced counters and a queue
//!   depth watermark ([`AdmissionQueue::stats`]), a log-bucketed
//!   [`LatencyHistogram`] aggregated inside the serve loop, and a
//!   scrape-friendly text export ([`export_metrics`] /
//!   [`AdmissionQueue::metrics_text`]) that folds in the engine's
//!   [`MetricsSnapshot`] — percentiles exist outside the bench harness.
//!
//! The dequeue order is priority-then-arrival
//! ([`QueryRequest::priority`] descending, submission order within a
//! priority), so latency-sensitive traffic overtakes bulk traffic
//! without starving it into deadline misses — and without ever changing
//! anyone's result bytes.
//!
//! ```
//! use spq_core::serve::{AdmissionConfig, AdmissionQueue};
//! use spq_core::{DataObject, FeatureObject, QueryEngine, QueryRequest};
//! use spq_core::{SharedDataset, SpqExecutor, SpqQuery};
//! use spq_spatial::{Point, Rect};
//! use spq_text::KeywordSet;
//!
//! let dataset = SharedDataset::new(
//!     vec![DataObject::new(1, Point::new(4.6, 4.8))],
//!     vec![FeatureObject::new(4, Point::new(3.8, 5.5), KeywordSet::from_ids([0]))],
//! );
//! let engine = QueryEngine::new(
//!     SpqExecutor::new(Rect::from_coords(0.0, 0.0, 10.0, 10.0)).grid_size(4),
//!     dataset,
//! );
//! let queue = AdmissionQueue::new(&engine, AdmissionConfig::default()).unwrap();
//!
//! let ticket = queue
//!     .submit(QueryRequest::new(SpqQuery::new(1, 1.5, KeywordSet::from_ids([0]))))
//!     .unwrap();
//! queue.drain(); // or a serve loop calling `tick()` on a cadence
//! assert_eq!(ticket.wait().unwrap().results[0].object, 1);
//! ```

use crate::engine::MetricsSnapshot;
use crate::executor::SpqError;
use crate::service::{ExecutionMode, QueryExecutor, QueryRequest, QueryResponse};
use crate::sharded::ShardStats;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar};

/// What [`AdmissionQueue::submit`] does when the in-flight cap is hit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// Fail fast with [`SpqError::Overloaded`] — the request is not
    /// enqueued, and the error is retryable
    /// ([`SpqError::is_retryable`]): the client's signal to back off and
    /// resubmit. The default: overload surfaces at the edge instead of
    /// growing an unbounded queue.
    #[default]
    Reject,
    /// Park the producer thread until capacity frees — backpressure for
    /// in-process producers that would rather wait than handle a
    /// rejection.
    Block,
}

/// Configuration of an [`AdmissionQueue`]. Builder-style, validated at
/// [`AdmissionQueue::new`] exactly as [`QueryRequest::validate`] guards
/// the request path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Upper bound on requests admitted at once (queued plus executing).
    /// Must be ≥ 1.
    pub max_in_flight: usize,
    /// What [`AdmissionQueue::submit`] does at the cap.
    pub overflow: OverflowPolicy,
    /// A coalescing window closes as soon as it holds this many
    /// requests. Must be ≥ 1.
    pub batch_max: usize,
    /// A non-full window closes this many ticks after it opened (`0`
    /// closes every window on the next [`AdmissionQueue::tick`]).
    pub batch_ticks: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            max_in_flight: 64,
            overflow: OverflowPolicy::default(),
            batch_max: 8,
            batch_ticks: 1,
        }
    }
}

impl AdmissionConfig {
    /// Sets the in-flight cap.
    pub fn with_max_in_flight(mut self, cap: usize) -> Self {
        self.max_in_flight = cap;
        self
    }

    /// Sets the overflow policy.
    pub fn with_overflow(mut self, policy: OverflowPolicy) -> Self {
        self.overflow = policy;
        self
    }

    /// Sets the size at which a coalescing window closes.
    pub fn with_batch_max(mut self, batch_max: usize) -> Self {
        self.batch_max = batch_max;
        self
    }

    /// Sets the tick age at which a non-full window closes.
    pub fn with_batch_ticks(mut self, ticks: u64) -> Self {
        self.batch_ticks = ticks;
        self
    }

    /// Checks the configuration before the queue is built.
    pub fn validate(&self) -> Result<(), SpqError> {
        if self.max_in_flight == 0 {
            return Err(SpqError::invalid_config(
                "admission cap must admit at least one request",
            ));
        }
        if self.batch_max == 0 {
            return Err(SpqError::invalid_config(
                "coalescing windows must hold at least one request",
            ));
        }
        Ok(())
    }
}

/// The slot a pending request's outcome is delivered into.
#[derive(Debug, Default)]
struct TicketInner {
    slot: Mutex<Option<Result<QueryResponse, SpqError>>>,
    ready: Condvar,
}

impl TicketInner {
    fn deliver(&self, outcome: Result<QueryResponse, SpqError>) {
        *self.slot.lock() = Some(outcome);
        self.ready.notify_all();
    }
}

/// A claim on one admitted request's eventual outcome — the
/// bounded-channel job handle of the admission queue.
///
/// The producer that submitted keeps the ticket; the serve loop delivers
/// into it when the request executes (or is shed). [`wait`](Self::wait)
/// parks until then, so a ticket must not be waited on from the same
/// thread that drives [`AdmissionQueue::tick`] before the request was
/// pumped.
#[derive(Debug)]
pub struct Ticket {
    inner: Arc<TicketInner>,
}

impl Ticket {
    /// Whether the outcome has been delivered (never blocks).
    pub fn is_ready(&self) -> bool {
        self.inner.slot.lock().is_some()
    }

    /// Takes the outcome if it has been delivered (never blocks).
    pub fn try_wait(self) -> Result<Result<QueryResponse, SpqError>, Ticket> {
        let taken = self.inner.slot.lock().take();
        match taken {
            Some(outcome) => Ok(outcome),
            None => Err(self),
        }
    }

    /// Parks until the outcome is delivered, then returns it.
    pub fn wait(self) -> Result<QueryResponse, SpqError> {
        let mut slot = self.inner.slot.lock();
        loop {
            if let Some(outcome) = slot.take() {
                return outcome;
            }
            slot = self
                .inner
                .ready
                .wait(slot)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }
}

/// One admitted, not-yet-executed request.
#[derive(Debug)]
struct Pending {
    /// Arrival order — the tiebreaker within a priority.
    seq: u64,
    request: QueryRequest,
    ticket: Arc<TicketInner>,
}

/// Queue state behind one mutex.
#[derive(Debug, Default)]
struct QueueState {
    pending: VecDeque<Pending>,
    /// Admitted requests not yet resolved (queued + executing + shedding)
    /// — what the cap bounds.
    in_flight: usize,
    next_seq: u64,
    /// The tick the current coalescing window opened, `None` while the
    /// queue is empty.
    window_open: Option<u64>,
    /// Highest queue depth ever observed at admission.
    depth_watermark: usize,
}

/// Cumulative admission counters.
#[derive(Debug, Default)]
struct AdmissionCounters {
    submitted: AtomicU64,
    admitted: AtomicU64,
    rejected_overload: AtomicU64,
    shed_deadline: AtomicU64,
    executed: AtomicU64,
    failed: AtomicU64,
    coalesced_batches: AtomicU64,
}

/// A point-in-time snapshot of an [`AdmissionQueue`]'s counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionSnapshot {
    /// Requests offered to [`AdmissionQueue::submit`] (valid or not).
    pub submitted: u64,
    /// Requests admitted past the cap check.
    pub admitted: u64,
    /// Requests rejected at the cap under [`OverflowPolicy::Reject`].
    pub rejected_overload: u64,
    /// Admitted requests shed past their deadline at dequeue time.
    pub shed_deadline: u64,
    /// Admitted requests that executed and delivered a response.
    pub executed: u64,
    /// Admitted requests whose execution returned an error.
    pub failed: u64,
    /// Coalesced batches the serve loop has executed.
    pub coalesced_batches: u64,
    /// Highest queue depth ever observed at admission.
    pub queue_depth_watermark: usize,
    /// Requests currently queued (excludes the executing window).
    pub queue_depth: usize,
    /// The manual clock's current tick.
    pub clock: u64,
}

/// Number of latency buckets: bucket `i ≥ 1` counts observations in
/// `[2^(i-1), 2^i)` microseconds, bucket `0` counts zeros, and the last
/// bucket absorbs everything ≥ 2^30 µs (~18 minutes).
pub const LATENCY_BUCKETS: usize = 31;

/// A log-bucketed (powers-of-two microseconds) latency histogram.
///
/// Lock-free to record (one atomic add), tiny to keep per queue, and
/// mergeable — the shape every serving stack uses for percentiles that
/// must be cheap at scrape time. Exact percentiles stay in the bench
/// harness; this is the production approximation (one power of two of
/// resolution).
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    sum_micros: AtomicU64,
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_of(micros: u64) -> usize {
        ((u64::BITS - micros.leading_zeros()) as usize).min(LATENCY_BUCKETS - 1)
    }

    /// Records one observation.
    pub fn record(&self, micros: u64) {
        self.buckets[Self::bucket_of(micros)].fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; LATENCY_BUCKETS];
        for (out, bucket) in buckets.iter_mut().zip(&self.buckets) {
            *out = bucket.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            sum_micros: self.sum_micros.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`LatencyHistogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (see [`LATENCY_BUCKETS`] for the bounds).
    pub buckets: [u64; LATENCY_BUCKETS],
    /// Sum of all recorded observations, microseconds.
    pub sum_micros: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            buckets: [0; LATENCY_BUCKETS],
            sum_micros: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The inclusive upper bound of bucket `i`, microseconds (`None` for
    /// the unbounded last bucket).
    pub fn upper_bound(i: usize) -> Option<u64> {
        (i + 1 < LATENCY_BUCKETS).then(|| (1u64 << i) - 1)
    }

    /// The value at quantile `q ∈ [0, 1]`, reported as the upper bound of
    /// the bucket that contains it (0 when empty). One power of two of
    /// resolution — the scrape-side approximation, not the bench-side
    /// bootstrap.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::upper_bound(i).unwrap_or(u64::MAX);
            }
        }
        Self::upper_bound(LATENCY_BUCKETS - 2).unwrap_or(0)
    }

    /// Mean observation, microseconds (0 when empty).
    pub fn mean_micros(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum_micros as f64 / count as f64
        }
    }

    /// Adds another snapshot's counts into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.sum_micros += other.sum_micros;
    }
}

/// What one [`AdmissionQueue::pump`] (or [`tick`](AdmissionQueue::tick))
/// did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PumpReport {
    /// Requests executed in this pump's coalesced window.
    pub executed: usize,
    /// Requests shed past their deadline at this dequeue.
    pub shed: usize,
    /// Requests whose execution returned an error.
    pub failed: usize,
    /// Requests still queued after the pump.
    pub remaining: usize,
}

impl PumpReport {
    /// Whether the pump found nothing to do and nothing left behind.
    pub fn idle(&self) -> bool {
        *self == PumpReport::default()
    }

    /// Folds another report into this one (`remaining` takes the later
    /// value).
    pub fn absorb(&mut self, other: PumpReport) {
        self.executed += other.executed;
        self.shed += other.shed;
        self.failed += other.failed;
        self.remaining = other.remaining;
    }
}

/// The admission-controlled serving front-end. See the
/// [module docs](self) for the full lifecycle.
///
/// `E` is any [`QueryExecutor`] — an owned engine, or a borrowed one
/// (`&SpqService`), since references execute wherever their referent
/// does. Producers call [`submit`](Self::submit) from any number of
/// threads; a serve loop (usually one thread, but any driver works)
/// advances the manual clock with [`tick`](Self::tick) or drains
/// synchronously with [`drain`](Self::drain).
#[derive(Debug)]
pub struct AdmissionQueue<E: QueryExecutor> {
    executor: E,
    config: AdmissionConfig,
    clock: AtomicU64,
    state: Mutex<QueueState>,
    /// Signals blocked producers when capacity frees.
    space: Condvar,
    counters: AdmissionCounters,
    latency: LatencyHistogram,
}

impl<E: QueryExecutor> AdmissionQueue<E> {
    /// Builds a queue over `executor`, validating `config`.
    pub fn new(executor: E, config: AdmissionConfig) -> Result<Self, SpqError> {
        config.validate()?;
        Ok(Self {
            executor,
            config,
            clock: AtomicU64::new(0),
            state: Mutex::new(QueueState::default()),
            space: Condvar::new(),
            counters: AdmissionCounters::default(),
            latency: LatencyHistogram::new(),
        })
    }

    /// The executor requests are served on.
    pub fn executor(&self) -> &E {
        &self.executor
    }

    /// The configuration the queue was built with.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// The manual clock's current tick.
    pub fn now(&self) -> u64 {
        self.clock.load(Ordering::Relaxed)
    }

    /// Offers one request for admission.
    ///
    /// Validates first ([`SpqError::InvalidQuery`] is never admitted),
    /// then applies the cap: at [`AdmissionConfig::max_in_flight`]
    /// admitted requests, [`OverflowPolicy::Reject`] returns
    /// [`SpqError::Overloaded`] and [`OverflowPolicy::Block`] parks until
    /// capacity frees. Admission returns a [`Ticket`] for the eventual
    /// outcome — which may still be [`SpqError::DeadlineExceeded`] if the
    /// request's deadline passes before a serve-loop pump dequeues it.
    pub fn submit(&self, request: QueryRequest) -> Result<Ticket, SpqError> {
        self.counters.submitted.fetch_add(1, Ordering::Relaxed);
        request.validate()?;
        let ticket = Arc::new(TicketInner::default());
        let mut state = self.state.lock();
        while state.in_flight >= self.config.max_in_flight {
            match self.config.overflow {
                OverflowPolicy::Reject => {
                    self.counters
                        .rejected_overload
                        .fetch_add(1, Ordering::Relaxed);
                    return Err(SpqError::Overloaded {
                        capacity: self.config.max_in_flight,
                    });
                }
                OverflowPolicy::Block => {
                    state = self
                        .space
                        .wait(state)
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                }
            }
        }
        state.in_flight += 1;
        let seq = state.next_seq;
        state.next_seq += 1;
        if state.window_open.is_none() {
            state.window_open = Some(self.now());
        }
        state.pending.push_back(Pending {
            seq,
            request,
            ticket: Arc::clone(&ticket),
        });
        state.depth_watermark = state.depth_watermark.max(state.pending.len());
        self.counters.admitted.fetch_add(1, Ordering::Relaxed);
        Ok(Ticket { inner: ticket })
    }

    /// Advances the manual clock one tick, then [`pump`](Self::pump)s.
    /// The deterministic heartbeat of a serve loop.
    pub fn tick(&self) -> PumpReport {
        self.clock.fetch_add(1, Ordering::Relaxed);
        self.pump()
    }

    /// Closes the coalescing window if it is due — full
    /// ([`AdmissionConfig::batch_max`]) or aged out
    /// ([`AdmissionConfig::batch_ticks`]) — and executes it: first shed
    /// every queued request whose deadline has passed *at this dequeue*,
    /// then run the highest-priority `batch_max` survivors as one
    /// coalesced batch and deliver into their tickets. Does nothing when
    /// the window is still filling.
    pub fn pump(&self) -> PumpReport {
        let now = self.now();
        let (window, shed) = {
            let mut state = self.state.lock();
            let Some(opened) = state.window_open else {
                return PumpReport::default();
            };
            let size_due = state.pending.len() >= self.config.batch_max;
            let time_due = now >= opened.saturating_add(self.config.batch_ticks);
            if !size_due && !time_due {
                return PumpReport {
                    remaining: state.pending.len(),
                    ..PumpReport::default()
                };
            }

            // Shed at dequeue time: exactly the queued requests whose
            // deadline tick is behind the clock, wherever they sit in
            // the queue (they could only ever be dequeued later, so
            // shedding now frees capacity earliest).
            let mut survivors: Vec<Pending> = Vec::with_capacity(state.pending.len());
            // Shed entries carry the deadline they missed, captured here
            // where it is known to exist — no later re-extraction.
            let mut shed: Vec<(Pending, u64)> = Vec::new();
            for p in state.pending.drain(..) {
                match p.request.deadline {
                    Some(d) if now > d => shed.push((p, d)),
                    _ => survivors.push(p),
                }
            }

            // Dequeue order: priority descending, arrival order within a
            // priority — result bytes are unaffected, only scheduling.
            survivors.sort_by_key(|p| (std::cmp::Reverse(p.request.priority), p.seq));
            let take = survivors.len().min(self.config.batch_max);
            let window: Vec<Pending> = survivors.drain(..take).collect();
            survivors.sort_by_key(|p| p.seq);
            state.pending = survivors.into();
            state.window_open = (!state.pending.is_empty()).then_some(now);
            (window, shed)
        };

        for (p, deadline) in &shed {
            p.ticket.deliver(Err(SpqError::DeadlineExceeded {
                deadline: *deadline,
                now,
            }));
        }
        self.counters
            .shed_deadline
            .fetch_add(shed.len() as u64, Ordering::Relaxed);

        let mut executed = 0usize;
        let mut failed = 0usize;
        if !window.is_empty() {
            self.counters
                .coalesced_batches
                .fetch_add(1, Ordering::Relaxed);
            // One coalesced window: per-member ExecutionMode::Coalesced,
            // exactly what `QueryExecutor::execute_batch` runs — but
            // delivered per ticket, so one failing request cannot poison
            // its window-mates.
            for p in &window {
                match self
                    .executor
                    .run_validated(&p.request, ExecutionMode::Coalesced)
                {
                    Ok(response) => {
                        self.latency.record(response.stats.wall_micros);
                        executed += 1;
                        p.ticket.deliver(Ok(response));
                    }
                    Err(e) => {
                        failed += 1;
                        p.ticket.deliver(Err(e));
                    }
                }
            }
            self.counters
                .executed
                .fetch_add(executed as u64, Ordering::Relaxed);
            self.counters
                .failed
                .fetch_add(failed as u64, Ordering::Relaxed);
        }

        let remaining = {
            let mut state = self.state.lock();
            state.in_flight -= window.len() + shed.len();
            state.pending.len()
        };
        if self.config.overflow == OverflowPolicy::Block {
            self.space.notify_all();
        }
        PumpReport {
            executed,
            shed: shed.len(),
            failed,
            remaining,
        }
    }

    /// Ticks until the queue is empty, folding every pump into one
    /// report. This only drains what has been submitted when it runs —
    /// with live producers, run a serve loop around
    /// [`tick`](Self::tick) instead.
    pub fn drain(&self) -> PumpReport {
        let mut total = PumpReport::default();
        loop {
            let report = self.tick();
            total.absorb(report);
            if report.remaining == 0 {
                return total;
            }
        }
    }

    /// Requests currently queued.
    pub fn queue_depth(&self) -> usize {
        self.state.lock().pending.len()
    }

    /// A snapshot of the admission counters.
    pub fn stats(&self) -> AdmissionSnapshot {
        let (queue_depth, queue_depth_watermark) = {
            let state = self.state.lock();
            (state.pending.len(), state.depth_watermark)
        };
        AdmissionSnapshot {
            submitted: self.counters.submitted.load(Ordering::Relaxed),
            admitted: self.counters.admitted.load(Ordering::Relaxed),
            rejected_overload: self.counters.rejected_overload.load(Ordering::Relaxed),
            shed_deadline: self.counters.shed_deadline.load(Ordering::Relaxed),
            executed: self.counters.executed.load(Ordering::Relaxed),
            failed: self.counters.failed.load(Ordering::Relaxed),
            coalesced_batches: self.counters.coalesced_batches.load(Ordering::Relaxed),
            queue_depth_watermark,
            queue_depth,
            clock: self.now(),
        }
    }

    /// A snapshot of the latency histogram the serve loop aggregates.
    pub fn latency(&self) -> HistogramSnapshot {
        self.latency.snapshot()
    }

    /// The full scrape payload for this queue: the executor's
    /// [`MetricsSnapshot`], the admission counters and the latency
    /// histogram, in the [`export_metrics`] text format. Per-shard lines
    /// require the caller to pass
    /// [`crate::sharded::ShardedEngine::shard_stats`] to
    /// [`export_metrics`] directly — the trait surface is
    /// backend-erased.
    pub fn metrics_text(&self) -> String {
        export_metrics(
            &self.executor.metrics(),
            &[],
            Some(&self.stats()),
            Some(&self.latency()),
        )
    }
}

fn push_counter(out: &mut String, name: &str, help: &str, value: u64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} counter");
    let _ = writeln!(out, "{name} {value}");
}

fn push_gauge(out: &mut String, name: &str, help: &str, value: u64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} gauge");
    let _ = writeln!(out, "{name} {value}");
}

/// Renders a scrape-friendly (Prometheus text format) export of the
/// serving metrics: the engine's cumulative [`MetricsSnapshot`],
/// optional per-shard traffic lines, and — when a front-end runs — the
/// admission counters and the log-bucketed latency histogram
/// (cumulative `_bucket{le="…"}` lines).
pub fn export_metrics(
    engine: &MetricsSnapshot,
    shards: &[ShardStats],
    admission: Option<&AdmissionSnapshot>,
    latency: Option<&HistogramSnapshot>,
) -> String {
    let mut out = String::new();
    push_counter(
        &mut out,
        "spq_engine_queries_total",
        "Queries executed through any entry point.",
        engine.queries,
    );
    push_counter(
        &mut out,
        "spq_engine_plan_cache_hits_total",
        "Queries whose partition plan was served from cache.",
        engine.plan_cache_hits,
    );
    push_counter(
        &mut out,
        "spq_engine_plan_cache_misses_total",
        "Queries that built (and cached) their partition plan.",
        engine.plan_cache_misses,
    );
    push_counter(
        &mut out,
        "spq_engine_keyword_probes_total",
        "Query keywords probed against the keyword index.",
        engine.keyword_probes,
    );
    push_counter(
        &mut out,
        "spq_engine_keyword_hits_total",
        "Probed keywords that hit a non-empty posting list.",
        engine.keyword_hits,
    );
    push_counter(
        &mut out,
        "spq_remote_retries_total",
        "Shard re-dispatches after remote worker failures.",
        engine.remote_retries,
    );
    push_gauge(
        &mut out,
        "spq_remote_excluded_workers",
        "Remote workers currently out of rotation.",
        engine.excluded_workers,
    );
    push_counter(
        &mut out,
        "spq_remote_warm_failovers_total",
        "Failovers served by flipping to a warm replica.",
        engine.warm_failovers,
    );
    push_counter(
        &mut out,
        "spq_remote_cold_reprovisions_total",
        "Failovers that re-shipped a provision payload.",
        engine.cold_reprovisions,
    );
    push_counter(
        &mut out,
        "spq_remote_readmissions_total",
        "Remote workers re-admitted after probe hysteresis.",
        engine.readmissions,
    );

    if !shards.is_empty() {
        let _ = writeln!(
            out,
            "# HELP spq_shard_queries_total Queries served per shard."
        );
        let _ = writeln!(out, "# TYPE spq_shard_queries_total counter");
        for s in shards {
            let _ = writeln!(
                out,
                "spq_shard_queries_total{{shard=\"{}\"}} {}",
                s.shard, s.queries
            );
        }
        let _ = writeln!(
            out,
            "# HELP spq_shard_gather_bytes_total Wire bytes shipped per shard."
        );
        let _ = writeln!(out, "# TYPE spq_shard_gather_bytes_total counter");
        for s in shards {
            let _ = writeln!(
                out,
                "spq_shard_gather_bytes_total{{shard=\"{}\"}} {}",
                s.shard, s.bytes_shipped
            );
        }
    }

    if let Some(a) = admission {
        push_counter(
            &mut out,
            "spq_admission_submitted_total",
            "Requests offered to the admission queue.",
            a.submitted,
        );
        push_counter(
            &mut out,
            "spq_admission_admitted_total",
            "Requests admitted past the in-flight cap.",
            a.admitted,
        );
        push_counter(
            &mut out,
            "spq_admission_rejected_overload_total",
            "Requests rejected at the cap (Overloaded).",
            a.rejected_overload,
        );
        push_counter(
            &mut out,
            "spq_admission_shed_deadline_total",
            "Requests shed past their deadline at dequeue.",
            a.shed_deadline,
        );
        push_counter(
            &mut out,
            "spq_admission_executed_total",
            "Admitted requests that delivered a response.",
            a.executed,
        );
        push_counter(
            &mut out,
            "spq_admission_coalesced_batches_total",
            "Coalesced windows the serve loop executed.",
            a.coalesced_batches,
        );
        push_gauge(
            &mut out,
            "spq_admission_queue_depth",
            "Requests currently queued.",
            a.queue_depth as u64,
        );
        push_gauge(
            &mut out,
            "spq_admission_queue_depth_watermark",
            "Highest queue depth observed at admission.",
            a.queue_depth_watermark as u64,
        );
    }

    if let Some(h) = latency {
        let name = "spq_request_latency_micros";
        let _ = writeln!(
            out,
            "# HELP {name} Per-request execution wall time, microseconds."
        );
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (i, &n) in h.buckets.iter().enumerate() {
            cumulative += n;
            match HistogramSnapshot::upper_bound(i) {
                Some(le) => {
                    let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
                }
                None => {
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
                }
            }
        }
        let _ = writeln!(out, "{name}_sum {}", h.sum_micros);
        let _ = writeln!(out, "{name}_count {}", h.count());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::QueryEngine;
    use crate::model::{DataObject, FeatureObject};
    use crate::query::SpqQuery;
    use crate::store::SharedDataset;
    use crate::SpqExecutor;
    use spq_spatial::{Point, Rect};
    use spq_text::KeywordSet;

    fn feature(id: u64, x: f64, y: f64, kw: &[u32]) -> FeatureObject {
        FeatureObject::new(
            id,
            Point::new(x, y),
            KeywordSet::from_ids(kw.iter().copied()),
        )
    }

    fn paper_dataset() -> SharedDataset {
        SharedDataset::new(
            vec![
                DataObject::new(1, Point::new(4.6, 4.8)),
                DataObject::new(2, Point::new(7.5, 1.7)),
                DataObject::new(3, Point::new(8.9, 5.2)),
                DataObject::new(4, Point::new(1.8, 1.8)),
                DataObject::new(5, Point::new(1.9, 9.0)),
            ],
            vec![
                feature(1, 2.8, 1.2, &[0, 1]),
                feature(2, 5.0, 3.8, &[2, 3]),
                feature(3, 8.7, 1.9, &[4, 5]),
                feature(4, 3.8, 5.5, &[0]),
                feature(5, 5.2, 5.1, &[6, 7]),
                feature(6, 7.4, 5.4, &[8, 9]),
                feature(7, 3.0, 8.1, &[0, 10]),
                feature(8, 9.5, 7.0, &[11]),
            ],
        )
    }

    fn engine() -> QueryEngine {
        QueryEngine::new(
            SpqExecutor::new(Rect::from_coords(0.0, 0.0, 10.0, 10.0)).grid_size(4),
            paper_dataset(),
        )
    }

    fn request(k: usize, r: f64, kw: &[u32]) -> QueryRequest {
        QueryRequest::new(SpqQuery::new(
            k,
            r,
            KeywordSet::from_ids(kw.iter().copied()),
        ))
    }

    #[test]
    fn config_validates_like_the_request_path() {
        assert!(AdmissionConfig::default().validate().is_ok());
        for bad in [
            AdmissionConfig::default().with_max_in_flight(0),
            AdmissionConfig::default().with_batch_max(0),
        ] {
            assert!(matches!(
                bad.validate(),
                Err(SpqError::InvalidConfig { .. })
            ));
        }
        // batch_ticks = 0 is legal: every window closes on the next tick.
        assert!(AdmissionConfig::default()
            .with_batch_ticks(0)
            .validate()
            .is_ok());
    }

    #[test]
    fn admitted_requests_answer_identically_to_direct_execution() {
        let engine = engine();
        let queue = AdmissionQueue::new(&engine, AdmissionConfig::default()).unwrap();
        let requests: Vec<QueryRequest> = (1..=5).map(|k| request(k, 1.5, &[0])).collect();
        let tickets: Vec<Ticket> = requests
            .iter()
            .map(|r| queue.submit(r.clone()).unwrap())
            .collect();
        let report = queue.drain();
        assert_eq!(report.executed, 5);
        assert_eq!(report.shed, 0);
        for (ticket, request) in tickets.into_iter().zip(&requests) {
            let got = ticket.wait().unwrap();
            let expect = engine.execute_sequential(request).unwrap();
            assert_eq!(got.results, expect.results);
        }
        let stats = queue.stats();
        assert_eq!(stats.admitted, 5);
        assert_eq!(stats.executed, 5);
        assert!(stats.coalesced_batches >= 1);
        assert_eq!(stats.queue_depth, 0);
        assert!(stats.queue_depth_watermark >= 1);
    }

    #[test]
    fn reject_policy_overflows_with_retryable_overloaded() {
        let engine = engine();
        let queue = AdmissionQueue::new(
            &engine,
            AdmissionConfig::default()
                .with_max_in_flight(2)
                .with_batch_max(2),
        )
        .unwrap();
        let _t1 = queue.submit(request(1, 1.5, &[0])).unwrap();
        let _t2 = queue.submit(request(2, 1.5, &[0])).unwrap();
        let err = queue.submit(request(3, 1.5, &[0])).unwrap_err();
        assert_eq!(err, SpqError::Overloaded { capacity: 2 });
        assert!(err.is_retryable());
        // Capacity frees once the window executes.
        queue.drain();
        assert!(queue.submit(request(3, 1.5, &[0])).is_ok());
        assert_eq!(queue.stats().rejected_overload, 1);
    }

    #[test]
    fn block_policy_parks_producers_until_capacity_frees() {
        let engine = engine();
        let queue = AdmissionQueue::new(
            &engine,
            AdmissionConfig::default()
                .with_max_in_flight(1)
                .with_batch_max(1)
                .with_overflow(OverflowPolicy::Block),
        )
        .unwrap();
        let first = queue.submit(request(1, 1.5, &[0])).unwrap();
        std::thread::scope(|scope| {
            let producer = scope.spawn(|| queue.submit(request(2, 1.5, &[0])).unwrap());
            // Drive until both requests made it through: the producer can
            // only return once the first window freed its slot.
            while !producer.is_finished() {
                queue.tick();
                std::thread::yield_now();
            }
            let second = producer.join().unwrap();
            queue.drain();
            assert!(first.wait().is_ok());
            assert!(second.wait().is_ok());
        });
        let stats = queue.stats();
        assert_eq!(stats.rejected_overload, 0);
        assert_eq!(stats.executed, 2);
    }

    #[test]
    fn sheds_exactly_the_requests_past_deadline_at_dequeue() {
        let engine = engine();
        // Large window: nothing executes until a tick closes it.
        let queue = AdmissionQueue::new(
            &engine,
            AdmissionConfig::default()
                .with_batch_max(16)
                .with_batch_ticks(3),
        )
        .unwrap();
        let deadlines = [Some(1u64), Some(3), Some(10), None];
        let tickets: Vec<Ticket> = deadlines
            .iter()
            .map(|d| {
                let mut r = request(2, 1.5, &[0]);
                r.deadline = *d;
                queue.submit(r).unwrap()
            })
            .collect();
        // Window opened at tick 0, closes at tick 3. At dequeue the clock
        // is 3: deadline 1 is past, deadline 3 is not (now > d sheds).
        let mut report = PumpReport::default();
        for _ in 0..3 {
            report.absorb(queue.tick());
        }
        assert_eq!(report.shed, 1);
        assert_eq!(report.executed, 3);
        let outcomes: Vec<Result<QueryResponse, SpqError>> =
            tickets.into_iter().map(|t| t.wait()).collect();
        assert_eq!(
            outcomes[0].as_ref().unwrap_err(),
            &SpqError::DeadlineExceeded {
                deadline: 1,
                now: 3
            }
        );
        assert!(outcomes[0].as_ref().unwrap_err().is_retryable());
        for outcome in &outcomes[1..] {
            assert!(outcome.is_ok());
        }
        assert_eq!(queue.stats().shed_deadline, 1);
    }

    #[test]
    fn window_closes_on_size_before_its_tick_age() {
        let engine = engine();
        let queue = AdmissionQueue::new(
            &engine,
            AdmissionConfig::default()
                .with_batch_max(2)
                .with_batch_ticks(1000),
        )
        .unwrap();
        let t1 = queue.submit(request(1, 1.5, &[0])).unwrap();
        // One queued request: the pump leaves the not-yet-due window alone.
        assert_eq!(queue.pump().remaining, 1);
        let t2 = queue.submit(request(2, 1.5, &[0])).unwrap();
        // Size-due: pump executes without any tick.
        let report = queue.pump();
        assert_eq!(report.executed, 2);
        assert!(t1.is_ready() && t2.is_ready());
        assert!(t1.wait().is_ok() && t2.wait().is_ok());
    }

    #[test]
    fn priority_orders_dequeue_without_changing_bytes() {
        let engine = engine();
        let queue = AdmissionQueue::new(
            &engine,
            AdmissionConfig::default()
                .with_batch_max(2)
                .with_batch_ticks(0),
        )
        .unwrap();
        let low1 = queue.submit(request(1, 1.5, &[0])).unwrap();
        let low2 = queue
            .submit(request(2, 1.5, &[0]).with_priority(0))
            .unwrap();
        let high = queue
            .submit(request(3, 1.5, &[0]).with_priority(9))
            .unwrap();
        // First window: the high-priority request plus the older of the
        // two low-priority ones (arrival breaks the tie).
        let report = queue.tick();
        assert_eq!(report.executed, 2);
        assert!(high.is_ready());
        assert!(low1.is_ready());
        assert!(!low2.is_ready());
        queue.drain();
        // Scheduling never changes bytes.
        let expect = engine.execute_sequential(&request(2, 1.5, &[0])).unwrap();
        assert_eq!(low2.wait().unwrap().results, expect.results);
        let _ = (high.wait(), low1.wait());
    }

    #[test]
    fn invalid_requests_are_never_admitted() {
        let engine = engine();
        let queue = AdmissionQueue::new(&engine, AdmissionConfig::default()).unwrap();
        let mut bad = request(1, 1.5, &[0]);
        bad.query.k = 0;
        let err = queue.submit(bad).unwrap_err();
        assert!(matches!(err, SpqError::InvalidQuery { .. }));
        assert!(!err.is_retryable());
        let stats = queue.stats();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.admitted, 0);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = LatencyHistogram::new();
        assert_eq!(h.snapshot().quantile(0.99), 0); // empty
        for micros in [0u64, 1, 2, 3, 500, 1000, 1_000_000] {
            h.record(micros);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 7);
        assert_eq!(snap.sum_micros, 1_001_506);
        // 0 lands in bucket 0; 1 in bucket 1; 2 and 3 in bucket 2.
        assert_eq!(snap.buckets[0], 1);
        assert_eq!(snap.buckets[1], 1);
        assert_eq!(snap.buckets[2], 2);
        // p50 over 7 samples is the 4th: value 3 → bucket 2, le 3.
        assert_eq!(snap.quantile(0.5), 3);
        // p99 is the largest: 1_000_000 < 2^20 → le 2^20 - 1.
        assert_eq!(snap.quantile(0.99), (1 << 20) - 1);
        let mut merged = snap;
        merged.merge(&snap);
        assert_eq!(merged.count(), 14);
        assert_eq!(merged.quantile(0.5), 3);
    }

    #[test]
    fn metrics_text_is_scrapeable() {
        let engine = engine();
        let queue = AdmissionQueue::new(&engine, AdmissionConfig::default()).unwrap();
        let t = queue.submit(request(1, 1.5, &[0])).unwrap();
        queue.drain();
        t.wait().unwrap();
        let text = queue.metrics_text();
        for needle in [
            "spq_engine_queries_total 1",
            "spq_admission_admitted_total 1",
            "spq_admission_executed_total 1",
            "# TYPE spq_request_latency_micros histogram",
            "spq_request_latency_micros_count 1",
            "_bucket{le=\"+Inf\"} 1",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        // Per-shard lines render when shard stats are passed.
        let sharded = crate::sharded::ShardedEngine::new(
            SpqExecutor::new(Rect::from_coords(0.0, 0.0, 10.0, 10.0)).grid_size(4),
            paper_dataset(),
            2,
        )
        .unwrap();
        sharded.execute(&request(1, 1.5, &[0])).unwrap();
        let text = export_metrics(&sharded.metrics(), &sharded.shard_stats(), None, None);
        assert!(text.contains("spq_shard_queries_total{shard=\"0\"}"));
        assert!(text.contains("spq_shard_queries_total{shard=\"1\"}"));
    }

    #[test]
    fn drain_is_idempotent_on_an_empty_queue() {
        let engine = engine();
        let queue = AdmissionQueue::new(&engine, AdmissionConfig::default()).unwrap();
        assert!(queue.drain().idle());
        assert_eq!(queue.queue_depth(), 0);
    }
}
