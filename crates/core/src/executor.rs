//! The high-level query executor: grid planning, job execution, merge.

use crate::algo::espq_len::ESpqLenTask;
use crate::algo::espq_sco::ESpqScoTask;
use crate::algo::pspq::PSpqTask;
use crate::algo::Algorithm;
use crate::merge::merge_top_k;
use crate::model::{DataObject, FeatureObject, RankedObject, SpqObject};
use crate::partitioning::CellRouting;
use crate::query::SpqQuery;
use crate::store::{ObjectRef, SharedDataset};
use crate::theory::auto_grid_size;
use spq_mapreduce::{ClusterConfig, ExecutionBackend, JobContext, JobError, JobStats, LocalPool};
use spq_spatial::{AdaptiveGrid, Grid, Point, Rect, SpacePartition};
use std::fmt;
use std::sync::Arc;

/// How the query-time grid is sized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GridSizing {
    /// A fixed `n × n` grid (the paper's experimental sweeps).
    Fixed(u32),
    /// Choose the grid from the query radius per Section 6.3: as fine as
    /// possible while keeping the cell side at least `r`, capped at
    /// `max_cells_per_axis`.
    Auto {
        /// Upper bound on cells per axis (reduce-task appetite).
        max_cells_per_axis: u32,
    },
}

impl Default for GridSizing {
    fn default() -> Self {
        GridSizing::Auto {
            max_cells_per_axis: 64,
        }
    }
}

/// How cells are shaped over the data space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LoadBalancing {
    /// The paper's uniform grid — every cell the same size.
    #[default]
    UniformGrid,
    /// Extension: a quadtree partition built over a sample of the data
    /// object locations, so dense regions get more (smaller) cells. Uses
    /// the same total cell budget as the uniform grid would, and Lemma 1
    /// still guarantees correctness. Targets the reducer imbalance the
    /// paper observes on clustered data (Section 7.2.4).
    AdaptiveQuadtree {
        /// How many data locations to sample for the build.
        sample_size: usize,
    },
}

/// The error taxonomy of the serving API.
///
/// Every fallible entry point — the per-query [`SpqExecutor`], the
/// persistent engines, the typed [`crate::service`] facade and the
/// [`crate::serve`] admission front-end — reports through this enum, so
/// callers can route on *what kind* of failure occurred: a rejected
/// request ([`InvalidQuery`](Self::InvalidQuery)), a misconfigured engine
/// ([`InvalidConfig`](Self::InvalidConfig)), a runtime execution failure
/// ([`Job`](Self::Job) / [`Worker`](Self::Worker)), or an admission
/// outcome ([`Overloaded`](Self::Overloaded) /
/// [`DeadlineExceeded`](Self::DeadlineExceeded)).
///
/// ## Retryability contract
///
/// [`is_retryable`](Self::is_retryable) partitions the taxonomy into
/// errors a client may transparently retry (transient load or
/// infrastructure conditions: the request itself was well-formed and an
/// identical resubmission can succeed) and errors it must not (the
/// request or the deployment is wrong, and retrying would loop forever).
/// Tests route on the variants — never on error-message substrings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpqError {
    /// The underlying MapReduce job failed.
    Job(JobError),
    /// A query worker of [`crate::engine::QueryEngine::serve`] panicked
    /// outside any MapReduce phase.
    Worker {
        /// Human-readable description of the failed query task.
        message: String,
    },
    /// A request was rejected before execution (non-finite radius, `k` of
    /// zero, a zero worker budget, …). Only the typed request path
    /// validates; the plain-`SpqQuery` shims keep their permissive
    /// historical behaviour.
    InvalidQuery {
        /// What was wrong with the request.
        message: String,
    },
    /// An engine or backend was configured in a way that cannot serve
    /// (zero shards, duplicate data-object ids under a sharded wire
    /// format, …). Raised at build time, never per query.
    InvalidConfig {
        /// What was wrong with the configuration.
        message: String,
    },
    /// A remote worker failed the query in a way that is not attributable
    /// to a single lost worker: a protocol violation, an undecodable
    /// response, or a typed error the worker itself reported.
    Remote {
        /// Human-readable description of the remote failure.
        message: String,
    },
    /// A remote worker process died (or missed its deadline) and its
    /// shards could not be recovered on any surviving worker.
    WorkerLost {
        /// Index of the last worker that was tried.
        worker: usize,
        /// The transport error observed on the final attempt.
        message: String,
    },
    /// The admission queue was at its bounded in-flight cap and its
    /// overflow policy rejects instead of blocking (see
    /// [`crate::serve::OverflowPolicy`]). The request was **not**
    /// enqueued; resubmitting once load drains is expected to succeed.
    Overloaded {
        /// The in-flight cap that was hit.
        capacity: usize,
    },
    /// The request's admission deadline passed before it was dequeued for
    /// execution — the queue shed it instead of running it late. The
    /// request never executed.
    DeadlineExceeded {
        /// The request's deadline, in admission-clock ticks.
        deadline: u64,
        /// The admission clock when the request was shed.
        now: u64,
    },
}

impl SpqError {
    /// Builds an [`InvalidQuery`](Self::InvalidQuery) error.
    pub fn invalid_query(message: impl Into<String>) -> Self {
        SpqError::InvalidQuery {
            message: message.into(),
        }
    }

    /// Builds an [`InvalidConfig`](Self::InvalidConfig) error.
    pub fn invalid_config(message: impl Into<String>) -> Self {
        SpqError::InvalidConfig {
            message: message.into(),
        }
    }

    /// Builds a [`Remote`](Self::Remote) error.
    pub fn remote(message: impl Into<String>) -> Self {
        SpqError::Remote {
            message: message.into(),
        }
    }

    /// Whether a client may transparently resubmit the identical request.
    ///
    /// `true` for transient load and infrastructure conditions —
    /// [`Overloaded`](Self::Overloaded) (the queue was full *now*),
    /// [`DeadlineExceeded`](Self::DeadlineExceeded) (shed before running;
    /// nothing executed, so a resubmission with a fresh deadline is
    /// safe), [`WorkerLost`](Self::WorkerLost) and
    /// [`Worker`](Self::Worker) (a process or thread died mid-flight).
    ///
    /// `false` for deterministic failures that would recur on every
    /// retry: [`InvalidQuery`](Self::InvalidQuery) and
    /// [`InvalidConfig`](Self::InvalidConfig) (the input is wrong),
    /// [`Job`](Self::Job) and [`Remote`](Self::Remote) (the execution
    /// layer itself reported a typed, non-transport failure).
    pub fn is_retryable(&self) -> bool {
        match self {
            SpqError::Overloaded { .. }
            | SpqError::DeadlineExceeded { .. }
            | SpqError::WorkerLost { .. }
            | SpqError::Worker { .. } => true,
            SpqError::Job(_)
            | SpqError::InvalidQuery { .. }
            | SpqError::InvalidConfig { .. }
            | SpqError::Remote { .. } => false,
        }
    }
}

impl fmt::Display for SpqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpqError::Job(e) => write!(f, "mapreduce job failed: {e}"),
            SpqError::Worker { message } => write!(f, "query worker failed: {message}"),
            SpqError::InvalidQuery { message } => write!(f, "invalid query: {message}"),
            SpqError::InvalidConfig { message } => write!(f, "invalid configuration: {message}"),
            SpqError::Remote { message } => write!(f, "remote execution failed: {message}"),
            SpqError::WorkerLost { worker, message } => {
                write!(f, "remote worker {worker} lost: {message}")
            }
            SpqError::Overloaded { capacity } => {
                write!(f, "admission queue overloaded (in-flight cap {capacity})")
            }
            SpqError::DeadlineExceeded { deadline, now } => {
                write!(
                    f,
                    "deadline exceeded: due at tick {deadline}, shed at tick {now}"
                )
            }
        }
    }
}

impl std::error::Error for SpqError {}

impl From<JobError> for SpqError {
    fn from(e: JobError) -> Self {
        SpqError::Job(e)
    }
}

/// The outcome of one distributed SPQ evaluation.
#[derive(Debug, Clone)]
pub struct SpqResult {
    /// The global top-k, canonical order (score desc, id asc). May hold
    /// fewer than `k` entries when fewer data objects have `τ(p) > 0`.
    pub top_k: Vec<RankedObject>,
    /// Execution statistics of the MapReduce job (timings, counters,
    /// per-task durations for cluster simulation).
    pub stats: JobStats,
    /// The algorithm that ran.
    pub algorithm: Algorithm,
    /// The query-time space partition that was used. Shared (`Arc`) so a
    /// serving engine can hand out its cached partition without cloning
    /// it per query.
    pub partition: Arc<SpacePartition>,
    /// Bytes that crossed the in-process shuffle:
    /// `stats.shuffle_records × size_of::<(Key, Value)>()` of the
    /// algorithm's composite key and handle value — the same accounting
    /// the PR 2 trajectory bench uses, now surfaced per query so the
    /// service layer can report it.
    pub shuffle_bytes: u64,
}

/// Configures and runs distributed spatial preference queries.
///
/// ```
/// use spq_core::{Algorithm, DataObject, FeatureObject, SpqExecutor, SpqQuery};
/// use spq_spatial::{Point, Rect};
/// use spq_text::KeywordSet;
///
/// let data = vec![DataObject::new(1, Point::new(4.6, 4.8))];
/// let features = vec![FeatureObject::new(
///     4,
///     Point::new(3.8, 5.5),
///     KeywordSet::from_ids([0]),
/// )];
/// let query = SpqQuery::new(1, 1.5, KeywordSet::from_ids([0]));
///
/// let result = SpqExecutor::new(Rect::from_coords(0.0, 0.0, 10.0, 10.0))
///     .algorithm(Algorithm::ESpqSco)
///     .grid_size(4)
///     .run(&[data], &[features], &query)
///     .unwrap();
/// assert_eq!(result.top_k[0].object, 1);
/// ```
#[derive(Debug, Clone)]
pub struct SpqExecutor {
    bounds: Rect,
    algorithm: Algorithm,
    sizing: GridSizing,
    cluster: ClusterConfig,
    keyword_pruning: bool,
    balancing: LoadBalancing,
}

impl SpqExecutor {
    /// Creates an executor for a data space, with the paper's best
    /// algorithm (eSPQsco), automatic grid sizing and all host cores.
    pub fn new(bounds: Rect) -> Self {
        Self {
            bounds,
            algorithm: Algorithm::default(),
            sizing: GridSizing::default(),
            cluster: ClusterConfig::auto(),
            keyword_pruning: true,
            balancing: LoadBalancing::default(),
        }
    }

    /// Selects the algorithm.
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Uses a fixed `n × n` grid.
    pub fn grid_size(mut self, n: u32) -> Self {
        self.sizing = GridSizing::Fixed(n);
        self
    }

    /// Uses automatic grid sizing with the given cap.
    pub fn auto_grid(mut self, max_cells_per_axis: u32) -> Self {
        self.sizing = GridSizing::Auto { max_cells_per_axis };
        self
    }

    /// Sets the cluster configuration.
    pub fn cluster(mut self, cluster: ClusterConfig) -> Self {
        self.cluster = cluster;
        self
    }

    /// Enables/disables the map-side keyword pruning rule (Algorithm 1
    /// line 9). On by default; disabling it is an ablation that ships
    /// every feature object through the shuffle without changing results.
    pub fn keyword_pruning(mut self, enabled: bool) -> Self {
        self.keyword_pruning = enabled;
        self
    }

    /// Selects the cell-shaping strategy (uniform grid per the paper, or
    /// the adaptive quadtree extension for skewed data).
    pub fn load_balancing(mut self, balancing: LoadBalancing) -> Self {
        self.balancing = balancing;
        self
    }

    /// Plans the query-time grid for a query (Section 4.1: the grid is
    /// defined after `r` is known).
    pub fn plan_grid(&self, query: &SpqQuery) -> Grid {
        let n = match self.sizing {
            GridSizing::Fixed(n) => n,
            GridSizing::Auto { max_cells_per_axis } => {
                let extent = self.bounds.width().max(self.bounds.height());
                auto_grid_size(extent, query.radius, max_cells_per_axis)
            }
        };
        Grid::square(self.bounds, n)
    }

    /// Plans the query-time space partition: the uniform grid, or — under
    /// [`LoadBalancing::AdaptiveQuadtree`] — a quadtree with the same cell
    /// budget built over a sample of the data object locations in
    /// `splits`.
    pub fn plan_partition(&self, query: &SpqQuery, splits: &[Vec<SpqObject>]) -> SpacePartition {
        let total: usize = splits.iter().map(Vec::len).sum();
        self.plan_partition_sampled(query, total, |stride, sample_size| {
            splits
                .iter()
                .flatten()
                .step_by(stride)
                .filter(|o| o.is_data())
                .map(|o| o.location())
                .take(sample_size)
                .collect()
        })
    }

    /// [`plan_partition`](Self::plan_partition) over reference splits into
    /// a shared dataset — same sampling rule, no owned records.
    pub fn plan_partition_shared(
        &self,
        query: &SpqQuery,
        dataset: &SharedDataset,
        splits: &[Vec<ObjectRef>],
    ) -> SpacePartition {
        let total: usize = splits.iter().map(Vec::len).sum();
        self.plan_partition_sampled(query, total, |stride, sample_size| {
            splits
                .iter()
                .flatten()
                .step_by(stride)
                .filter(|r| r.is_data())
                .map(|&r| dataset.location_of(r))
                .take(sample_size)
                .collect()
        })
    }

    fn plan_partition_sampled(
        &self,
        query: &SpqQuery,
        total: usize,
        sample_with: impl FnOnce(usize, usize) -> Vec<Point>,
    ) -> SpacePartition {
        let grid = self.plan_grid(query);
        match self.balancing {
            LoadBalancing::UniformGrid => grid.into(),
            LoadBalancing::AdaptiveQuadtree { sample_size } => {
                let budget = grid.num_cells();
                let stride = (total / sample_size.max(1)).max(1);
                let sample = sample_with(stride, sample_size);
                AdaptiveGrid::build_with_min_cell(self.bounds, &sample, budget, query.radius).into()
            }
        }
    }

    /// Runs the query over horizontally partitioned inputs given as
    /// separate data and feature splits. The objects are copied **once**
    /// into a [`SharedDataset`] (as a Hadoop job reads its input from
    /// HDFS once); from there on only object handles move.
    pub fn run(
        &self,
        data_splits: &[Vec<DataObject>],
        feature_splits: &[Vec<FeatureObject>],
        query: &SpqQuery,
    ) -> Result<SpqResult, SpqError> {
        let mut data = Vec::with_capacity(data_splits.iter().map(Vec::len).sum());
        let mut features = Vec::with_capacity(feature_splits.iter().map(Vec::len).sum());
        let mut splits: Vec<Vec<ObjectRef>> =
            Vec::with_capacity(data_splits.len() + feature_splits.len());
        for s in data_splits {
            let start = data.len() as u32;
            data.extend_from_slice(s);
            splits.push((start..data.len() as u32).map(ObjectRef::Data).collect());
        }
        for s in feature_splits {
            let start = features.len() as u32;
            features.extend_from_slice(s);
            splits.push(
                (start..features.len() as u32)
                    .map(ObjectRef::Feature)
                    .collect(),
            );
        }
        let dataset = SharedDataset::new(data, features);
        self.run_shared(&dataset, &splits, query)
    }

    /// Runs the query over pre-built mixed splits of owned records. The
    /// records are copied **once** into a [`SharedDataset`]; callers that
    /// evaluate many queries over the same objects should build the
    /// shared dataset themselves and use
    /// [`run_shared`](Self::run_shared).
    pub fn run_splits(
        &self,
        splits: &[Vec<SpqObject>],
        query: &SpqQuery,
    ) -> Result<SpqResult, SpqError> {
        let (dataset, ref_splits) = SharedDataset::from_splits(splits);
        self.run_shared(&dataset, &ref_splits, query)
    }

    /// Runs the query over a shared dataset with automatic round-robin
    /// splitting (8 splits, matching `spq_data::Dataset::to_splits`'
    /// default shape).
    pub fn run_dataset(
        &self,
        dataset: &SharedDataset,
        query: &SpqQuery,
    ) -> Result<SpqResult, SpqError> {
        self.run_shared(dataset, &dataset.ref_splits(8), query)
    }

    /// The zero-copy entry point: runs the query over reference splits
    /// into a shared dataset. No object is cloned anywhere in the
    /// pipeline — map tasks read through the store, the shuffle moves
    /// 8–16-byte handles, reducers resolve them back against the store.
    pub fn run_shared(
        &self,
        dataset: &SharedDataset,
        splits: &[Vec<ObjectRef>],
        query: &SpqQuery,
    ) -> Result<SpqResult, SpqError> {
        let grid = self.plan_partition_shared(query, dataset, splits);
        self.run_planned(dataset, splits, query, Arc::new(grid), None, None)
    }

    /// Runs the query over a **pre-planned** partition — the building
    /// block behind [`crate::engine::QueryEngine`], which plans (and
    /// caches) partitions itself. `routing` optionally supplies prebuilt
    /// [`CellRouting`] tables for the partition at this query's radius;
    /// `ctx` optionally supplies a reusable [`JobContext`] so a stream of
    /// per-query jobs recycles its task scratch state. Both are pure
    /// optimizations: for the same partition the result is byte-identical
    /// to [`run_shared`](Self::run_shared).
    pub fn run_planned(
        &self,
        dataset: &SharedDataset,
        splits: &[Vec<ObjectRef>],
        query: &SpqQuery,
        partition: Arc<SpacePartition>,
        routing: Option<&CellRouting>,
        ctx: Option<&JobContext>,
    ) -> Result<SpqResult, SpqError> {
        self.run_planned_on(
            &LocalPool::new(self.cluster),
            dataset,
            splits,
            query,
            partition,
            routing,
            ctx,
        )
    }

    /// [`run_planned`](Self::run_planned) over an explicit
    /// [`ExecutionBackend`] — the seam through which the same planned
    /// job's map/reduce tasks can be placed somewhere other than the
    /// in-process pool (the executor's own cluster configuration is
    /// ignored; placement is entirely the backend's). Every backend
    /// honouring the [`ExecutionBackend`] determinism contract returns
    /// byte-identical results here.
    #[allow(clippy::too_many_arguments)]
    pub fn run_planned_on<B: ExecutionBackend>(
        &self,
        backend: &B,
        dataset: &SharedDataset,
        splits: &[Vec<ObjectRef>],
        query: &SpqQuery,
        partition: Arc<SpacePartition>,
        routing: Option<&CellRouting>,
        ctx: Option<&JobContext>,
    ) -> Result<SpqResult, SpqError> {
        let scratch;
        let ctx = match ctx {
            Some(ctx) => ctx,
            None => {
                scratch = JobContext::new();
                &scratch
            }
        };
        /// One shuffle record's in-memory wire size for byte accounting.
        fn record_bytes<T: spq_mapreduce::MapReduceTask>(_: &T) -> u64 {
            std::mem::size_of::<(T::Key, T::Value)>() as u64
        }
        macro_rules! run_task {
            ($task_type:ident) => {{
                let mut task = $task_type::new(dataset, &partition, query);
                if !self.keyword_pruning {
                    task = task.without_pruning();
                }
                if let Some(routing) = routing {
                    task = task.with_routing(routing);
                }
                let record_bytes = record_bytes(&task);
                let out = backend.execute(ctx, &task, splits)?;
                let stats = out.stats.clone();
                let shuffle_bytes = stats.shuffle_records * record_bytes;
                (out.into_flat(), stats, shuffle_bytes)
            }};
        }
        let (flat, stats, shuffle_bytes) = match self.algorithm {
            Algorithm::PSpq => run_task!(PSpqTask),
            Algorithm::ESpqLen => run_task!(ESpqLenTask),
            Algorithm::ESpqSco => run_task!(ESpqScoTask),
        };
        Ok(SpqResult {
            top_k: merge_top_k(flat, query.k),
            stats,
            algorithm: self.algorithm,
            partition,
            shuffle_bytes,
        })
    }

    /// The configured algorithm.
    pub fn algorithm_choice(&self) -> Algorithm {
        self.algorithm
    }

    /// The configured cluster.
    pub fn cluster_config(&self) -> ClusterConfig {
        self.cluster
    }

    /// Whether the map-side keyword pruning rule is enabled.
    pub fn keyword_pruning_enabled(&self) -> bool {
        self.keyword_pruning
    }

    /// The configured data-space bounds.
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// The configured grid-sizing policy.
    pub fn grid_sizing(&self) -> GridSizing {
        self.sizing
    }

    /// The configured load-balancing (partition-shape) policy.
    pub fn load_balancing_choice(&self) -> LoadBalancing {
        self.balancing
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centralized::brute_force;
    use crate::validate::check_result;
    use spq_spatial::Point;
    use spq_text::{KeywordSet, Score};

    fn paper_setup() -> (Vec<DataObject>, Vec<FeatureObject>) {
        let data = vec![
            DataObject::new(1, Point::new(4.6, 4.8)),
            DataObject::new(2, Point::new(7.5, 1.7)),
            DataObject::new(3, Point::new(8.9, 5.2)),
            DataObject::new(4, Point::new(1.8, 1.8)),
            DataObject::new(5, Point::new(1.9, 9.0)),
        ];
        let f = |id, x, y, kw: &[u32]| {
            FeatureObject::new(
                id,
                Point::new(x, y),
                KeywordSet::from_ids(kw.iter().copied()),
            )
        };
        let features = vec![
            f(1, 2.8, 1.2, &[0, 1]),
            f(2, 5.0, 3.8, &[2, 3]),
            f(3, 8.7, 1.9, &[4, 5]),
            f(4, 3.8, 5.5, &[0]),
            f(5, 5.2, 5.1, &[6, 7]),
            f(6, 7.4, 5.4, &[8, 9]),
            f(7, 3.0, 8.1, &[0, 10]),
            f(8, 9.5, 7.0, &[11]),
        ];
        (data, features)
    }

    fn bounds() -> Rect {
        Rect::from_coords(0.0, 0.0, 10.0, 10.0)
    }

    #[test]
    fn paper_example_via_every_algorithm() {
        let (data, features) = paper_setup();
        for k in [1, 3, 5] {
            let query = SpqQuery::new(k, 1.5, KeywordSet::from_ids([0]));
            let baseline = brute_force(&data, &features, &query);
            for algo in Algorithm::ALL {
                let result = SpqExecutor::new(bounds())
                    .algorithm(algo)
                    .grid_size(4)
                    .cluster(ClusterConfig::with_workers(2))
                    .run(
                        std::slice::from_ref(&data),
                        std::slice::from_ref(&features),
                        &query,
                    )
                    .unwrap();
                check_result(&result.top_k, &baseline, &data, &features, &query)
                    .unwrap_or_else(|e| panic!("{algo} k={k}: {e}"));
            }
        }
    }

    #[test]
    fn top1_is_p1_with_score_one() {
        let (data, features) = paper_setup();
        let query = SpqQuery::new(1, 1.5, KeywordSet::from_ids([0]));
        let result = SpqExecutor::new(bounds())
            .grid_size(4)
            .run(&[data], &[features], &query)
            .unwrap();
        assert_eq!(result.top_k.len(), 1);
        assert_eq!(result.top_k[0].object, 1);
        assert_eq!(result.top_k[0].score, Score::ONE);
        assert_eq!(result.algorithm, Algorithm::ESpqSco);
        assert_eq!(result.partition.num_cells(), 16);
    }

    #[test]
    fn result_invariant_across_grid_sizes() {
        let (data, features) = paper_setup();
        let query = SpqQuery::new(3, 1.5, KeywordSet::from_ids([0]));
        let baseline = brute_force(&data, &features, &query);
        for n in [1, 2, 4, 7, 10] {
            for algo in Algorithm::ALL {
                let result = SpqExecutor::new(bounds())
                    .algorithm(algo)
                    .grid_size(n)
                    .run(
                        std::slice::from_ref(&data),
                        std::slice::from_ref(&features),
                        &query,
                    )
                    .unwrap();
                check_result(&result.top_k, &baseline, &data, &features, &query)
                    .unwrap_or_else(|e| panic!("{algo} grid {n}: {e}"));
            }
        }
    }

    #[test]
    fn auto_grid_respects_radius() {
        let query = SpqQuery::new(1, 1.5, KeywordSet::from_ids([0]));
        let exec = SpqExecutor::new(bounds()).auto_grid(100);
        let grid = exec.plan_grid(&query);
        // extent 10, r 1.5 -> floor(10/1.5) = 6 cells per axis.
        assert_eq!(grid.nx(), 6);
        assert!(grid.cell_width() >= query.radius);
    }

    #[test]
    fn empty_features_give_empty_result() {
        let (data, _) = paper_setup();
        let query = SpqQuery::new(3, 1.5, KeywordSet::from_ids([0]));
        let result = SpqExecutor::new(bounds())
            .grid_size(4)
            .run(&[data], &[], &query)
            .unwrap();
        assert!(result.top_k.is_empty());
    }

    #[test]
    fn many_splits_same_result() {
        let (data, features) = paper_setup();
        let query = SpqQuery::new(3, 1.5, KeywordSet::from_ids([0]));
        // One object per split.
        let data_splits: Vec<Vec<DataObject>> = data.iter().map(|o| vec![*o]).collect();
        let feature_splits: Vec<Vec<FeatureObject>> =
            features.iter().map(|f| vec![f.clone()]).collect();
        let a = SpqExecutor::new(bounds())
            .grid_size(4)
            .run(&data_splits, &feature_splits, &query)
            .unwrap();
        let b = SpqExecutor::new(bounds())
            .grid_size(4)
            .run(&[data], &[features], &query)
            .unwrap();
        assert_eq!(a.top_k, b.top_k);
    }
}
