//! The persistent query engine: build indexes once, serve many queries.
//!
//! The paper evaluates one query per MapReduce job, and
//! [`SpqExecutor`] mirrors that lifecycle: every call re-plans the
//! partition, re-routes every object and (on the owned-input entry
//! points) re-copies the datasets. A serving system amortizes all of that
//! across the query stream. [`QueryEngine`] is that system:
//!
//! * **Build once** — construction pins the [`SharedDataset`] and its
//!   reference splits; the first query at each radius plans the space
//!   partition and fossilises the full map-side routing into
//!   [`CellRouting`] lookup tables (cached per radius, shared by every
//!   later query); a [`KeywordIndex`] inverted index over the feature
//!   keywords is built eagerly at construction.
//! * **Serve many** — the engine speaks the typed
//!   [`QueryExecutor`] surface:
//!   [`execute`](crate::service::QueryExecutor::execute) evaluates one
//!   request against the prebuilt state, byte-identical to a fresh
//!   [`SpqExecutor::run_dataset`] job;
//!   [`execute_batch`](crate::service::QueryExecutor::execute_batch)
//!   additionally resolves each request's matching features through the
//!   keyword index, so the map phase scans only candidate features
//!   instead of the whole feature set;
//!   [`serve_requests`](crate::service::QueryExecutor::serve_requests)
//!   pushes independent requests through the `spq-mapreduce` worker pool
//!   — parallelism comes from **inter-query concurrency** (each query
//!   runs as a single-threaded job), the right shape for high-QPS
//!   traffic of many small queries. The plain-`SpqQuery` methods
//!   ([`query`](QueryEngine::query) and friends) are deprecated shims
//!   over the same machinery.
//!
//! Determinism carries over from the job runner: for a fixed engine and
//! query, every entry point returns the same bytes regardless of worker
//! counts, and `execute` matches a fresh per-query executor job exactly
//! (`tests/engine_reuse.rs` proves both properties with proptests).
//!
//! ```
//! use spq_core::{Algorithm, DataObject, FeatureObject, QueryEngine, SpqExecutor, SpqQuery};
//! use spq_core::{QueryExecutor, QueryRequest, SharedDataset};
//! use spq_spatial::{Point, Rect};
//! use spq_text::KeywordSet;
//!
//! let dataset = SharedDataset::new(
//!     vec![DataObject::new(1, Point::new(4.6, 4.8))],
//!     vec![FeatureObject::new(4, Point::new(3.8, 5.5), KeywordSet::from_ids([0]))],
//! );
//! let executor = SpqExecutor::new(Rect::from_coords(0.0, 0.0, 10.0, 10.0))
//!     .algorithm(Algorithm::ESpqSco)
//!     .grid_size(4);
//!
//! // Build once…
//! let engine = QueryEngine::new(executor, dataset);
//!
//! // …then serve an arbitrary stream of requests against the same state.
//! let r1 = QueryRequest::new(SpqQuery::new(1, 1.5, KeywordSet::from_ids([0])));
//! let r2 = QueryRequest::new(SpqQuery::new(1, 2.5, KeywordSet::from_ids([0, 7])));
//! assert_eq!(engine.execute(&r1).unwrap().results[0].object, 1);
//!
//! let batch = engine.execute_batch(&[r1.clone(), r2.clone()]).unwrap();
//! assert_eq!(batch.len(), 2);
//!
//! let served = engine.serve_requests(&[r1, r2], 2).unwrap();
//! assert_eq!(served[0].results, batch[0].results);
//! assert_eq!(engine.cached_plans(), 2); // one routing plan per radius
//! ```

use crate::executor::{SpqError, SpqExecutor, SpqResult};
use crate::model::FeatureObject;
use crate::partitioning::CellRouting;
use crate::query::SpqQuery;
use crate::service::{
    ExecutionMode, QueryExecutor, QueryOptions, QueryRequest, QueryResponse, QueryStats,
};
use crate::store::{ObjectRef, SharedDataset};
use parking_lot::Mutex;
use spq_mapreduce::pool::run_tasks;
use spq_mapreduce::{ClusterConfig, JobContext};
use spq_spatial::SpacePartition;
use spq_text::{KeywordSet, Term};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// An inverted index from keyword to the feature objects carrying it.
///
/// Postings are CSR-packed (one flat, term-grouped slice of feature
/// indices plus a per-term offset table) and each term's posting list is
/// ascending, so merging a query's lists yields the candidate features in
/// store order — exactly the order the map phase would have visited them.
/// This is the engine's build-once replacement for the per-query keyword
/// pruning scan: instead of testing `q.W ∩ f.W` for every feature on
/// every query, a batched query probes `|q.W|` posting lists.
#[derive(Debug, Clone)]
pub struct KeywordIndex {
    /// `postings[offsets[t]..offsets[t + 1]]` are the features carrying
    /// term `t`, ascending.
    offsets: Box<[usize]>,
    postings: Box<[u32]>,
}

impl KeywordIndex {
    /// Builds the index over a feature set (one pass to count, one pass
    /// to fill).
    pub fn build(features: &[FeatureObject]) -> Self {
        let num_terms = features
            .iter()
            .flat_map(|f| f.keywords.iter())
            .map(|t| t.index() + 1)
            .max()
            .unwrap_or(0);
        let mut offsets = vec![0usize; num_terms + 1];
        for f in features {
            for t in f.keywords.iter() {
                offsets[t.index() + 1] += 1;
            }
        }
        for t in 0..num_terms {
            offsets[t + 1] += offsets[t];
        }
        let mut postings = vec![0u32; offsets[num_terms]];
        let mut cursor = offsets.clone();
        for (i, f) in features.iter().enumerate() {
            for t in f.keywords.iter() {
                postings[cursor[t.index()]] = i as u32;
                cursor[t.index()] += 1;
            }
        }
        Self {
            offsets: offsets.into_boxed_slice(),
            postings: postings.into_boxed_slice(),
        }
    }

    /// Number of distinct term slots (= highest indexed term id + 1).
    pub fn num_terms(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The ascending feature indices carrying `term` (empty for terms no
    /// feature carries).
    pub fn postings(&self, term: Term) -> &[u32] {
        if term.index() + 1 >= self.offsets.len() {
            return &[];
        }
        &self.postings[self.offsets[term.index()]..self.offsets[term.index() + 1]]
    }

    /// Number of features carrying `term` (its document frequency) —
    /// zero for terms outside the indexed range.
    pub fn term_frequency(&self, term: Term) -> usize {
        self.postings(term).len()
    }

    /// The `n` most frequent terms, as `(term, frequency)` pairs sorted
    /// by frequency descending then term id ascending. This is the
    /// engine's "what is this dataset about" surface: after ingesting a
    /// real dump, callers author meaningful queries by picking from the
    /// head (frequent) or tail (selective) of this ranking instead of
    /// guessing term ids.
    pub fn top_terms(&self, n: usize) -> Vec<(Term, usize)> {
        let mut ranked: Vec<(Term, usize)> = (0..self.num_terms())
            .map(|t| (Term(t as u32), self.offsets[t + 1] - self.offsets[t]))
            .filter(|&(_, count)| count > 0)
            .collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(n);
        ranked
    }

    /// The features sharing at least one keyword with `keywords` —
    /// exactly the set the map-side pruning rule of Algorithm 1 line 9
    /// would keep — ascending and deduplicated.
    pub fn candidates(&self, keywords: &KeywordSet) -> Vec<u32> {
        let mut out: Vec<u32> = Vec::new();
        for t in keywords.iter() {
            out.extend_from_slice(self.postings(t));
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Aggregate statistics of the dataset an engine serves — the surface a
/// caller needs to author queries against a freshly ingested dump whose
/// vocabulary and density it has never seen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetStats {
    /// Data objects `|O|`.
    pub data_objects: usize,
    /// Feature objects `|F|`.
    pub feature_objects: usize,
    /// Term-id slots in the keyword index (highest indexed id + 1).
    pub term_slots: usize,
    /// Terms carried by at least one feature (≤ `term_slots`).
    pub distinct_terms: usize,
    /// Total keyword occurrences across all features.
    pub total_keywords: u64,
    /// Mean keywords per feature (0 for a feature-less dataset).
    pub mean_keywords: f64,
    /// Length of the longest posting list (0 if no keywords).
    pub max_posting: usize,
}

/// One cached per-radius plan: the space partition plus its prebuilt
/// routing tables.
#[derive(Debug)]
struct PartitionPlan {
    partition: Arc<SpacePartition>,
    routing: CellRouting,
}

/// Cumulative engine counters (atomics — the engine is `Sync` and these
/// are bumped from concurrent serve workers).
#[derive(Debug, Default)]
struct EngineMetrics {
    queries: AtomicU64,
    plan_cache_hits: AtomicU64,
    plan_cache_misses: AtomicU64,
    keyword_probes: AtomicU64,
    keyword_hits: AtomicU64,
}

/// A point-in-time snapshot of an engine's cumulative counters — the
/// observability surface behind the ROADMAP's "engine observability"
/// item. Counters only ever grow — except
/// [`excluded_workers`](MetricsSnapshot::excluded_workers), which is a
/// gauge that falls back to zero as workers are re-admitted; diff the
/// others across two snapshots for a rate.
///
/// The remote fields are zero for the in-process backends; the remote
/// backend fills them from its membership layer (see
/// [`crate::remote::RemoteEngine::metrics`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Queries executed through any entry point.
    pub queries: u64,
    /// Queries whose per-radius partition plan was served from cache.
    pub plan_cache_hits: u64,
    /// Queries that had to build (and cache) their partition plan.
    pub plan_cache_misses: u64,
    /// Query keywords probed against the inverted keyword index.
    pub keyword_probes: u64,
    /// Probed keywords that hit a non-empty posting list.
    pub keyword_hits: u64,
    /// Shard re-dispatches after remote worker failures.
    pub remote_retries: u64,
    /// Remote workers currently out of rotation (a gauge, not a
    /// counter).
    pub excluded_workers: u64,
    /// Remote failovers served by flipping the shard's placement pointer
    /// to a warm replica (no provision round-trip).
    pub warm_failovers: u64,
    /// Remote failovers that re-shipped the shard's provision payload to
    /// a survivor.
    pub cold_reprovisions: u64,
    /// Remote workers re-admitted after probe hysteresis.
    pub readmissions: u64,
}

impl MetricsSnapshot {
    /// Merges two snapshots (used by the sharded engine to aggregate its
    /// per-shard engines).
    pub fn merged(self, other: MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            queries: self.queries + other.queries,
            plan_cache_hits: self.plan_cache_hits + other.plan_cache_hits,
            plan_cache_misses: self.plan_cache_misses + other.plan_cache_misses,
            keyword_probes: self.keyword_probes + other.keyword_probes,
            keyword_hits: self.keyword_hits + other.keyword_hits,
            remote_retries: self.remote_retries + other.remote_retries,
            excluded_workers: self.excluded_workers + other.excluded_workers,
            warm_failovers: self.warm_failovers + other.warm_failovers,
            cold_reprovisions: self.cold_reprovisions + other.cold_reprovisions,
            readmissions: self.readmissions + other.readmissions,
        }
    }
}

/// Upper bound on cached per-radius plans. Serving workloads use a small
/// set of radius classes, so the bound exists purely as a memory safety
/// valve against adversarial streams of distinct radii: each plan pins an
/// `O(|O| + |F|·duplication)` routing table, and on overflow an arbitrary
/// cached plan is evicted (plans rebuild deterministically, so eviction
/// only costs time, never correctness).
const MAX_CACHED_PLANS: usize = 64;

/// A long-lived SPQ serving engine over one dataset.
///
/// See the [module docs](self) for the lifecycle. Construction is cheap
/// apart from the keyword index (one pass over the feature keywords); the
/// per-radius partition plans are built lazily by the first query that
/// needs them and cached (keyed by the exact radius bits — real
/// workloads use a small set of radius classes; a bound of 64 plans
/// guards against unbounded-radius streams, evicting arbitrarily).
///
/// The engine is `Sync`: [`serve`](QueryEngine::serve) shares it across
/// the worker pool, and external callers may do the same.
#[derive(Debug)]
pub struct QueryEngine {
    exec: SpqExecutor,
    serve_exec: SpqExecutor,
    dataset: SharedDataset,
    splits: Vec<Vec<ObjectRef>>,
    /// The data-object prefix of every split — the immutable part of a
    /// candidate-pruned batch split.
    data_splits: Vec<Vec<ObjectRef>>,
    keyword_index: KeywordIndex,
    plans: Mutex<HashMap<u64, Arc<PartitionPlan>>>,
    ctx: JobContext,
    metrics: EngineMetrics,
}

/// The engine's default split count — matches
/// [`SpqExecutor::run_dataset`], so `engine.query` is byte-identical to
/// the per-query path it replaces.
pub const DEFAULT_NUM_SPLITS: usize = 8;

impl QueryEngine {
    /// Builds an engine over `dataset` with [`DEFAULT_NUM_SPLITS`]
    /// round-robin splits. `executor` supplies the full query
    /// configuration (bounds, algorithm, grid sizing, load balancing,
    /// pruning, cluster).
    pub fn new(executor: SpqExecutor, dataset: SharedDataset) -> Self {
        Self::with_num_splits(executor, dataset, DEFAULT_NUM_SPLITS)
    }

    /// [`new`](Self::new) with an explicit number of round-robin splits
    /// (= map tasks per job).
    ///
    /// # Panics
    ///
    /// Panics if `num_splits == 0`.
    pub fn with_num_splits(
        executor: SpqExecutor,
        dataset: SharedDataset,
        num_splits: usize,
    ) -> Self {
        assert!(num_splits > 0, "engine needs at least one split");
        let splits = dataset.ref_splits(num_splits);
        // Derived from the actual splits (not re-derived from the
        // round-robin rule) so the candidate-split layout can never drift
        // from the full-split layout byte-identity depends on.
        let data_splits: Vec<Vec<ObjectRef>> = splits
            .iter()
            .map(|s| s.iter().copied().filter(|r| r.is_data()).collect())
            .collect();
        let keyword_index = KeywordIndex::build(dataset.features());
        let serve_exec = executor.clone().cluster(ClusterConfig::sequential());
        Self {
            exec: executor,
            serve_exec,
            dataset,
            splits,
            data_splits,
            keyword_index,
            plans: Mutex::new(HashMap::new()),
            ctx: JobContext::new(),
            metrics: EngineMetrics::default(),
        }
    }

    /// Builds an engine directly over ingested object vectors (e.g. the
    /// `spq-data` TSV loader's output) with [`DEFAULT_NUM_SPLITS`]
    /// round-robin splits — the loaded-dump counterpart of
    /// [`new`](Self::new), wrapping the vectors into the engine's
    /// [`SharedDataset`] without an intermediate copy. Pair it with
    /// [`dataset_stats`](Self::dataset_stats) and
    /// [`KeywordIndex::top_terms`] to author queries against the real
    /// vocabulary.
    pub fn from_ingested(
        executor: SpqExecutor,
        data: Vec<crate::model::DataObject>,
        features: Vec<FeatureObject>,
    ) -> Self {
        Self::new(executor, SharedDataset::new(data, features))
    }

    /// The shared dataset the engine serves.
    pub fn dataset(&self) -> &SharedDataset {
        &self.dataset
    }

    /// Aggregate statistics of the served dataset, computed from the
    /// build-once keyword index (no extra pass over the features).
    pub fn dataset_stats(&self) -> DatasetStats {
        let idx = &self.keyword_index;
        let total_keywords = idx.postings.len() as u64;
        let distinct_terms = (0..idx.num_terms())
            .filter(|&t| idx.offsets[t + 1] > idx.offsets[t])
            .count();
        let max_posting = (0..idx.num_terms())
            .map(|t| idx.offsets[t + 1] - idx.offsets[t])
            .max()
            .unwrap_or(0);
        let feature_objects = self.dataset.features().len();
        DatasetStats {
            data_objects: self.dataset.data().len(),
            feature_objects,
            term_slots: idx.num_terms(),
            distinct_terms,
            total_keywords,
            mean_keywords: if feature_objects == 0 {
                0.0
            } else {
                total_keywords as f64 / feature_objects as f64
            },
            max_posting,
        }
    }

    /// The executor configuration the engine was built from.
    pub fn executor(&self) -> &SpqExecutor {
        &self.exec
    }

    /// The build-once inverted keyword index.
    pub fn keyword_index(&self) -> &KeywordIndex {
        &self.keyword_index
    }

    /// Number of per-radius partition plans currently cached.
    pub fn cached_plans(&self) -> usize {
        self.plans.lock().len()
    }

    /// The cached plan for this query's radius, built on first use.
    /// Returns the plan together with whether it was a cache hit.
    fn plan(&self, query: &SpqQuery) -> (Arc<PartitionPlan>, bool) {
        let key = query.radius.to_bits();
        if let Some(plan) = self.plans.lock().get(&key) {
            self.metrics.plan_cache_hits.fetch_add(1, Ordering::Relaxed);
            return (Arc::clone(plan), true);
        }
        self.metrics
            .plan_cache_misses
            .fetch_add(1, Ordering::Relaxed);
        // Built outside the lock: concurrent builders may race, but the
        // planning is deterministic so every racer builds the same plan
        // and the first insert wins.
        let partition = self
            .exec
            .plan_partition_shared(query, &self.dataset, &self.splits);
        let routing = CellRouting::build(&partition, &self.dataset, query.radius);
        let plan = Arc::new(PartitionPlan {
            partition: Arc::new(partition),
            routing,
        });
        let mut plans = self.plans.lock();
        if plans.len() >= MAX_CACHED_PLANS && !plans.contains_key(&key) {
            if let Some(&evict) = plans.keys().next() {
                plans.remove(&evict);
            }
        }
        (Arc::clone(plans.entry(key).or_insert(plan)), false)
    }

    fn run_with(
        &self,
        exec: &SpqExecutor,
        splits: &[Vec<ObjectRef>],
        query: &SpqQuery,
    ) -> Result<SpqResult, SpqError> {
        Ok(self.run_measured(exec, splits, query)?.0)
    }

    /// [`run_with`](Self::run_with) that also reports whether the
    /// partition plan was served from cache.
    fn run_measured(
        &self,
        exec: &SpqExecutor,
        splits: &[Vec<ObjectRef>],
        query: &SpqQuery,
    ) -> Result<(SpqResult, bool), SpqError> {
        self.metrics.queries.fetch_add(1, Ordering::Relaxed);
        let (plan, hit) = self.plan(query);
        let result = exec.run_planned(
            &self.dataset,
            splits,
            query,
            Arc::clone(&plan.partition),
            Some(&plan.routing),
            Some(&self.ctx),
        )?;
        Ok((result, hit))
    }

    /// Evaluates one query against the prebuilt state.
    ///
    /// Byte-identical — results, counters, record counts — to a fresh
    /// [`SpqExecutor::run_dataset`] job over the same dataset; only the
    /// plan/routing work is served from cache instead of being redone.
    #[deprecated(
        note = "use the typed path: `QueryExecutor::execute` with a `QueryRequest` \
                (validates first and reports per-query stats)"
    )]
    pub fn query(&self, query: &SpqQuery) -> Result<SpqResult, SpqError> {
        self.run_with(&self.exec, &self.splits, query)
    }

    /// [`query`](Self::query) forced onto a single-threaded job — the
    /// per-query building block of [`serve`](Self::serve), where
    /// parallelism comes from running many such jobs concurrently. Same
    /// bytes as `query` (jobs are worker-count-invariant).
    pub fn query_sequential(&self, query: &SpqQuery) -> Result<SpqResult, SpqError> {
        self.run_with(&self.serve_exec, &self.splits, query)
    }

    /// Evaluates a batch of queries, sharing the build-once structures
    /// across the batch and pruning each query's map pass down to its
    /// candidate features.
    ///
    /// Instead of letting every job test `q.W ∩ f.W` against all of `F`,
    /// the batch resolves each query's matching features through the
    /// [`KeywordIndex`] (one probe per query keyword) and maps over
    /// splits containing only those candidates — the cells, scores and
    /// emitted records are exactly those of [`query`](Self::query), so
    /// `top_k` is byte-identical; only input-side statistics (map records
    /// in, pruned-feature counters) differ, because pruned features are
    /// no longer read at all. With keyword pruning disabled on the
    /// executor (the shuffle-ablation mode), the batch falls back to full
    /// splits.
    ///
    /// Results are returned in query order.
    #[deprecated(
        note = "use the typed path: `QueryExecutor::execute_batch` with `QueryRequest`s \
                (same coalesced pruning, plus validation and per-query stats)"
    )]
    pub fn query_batch(&self, queries: &[SpqQuery]) -> Result<Vec<SpqResult>, SpqError> {
        queries
            .iter()
            .map(|query| {
                if self.exec.keyword_pruning_enabled() {
                    let candidates = self.keyword_index.candidates(&query.keywords);
                    let splits = self.candidate_splits(&candidates);
                    self.run_with(&self.exec, &splits, query)
                } else {
                    self.run_with(&self.exec, &self.splits, query)
                }
            })
            .collect()
    }

    /// Builds batch splits holding every data object plus only the
    /// candidate features, preserving the engine's round-robin layout
    /// (and therefore the per-split record order the shuffle depends on
    /// for byte-identical output).
    fn candidate_splits(&self, candidates: &[u32]) -> Vec<Vec<ObjectRef>> {
        let n = self.data_splits.len();
        let mut splits = self.data_splits.clone();
        for &i in candidates {
            splits[i as usize % n].push(ObjectRef::Feature(i));
        }
        splits
    }

    /// Evaluates independent queries concurrently on `workers` threads of
    /// the `spq-mapreduce` pool, each as a single-threaded job
    /// ([`query_sequential`](Self::query_sequential)) — inter-query
    /// concurrency instead of intra-query splits, so a stream of small
    /// queries saturates the host without oversubscribing it.
    ///
    /// Results come back in query order and are byte-identical to calling
    /// [`query`](Self::query) sequentially, for any worker count.
    #[deprecated(
        note = "use the typed path: `QueryExecutor::serve_requests` with `QueryRequest`s, \
                or the `crate::serve::AdmissionQueue` front-end for live traffic"
    )]
    pub fn serve(&self, queries: &[SpqQuery], workers: usize) -> Result<Vec<SpqResult>, SpqError> {
        let outcomes = run_tasks(workers.max(1), queries.len(), |i| {
            self.query_sequential(&queries[i])
        })
        .map_err(|p| SpqError::Worker {
            message: format!("query {}: {}", p.task_index, p.message),
        })?;
        outcomes.into_iter().collect()
    }

    /// [`serve`](Self::serve) with the worker count of
    /// [`ClusterConfig::auto`] — which honours the `SPQ_WORKERS`
    /// environment override and falls back to 4 workers on hosts that do
    /// not report their parallelism (see
    /// [`ClusterConfig::auto`] for the full resolution order).
    #[deprecated(note = "use the typed path: `QueryExecutor::serve_requests` with \
                `ClusterConfig::auto().workers`")]
    pub fn serve_auto(&self, queries: &[SpqQuery]) -> Result<Vec<SpqResult>, SpqError> {
        #[allow(deprecated)] // a shim forwarding to its sibling shim
        self.serve(queries, ClusterConfig::auto().workers)
    }

    // ---- The typed request path (crate::service) ------------------------

    /// The executor serving a request: the engine's own when the request
    /// carries no overrides, otherwise a derived copy (executors are a
    /// few plain-old-data fields; deriving is allocation-free).
    ///
    /// With `sequential` the job stays single-threaded **regardless of
    /// the request's worker budget** — sequential execution is the
    /// serve-worker building block, where the budget is already consumed
    /// by the inter-query concurrency (exactly as the sharded scatter
    /// clears the budget before driving its shards). Honouring it here
    /// would nest multi-worker jobs inside the serve pool.
    fn exec_for(&self, options: &QueryOptions, sequential: bool) -> SpqExecutor {
        let mut exec = if sequential {
            self.serve_exec.clone()
        } else {
            self.exec.clone()
        };
        if let Some(algorithm) = options.algorithm {
            exec = exec.algorithm(algorithm);
        }
        if !sequential {
            if let Some(workers) = options.workers {
                exec = exec.cluster(ClusterConfig::with_workers(workers));
            }
        }
        if let Some(enabled) = options.keyword_pruning {
            exec = exec.keyword_pruning(enabled);
        }
        exec
    }

    /// Runs one query under per-request options; `sequential` forces a
    /// single-threaded job (the serve-worker building block), exactly as
    /// [`query_sequential`](Self::query_sequential) does for the shim
    /// path.
    pub(crate) fn run_opts(
        &self,
        query: &SpqQuery,
        options: &QueryOptions,
        sequential: bool,
    ) -> Result<(SpqResult, bool), SpqError> {
        let exec = self.exec_for(options, sequential);
        self.run_measured(&exec, &self.splits, query)
    }

    /// [`run_opts`](Self::run_opts) with the map pass pruned down to the
    /// query's candidate features through the keyword index (unless
    /// pruning is disabled, which falls back to full splits). Results are
    /// byte-identical to the full-split path — candidate splits preserve
    /// the round-robin record order the shuffle depends on. This is the
    /// building block of [`execute_batch`](Self::execute_batch) and of
    /// every sharded scatter (each shard probes its own build-once
    /// index).
    pub(crate) fn run_opts_pruned(
        &self,
        query: &SpqQuery,
        options: &QueryOptions,
        sequential: bool,
    ) -> Result<(SpqResult, bool), SpqError> {
        let exec = self.exec_for(options, sequential);
        if exec.keyword_pruning_enabled() {
            let candidates = self.keyword_index.candidates(&query.keywords);
            let splits = self.candidate_splits(&candidates);
            self.run_measured(&exec, &splits, query)
        } else {
            self.run_measured(&exec, &self.splits, query)
        }
    }

    /// Probes each query keyword against the build-once keyword index,
    /// returning `(terms probed, terms matched)` and bumping the
    /// cumulative metrics. `matched == 0` proves the query cannot score
    /// any object.
    pub(crate) fn keyword_stats(&self, keywords: &KeywordSet) -> (usize, usize) {
        let probed = keywords.len();
        let matched = keywords
            .iter()
            .filter(|&t| self.keyword_index.term_frequency(t) > 0)
            .count();
        self.metrics
            .keyword_probes
            .fetch_add(probed as u64, Ordering::Relaxed);
        self.metrics
            .keyword_hits
            .fetch_add(matched as u64, Ordering::Relaxed);
        (probed, matched)
    }

    /// Wraps one executed result into a typed response.
    fn respond(
        &self,
        request: &QueryRequest,
        result: SpqResult,
        plan_hit: bool,
        keywords: (usize, usize),
        started: Instant,
    ) -> QueryResponse {
        let stats = QueryStats {
            algorithm: result.algorithm,
            plan_cache_hit: plan_hit,
            shards_touched: 1,
            shuffle_records: result.stats.shuffle_records,
            shuffle_bytes: result.shuffle_bytes,
            wall_micros: started.elapsed().as_micros() as u64,
            keyword_terms_probed: keywords.0,
            keyword_terms_matched: keywords.1,
            retries: 0,
            warm_failovers: 0,
            cold_reprovisions: 0,
        };
        QueryResponse {
            results: result.top_k,
            stats,
            trace: request.options.trace.then(|| vec![result.stats]),
        }
    }

    /// A snapshot of the engine's cumulative counters: queries served,
    /// plan-cache hits/misses, keyword-index probe outcomes.
    pub fn metrics(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            queries: self.metrics.queries.load(Ordering::Relaxed),
            plan_cache_hits: self.metrics.plan_cache_hits.load(Ordering::Relaxed),
            plan_cache_misses: self.metrics.plan_cache_misses.load(Ordering::Relaxed),
            keyword_probes: self.metrics.keyword_probes.load(Ordering::Relaxed),
            keyword_hits: self.metrics.keyword_hits.load(Ordering::Relaxed),
            ..MetricsSnapshot::default()
        }
    }
}

impl QueryExecutor for QueryEngine {
    /// The single-store request lifecycle: probe the keyword index → run
    /// (sequential for [`ExecutionMode::Sequential`], candidate-pruned
    /// for [`ExecutionMode::Coalesced`]) → wrap stats. Validation already
    /// happened on the trait's entry points.
    fn run_validated(
        &self,
        request: &QueryRequest,
        mode: ExecutionMode,
    ) -> Result<QueryResponse, SpqError> {
        let (sequential, pruned) = match mode {
            ExecutionMode::Parallel => (false, false),
            ExecutionMode::Sequential => (true, false),
            ExecutionMode::Coalesced => (false, true),
        };
        let started = Instant::now();
        let keywords = self.keyword_stats(&request.query.keywords);
        let (result, plan_hit) = if pruned {
            self.run_opts_pruned(&request.query, &request.options, sequential)?
        } else {
            self.run_opts(&request.query, &request.options, sequential)?
        };
        Ok(self.respond(request, result, plan_hit, keywords, started))
    }

    fn metrics(&self) -> MetricsSnapshot {
        QueryEngine::metrics(self)
    }
}

#[cfg(test)]
// The tests below deliberately exercise the deprecated plain-`SpqQuery`
// shims: they are the parity coverage that keeps `query`/`query_batch`/
// `serve` byte-identical to the typed path for as long as the shims live.
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::model::DataObject;
    use spq_spatial::{Point, Rect};

    fn feature(id: u64, x: f64, y: f64, kw: &[u32]) -> FeatureObject {
        FeatureObject::new(
            id,
            Point::new(x, y),
            KeywordSet::from_ids(kw.iter().copied()),
        )
    }

    fn paper_dataset() -> SharedDataset {
        SharedDataset::new(
            vec![
                DataObject::new(1, Point::new(4.6, 4.8)),
                DataObject::new(2, Point::new(7.5, 1.7)),
                DataObject::new(3, Point::new(8.9, 5.2)),
                DataObject::new(4, Point::new(1.8, 1.8)),
                DataObject::new(5, Point::new(1.9, 9.0)),
            ],
            vec![
                feature(1, 2.8, 1.2, &[0, 1]),
                feature(2, 5.0, 3.8, &[2, 3]),
                feature(3, 8.7, 1.9, &[4, 5]),
                feature(4, 3.8, 5.5, &[0]),
                feature(5, 5.2, 5.1, &[6, 7]),
                feature(6, 7.4, 5.4, &[8, 9]),
                feature(7, 3.0, 8.1, &[0, 10]),
                feature(8, 9.5, 7.0, &[11]),
            ],
        )
    }

    fn executor() -> SpqExecutor {
        SpqExecutor::new(Rect::from_coords(0.0, 0.0, 10.0, 10.0)).grid_size(4)
    }

    #[test]
    fn keyword_index_posting_lists() {
        let ds = paper_dataset();
        let idx = KeywordIndex::build(ds.features());
        assert_eq!(idx.num_terms(), 12);
        // Term 0 appears on features f1, f4, f7 (indices 0, 3, 6).
        assert_eq!(idx.postings(Term(0)), &[0, 3, 6]);
        assert_eq!(idx.postings(Term(11)), &[7]);
        assert_eq!(idx.postings(Term(999)), &[] as &[u32]);
        assert_eq!(
            idx.candidates(&KeywordSet::from_ids([0, 11, 500])),
            vec![0, 3, 6, 7]
        );
        assert!(idx.candidates(&KeywordSet::from_ids([77])).is_empty());
    }

    #[test]
    fn term_frequencies_and_top_terms() {
        let ds = paper_dataset();
        let idx = KeywordIndex::build(ds.features());
        assert_eq!(idx.term_frequency(Term(0)), 3);
        assert_eq!(idx.term_frequency(Term(11)), 1);
        assert_eq!(idx.term_frequency(Term(999)), 0);
        let top = idx.top_terms(3);
        // Term 0 is on three features; every other term on exactly one,
        // so the remainder ranks by id.
        assert_eq!(top, vec![(Term(0), 3), (Term(1), 1), (Term(2), 1)]);
        assert_eq!(idx.top_terms(100).len(), 12);
        assert!(KeywordIndex::build(&[]).top_terms(5).is_empty());
    }

    #[test]
    fn from_ingested_and_dataset_stats() {
        let ds = paper_dataset();
        let engine =
            QueryEngine::from_ingested(executor(), ds.data().to_vec(), ds.features().to_vec());
        let stats = engine.dataset_stats();
        assert_eq!(stats.data_objects, 5);
        assert_eq!(stats.feature_objects, 8);
        assert_eq!(stats.term_slots, 12);
        assert_eq!(stats.distinct_terms, 12);
        assert_eq!(stats.total_keywords, 14);
        assert!((stats.mean_keywords - 14.0 / 8.0).abs() < 1e-12);
        assert_eq!(stats.max_posting, 3);
        // Same bytes as an engine built the usual way.
        let q = SpqQuery::new(2, 1.5, KeywordSet::from_ids([0]));
        let other = QueryEngine::new(executor(), ds);
        assert_eq!(
            engine.query(&q).unwrap().top_k,
            other.query(&q).unwrap().top_k
        );
    }

    #[test]
    fn stats_on_empty_dataset() {
        let engine = QueryEngine::from_ingested(executor(), vec![], vec![]);
        let stats = engine.dataset_stats();
        assert_eq!(stats.feature_objects, 0);
        assert_eq!(stats.mean_keywords, 0.0);
        assert_eq!(stats.max_posting, 0);
    }

    #[test]
    fn keyword_index_on_empty_features() {
        let idx = KeywordIndex::build(&[]);
        assert_eq!(idx.num_terms(), 0);
        assert!(idx.candidates(&KeywordSet::from_ids([0])).is_empty());
    }

    #[test]
    fn engine_query_matches_fresh_executor_job() {
        let exec = executor();
        let dataset = paper_dataset();
        let engine = QueryEngine::new(exec.clone(), dataset.clone());
        for (k, r, kw) in [(1, 1.5, vec![0]), (3, 1.5, vec![0]), (2, 2.5, vec![0, 4])] {
            let q = SpqQuery::new(k, r, KeywordSet::from_ids(kw));
            let fresh = exec.run_dataset(&dataset, &q).unwrap();
            let served = engine.query(&q).unwrap();
            assert_eq!(served.top_k, fresh.top_k);
            assert_eq!(served.stats.counters, fresh.stats.counters);
            assert_eq!(served.stats.shuffle_records, fresh.stats.shuffle_records);
            // Replays are stable.
            assert_eq!(engine.query(&q).unwrap().top_k, served.top_k);
        }
        assert_eq!(engine.cached_plans(), 2); // radii 1.5 and 2.5
    }

    #[test]
    fn batch_matches_single_queries() {
        let engine = QueryEngine::new(executor(), paper_dataset());
        let queries: Vec<SpqQuery> = [
            (1usize, 1.5, vec![0u32]),
            (3, 1.5, vec![0]),
            (2, 2.0, vec![4, 5]),
        ]
        .into_iter()
        .map(|(k, r, kw)| SpqQuery::new(k, r, KeywordSet::from_ids(kw)))
        .collect();
        let batch = engine.query_batch(&queries).unwrap();
        for (q, b) in queries.iter().zip(&batch) {
            assert_eq!(b.top_k, engine.query(q).unwrap().top_k, "{q}");
        }
    }

    #[test]
    fn serve_preserves_query_order_for_any_worker_count() {
        let engine = QueryEngine::new(executor(), paper_dataset());
        let queries: Vec<SpqQuery> = (1..=5)
            .map(|k| SpqQuery::new(k, 1.5, KeywordSet::from_ids([0])))
            .collect();
        let sequential: Vec<_> = queries
            .iter()
            .map(|q| engine.query(q).unwrap().top_k)
            .collect();
        for workers in [1, 2, 8] {
            let served = engine.serve(&queries, workers).unwrap();
            let got: Vec<_> = served.into_iter().map(|r| r.top_k).collect();
            assert_eq!(got, sequential, "workers={workers}");
        }
    }

    #[test]
    fn batch_without_pruning_still_matches() {
        let exec = executor().keyword_pruning(false);
        let dataset = paper_dataset();
        let engine = QueryEngine::new(exec.clone(), dataset.clone());
        let q = SpqQuery::new(3, 1.5, KeywordSet::from_ids([0]));
        let batch = engine.query_batch(std::slice::from_ref(&q)).unwrap();
        assert_eq!(
            batch[0].top_k,
            exec.run_dataset(&dataset, &q).unwrap().top_k
        );
    }

    #[test]
    fn plan_cache_is_bounded() {
        let engine = QueryEngine::new(executor(), paper_dataset());
        // An adversarial stream of distinct radii must not grow the cache
        // past the bound — and eviction must not disturb results.
        let q_at = |r: f64| SpqQuery::new(1, r, KeywordSet::from_ids([0]));
        let expect = engine.query(&q_at(1.5)).unwrap().top_k;
        for i in 0..(MAX_CACHED_PLANS + 20) {
            let r = 1.0 + i as f64 * 1e-3;
            engine.query(&q_at(r)).unwrap();
            assert!(engine.cached_plans() <= MAX_CACHED_PLANS);
        }
        assert_eq!(engine.query(&q_at(1.5)).unwrap().top_k, expect);
    }

    #[test]
    fn deprecated_shims_match_typed_path() {
        let engine = QueryEngine::new(executor(), paper_dataset());
        let q = SpqQuery::new(3, 1.5, KeywordSet::from_ids([0]));
        let typed = engine.execute(&QueryRequest::new(q.clone())).unwrap();
        assert_eq!(engine.query(&q).unwrap().top_k, typed.results);
        assert_eq!(
            engine.query_batch(std::slice::from_ref(&q)).unwrap()[0].top_k,
            typed.results
        );
        assert_eq!(engine.serve(&[q], 2).unwrap()[0].top_k, typed.results);
    }

    #[test]
    #[should_panic]
    fn zero_splits_rejected() {
        let _ = QueryEngine::with_num_splits(executor(), paper_dataset(), 0);
    }
}
