//! The shared, immutable dataset store behind the zero-copy data path.
//!
//! The map phase reads its input from splits and the reduce phase needs
//! object locations (and, for scoring, keywords) — but none of that
//! requires *owning* copies to travel through the shuffle. A
//! [`SharedDataset`] holds each dataset exactly once behind
//! `Arc<[DataObject]>` / `Arc<[FeatureObject]>`; splits and shuffle
//! records refer to objects by dense `u32` index ([`ObjectRef`] on the
//! input side, the algorithms' handle values on the shuffle side), so a
//! record costs 8–16 bytes regardless of how many keywords a feature
//! carries, and nothing is cloned per emitted copy.
//!
//! The store is the unit of reuse: build it once, then evaluate as many
//! queries as you like against it — whether through
//! [`crate::SpqExecutor::run_shared`] or a persistent
//! [`crate::engine::QueryEngine`]:
//!
//! ```
//! use spq_core::{DataObject, FeatureObject, ObjectRef, SharedDataset, SpqExecutor, SpqQuery};
//! use spq_spatial::{Point, Rect};
//! use spq_text::KeywordSet;
//!
//! // Copied into the store exactly once…
//! let dataset = SharedDataset::new(
//!     vec![DataObject::new(1, Point::new(4.6, 4.8))],
//!     vec![FeatureObject::new(4, Point::new(3.8, 5.5), KeywordSet::from_ids([0]))],
//! );
//! assert_eq!(dataset.total(), 2);
//! assert_eq!(dataset.location_of(ObjectRef::Feature(0)), Point::new(3.8, 5.5));
//!
//! // …then split by reference and queried any number of times.
//! let splits = dataset.ref_splits(2);
//! let executor = SpqExecutor::new(Rect::from_coords(0.0, 0.0, 10.0, 10.0)).grid_size(4);
//! for k in [1, 3] {
//!     let q = SpqQuery::new(k, 1.5, KeywordSet::from_ids([0]));
//!     let result = executor.run_shared(&dataset, &splits, &q).unwrap();
//!     assert_eq!(result.top_k[0].object, 1);
//! }
//! ```

use crate::model::{DataObject, FeatureObject, SpqObject};
use spq_spatial::Point;
use std::sync::Arc;

/// A reference to one object of a [`SharedDataset`] — the map-phase input
/// record of the zero-copy pipeline (4 bytes of payload + discriminant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectRef {
    /// Index into [`SharedDataset::data`].
    Data(u32),
    /// Index into [`SharedDataset::features`].
    Feature(u32),
}

impl ObjectRef {
    /// True for data-object references.
    #[inline]
    pub fn is_data(self) -> bool {
        matches!(self, ObjectRef::Data(_))
    }
}

/// Both datasets of one SPQ input, held once and shared immutably between
/// the executor, every map task and every reduce task.
#[derive(Debug, Clone)]
pub struct SharedDataset {
    data: Arc<[DataObject]>,
    features: Arc<[FeatureObject]>,
}

impl SharedDataset {
    /// Wraps the two datasets. This is the only copy the pipeline ever
    /// makes; every split and shuffle record refers back into it.
    pub fn new(data: Vec<DataObject>, features: Vec<FeatureObject>) -> Self {
        assert!(
            data.len() <= u32::MAX as usize && features.len() <= u32::MAX as usize,
            "shared dataset indices are u32"
        );
        Self {
            data: data.into(),
            features: features.into(),
        }
    }

    /// Wraps an owned data slice around an **already shared** feature
    /// array. This is the shard constructor: a sharded engine slices the
    /// data objects into per-shard chunks but broadcasts one feature
    /// array to every shard — cloning the `Arc`, never the features —
    /// so `N` shards cost `N` data chunks plus exactly one copy of `F`.
    pub fn with_shared_features(data: Vec<DataObject>, features: Arc<[FeatureObject]>) -> Self {
        assert!(
            data.len() <= u32::MAX as usize && features.len() <= u32::MAX as usize,
            "shared dataset indices are u32"
        );
        Self {
            data: data.into(),
            features,
        }
    }

    /// Builds a store from pre-built mixed splits, returning reference
    /// splits with the identical structure (same split boundaries, same
    /// order) — the compatibility path for callers still holding owned
    /// [`SpqObject`] splits.
    pub fn from_splits(splits: &[Vec<SpqObject>]) -> (Self, Vec<Vec<ObjectRef>>) {
        let mut data = Vec::new();
        let mut features = Vec::new();
        let ref_splits = splits
            .iter()
            .map(|split| {
                split
                    .iter()
                    .map(|o| match o {
                        SpqObject::Data(d) => {
                            data.push(*d);
                            ObjectRef::Data((data.len() - 1) as u32)
                        }
                        SpqObject::Feature(f) => {
                            features.push(f.clone());
                            ObjectRef::Feature((features.len() - 1) as u32)
                        }
                    })
                    .collect()
            })
            .collect();
        (Self::new(data, features), ref_splits)
    }

    /// The data objects `O`.
    #[inline]
    pub fn data(&self) -> &[DataObject] {
        &self.data
    }

    /// The feature objects `F`.
    #[inline]
    pub fn features(&self) -> &[FeatureObject] {
        &self.features
    }

    /// A shared handle on the data objects (no copy).
    pub fn data_arc(&self) -> Arc<[DataObject]> {
        Arc::clone(&self.data)
    }

    /// A shared handle on the feature objects (no copy).
    pub fn features_arc(&self) -> Arc<[FeatureObject]> {
        Arc::clone(&self.features)
    }

    /// Total number of objects, `|O| + |F|`.
    pub fn total(&self) -> usize {
        self.data.len() + self.features.len()
    }

    /// Resolves a reference to its location without branching on the kind
    /// at the call site.
    #[inline]
    pub fn location_of(&self, r: ObjectRef) -> Point {
        match r {
            ObjectRef::Data(i) => self.data[i as usize].location,
            ObjectRef::Feature(i) => self.features[i as usize].location,
        }
    }

    /// Round-robin horizontal partitioning into `num_splits` mixed
    /// reference splits (data objects first, then features — the same
    /// layout `spq_data::Dataset::to_splits` produces, minus the clones).
    ///
    /// # Panics
    ///
    /// Panics if `num_splits == 0`.
    pub fn ref_splits(&self, num_splits: usize) -> Vec<Vec<ObjectRef>> {
        assert!(num_splits > 0, "need at least one split");
        let mut splits: Vec<Vec<ObjectRef>> = (0..num_splits)
            .map(|_| Vec::with_capacity(self.total() / num_splits + 1))
            .collect();
        for i in 0..self.data.len() {
            splits[i % num_splits].push(ObjectRef::Data(i as u32));
        }
        for i in 0..self.features.len() {
            splits[i % num_splits].push(ObjectRef::Feature(i as u32));
        }
        splits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spq_text::KeywordSet;

    fn sample() -> SharedDataset {
        SharedDataset::new(
            vec![
                DataObject::new(1, Point::new(0.0, 0.0)),
                DataObject::new(2, Point::new(1.0, 1.0)),
            ],
            vec![FeatureObject::new(
                7,
                Point::new(2.0, 2.0),
                KeywordSet::from_ids([0, 3]),
            )],
        )
    }

    #[test]
    fn accessors_resolve_refs() {
        let ds = sample();
        assert_eq!(ds.total(), 3);
        assert_eq!(ds.data().len(), 2);
        assert_eq!(ds.features().len(), 1);
        assert_eq!(ds.location_of(ObjectRef::Data(1)), Point::new(1.0, 1.0));
        assert_eq!(ds.location_of(ObjectRef::Feature(0)), Point::new(2.0, 2.0));
        assert!(ObjectRef::Data(0).is_data());
        assert!(!ObjectRef::Feature(0).is_data());
    }

    #[test]
    fn arcs_share_storage() {
        let ds = sample();
        let a = ds.data_arc();
        let b = ds.data_arc();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(Arc::ptr_eq(&ds.features_arc(), &ds.features_arc()));
    }

    #[test]
    fn ref_splits_round_robin() {
        let ds = sample();
        let splits = ds.ref_splits(2);
        assert_eq!(splits.len(), 2);
        assert_eq!(
            splits[0],
            vec![ObjectRef::Data(0), ObjectRef::Feature(0)],
            "even indices land in split 0"
        );
        assert_eq!(splits[1], vec![ObjectRef::Data(1)]);
    }

    #[test]
    fn with_shared_features_shares_the_feature_arc() {
        let ds = sample();
        let shard = SharedDataset::with_shared_features(ds.data()[..1].to_vec(), ds.features_arc());
        assert_eq!(shard.data().len(), 1);
        assert!(Arc::ptr_eq(&shard.features_arc(), &ds.features_arc()));
        assert_eq!(shard.total(), 2);
    }

    #[test]
    fn from_splits_preserves_structure() {
        let ds = sample();
        let owned: Vec<Vec<SpqObject>> = vec![
            vec![
                SpqObject::Data(ds.data()[1]),
                SpqObject::Feature(ds.features()[0].clone()),
            ],
            vec![SpqObject::Data(ds.data()[0])],
        ];
        let (store, refs) = SharedDataset::from_splits(&owned);
        assert_eq!(store.data()[0].id, 2, "store order follows split order");
        assert_eq!(refs[0], vec![ObjectRef::Data(0), ObjectRef::Feature(0)]);
        assert_eq!(refs[1], vec![ObjectRef::Data(1)]);
        assert_eq!(store.total(), 3);
    }
}
