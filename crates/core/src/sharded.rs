//! Shard-per-node serving: scatter a query to per-shard engines, gather
//! serialized top-k records, merge.
//!
//! The paper's cells are independent work units *within* one job; this
//! module lifts the same idea one level up, to the shape a cluster
//! deployment would take (cf. Tornado's separation of query routing from
//! placement, PAPERS.md): the data objects are sliced into `N` per-shard
//! [`SharedDataset`]s at build time — features are **broadcast** to every
//! shard by cloning the `Arc`, never the array — and each shard runs its
//! own build-once [`QueryEngine`] (keyword index, per-radius partition
//! plans and routing tables, all local to the shard).
//!
//! A query then:
//!
//! 1. **probes** the keyword index once — if no feature carries any query
//!    keyword, no object can score and the query touches zero shards;
//! 2. **scatters** to every relevant shard (shards holding data), each
//!    evaluating the query against its slice as a single-threaded job —
//!    inter-shard concurrency is the parallelism, exactly the
//!    shard-per-node serving shape;
//! 3. **gathers** each shard's local top-k as *serialized wire records* —
//!    [`wire::RECORD_BYTES`]-byte `(data index, score bits)` pairs, the
//!    cross-shard counterpart of the 8–16-byte handles that cross the
//!    in-process shuffle — and re-resolves them against the global store;
//! 4. **merges** with the same [`merge_top_k`] the single-store engine
//!    uses.
//!
//! Because data objects are never duplicated across shards (the paper's
//! Section 4.2 invariant, applied at shard granularity) and every shard
//! sees the complete feature set, each shard's `τ` values are exact and
//! the gathered merge is **byte-identical** to the single-store engine —
//! results, scores and order (`tests/backend_equivalence.rs` proptests
//! this across shard counts, algorithms and partitionings). Only
//! execution statistics differ: features are routed once per shard, so
//! map-side counters scale with the shard count.

use crate::engine::{MetricsSnapshot, QueryEngine};
use crate::executor::{SpqError, SpqExecutor};
use crate::merge::merge_top_k;
use crate::model::{DataObject, ObjectId, RankedObject};
use crate::service::{
    ExecutionMode, QueryExecutor, QueryOptions, QueryRequest, QueryResponse, QueryStats,
};
use crate::store::SharedDataset;
use spq_mapreduce::pool::run_tasks;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// The cross-shard wire format: what a shard's gather response looks like
/// as bytes.
///
/// Each record is a little-endian `(u32 global data index, u64 score
/// bits)` pair — 12 bytes, in the same 8–16-byte class as the in-process
/// shuffle handles, and resolved the same way: against the shared store,
/// never by shipping objects. Encoding and decoding are exact (`f64`
/// bits round-trip), which is what lets the gathered merge stay
/// byte-identical to the single-store engine.
pub mod wire {
    use super::*;
    use spq_text::Score;

    /// Serialized size of one gather record.
    pub const RECORD_BYTES: usize = 12;

    /// Serializes a shard's local top-k into wire records. `id_to_index`
    /// maps data-object ids to indices in the *global* store (built once
    /// at engine construction), so the receiver resolves records without
    /// any per-shard coordinate space.
    pub fn encode_results(
        results: &[RankedObject],
        id_to_index: &HashMap<ObjectId, u32>,
    ) -> Vec<u8> {
        let mut out = Vec::with_capacity(results.len() * RECORD_BYTES);
        for r in results {
            let index = id_to_index
                .get(&r.object)
                .expect("shard result resolves to a known data object");
            out.extend_from_slice(&index.to_le_bytes());
            out.extend_from_slice(&r.score.value().to_bits().to_le_bytes());
        }
        out
    }

    /// Deserializes wire records, resolving each index against the global
    /// data store.
    ///
    /// # Panics
    ///
    /// Panics on a malformed buffer (length not a multiple of
    /// [`RECORD_BYTES`], index out of range) — the in-process transport
    /// cannot truncate, so this is a bug canary, not an I/O error path.
    pub fn decode_results(bytes: &[u8], data: &[DataObject]) -> Vec<RankedObject> {
        assert!(
            bytes.len().is_multiple_of(RECORD_BYTES),
            "wire buffer of {} bytes is not a whole number of records",
            bytes.len()
        );
        bytes
            .chunks_exact(RECORD_BYTES)
            .map(|chunk| {
                let index = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) as usize;
                let bits = u64::from_le_bytes([
                    chunk[4], chunk[5], chunk[6], chunk[7], chunk[8], chunk[9], chunk[10],
                    chunk[11],
                ]);
                let object = &data[index];
                RankedObject::new(
                    object.id,
                    object.location,
                    Score::from_f64(f64::from_bits(bits)),
                )
            })
            .collect()
    }
}

/// Cumulative per-shard traffic counters.
#[derive(Debug, Default)]
struct ShardCounters {
    queries: AtomicU64,
    records_shipped: AtomicU64,
    bytes_shipped: AtomicU64,
}

/// One shard: a build-once engine over its data slice plus traffic
/// counters.
#[derive(Debug)]
struct Shard {
    engine: QueryEngine,
    counters: ShardCounters,
}

/// A point-in-time view of one shard, for monitoring and the
/// `sharded_serve` example.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Data objects this shard owns.
    pub data_objects: usize,
    /// Feature objects visible to the shard (the broadcast set — equal
    /// across shards).
    pub feature_objects: usize,
    /// Queries this shard has served.
    pub queries: u64,
    /// Top-k records the shard has shipped through the gather.
    pub records_shipped: u64,
    /// Wire bytes behind [`records_shipped`](Self::records_shipped).
    pub bytes_shipped: u64,
    /// Per-radius partition plans currently cached by the shard's engine.
    pub cached_plans: usize,
}

/// The scatter/gather engine behind [`crate::service::Backend::Sharded`].
///
/// See the [module docs](self) for the lifecycle and the byte-identity
/// argument. Build once with [`new`](Self::new), then serve typed
/// requests through the [`QueryExecutor`] surface
/// ([`execute`](QueryExecutor::execute) /
/// [`execute_batch`](QueryExecutor::execute_batch) /
/// [`serve_requests`](QueryExecutor::serve_requests)).
#[derive(Debug)]
pub struct ShardedEngine {
    dataset: SharedDataset,
    exec: SpqExecutor,
    shards: Vec<Shard>,
    id_to_index: HashMap<ObjectId, u32>,
    scatter_workers: usize,
}

impl ShardedEngine {
    /// Slices `dataset` into `num_shards` contiguous data chunks (features
    /// broadcast by `Arc`) and builds one engine per shard.
    ///
    /// # Errors
    ///
    /// [`SpqError::InvalidConfig`] when `num_shards == 0`, or when the
    /// data objects carry duplicate ids — the wire format resolves shard
    /// results by id, so ids must be unique (the ingest pipeline already
    /// enforces this for loaded dumps).
    pub fn new(
        executor: SpqExecutor,
        dataset: SharedDataset,
        num_shards: usize,
    ) -> Result<Self, SpqError> {
        if num_shards == 0 {
            return Err(SpqError::invalid_config(
                "sharded backend needs at least one shard",
            ));
        }
        let data = dataset.data();
        let mut id_to_index = HashMap::with_capacity(data.len());
        for (i, object) in data.iter().enumerate() {
            if id_to_index.insert(object.id, i as u32).is_some() {
                return Err(SpqError::invalid_config(format!(
                    "duplicate data object id {} — the sharded wire format resolves by id",
                    object.id
                )));
            }
        }
        let scatter_workers = executor.cluster_config().workers.max(1);
        let shards = (0..num_shards)
            .map(|s| {
                let start = s * data.len() / num_shards;
                let end = (s + 1) * data.len() / num_shards;
                let slice = SharedDataset::with_shared_features(
                    data[start..end].to_vec(),
                    dataset.features_arc(),
                );
                Shard {
                    engine: QueryEngine::new(executor.clone(), slice),
                    counters: ShardCounters::default(),
                }
            })
            .collect();
        Ok(Self {
            dataset,
            exec: executor,
            shards,
            id_to_index,
            scatter_workers,
        })
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The global (unsharded) store the gather resolves against.
    pub fn dataset(&self) -> &SharedDataset {
        &self.dataset
    }

    /// The executor configuration every shard engine was built from.
    pub fn executor(&self) -> &SpqExecutor {
        &self.exec
    }

    /// Per-shard statistics, in shard order.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, shard)| ShardStats {
                shard: i,
                data_objects: shard.engine.dataset().data().len(),
                feature_objects: shard.engine.dataset().features().len(),
                queries: shard.counters.queries.load(Ordering::Relaxed),
                records_shipped: shard.counters.records_shipped.load(Ordering::Relaxed),
                bytes_shipped: shard.counters.bytes_shipped.load(Ordering::Relaxed),
                cached_plans: shard.engine.cached_plans(),
            })
            .collect()
    }

    /// Cumulative engine counters aggregated over all shard engines.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shards
            .iter()
            .map(|s| s.engine.metrics())
            .fold(MetricsSnapshot::default(), MetricsSnapshot::merged)
    }

    fn execute_inner(
        &self,
        request: &QueryRequest,
        scatter_override: Option<usize>,
    ) -> Result<QueryResponse, SpqError> {
        let started = Instant::now();
        let query = &request.query;
        let options = &request.options;
        let algorithm = options.algorithm.unwrap_or(self.exec.algorithm_choice());

        // Probe once (features are broadcast, so shard 0's index speaks
        // for all): a query whose keywords no feature carries cannot
        // score any object, on any shard.
        let keywords = self.shards[0].engine.keyword_stats(&query.keywords);
        let relevant: Vec<usize> = if keywords.1 == 0 {
            Vec::new()
        } else {
            (0..self.shards.len())
                .filter(|&s| !self.shards[s].engine.dataset().data().is_empty())
                .collect()
        };
        if relevant.is_empty() {
            return Ok(QueryResponse {
                results: Vec::new(),
                stats: QueryStats {
                    algorithm,
                    plan_cache_hit: false,
                    shards_touched: 0,
                    shuffle_records: 0,
                    shuffle_bytes: 0,
                    wall_micros: started.elapsed().as_micros() as u64,
                    keyword_terms_probed: keywords.0,
                    keyword_terms_matched: keywords.1,
                    retries: 0,
                    warm_failovers: 0,
                    cold_reprovisions: 0,
                },
                trace: options.trace.then(Vec::new),
            });
        }

        // Scatter: each relevant shard evaluates the query against its
        // slice as a single-threaded job; the request's worker budget
        // bounds the scatter width (results are width-invariant).
        let scatter = scatter_override
            .or(options.workers)
            .unwrap_or(self.scatter_workers)
            .clamp(1, relevant.len());
        let shard_options = QueryOptions {
            workers: None, // consumed by the scatter; shard jobs stay sequential
            ..*options
        };
        // Each shard probes its own build-once keyword index and maps
        // only over its candidate features — the same candidate-split
        // pruning the batched local path uses, byte-identical to a full
        // scan.
        let outcomes = run_tasks(scatter, relevant.len(), |i| {
            self.shards[relevant[i]]
                .engine
                .run_opts_pruned(query, &shard_options, true)
        })
        .map_err(|p| SpqError::Worker {
            message: format!("shard {}: {}", relevant[p.task_index], p.message),
        })?;

        // Gather: serialize each shard's local top-k into wire records,
        // ship, resolve against the global store, merge. The ship is a
        // real encode/decode round-trip so the wire format is exercised
        // on every query, not just in tests.
        let mut flat = Vec::new();
        let mut plan_cache_hit = true;
        let mut shuffle_records = 0u64;
        let mut shuffle_bytes = 0u64;
        let mut trace = options.trace.then(Vec::new);
        for (&s, outcome) in relevant.iter().zip(outcomes) {
            let (result, hit) = outcome?;
            let bytes = wire::encode_results(&result.top_k, &self.id_to_index);
            let shard = &self.shards[s];
            shard.counters.queries.fetch_add(1, Ordering::Relaxed);
            shard
                .counters
                .records_shipped
                .fetch_add(result.top_k.len() as u64, Ordering::Relaxed);
            shard
                .counters
                .bytes_shipped
                .fetch_add(bytes.len() as u64, Ordering::Relaxed);
            plan_cache_hit &= hit;
            shuffle_records += result.top_k.len() as u64;
            shuffle_bytes += bytes.len() as u64;
            flat.extend(wire::decode_results(&bytes, self.dataset.data()));
            if let Some(t) = &mut trace {
                t.push(result.stats);
            }
        }
        let results = merge_top_k(flat, query.k);

        Ok(QueryResponse {
            results,
            stats: QueryStats {
                algorithm,
                plan_cache_hit,
                shards_touched: relevant.len(),
                shuffle_records,
                shuffle_bytes,
                wall_micros: started.elapsed().as_micros() as u64,
                keyword_terms_probed: keywords.0,
                keyword_terms_matched: keywords.1,
                retries: 0,
                warm_failovers: 0,
                cold_reprovisions: 0,
            },
            trace,
        })
    }
}

impl QueryExecutor for ShardedEngine {
    /// The scatter/gather lifecycle: probe once, scatter to relevant
    /// shards (width 1 for [`ExecutionMode::Sequential`] — parallelism
    /// then comes from running many requests concurrently), gather wire
    /// records, merge. Each shard prunes through its own build-once
    /// keyword index, so [`ExecutionMode::Coalesced`] drives like
    /// [`ExecutionMode::Parallel`].
    fn run_validated(
        &self,
        request: &QueryRequest,
        mode: ExecutionMode,
    ) -> Result<QueryResponse, SpqError> {
        let scatter_override = match mode {
            ExecutionMode::Sequential => Some(1),
            ExecutionMode::Parallel | ExecutionMode::Coalesced => None,
        };
        self.execute_inner(request, scatter_override)
    }

    fn metrics(&self) -> MetricsSnapshot {
        ShardedEngine::metrics(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FeatureObject;
    use crate::query::SpqQuery;
    use spq_spatial::{Point, Rect};
    use spq_text::{KeywordSet, Score};

    fn feature(id: u64, x: f64, y: f64, kw: &[u32]) -> FeatureObject {
        FeatureObject::new(
            id,
            Point::new(x, y),
            KeywordSet::from_ids(kw.iter().copied()),
        )
    }

    fn paper_dataset() -> SharedDataset {
        SharedDataset::new(
            vec![
                DataObject::new(1, Point::new(4.6, 4.8)),
                DataObject::new(2, Point::new(7.5, 1.7)),
                DataObject::new(3, Point::new(8.9, 5.2)),
                DataObject::new(4, Point::new(1.8, 1.8)),
                DataObject::new(5, Point::new(1.9, 9.0)),
            ],
            vec![
                feature(1, 2.8, 1.2, &[0, 1]),
                feature(2, 5.0, 3.8, &[2, 3]),
                feature(3, 8.7, 1.9, &[4, 5]),
                feature(4, 3.8, 5.5, &[0]),
                feature(5, 5.2, 5.1, &[6, 7]),
                feature(6, 7.4, 5.4, &[8, 9]),
                feature(7, 3.0, 8.1, &[0, 10]),
                feature(8, 9.5, 7.0, &[11]),
            ],
        )
    }

    fn executor() -> SpqExecutor {
        SpqExecutor::new(Rect::from_coords(0.0, 0.0, 10.0, 10.0)).grid_size(4)
    }

    fn request(k: usize, r: f64, kw: &[u32]) -> QueryRequest {
        QueryRequest::new(SpqQuery::new(
            k,
            r,
            KeywordSet::from_ids(kw.iter().copied()),
        ))
    }

    #[test]
    fn wire_round_trip_is_exact() {
        let ds = paper_dataset();
        let id_to_index: HashMap<ObjectId, u32> = ds
            .data()
            .iter()
            .enumerate()
            .map(|(i, o)| (o.id, i as u32))
            .collect();
        let results = vec![
            RankedObject::new(1, Point::new(4.6, 4.8), Score::ONE),
            RankedObject::new(4, Point::new(1.8, 1.8), Score::ratio(1, 3)),
        ];
        let bytes = wire::encode_results(&results, &id_to_index);
        assert_eq!(bytes.len(), 2 * wire::RECORD_BYTES);
        assert_eq!(wire::decode_results(&bytes, ds.data()), results);
        assert!(wire::decode_results(&[], ds.data()).is_empty());
    }

    #[test]
    #[should_panic]
    fn wire_rejects_torn_buffers() {
        let _ = wire::decode_results(&[0u8; 7], paper_dataset().data());
    }

    #[test]
    fn matches_single_store_engine_for_every_shard_count() {
        let engine = QueryEngine::new(executor(), paper_dataset());
        for shards in [1, 2, 3, 5, 8] {
            let sharded = ShardedEngine::new(executor(), paper_dataset(), shards).unwrap();
            for req in [
                request(1, 1.5, &[0]),
                request(3, 1.5, &[0]),
                request(5, 2.5, &[0, 4, 11]),
            ] {
                let expect = engine.execute(&req).unwrap();
                let got = sharded.execute(&req).unwrap();
                assert_eq!(got.results, expect.results, "shards={shards}");
            }
        }
    }

    #[test]
    fn unmatched_keywords_touch_no_shard() {
        let sharded = ShardedEngine::new(executor(), paper_dataset(), 3).unwrap();
        let response = sharded.execute(&request(3, 1.5, &[77])).unwrap();
        assert!(response.results.is_empty());
        assert_eq!(response.stats.shards_touched, 0);
        assert_eq!(response.stats.keyword_terms_matched, 0);
        assert_eq!(response.stats.shuffle_bytes, 0);
        assert!(sharded.shard_stats().iter().all(|s| s.queries == 0));
    }

    #[test]
    fn shard_stats_track_gather_traffic() {
        let sharded = ShardedEngine::new(executor(), paper_dataset(), 2).unwrap();
        let response = sharded.execute(&request(3, 1.5, &[0])).unwrap();
        assert_eq!(response.stats.shards_touched, 2);
        assert_eq!(
            response.stats.shuffle_bytes,
            response.stats.shuffle_records * wire::RECORD_BYTES as u64
        );
        let stats = sharded.shard_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats.iter().map(|s| s.data_objects).sum::<usize>(), 5);
        assert!(stats.iter().all(|s| s.feature_objects == 8));
        assert!(stats.iter().all(|s| s.queries == 1));
        assert_eq!(
            stats.iter().map(|s| s.bytes_shipped).sum::<u64>(),
            response.stats.shuffle_bytes
        );
        // Aggregated metrics counted the scatter: 2 shard queries + the
        // probe on shard 0.
        let metrics = sharded.metrics();
        assert_eq!(metrics.queries, 2);
        assert_eq!(metrics.keyword_probes, 1);
    }

    #[test]
    fn more_shards_than_data_objects() {
        let sharded = ShardedEngine::new(executor(), paper_dataset(), 16).unwrap();
        let engine = QueryEngine::new(executor(), paper_dataset());
        let req = request(5, 1.5, &[0]);
        let got = sharded.execute(&req).unwrap();
        assert_eq!(got.results, engine.execute(&req).unwrap().results);
        // Only shards that own data are touched.
        assert_eq!(got.stats.shards_touched, 5);
    }

    #[test]
    fn serve_and_batch_match_execute() {
        let sharded = ShardedEngine::new(executor(), paper_dataset(), 3).unwrap();
        let requests: Vec<QueryRequest> = (1..=4).map(|k| request(k, 1.5, &[0])).collect();
        let expect: Vec<_> = requests
            .iter()
            .map(|r| sharded.execute(r).unwrap().results)
            .collect();
        let batch = sharded.execute_batch(&requests).unwrap();
        assert_eq!(
            batch.iter().map(|r| &r.results).collect::<Vec<_>>(),
            expect.iter().collect::<Vec<_>>()
        );
        for workers in [1, 2, 8] {
            let served = sharded.serve_requests(&requests, workers).unwrap();
            let got: Vec<_> = served.into_iter().map(|r| r.results).collect();
            assert_eq!(got, expect, "workers={workers}");
        }
    }

    #[test]
    fn build_rejects_bad_configs() {
        assert!(matches!(
            ShardedEngine::new(executor(), paper_dataset(), 0),
            Err(SpqError::InvalidConfig { .. })
        ));
        let dup = SharedDataset::new(
            vec![
                DataObject::new(7, Point::new(1.0, 1.0)),
                DataObject::new(7, Point::new(2.0, 2.0)),
            ],
            vec![],
        );
        let err = ShardedEngine::new(executor(), dup, 2).unwrap_err();
        assert!(matches!(err, SpqError::InvalidConfig { .. }), "{err}");
        assert!(!err.is_retryable(), "bad datasets must not be retried");
        // The offending id is part of the message contract.
        assert!(err.to_string().contains("duplicate data object id 7"));
    }

    #[test]
    fn trace_carries_one_job_stats_per_touched_shard() {
        let sharded = ShardedEngine::new(executor(), paper_dataset(), 2).unwrap();
        let response = sharded
            .execute(&request(2, 1.5, &[0]).with_trace())
            .unwrap();
        let trace = response.trace.expect("trace requested");
        assert_eq!(trace.len(), 2);
        // Untraced requests don't pay for it.
        assert!(sharded
            .execute(&request(2, 1.5, &[0]))
            .unwrap()
            .trace
            .is_none());
    }
}
