//! Centralized exact baselines — the ground truth for every test.
//!
//! The paper notes (Section 7.1) that centralized processing is infeasible
//! at their data scale; here the baselines exist as *oracles*: an
//! obviously correct `O(|O|·|F|)` brute force, and a grid-index variant
//! that computes the same result fast enough to validate large runs.
//! Both return the canonical result (score desc, id asc; only objects
//! with `τ(p) > 0`, at most `k`).

use crate::model::{DataObject, FeatureObject, RankedObject};
use crate::query::SpqQuery;
use spq_spatial::{GridIndex, Rect};
use spq_text::Score;

/// Computes `τ(p)` for one data object by scanning all features.
pub fn tau(p: &DataObject, features: &[FeatureObject], query: &SpqQuery) -> Score {
    let r_sq = query.radius * query.radius;
    let mut best = Score::ZERO;
    for f in features {
        if p.location.dist_sq(&f.location) <= r_sq {
            best = best.max(query.score(&f.keywords));
        }
    }
    best
}

/// Exact top-k by nested-loop scan: `O(|O|·|F|)`.
pub fn brute_force(
    data: &[DataObject],
    features: &[FeatureObject],
    query: &SpqQuery,
) -> Vec<RankedObject> {
    let mut ranked: Vec<RankedObject> = data
        .iter()
        .filter_map(|p| {
            let s = tau(p, features, query);
            (!s.is_zero()).then(|| RankedObject::new(p.id, p.location, s))
        })
        .collect();
    ranked.sort_by(RankedObject::canonical_cmp);
    ranked.truncate(query.k);
    ranked
}

/// Exact top-k using a grid index over the features: same result as
/// [`brute_force`], cost `O(|O| · features-per-neighbourhood)`.
pub fn grid_index_topk(
    bounds: Rect,
    data: &[DataObject],
    features: &[FeatureObject],
    query: &SpqQuery,
) -> Vec<RankedObject> {
    // Pre-score features once; drop irrelevant ones (the same pruning the
    // distributed map phase performs).
    let scored: Vec<(spq_spatial::Point, Score)> = features
        .iter()
        .filter_map(|f| {
            let s = query.score(&f.keywords);
            (!s.is_zero()).then_some((f.location, s))
        })
        .collect();
    let index = GridIndex::build(bounds, scored);

    let mut ranked: Vec<RankedObject> = data
        .iter()
        .filter_map(|p| {
            let mut best = Score::ZERO;
            index.for_each_within(&p.location, query.radius, |_, &s| {
                best = best.max(s);
            });
            (!best.is_zero()).then(|| RankedObject::new(p.id, p.location, best))
        })
        .collect();
    ranked.sort_by(RankedObject::canonical_cmp);
    ranked.truncate(query.k);
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use spq_spatial::Point;
    use spq_text::KeywordSet;

    /// Builds the exact datasets of Table 2 / Figure 1.
    /// Keywords: 0=italian 1=gourmet 2=chinese 3=cheap 4=sushi 5=wine
    /// 6=mexican 7=exotic 8=greek 9=traditional 10=spaghetti 11=indian.
    pub(crate) fn paper_data() -> Vec<DataObject> {
        vec![
            DataObject::new(1, Point::new(4.6, 4.8)),
            DataObject::new(2, Point::new(7.5, 1.7)),
            DataObject::new(3, Point::new(8.9, 5.2)),
            DataObject::new(4, Point::new(1.8, 1.8)),
            DataObject::new(5, Point::new(1.9, 9.0)),
        ]
    }

    pub(crate) fn paper_features() -> Vec<FeatureObject> {
        let f = |id, x, y, kw: &[u32]| {
            FeatureObject::new(
                id,
                Point::new(x, y),
                KeywordSet::from_ids(kw.iter().copied()),
            )
        };
        vec![
            f(1, 2.8, 1.2, &[0, 1]),
            f(2, 5.0, 3.8, &[2, 3]),
            f(3, 8.7, 1.9, &[4, 5]),
            f(4, 3.8, 5.5, &[0]),
            f(5, 5.2, 5.1, &[6, 7]),
            f(6, 7.4, 5.4, &[8, 9]),
            f(7, 3.0, 8.1, &[0, 10]),
            f(8, 9.5, 7.0, &[11]),
        ]
    }

    fn paper_query(k: usize) -> SpqQuery {
        SpqQuery::new(k, 1.5, KeywordSet::from_ids([0])) // "italian"
    }

    #[test]
    fn paper_example_top1() {
        // Example 1: the top-1 result is p1 with score 1 (via f4).
        let out = brute_force(&paper_data(), &paper_features(), &paper_query(1));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].object, 1);
        assert_eq!(out[0].score, Score::ONE);
    }

    #[test]
    fn paper_example_all_scores() {
        // "p4 has a score of 0.5 due to f1, p1 has 1 because of f4 and p5
        // has 0.5 due to f7" — p2 and p3 have no italian neighbour.
        let out = brute_force(&paper_data(), &paper_features(), &paper_query(5));
        let pairs: Vec<(u64, Score)> = out.iter().map(|r| (r.object, r.score)).collect();
        assert_eq!(
            pairs,
            vec![
                (1, Score::ONE),
                (4, Score::ratio(1, 2)),
                (5, Score::ratio(1, 2)),
            ]
        );
    }

    #[test]
    fn grid_index_matches_brute_force_on_paper_example() {
        let bounds = Rect::from_coords(0.0, 0.0, 10.0, 10.0);
        for k in [1, 2, 3, 5] {
            let q = paper_query(k);
            assert_eq!(
                grid_index_topk(bounds, &paper_data(), &paper_features(), &q),
                brute_force(&paper_data(), &paper_features(), &q),
            );
        }
    }

    #[test]
    fn tau_of_isolated_object_is_zero() {
        let p = DataObject::new(9, Point::new(0.0, 0.0));
        assert_eq!(tau(&p, &paper_features(), &paper_query(1)), Score::ZERO);
    }

    #[test]
    fn empty_inputs() {
        let q = paper_query(3);
        assert!(brute_force(&[], &paper_features(), &q).is_empty());
        assert!(brute_force(&paper_data(), &[], &q).is_empty());
        let bounds = Rect::from_coords(0.0, 0.0, 10.0, 10.0);
        assert!(grid_index_topk(bounds, &[], &[], &q).is_empty());
    }

    #[test]
    fn radius_zero_requires_colocation() {
        let data = vec![DataObject::new(1, Point::new(2.0, 2.0))];
        let features = vec![FeatureObject::new(
            1,
            Point::new(2.0, 2.0),
            KeywordSet::from_ids([0]),
        )];
        let q = SpqQuery::new(1, 0.0, KeywordSet::from_ids([0]));
        let out = brute_force(&data, &features, &q);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].score, Score::ONE);
    }
}
