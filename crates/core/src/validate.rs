//! Result validation under score ties.
//!
//! The paper's early-termination algorithms are *score-correct*: they
//! return `k` objects whose score multiset equals the exact top-k score
//! multiset, and every reported score is the object's true `τ(p)`. Under
//! ties they may legitimately pick different (equally good) objects than
//! the canonical baseline. These helpers express that contract so that
//! every test can assert it precisely.

use crate::centralized::tau;
use crate::model::{DataObject, FeatureObject, RankedObject};
use crate::query::SpqQuery;
use spq_text::Score;

/// True when two results carry the same multiset of scores.
pub fn same_score_multiset(a: &[RankedObject], b: &[RankedObject]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut sa: Vec<Score> = a.iter().map(|r| r.score).collect();
    let mut sb: Vec<Score> = b.iter().map(|r| r.score).collect();
    sa.sort();
    sb.sort();
    sa == sb
}

/// Checks a distributed result against the exact baseline:
///
/// 1. same length and same score multiset as the baseline,
/// 2. every reported `(p, s)` satisfies `τ(p) = s` exactly,
/// 3. no object reported twice,
/// 4. result sorted canonically (score desc, id asc).
///
/// Returns a description of the first violation, if any.
pub fn check_result(
    result: &[RankedObject],
    baseline: &[RankedObject],
    data: &[DataObject],
    features: &[FeatureObject],
    query: &SpqQuery,
) -> Result<(), String> {
    if result.len() != baseline.len() {
        return Err(format!(
            "result has {} entries, baseline {}",
            result.len(),
            baseline.len()
        ));
    }
    if !same_score_multiset(result, baseline) {
        return Err("score multisets differ from baseline".to_owned());
    }
    let mut seen = std::collections::HashSet::new();
    for r in result {
        if !seen.insert(r.object) {
            return Err(format!("object {} reported twice", r.object));
        }
        let p = data
            .iter()
            .find(|p| p.id == r.object)
            .ok_or_else(|| format!("object {} not in the data set", r.object))?;
        let true_tau = tau(p, features, query);
        if true_tau != r.score {
            return Err(format!(
                "object {} reported with {} but τ = {}",
                r.object, r.score, true_tau
            ));
        }
    }
    for w in result.windows(2) {
        if w[0].canonical_cmp(&w[1]).is_gt() {
            return Err(format!(
                "result not canonically sorted at {} / {}",
                w[0], w[1]
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use spq_spatial::Point;
    use spq_text::KeywordSet;

    fn setup() -> (Vec<DataObject>, Vec<FeatureObject>, SpqQuery) {
        let data = vec![
            DataObject::new(1, Point::new(1.0, 1.0)),
            DataObject::new(2, Point::new(2.0, 2.0)),
        ];
        let features = vec![
            FeatureObject::new(1, Point::new(1.1, 1.0), KeywordSet::from_ids([0])),
            FeatureObject::new(2, Point::new(2.1, 2.0), KeywordSet::from_ids([0, 1])),
        ];
        let query = SpqQuery::new(2, 0.5, KeywordSet::from_ids([0]));
        (data, features, query)
    }

    #[test]
    fn accepts_the_exact_result() {
        let (data, features, query) = setup();
        let baseline = crate::centralized::brute_force(&data, &features, &query);
        assert!(check_result(&baseline, &baseline, &data, &features, &query).is_ok());
    }

    #[test]
    fn rejects_wrong_score() {
        let (data, features, query) = setup();
        let baseline = crate::centralized::brute_force(&data, &features, &query);
        let mut forged = baseline.clone();
        forged[1].score = forged[0].score; // lie about τ
                                           // Multiset check fires first.
        assert!(check_result(&forged, &baseline, &data, &features, &query).is_err());
    }

    #[test]
    fn rejects_duplicates_and_unknown_objects() {
        let (data, features, query) = setup();
        let baseline = crate::centralized::brute_force(&data, &features, &query);
        // Duplicating the top entry perturbs the score multiset (and would
        // be caught as a duplicate even with equal scores).
        let dup = vec![baseline[0], baseline[0]];
        assert!(check_result(&dup, &baseline, &data, &features, &query).is_err());
        // An equal-score duplicate passes the multiset check and must be
        // caught by the dedup check.
        let same = vec![baseline[0], baseline[0]];
        let fake_baseline = vec![baseline[0], baseline[0]];
        assert!(
            check_result(&same, &fake_baseline, &data, &features, &query)
                .unwrap_err()
                .contains("twice")
        );
        let mut unknown = baseline.clone();
        unknown[0].object = 999;
        let err = check_result(&unknown, &baseline, &data, &features, &query).unwrap_err();
        assert!(err.contains("999"));
    }

    #[test]
    fn rejects_length_mismatch() {
        let (data, features, query) = setup();
        let baseline = crate::centralized::brute_force(&data, &features, &query);
        assert!(check_result(&baseline[..1], &baseline, &data, &features, &query).is_err());
    }

    #[test]
    fn multiset_comparison() {
        let (data, features, query) = setup();
        let baseline = crate::centralized::brute_force(&data, &features, &query);
        assert!(same_score_multiset(&baseline, &baseline));
        assert!(!same_score_multiset(&baseline, &baseline[..1]));
    }
}
