//! Remote serving: the sharded layout placed on worker **processes**
//! behind TCP, with fault recovery and dynamic membership.
//!
//! [`crate::sharded`] proves the scatter/gather shape inside one process;
//! this module moves each shard behind a socket. A [`RemoteEngine`] slices
//! the data objects exactly like [`crate::sharded::ShardedEngine`] — same
//! contiguous chunks, features broadcast to every shard — but instead of
//! building shard engines in-process it **provisions** each shard onto
//! [`MembershipConfig::replication_factor`] workers over the
//! [`spq_mapreduce::remote`] frame protocol. Workers are either spawned
//! in-process (the default — real sockets, no extra processes) or
//! external `spq-worker` binaries named by [`SPQ_REMOTE_WORKERS`].
//!
//! A query then scatters [`OP_SHARD_QUERY`] frames to the workers holding
//! relevant shards and gathers [`OP_SHARD_RESULT`] frames carrying the
//! same 12-byte [`wire`] records the in-process gather uses, so the merged
//! top-k is **byte-identical** to every other backend
//! (`tests/backend_equivalence.rs` proptests it across worker counts).
//!
//! ## Membership
//!
//! Workers die, restart and join. Each worker moves through a managed
//! state machine (see `docs/ARCHITECTURE.md`, "Membership and
//! replication"):
//!
//! ```text
//!            transport failure        second failure
//!   Live ──────────────────► Suspect ───────────────► Excluded
//!    ▲  ◄──────────────────┘                             │
//!    │        success                  probe success     ▼
//!    └───────────────── Probing ◄──────────────────── (ticks)
//!      streak reaches                probe failure resets
//!      readmit_threshold             the streak to zero
//! ```
//!
//! * **Queries** drive `Live → Suspect → Excluded`: one transport failure
//!   (connect refused, deadline missed, torn or corrupt frame) marks a
//!   worker suspect and retries it once — the client reconnects under
//!   exponential backoff, which rides out a blip; a second failure
//!   excludes it and the shard **fails over**. With a warm replica alive
//!   the failover is a placement-pointer flip (no data crosses the wire);
//!   otherwise the kept provision payload is re-provisioned onto a
//!   survivor (a *cold* re-provision). Both are visible per query in
//!   [`QueryStats::warm_failovers`] / [`QueryStats::cold_reprovisions`].
//! * **Ticks** drive the way back: [`RemoteEngine::tick`] probes every
//!   excluded worker with a ping frame and, after
//!   [`MembershipConfig::readmit_threshold`] *consecutive* successes
//!   (hysteresis — a flapping worker cannot thrash the placement),
//!   re-admits it: the worker reports which shards it still hosts
//!   ([`OP_SHARD_STATUS`]), warm copies re-enter the replica map for
//!   free, and the **rebalancer** migrates shards to restore the
//!   canonical layout under a [`MembershipConfig::max_moves_per_tick`]
//!   budget, so serving never stalls behind a bulk migration. The tick is
//!   deterministic — nothing probes or migrates unless the owner calls
//!   [`tick`](RemoteEngine::tick) — which is what makes every recovery
//!   path a unit-testable subject (`tests/remote_membership.rs`).
//! * **Joins** go through [`RemoteEngine::admit`]: a new address is
//!   pinged, enters as `Live` with no shards, and the rebalancer migrates
//!   load onto it over the following ticks.
//!
//! When every worker is excluded, a query fails with
//! [`SpqError::WorkerLost`]. Every re-ask increments
//! [`QueryStats::retries`]; recovery never changes result bytes, because
//! any worker computes the same answer for the same shard
//! (`tests/remote_faults.rs` and `tests/remote_membership.rs` proptest
//! this under injected [`FaultPlan`]s). A typed error *reported by* a
//! worker ([`OP_ERROR`], e.g. a panic inside the algorithm) is **not**
//! retried: it is deterministic and would fail identically everywhere, so
//! it surfaces directly as [`SpqError::Remote`], matching the local
//! backends' error-path behaviour.

use crate::engine::{MetricsSnapshot, QueryEngine};
use crate::executor::{GridSizing, LoadBalancing, SpqError, SpqExecutor};
use crate::merge::merge_top_k;
use crate::model::{DataObject, FeatureObject, ObjectId};
use crate::query::SpqQuery;
use crate::service::{
    ExecutionMode, QueryExecutor, QueryOptions, QueryRequest, QueryResponse, QueryStats,
};
use crate::sharded::wire;
use crate::store::SharedDataset;
use crate::Algorithm;
use parking_lot::Mutex;
use spq_mapreduce::pool::run_tasks;
use spq_mapreduce::remote::codec::{
    decode_job_stats, encode_job_stats, put_bytes, put_f64, put_u32, put_u64, put_u8,
};
use spq_mapreduce::remote::{
    decode_error_payload, ByteReader, ClientConfig, CodecError, FaultPlan, FrameHandler,
    WorkerClient, WorkerServer, OP_ERROR, OP_FAULT_OK, OP_PROVISION, OP_PROVISION_OK, OP_SET_FAULT,
    OP_SHARD_QUERY, OP_SHARD_RESULT, OP_SHARD_STATUS, OP_SHARD_STATUS_OK,
};
use spq_mapreduce::{ClusterConfig, JobStats};
use spq_text::{KeywordSet, SetSimilarity};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Environment variable naming external worker processes for
/// [`crate::service::Backend::Remote`]: a comma-separated `host:port`
/// list, e.g. `SPQ_REMOTE_WORKERS=127.0.0.1:7001,127.0.0.1:7002`.
///
/// When set, `remote:N` requires **exactly `N` addresses** — a worker
/// count that disagrees with the deployment list is a configuration error,
/// not something to silently round. When unset, `remote:N` spawns `N`
/// in-process workers on ephemeral localhost ports. This is independent of
/// `SPQ_WORKERS` ([`spq_mapreduce::cluster::WORKERS_ENV`]), which sizes
/// the *thread* pool inside each process: `SPQ_REMOTE_WORKERS` places
/// shards across processes, `SPQ_WORKERS` sizes the scatter width and
/// per-job parallelism within one.
pub const SPQ_REMOTE_WORKERS: &str = "SPQ_REMOTE_WORKERS";

/// Environment variable overriding
/// [`MembershipConfig::replication_factor`] for engines built through
/// [`crate::service::SpqService::build`] / [`RemoteEngine::build`]:
/// `SPQ_REPLICATION_FACTOR=3` keeps every shard warm on three workers.
/// Must parse as a decimal integer ≥ 1.
pub const SPQ_REPLICATION_FACTOR: &str = "SPQ_REPLICATION_FACTOR";

/// Parses a [`SPQ_REMOTE_WORKERS`]-style list into validated
/// `host:port` addresses.
///
/// # Errors
///
/// [`SpqError::InvalidConfig`] on an empty list, an empty entry, a
/// missing `:port`, or a port that is not a decimal `u16` ≥ 1.
pub fn parse_worker_addrs(list: &str) -> Result<Vec<String>, SpqError> {
    let mut addrs = Vec::new();
    for raw in list.split(',') {
        let entry = raw.trim();
        if entry.is_empty() {
            return Err(SpqError::invalid_config(format!(
                "{SPQ_REMOTE_WORKERS}: empty worker address in {list:?}"
            )));
        }
        let Some((host, port)) = entry.rsplit_once(':') else {
            return Err(SpqError::invalid_config(format!(
                "{SPQ_REMOTE_WORKERS}: worker address {entry:?} has no :port"
            )));
        };
        if host.is_empty() {
            return Err(SpqError::invalid_config(format!(
                "{SPQ_REMOTE_WORKERS}: worker address {entry:?} has no host"
            )));
        }
        match port.parse::<u16>() {
            Ok(p) if p > 0 => addrs.push(entry.to_owned()),
            _ => {
                return Err(SpqError::invalid_config(format!(
                    "{SPQ_REMOTE_WORKERS}: bad port {port:?} in {entry:?} (want 1..=65535)"
                )))
            }
        }
    }
    Ok(addrs)
}

// ---------------------------------------------------------------------
// Payload codecs. All little-endian, layered on the mapreduce byte codec;
// round-tripped by proptests in `tests/remote_wire.rs`.
// ---------------------------------------------------------------------

fn algorithm_to_u8(a: Algorithm) -> u8 {
    match a {
        Algorithm::PSpq => 0,
        Algorithm::ESpqLen => 1,
        Algorithm::ESpqSco => 2,
    }
}

fn algorithm_from_u8(v: u8) -> Result<Algorithm, CodecError> {
    match v {
        0 => Ok(Algorithm::PSpq),
        1 => Ok(Algorithm::ESpqLen),
        2 => Ok(Algorithm::ESpqSco),
        other => Err(CodecError::invalid(format!(
            "unknown algorithm tag {other}"
        ))),
    }
}

fn similarity_to_u8(s: SetSimilarity) -> u8 {
    match s {
        SetSimilarity::Jaccard => 0,
        SetSimilarity::Dice => 1,
        SetSimilarity::Overlap => 2,
    }
}

fn similarity_from_u8(v: u8) -> Result<SetSimilarity, CodecError> {
    match v {
        0 => Ok(SetSimilarity::Jaccard),
        1 => Ok(SetSimilarity::Dice),
        2 => Ok(SetSimilarity::Overlap),
        other => Err(CodecError::invalid(format!(
            "unknown similarity tag {other}"
        ))),
    }
}

fn encode_executor(exec: &SpqExecutor, out: &mut Vec<u8>) {
    let bounds = exec.bounds();
    put_f64(out, bounds.min().x);
    put_f64(out, bounds.min().y);
    put_f64(out, bounds.max().x);
    put_f64(out, bounds.max().y);
    put_u8(out, algorithm_to_u8(exec.algorithm_choice()));
    match exec.grid_sizing() {
        GridSizing::Fixed(n) => {
            put_u8(out, 0);
            put_u32(out, n);
        }
        GridSizing::Auto { max_cells_per_axis } => {
            put_u8(out, 1);
            put_u32(out, max_cells_per_axis);
        }
    }
    match exec.load_balancing_choice() {
        LoadBalancing::UniformGrid => {
            put_u8(out, 0);
            put_u64(out, 0);
        }
        LoadBalancing::AdaptiveQuadtree { sample_size } => {
            put_u8(out, 1);
            put_u64(out, sample_size as u64);
        }
    }
    put_u8(out, exec.keyword_pruning_enabled() as u8);
    put_u64(out, exec.cluster_config().workers as u64);
}

fn decode_executor(r: &mut ByteReader<'_>) -> Result<SpqExecutor, CodecError> {
    let (min_x, min_y, max_x, max_y) = (r.f64()?, r.f64()?, r.f64()?, r.f64()?);
    if !(min_x.is_finite() && min_y.is_finite() && max_x.is_finite() && max_y.is_finite()) {
        return Err(CodecError::invalid("non-finite data-space bounds"));
    }
    let algorithm = algorithm_from_u8(r.u8()?)?;
    let sizing_tag = r.u8()?;
    let sizing_value = r.u32()?;
    let balancing_tag = r.u8()?;
    let balancing_value = r.u64()?;
    let keyword_pruning = r.u8()? != 0;
    let workers = r.u64()? as usize;
    let mut exec = SpqExecutor::new(spq_spatial::Rect::from_coords(min_x, min_y, max_x, max_y))
        .algorithm(algorithm)
        .keyword_pruning(keyword_pruning)
        .cluster(ClusterConfig::with_workers(workers.max(1)));
    exec = match sizing_tag {
        0 => exec.grid_size(sizing_value),
        1 => exec.auto_grid(sizing_value),
        other => {
            return Err(CodecError::invalid(format!(
                "unknown grid-sizing tag {other}"
            )))
        }
    };
    exec = match balancing_tag {
        0 => exec.load_balancing(LoadBalancing::UniformGrid),
        1 => exec.load_balancing(LoadBalancing::AdaptiveQuadtree {
            sample_size: balancing_value as usize,
        }),
        other => {
            return Err(CodecError::invalid(format!(
                "unknown load-balancing tag {other}"
            )))
        }
    };
    Ok(exec)
}

/// Encodes an [`OP_PROVISION`] payload: the shard id, the executor
/// configuration, the shard's data slice (each object with its **global**
/// store index, so gather records resolve without any per-shard coordinate
/// space) and the broadcast feature set.
pub(crate) fn encode_provision(
    shard_id: u32,
    exec: &SpqExecutor,
    first_global_index: u32,
    data: &[DataObject],
    features: &[FeatureObject],
) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, shard_id);
    encode_executor(exec, &mut out);
    put_u32(&mut out, data.len() as u32);
    for (i, object) in data.iter().enumerate() {
        put_u32(&mut out, first_global_index + i as u32);
        put_u64(&mut out, object.id);
        put_f64(&mut out, object.location.x);
        put_f64(&mut out, object.location.y);
    }
    put_u32(&mut out, features.len() as u32);
    for feature in features {
        put_u64(&mut out, feature.id);
        put_f64(&mut out, feature.location.x);
        put_f64(&mut out, feature.location.y);
        put_u32(&mut out, feature.keywords.len() as u32);
        for term in feature.keywords.iter() {
            put_u32(&mut out, term.0);
        }
    }
    out
}

pub(crate) struct Provision {
    pub shard_id: u32,
    pub exec: SpqExecutor,
    pub id_to_index: HashMap<ObjectId, u32>,
    pub data: Vec<DataObject>,
    pub features: Vec<FeatureObject>,
}

pub(crate) fn decode_provision(payload: &[u8]) -> Result<Provision, CodecError> {
    let mut r = ByteReader::new(payload);
    let shard_id = r.u32()?;
    let exec = decode_executor(&mut r)?;
    let num_data = r.u32()? as usize;
    let mut id_to_index = HashMap::with_capacity(num_data);
    let mut data = Vec::with_capacity(num_data.min(1 << 16));
    for _ in 0..num_data {
        let global_index = r.u32()?;
        let id = r.u64()?;
        let (x, y) = (r.f64()?, r.f64()?);
        if id_to_index.insert(id, global_index).is_some() {
            return Err(CodecError::invalid(format!(
                "duplicate data object id {id} in provision"
            )));
        }
        data.push(DataObject::new(id, spq_spatial::Point::new(x, y)));
    }
    let num_features = r.u32()? as usize;
    let mut features = Vec::with_capacity(num_features.min(1 << 16));
    for _ in 0..num_features {
        let id = r.u64()?;
        let (x, y) = (r.f64()?, r.f64()?);
        let num_terms = r.u32()? as usize;
        let mut terms = Vec::with_capacity(num_terms.min(1 << 12));
        for _ in 0..num_terms {
            terms.push(r.u32()?);
        }
        features.push(FeatureObject::new(
            id,
            spq_spatial::Point::new(x, y),
            KeywordSet::from_ids(terms),
        ));
    }
    if !r.is_empty() {
        return Err(CodecError::invalid("trailing bytes after provision"));
    }
    Ok(Provision {
        shard_id,
        exec,
        id_to_index,
        data,
        features,
    })
}

/// Encodes an [`OP_SHARD_QUERY`] payload: the shard id, the query and the
/// result-relevant per-request options. The worker budget is **not**
/// shipped — shard jobs always run sequentially, exactly as the
/// in-process scatter does (the scatter width is the parallelism).
pub(crate) fn encode_shard_query(
    shard_id: u32,
    query: &SpqQuery,
    options: &QueryOptions,
) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, shard_id);
    put_u64(&mut out, query.k as u64);
    put_f64(&mut out, query.radius);
    put_u8(&mut out, similarity_to_u8(query.similarity));
    put_u32(&mut out, query.keywords.len() as u32);
    for term in query.keywords.iter() {
        put_u32(&mut out, term.0);
    }
    match options.algorithm {
        None => put_u8(&mut out, u8::MAX),
        Some(a) => put_u8(&mut out, algorithm_to_u8(a)),
    }
    match options.keyword_pruning {
        None => put_u8(&mut out, 2),
        Some(enabled) => put_u8(&mut out, enabled as u8),
    }
    out
}

pub(crate) fn decode_shard_query(
    payload: &[u8],
) -> Result<(u32, SpqQuery, QueryOptions), CodecError> {
    let mut r = ByteReader::new(payload);
    let shard_id = r.u32()?;
    let k = r.u64()? as usize;
    let radius = r.f64()?;
    if k == 0 || !radius.is_finite() || radius < 0.0 {
        return Err(CodecError::invalid(format!(
            "degenerate shard query (k={k}, r={radius})"
        )));
    }
    let similarity = similarity_from_u8(r.u8()?)?;
    let num_terms = r.u32()? as usize;
    if num_terms == 0 {
        return Err(CodecError::invalid("shard query with no keywords"));
    }
    let mut terms = Vec::with_capacity(num_terms.min(1 << 12));
    for _ in 0..num_terms {
        terms.push(r.u32()?);
    }
    let algorithm = match r.u8()? {
        u8::MAX => None,
        tag => Some(algorithm_from_u8(tag)?),
    };
    let keyword_pruning = match r.u8()? {
        0 => Some(false),
        1 => Some(true),
        2 => None,
        other => {
            return Err(CodecError::invalid(format!(
                "unknown keyword-pruning tag {other}"
            )))
        }
    };
    if !r.is_empty() {
        return Err(CodecError::invalid("trailing bytes after shard query"));
    }
    let query = SpqQuery::with_similarity(k, radius, KeywordSet::from_ids(terms), similarity);
    let options = QueryOptions {
        algorithm,
        workers: None,
        keyword_pruning,
        trace: false,
    };
    Ok((shard_id, query, options))
}

/// Encodes an [`OP_SHARD_RESULT`] payload: the plan-cache outcome, the
/// gather records ([`wire::RECORD_BYTES`]-byte each, global indexes) and
/// the shard job's [`JobStats`].
pub(crate) fn encode_shard_result(plan_hit: bool, records: &[u8], stats: &JobStats) -> Vec<u8> {
    let mut out = Vec::with_capacity(records.len() + 64);
    put_u8(&mut out, plan_hit as u8);
    put_bytes(&mut out, records);
    encode_job_stats(stats, &mut out);
    out
}

pub(crate) fn decode_shard_result(payload: &[u8]) -> Result<(bool, Vec<u8>, JobStats), CodecError> {
    let mut r = ByteReader::new(payload);
    let plan_hit = r.u8()? != 0;
    let records = r.bytes()?.to_vec();
    if !records.len().is_multiple_of(wire::RECORD_BYTES) {
        return Err(CodecError::invalid(format!(
            "gather buffer of {} bytes is not a whole number of records",
            records.len()
        )));
    }
    let stats = decode_job_stats(&mut r)?;
    if !r.is_empty() {
        return Err(CodecError::invalid("trailing bytes after shard result"));
    }
    Ok((plan_hit, records, stats))
}

/// Encodes an [`OP_SHARD_STATUS_OK`] payload: the hosted shard ids,
/// ascending.
pub(crate) fn encode_shard_status(shard_ids: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + shard_ids.len() * 4);
    put_u32(&mut out, shard_ids.len() as u32);
    for &s in shard_ids {
        put_u32(&mut out, s);
    }
    out
}

pub(crate) fn decode_shard_status(payload: &[u8]) -> Result<Vec<u32>, CodecError> {
    let mut r = ByteReader::new(payload);
    let count = r.u32()? as usize;
    let mut shards = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        shards.push(r.u32()?);
    }
    if !r.is_empty() {
        return Err(CodecError::invalid("trailing bytes after shard status"));
    }
    Ok(shards)
}

// ---------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------

struct HostedShard {
    engine: QueryEngine,
    id_to_index: HashMap<ObjectId, u32>,
}

/// The worker-side shard host: a [`FrameHandler`] answering
/// [`OP_PROVISION`] (build a shard engine from a shipped dataset slice),
/// [`OP_SHARD_QUERY`] (evaluate a query against a hosted shard and reply
/// with gather records) and [`OP_SHARD_STATUS`] (report which shards are
/// hosted, so a re-admitting manager knows which copies are still warm).
/// This is what the `spq-worker` binary and the in-process workers of
/// [`RemoteEngine::self_hosted`] serve.
#[derive(Default)]
pub struct ShardHost {
    // BTreeMap, not HashMap: `status()` serializes the hosted shard ids,
    // and this module's wire output must never depend on hash order
    // (enforced by spq-lint's determinism/unordered-iter).
    shards: Mutex<BTreeMap<u32, HostedShard>>,
}

impl ShardHost {
    /// Creates an empty host; shards arrive via [`OP_PROVISION`] frames.
    pub fn new() -> Self {
        Self::default()
    }

    fn provision(&self, payload: &[u8]) -> Result<Vec<u8>, String> {
        let p = decode_provision(payload).map_err(|e| format!("bad provision payload: {e}"))?;
        let dataset = SharedDataset::new(p.data, p.features);
        let engine = QueryEngine::new(p.exec, dataset);
        self.shards.lock().insert(
            p.shard_id,
            HostedShard {
                engine,
                id_to_index: p.id_to_index,
            },
        );
        Ok(Vec::new())
    }

    fn query(&self, payload: &[u8]) -> Result<Vec<u8>, String> {
        let (shard_id, query, options) =
            decode_shard_query(payload).map_err(|e| format!("bad shard query payload: {e}"))?;
        let shards = self.shards.lock();
        let shard = shards
            .get(&shard_id)
            .ok_or_else(|| format!("shard {shard_id} is not provisioned on this worker"))?;
        let (result, plan_hit) = shard
            .engine
            .run_opts_pruned(&query, &options, true)
            .map_err(|e| format!("shard {shard_id} query failed: {e}"))?;
        let records = wire::encode_results(&result.top_k, &shard.id_to_index);
        Ok(encode_shard_result(plan_hit, &records, &result.stats))
    }

    fn status(&self) -> Vec<u8> {
        // BTreeMap keys are already ascending, the order the codec
        // documents.
        let hosted: Vec<u32> = self.shards.lock().keys().copied().collect();
        encode_shard_status(&hosted)
    }

    /// Number of shards currently hosted (for tests and diagnostics).
    pub fn hosted_shards(&self) -> usize {
        self.shards.lock().len()
    }
}

impl std::fmt::Debug for ShardHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardHost")
            .field("hosted_shards", &self.hosted_shards())
            .finish()
    }
}

impl FrameHandler for ShardHost {
    fn handle(&self, opcode: u16, payload: &[u8]) -> Result<Option<(u16, Vec<u8>)>, String> {
        match opcode {
            OP_PROVISION => Ok(Some((OP_PROVISION_OK, self.provision(payload)?))),
            OP_SHARD_QUERY => Ok(Some((OP_SHARD_RESULT, self.query(payload)?))),
            OP_SHARD_STATUS => Ok(Some((OP_SHARD_STATUS_OK, self.status()))),
            _ => Ok(None),
        }
    }
}

// ---------------------------------------------------------------------
// Manager side: membership
// ---------------------------------------------------------------------

/// Where one worker stands in the membership state machine (see the
/// [module docs](self) for the transition diagram).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerState {
    /// In rotation: serves the shards placed on it.
    Live,
    /// One transport failure seen; retried once before exclusion.
    Suspect,
    /// Out of rotation; the probe scheduler pings it every tick.
    Excluded,
    /// Excluded, but with a streak of successful probes building toward
    /// re-admission.
    Probing,
}

impl WorkerState {
    /// True when the worker may be asked to serve (live or suspect).
    pub fn is_available(self) -> bool {
        matches!(self, WorkerState::Live | WorkerState::Suspect)
    }
}

/// Tuning knobs for the membership layer. All defaults are safe for
/// production; tests tighten them for speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MembershipConfig {
    /// How many workers hold a warm copy of each shard (capped by the
    /// number of available workers). With ≥ 2, a worker death fails over
    /// by flipping the placement pointer instead of re-shipping the
    /// shard's dataset.
    pub replication_factor: usize,
    /// Probe excluded workers on every `n`-th [`RemoteEngine::tick`].
    pub probe_interval_ticks: u64,
    /// Consecutive successful probes an excluded worker needs before
    /// re-admission — the hysteresis that keeps a flapping worker from
    /// thrashing the placement.
    pub readmit_threshold: u32,
    /// Upper bound on provision round-trips the rebalancer performs per
    /// tick, so a bulk migration never stalls serving.
    pub max_moves_per_tick: usize,
}

impl Default for MembershipConfig {
    fn default() -> Self {
        Self {
            replication_factor: 2,
            probe_interval_ticks: 1,
            readmit_threshold: 2,
            max_moves_per_tick: 2,
        }
    }
}

impl MembershipConfig {
    /// Applies the [`SPQ_REPLICATION_FACTOR`] environment override.
    fn from_env() -> Result<Self, SpqError> {
        let mut config = Self::default();
        if let Ok(raw) = std::env::var(SPQ_REPLICATION_FACTOR) {
            let trimmed = raw.trim();
            if !trimmed.is_empty() {
                config.replication_factor = match trimmed.parse::<usize>() {
                    Ok(n) if n >= 1 => n,
                    _ => {
                        return Err(SpqError::invalid_config(format!(
                            "{SPQ_REPLICATION_FACTOR}: bad replication factor {raw:?} (want an \
                             integer >= 1)"
                        )))
                    }
                };
            }
        }
        Ok(config)
    }
}

/// The placement and state book-keeping behind one mutex: worker states,
/// probe streaks, the per-shard primary pointer and the warm-replica map.
#[derive(Debug)]
struct Membership {
    states: Vec<WorkerState>,
    probe_streak: Vec<u32>,
    /// Which worker answers each shard's queries.
    primary: Vec<usize>,
    /// Workers believed to hold a warm, current copy of each shard
    /// (provision payloads are immutable, so any installed copy stays
    /// valid). Sorted, and pruned of a worker the moment it is excluded.
    replicas: Vec<Vec<usize>>,
    /// Ticks elapsed (drives the probe interval).
    ticks: u64,
}

impl Membership {
    fn available(&self, w: usize) -> bool {
        self.states[w].is_available()
    }

    fn available_workers(&self) -> Vec<usize> {
        (0..self.states.len())
            .filter(|&w| self.available(w))
            .collect()
    }

    /// The canonical layout: shard `s` belongs on the available workers
    /// `avail[(s + j) % avail.len()]` for `j in 0..r` — the PR 5
    /// placement generalized to replicas and to a worker set that grows
    /// and shrinks. `targets[0]` is the desired primary.
    fn targets(&self, shard: usize, replication_factor: usize) -> Vec<usize> {
        let avail = self.available_workers();
        if avail.is_empty() {
            return Vec::new();
        }
        let r = replication_factor.min(avail.len());
        (0..r).map(|j| avail[(shard + j) % avail.len()]).collect()
    }

    fn add_replica(&mut self, shard: usize, w: usize) {
        if let Err(at) = self.replicas[shard].binary_search(&w) {
            self.replicas[shard].insert(at, w);
        }
    }

    fn purge_worker(&mut self, w: usize) {
        for set in &mut self.replicas {
            set.retain(|&x| x != w);
        }
    }
}

/// A snapshot of the membership layer, for observability and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MembershipView {
    /// Per-worker state, worker order.
    pub states: Vec<WorkerState>,
    /// Per-shard primary worker.
    pub primaries: Vec<usize>,
    /// Per-shard warm-replica holders (sorted; includes the primary once
    /// placement has settled).
    pub replicas: Vec<Vec<usize>>,
    /// Ticks the engine has seen.
    pub ticks: u64,
}

/// What one [`RemoteEngine::tick`] did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TickReport {
    /// Excluded workers probed this tick.
    pub probes: usize,
    /// Probes that came back healthy.
    pub probe_successes: usize,
    /// Workers re-admitted this tick (hysteresis satisfied).
    pub readmitted: Vec<usize>,
    /// Provision round-trips the rebalancer performed (≤ the budget).
    pub provisions: usize,
    /// Primary pointers flipped to restore the canonical layout.
    pub primary_flips: usize,
}

impl TickReport {
    /// True when the tick had nothing to do: no excluded workers to
    /// probe and a placement already matching the canonical layout.
    pub fn quiescent(&self) -> bool {
        self.probes == 0
            && self.probe_successes == 0
            && self.readmitted.is_empty()
            && self.provisions == 0
            && self.primary_flips == 0
    }
}

struct WorkerSlot {
    addr: String,
    client: Mutex<WorkerClient>,
}

impl WorkerSlot {
    fn new(addr: String, config: ClientConfig) -> Self {
        Self {
            client: Mutex::new(WorkerClient::new(addr.clone(), config)),
            addr,
        }
    }
}

impl std::fmt::Debug for WorkerSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerSlot")
            .field("addr", &self.addr)
            .finish()
    }
}

/// How one attempt at a worker failed, from the retry loop's viewpoint.
enum AttemptError {
    /// The transport failed — the worker may be dead; retrying elsewhere
    /// can recover.
    Transport(String),
    /// The worker reported a typed, deterministic failure — retrying would
    /// fail identically everywhere.
    Fatal(SpqError),
}

/// Cumulative membership/recovery counters (all monotone).
#[derive(Debug, Default)]
struct RemoteCounters {
    queries: AtomicU64,
    plan_cache_hits: AtomicU64,
    plan_cache_misses: AtomicU64,
    keyword_probes: AtomicU64,
    keyword_hits: AtomicU64,
    retries: AtomicU64,
    warm_failovers: AtomicU64,
    cold_reprovisions: AtomicU64,
    readmissions: AtomicU64,
    health_probes: AtomicU64,
    rebalance_moves: AtomicU64,
    provisions_sent: AtomicU64,
}

/// Per-shard recovery outcome of one scatter leg.
#[derive(Default)]
struct ShardRecovery {
    retries: u64,
    warm: u64,
    cold: u64,
}

/// The engine behind [`crate::service::Backend::Remote`]: the sharded
/// scatter/gather with every shard behind a TCP worker, plus the
/// membership layer described in the [module docs](self) — retry and
/// warm/cold failover on the query path, probe-driven re-admission and
/// budgeted rebalancing on the [`tick`](Self::tick) path.
///
/// Build with [`build`](Self::build) (environment-driven),
/// [`self_hosted`](Self::self_hosted) (in-process workers) or
/// [`connect`](Self::connect) (external workers), then serve typed
/// requests exactly like the other engines.
#[derive(Debug)]
pub struct RemoteEngine {
    dataset: SharedDataset,
    exec: SpqExecutor,
    config: MembershipConfig,
    client_config: ClientConfig,
    workers: Mutex<Vec<Arc<WorkerSlot>>>,
    /// Per-shard provision payload, kept for failover re-provisioning.
    shard_payloads: Vec<Vec<u8>>,
    membership: Mutex<Membership>,
    /// Whether each shard owns any data objects.
    shard_nonempty: Vec<bool>,
    /// Terms carried by at least one feature (the manager-side keyword
    /// probe — same semantics as the engines' build-once keyword index).
    term_index: HashSet<u32>,
    counters: RemoteCounters,
    scatter_workers: usize,
    /// In-process worker servers under [`self_hosted`](Self::self_hosted);
    /// empty when workers are external. Held so they serve for the
    /// engine's lifetime and shut down on drop.
    hosts: Vec<WorkerServer>,
}

impl RemoteEngine {
    /// Builds the engine the way [`crate::service::SpqService::build`]
    /// does for `remote:N`: external workers when [`SPQ_REMOTE_WORKERS`]
    /// is set (the list length must equal `workers`), in-process workers
    /// otherwise. [`SPQ_REPLICATION_FACTOR`] overrides the default
    /// replication factor either way.
    pub fn build(
        executor: SpqExecutor,
        dataset: SharedDataset,
        workers: usize,
    ) -> Result<Self, SpqError> {
        let config = MembershipConfig::from_env()?;
        match std::env::var(SPQ_REMOTE_WORKERS) {
            Ok(list) if !list.trim().is_empty() => {
                let addrs = parse_worker_addrs(&list)?;
                if addrs.len() != workers {
                    return Err(SpqError::invalid_config(format!(
                        "remote:{workers} needs {workers} workers but {SPQ_REMOTE_WORKERS} \
                         names {} ({list:?})",
                        addrs.len()
                    )));
                }
                Self::connect_with(executor, dataset, &addrs, config)
            }
            _ => Self::self_hosted_with(executor, dataset, workers, config),
        }
    }

    /// [`self_hosted`](Self::self_hosted) with default membership tuning.
    pub fn self_hosted(
        executor: SpqExecutor,
        dataset: SharedDataset,
        workers: usize,
    ) -> Result<Self, SpqError> {
        Self::self_hosted_with(executor, dataset, workers, MembershipConfig::default())
    }

    /// Spawns `workers` in-process [`WorkerServer`]s (real localhost
    /// sockets, ephemeral ports, non-fatal fault plans) and provisions the
    /// shards onto them under `config`.
    pub fn self_hosted_with(
        executor: SpqExecutor,
        dataset: SharedDataset,
        workers: usize,
        config: MembershipConfig,
    ) -> Result<Self, SpqError> {
        if workers == 0 {
            return Err(SpqError::invalid_config(
                "remote backend needs at least one worker",
            ));
        }
        let mut hosts = Vec::with_capacity(workers);
        let mut addrs = Vec::with_capacity(workers);
        for _ in 0..workers {
            let host =
                WorkerServer::bind("127.0.0.1:0", vec![Box::new(ShardHost::new())], false)
                    .map_err(|e| SpqError::remote(format!("cannot bind in-process worker: {e}")))?;
            addrs.push(host.addr().to_string());
            hosts.push(host);
        }
        Self::with_workers(
            executor,
            dataset,
            &addrs,
            hosts,
            ClientConfig::fast(),
            config,
        )
    }

    /// [`connect_with`](Self::connect_with) with default membership
    /// tuning.
    pub fn connect(
        executor: SpqExecutor,
        dataset: SharedDataset,
        addrs: &[String],
    ) -> Result<Self, SpqError> {
        Self::connect_with(executor, dataset, addrs, MembershipConfig::default())
    }

    /// Connects to external workers (e.g. `spq-worker` processes), one
    /// shard per address, and provisions the shards (plus replicas) onto
    /// them under `config`.
    pub fn connect_with(
        executor: SpqExecutor,
        dataset: SharedDataset,
        addrs: &[String],
        config: MembershipConfig,
    ) -> Result<Self, SpqError> {
        Self::with_workers(
            executor,
            dataset,
            addrs,
            Vec::new(),
            ClientConfig::default(),
            config,
        )
    }

    fn with_workers(
        executor: SpqExecutor,
        dataset: SharedDataset,
        addrs: &[String],
        hosts: Vec<WorkerServer>,
        client_config: ClientConfig,
        config: MembershipConfig,
    ) -> Result<Self, SpqError> {
        if addrs.is_empty() {
            return Err(SpqError::invalid_config(
                "remote backend needs at least one worker",
            ));
        }
        if config.replication_factor == 0 {
            return Err(SpqError::invalid_config(
                "replication factor must be at least 1",
            ));
        }
        let data = dataset.data();
        let mut seen = HashMap::with_capacity(data.len());
        for (i, object) in data.iter().enumerate() {
            if seen.insert(object.id, i).is_some() {
                return Err(SpqError::invalid_config(format!(
                    "duplicate data object id {} — the remote wire format resolves by id",
                    object.id
                )));
            }
        }
        let num_shards = addrs.len();
        let num_workers = addrs.len();
        let features = dataset.features();
        let mut shard_payloads = Vec::with_capacity(num_shards);
        let mut shard_nonempty = Vec::with_capacity(num_shards);
        for s in 0..num_shards {
            let start = s * data.len() / num_shards;
            let end = (s + 1) * data.len() / num_shards;
            shard_payloads.push(encode_provision(
                s as u32,
                &executor,
                start as u32,
                &data[start..end],
                features,
            ));
            shard_nonempty.push(end > start);
        }
        let term_index = features
            .iter()
            .flat_map(|f| f.keywords.iter().map(|t| t.0))
            .collect();
        let workers: Vec<Arc<WorkerSlot>> = addrs
            .iter()
            .map(|a| Arc::new(WorkerSlot::new(a.clone(), client_config)))
            .collect();
        let scatter_workers = executor.cluster_config().workers.max(1);
        let engine = Self {
            dataset,
            exec: executor,
            config,
            client_config,
            workers: Mutex::new(workers),
            shard_payloads,
            membership: Mutex::new(Membership {
                states: vec![WorkerState::Live; num_workers],
                probe_streak: vec![0; num_workers],
                primary: (0..num_shards).map(|s| s % num_workers).collect(),
                replicas: vec![Vec::new(); num_shards],
                ticks: 0,
            }),
            shard_nonempty,
            term_index,
            counters: RemoteCounters::default(),
            scatter_workers,
            hosts,
        };
        // Initial placement: shard s primary on worker s, warm replicas
        // on the next replication_factor − 1 workers. Build is strict — a
        // worker that cannot be provisioned fails the build instead of
        // starting life on the exclusion list.
        let replicas_per_shard = engine.config.replication_factor.min(num_workers);
        for s in 0..engine.shard_payloads.len() {
            for j in 0..replicas_per_shard {
                let w = (s + j) % num_workers;
                engine.install(s, w).map_err(|e| match e {
                    AttemptError::Transport(message) => SpqError::WorkerLost { worker: w, message },
                    AttemptError::Fatal(e) => e,
                })?;
            }
        }
        Ok(engine)
    }

    /// Number of registered workers (excluded ones included; initially
    /// = number of shards, grows with [`admit`](Self::admit)).
    pub fn num_workers(&self) -> usize {
        self.workers.lock().len()
    }

    /// Number of shards (fixed at build time).
    pub fn num_shards(&self) -> usize {
        self.shard_payloads.len()
    }

    /// The global store the gather resolves against.
    pub fn dataset(&self) -> &SharedDataset {
        &self.dataset
    }

    /// The executor configuration the shards were provisioned with.
    pub fn executor(&self) -> &SpqExecutor {
        &self.exec
    }

    /// The membership tuning this engine runs under.
    pub fn membership_config(&self) -> MembershipConfig {
        self.config
    }

    /// The worker addresses, in worker order.
    pub fn worker_addrs(&self) -> Vec<String> {
        self.workers.lock().iter().map(|w| w.addr.clone()).collect()
    }

    /// True when the workers are in-process servers spawned by
    /// [`self_hosted`](Self::self_hosted) (as opposed to external
    /// processes named by [`SPQ_REMOTE_WORKERS`]).
    pub fn is_self_hosted(&self) -> bool {
        !self.hosts.is_empty()
    }

    /// Cumulative shard re-dispatches after worker failures, across all
    /// queries served so far.
    pub fn retries(&self) -> u64 {
        self.counters.retries.load(Ordering::Relaxed)
    }

    /// Workers currently out of rotation (state `Excluded` or `Probing`).
    pub fn excluded_workers(&self) -> usize {
        let m = self.membership.lock();
        (0..m.states.len()).filter(|&w| !m.available(w)).count()
    }

    /// Cumulative shard failovers served by flipping the placement
    /// pointer to a warm replica (no provision round-trip).
    pub fn warm_failovers(&self) -> u64 {
        self.counters.warm_failovers.load(Ordering::Relaxed)
    }

    /// Cumulative shard failovers that had to re-ship the provision
    /// payload to a survivor.
    pub fn cold_reprovisions(&self) -> u64 {
        self.counters.cold_reprovisions.load(Ordering::Relaxed)
    }

    /// Cumulative workers re-admitted after probe hysteresis.
    pub fn readmissions(&self) -> u64 {
        self.counters.readmissions.load(Ordering::Relaxed)
    }

    /// Cumulative health probes sent by [`tick`](Self::tick).
    pub fn health_probes(&self) -> u64 {
        self.counters.health_probes.load(Ordering::Relaxed)
    }

    /// Cumulative provision round-trips the rebalancer performed.
    pub fn rebalance_moves(&self) -> u64 {
        self.counters.rebalance_moves.load(Ordering::Relaxed)
    }

    /// Cumulative [`OP_PROVISION`] round-trips attempted (build,
    /// query-path cold failover and rebalancing combined) — the counter
    /// that proves a warm failover shipped no data.
    pub fn provisions_sent(&self) -> u64 {
        self.counters.provisions_sent.load(Ordering::Relaxed)
    }

    /// Total frame bytes exchanged with workers (both directions, headers
    /// included), across provisioning, probes and queries.
    pub fn traffic_bytes(&self) -> u64 {
        let slots: Vec<Arc<WorkerSlot>> = self.workers.lock().clone();
        slots
            .iter()
            .map(|w| {
                let c = w.client.lock();
                c.bytes_sent() + c.bytes_received()
            })
            .sum()
    }

    /// A point-in-time view of the membership layer: worker states,
    /// per-shard primaries and warm-replica holders.
    pub fn membership(&self) -> MembershipView {
        let m = self.membership.lock();
        MembershipView {
            states: m.states.clone(),
            primaries: m.primary.clone(),
            replicas: m.replicas.clone(),
            ticks: m.ticks,
        }
    }

    /// Engine-level cumulative counters in the facade's
    /// [`MetricsSnapshot`] shape, remote membership counters included.
    pub fn metrics(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            queries: self.counters.queries.load(Ordering::Relaxed),
            plan_cache_hits: self.counters.plan_cache_hits.load(Ordering::Relaxed),
            plan_cache_misses: self.counters.plan_cache_misses.load(Ordering::Relaxed),
            keyword_probes: self.counters.keyword_probes.load(Ordering::Relaxed),
            keyword_hits: self.counters.keyword_hits.load(Ordering::Relaxed),
            remote_retries: self.retries(),
            excluded_workers: self.excluded_workers() as u64,
            warm_failovers: self.warm_failovers(),
            cold_reprovisions: self.cold_reprovisions(),
            readmissions: self.readmissions(),
        }
    }

    /// Checks the replica-placement invariant the membership layer
    /// converges to: every shard tracked on at least
    /// `min(replication_factor, available_workers)` available workers,
    /// with an available primary that holds a warm copy. Holds whenever
    /// the placement has settled (a [`tick`](Self::tick) reported
    /// [`quiescent`](TickReport::quiescent)); transiently violated
    /// mid-recovery, which is exactly what the rebalancer repairs.
    pub fn check_replication(&self) -> Result<(), String> {
        let m = self.membership.lock();
        let avail = m.available_workers();
        if avail.is_empty() {
            return Err("no available workers".to_owned());
        }
        let want = self.config.replication_factor.min(avail.len());
        for s in 0..m.primary.len() {
            let holders = m.replicas[s].iter().filter(|&&w| m.available(w)).count();
            if holders < want {
                return Err(format!(
                    "shard {s} warm on {holders} available workers, want >= {want}"
                ));
            }
            let p = m.primary[s];
            if !m.available(p) {
                return Err(format!("shard {s} primary {p} is not available"));
            }
            if !m.replicas[s].contains(&p) {
                return Err(format!("shard {s} primary {p} holds no warm copy"));
            }
        }
        Ok(())
    }

    /// Installs a [`FaultPlan`] on worker `worker` (the fault-injection
    /// seam `tests/remote_faults.rs` drives). The plan arms on the
    /// worker's *next* responses; installing resets its response counter.
    pub fn inject_fault(&self, worker: usize, plan: &FaultPlan) -> Result<(), SpqError> {
        let mut payload = Vec::new();
        plan.encode(&mut payload);
        let slot = self.slot(worker);
        let mut client = slot.client.lock();
        match client.call(OP_SET_FAULT, &payload) {
            Ok((OP_FAULT_OK, _)) => Ok(()),
            Ok((op, _)) => Err(SpqError::remote(format!(
                "worker {worker} answered opcode {op} to a fault installation"
            ))),
            Err(e) => Err(SpqError::remote(format!(
                "cannot install fault on worker {worker}: {e}"
            ))),
        }
    }

    fn slot(&self, w: usize) -> Arc<WorkerSlot> {
        Arc::clone(&self.workers.lock()[w])
    }

    /// One framed call to worker `w`, mapping the reply to the retry
    /// loop's vocabulary: `Fatal` for typed worker-reported errors (never
    /// retried), `Transport` for anything that smells like a dead worker.
    fn call_worker(
        &self,
        w: usize,
        opcode: u16,
        payload: &[u8],
        ok_opcode: u16,
    ) -> Result<Vec<u8>, AttemptError> {
        let slot = self.slot(w);
        let mut client = slot.client.lock();
        match client.call(opcode, payload) {
            Ok((op, resp)) if op == ok_opcode => Ok(resp),
            Ok((OP_ERROR, resp)) => Err(AttemptError::Fatal(SpqError::remote(format!(
                "worker {w}: {}",
                decode_error_payload(&resp)
            )))),
            Ok((op, _)) => Err(AttemptError::Transport(format!(
                "worker {w} answered unexpected opcode {op}"
            ))),
            Err(e) => Err(AttemptError::Transport(format!("worker {w}: {e}"))),
        }
    }

    /// Ships shard `shard`'s provision payload to worker `w` and records
    /// the warm copy. Does **not** move the primary pointer — callers
    /// decide that.
    fn install(&self, shard: usize, w: usize) -> Result<(), AttemptError> {
        self.counters
            .provisions_sent
            .fetch_add(1, Ordering::Relaxed);
        self.call_worker(
            w,
            OP_PROVISION,
            &self.shard_payloads[shard],
            OP_PROVISION_OK,
        )?;
        let mut m = self.membership.lock();
        // The worker may have been excluded by a concurrent query while
        // the provision round-trip was in flight; recording the copy then
        // would leave a replica entry that survives exclusion (entries
        // are purged *at* exclusion) and could go stale across a restart.
        if m.available(w) {
            m.add_replica(shard, w);
        }
        Ok(())
    }

    fn shard_status(&self, w: usize) -> Result<Vec<u32>, AttemptError> {
        let resp = self.call_worker(w, OP_SHARD_STATUS, &[], OP_SHARD_STATUS_OK)?;
        decode_shard_status(&resp)
            .map_err(|e| AttemptError::Transport(format!("worker {w} sent bad shard status: {e}")))
    }

    /// Records a successful call: a suspect worker is vindicated.
    fn note_success(&self, w: usize) {
        let mut m = self.membership.lock();
        if m.states[w] == WorkerState::Suspect {
            m.states[w] = WorkerState::Live;
        }
    }

    /// Records a transport failure. Returns `true` when the worker is now
    /// excluded (second strike, or it already was).
    fn note_failure(&self, w: usize) -> bool {
        let mut m = self.membership.lock();
        match m.states[w] {
            WorkerState::Live => {
                m.states[w] = WorkerState::Suspect;
                false
            }
            WorkerState::Suspect => {
                m.states[w] = WorkerState::Excluded;
                m.probe_streak[w] = 0;
                m.purge_worker(w);
                true
            }
            WorkerState::Excluded | WorkerState::Probing => true,
        }
    }

    /// Excludes a worker outright (a failed failover provision gets no
    /// suspect leniency: the shard needs a host *now*).
    fn note_failure_hard(&self, w: usize) {
        let mut m = self.membership.lock();
        m.states[w] = WorkerState::Excluded;
        m.probe_streak[w] = 0;
        m.purge_worker(w);
    }

    /// The per-shard retry/failover state machine (see the
    /// [module docs](self)). Returns the decoded shard result plus the
    /// recovery work it took.
    fn query_shard(
        &self,
        shard: usize,
        payload: &[u8],
    ) -> Result<(bool, Vec<u8>, JobStats, ShardRecovery), SpqError> {
        let mut recovery = ShardRecovery::default();
        let mut last_failure: Option<(usize, String)> = None;
        loop {
            let primary = {
                let m = self.membership.lock();
                let w = m.primary[shard];
                m.available(w).then_some(w)
            };
            if let Some(w) = primary {
                loop {
                    match self.call_worker(w, OP_SHARD_QUERY, payload, OP_SHARD_RESULT) {
                        Ok(resp) => {
                            self.note_success(w);
                            self.counters
                                .retries
                                .fetch_add(recovery.retries, Ordering::Relaxed);
                            let decoded = decode_shard_result(&resp).map_err(|e| {
                                SpqError::remote(format!("worker {w} sent a bad shard result: {e}"))
                            })?;
                            return Ok((decoded.0, decoded.1, decoded.2, recovery));
                        }
                        Err(AttemptError::Fatal(e)) => {
                            let message = e.to_string();
                            if !message.contains("is not provisioned") {
                                return Err(e);
                            }
                            // Placement healing: a *healthy* worker
                            // reporting it does not host the shard means
                            // the replica entry is stale (the process
                            // restarted empty and was re-admitted before
                            // the loss was observed). That is a placement
                            // error, not a query error — drop the stale
                            // entry and fail over; the cold path may ship
                            // the payload straight back to this worker.
                            self.membership.lock().replicas[shard].retain(|&x| x != w);
                            last_failure = Some((w, message));
                            break;
                        }
                        Err(AttemptError::Transport(message)) => {
                            let excluded = self.note_failure(w);
                            last_failure = Some((w, message));
                            if excluded {
                                break;
                            }
                            // Suspect: one more try on the same worker —
                            // the client reconnects under backoff, which
                            // rides out a restart. `retries` counts
                            // re-asks, so it bumps here (and on each
                            // failover), not per failure.
                            recovery.retries += 1;
                        }
                    }
                }
            }
            // Failover. Prefer a live warm replica (pointer flip, no data
            // shipped); fall back to re-provisioning onto a survivor.
            enum Failover {
                Warm,
                Cold(usize),
            }
            let plan = {
                let mut m = self.membership.lock();
                let from = m.primary[shard];
                let warm = m.replicas[shard]
                    .iter()
                    .copied()
                    .find(|&x| x != from && m.available(x));
                match warm {
                    Some(r) => {
                        m.primary[shard] = r;
                        Some(Failover::Warm)
                    }
                    None => {
                        let n = m.states.len();
                        (0..n)
                            .map(|i| (from + 1 + i) % n)
                            .find(|&x| m.available(x))
                            .map(Failover::Cold)
                    }
                }
            };
            match plan {
                None => {
                    let (worker, message) = last_failure
                        .unwrap_or((0, "every worker is on the exclusion list".to_owned()));
                    self.counters
                        .retries
                        .fetch_add(recovery.retries, Ordering::Relaxed);
                    return Err(SpqError::WorkerLost { worker, message });
                }
                Some(Failover::Warm) => {
                    recovery.retries += 1;
                    recovery.warm += 1;
                    self.counters.warm_failovers.fetch_add(1, Ordering::Relaxed);
                }
                Some(Failover::Cold(next)) => match self.install(shard, next) {
                    Ok(()) => {
                        recovery.retries += 1;
                        recovery.cold += 1;
                        self.counters
                            .cold_reprovisions
                            .fetch_add(1, Ordering::Relaxed);
                        self.membership.lock().primary[shard] = next;
                    }
                    Err(AttemptError::Fatal(e)) => return Err(e),
                    Err(AttemptError::Transport(message)) => {
                        self.note_failure_hard(next);
                        last_failure = Some((next, message));
                    }
                },
            }
        }
    }

    // -----------------------------------------------------------------
    // The tick path: probe, re-admit, rebalance
    // -----------------------------------------------------------------

    /// Advances the membership layer by one deterministic step: probe
    /// excluded workers (every [`MembershipConfig::probe_interval_ticks`]
    /// ticks), re-admit those whose probe streak satisfies the
    /// hysteresis, and migrate up to
    /// [`MembershipConfig::max_moves_per_tick`] shard copies toward the
    /// canonical layout. Nothing in the engine probes or migrates outside
    /// this call, so tests drive every recovery path without wall-clock
    /// scheduling; production callers invoke it from whatever cadence
    /// they like (e.g. once per serving batch, or a timer thread).
    pub fn tick(&self) -> TickReport {
        let mut report = TickReport::default();
        let probe_now = {
            let mut m = self.membership.lock();
            m.ticks += 1;
            self.config.probe_interval_ticks <= 1
                || m.ticks.is_multiple_of(self.config.probe_interval_ticks)
        };
        if probe_now {
            self.probe_excluded(&mut report);
        }
        self.rebalance(&mut report);
        report
    }

    /// Pings every excluded worker once; a streak of
    /// [`MembershipConfig::readmit_threshold`] successes re-admits it.
    fn probe_excluded(&self, report: &mut TickReport) {
        let targets: Vec<usize> = {
            let m = self.membership.lock();
            (0..m.states.len()).filter(|&w| !m.available(w)).collect()
        };
        for w in targets {
            report.probes += 1;
            self.counters.health_probes.fetch_add(1, Ordering::Relaxed);
            let healthy = {
                let slot = self.slot(w);
                let mut client = slot.client.lock();
                client.ping(b"spq-health-probe").is_ok()
            };
            if !healthy {
                let mut m = self.membership.lock();
                m.states[w] = WorkerState::Excluded;
                m.probe_streak[w] = 0;
                continue;
            }
            report.probe_successes += 1;
            let ready = {
                let mut m = self.membership.lock();
                m.states[w] = WorkerState::Probing;
                m.probe_streak[w] += 1;
                m.probe_streak[w] >= self.config.readmit_threshold
            };
            if !ready {
                continue;
            }
            // Hysteresis satisfied: ask the worker what it still hosts —
            // a worker that only lost its network keeps every shard warm;
            // a restarted process reports none and gets re-provisioned by
            // the rebalancer.
            match self.shard_status(w) {
                Ok(hosted) => {
                    let mut m = self.membership.lock();
                    m.states[w] = WorkerState::Live;
                    m.probe_streak[w] = 0;
                    for s in hosted {
                        if (s as usize) < m.replicas.len() {
                            m.add_replica(s as usize, w);
                        }
                    }
                    drop(m);
                    report.readmitted.push(w);
                    self.counters.readmissions.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    // The status call failed right after a healthy ping:
                    // still flapping. Reset the streak — that is the
                    // hysteresis doing its job.
                    let mut m = self.membership.lock();
                    m.states[w] = WorkerState::Excluded;
                    m.probe_streak[w] = 0;
                }
            }
        }
    }

    /// Migrates shard copies toward the canonical layout, bounded by the
    /// per-tick move budget, then restores primary pointers (pointer
    /// flips are free and unbudgeted).
    fn rebalance(&self, report: &mut TickReport) {
        let planned: Vec<(usize, usize)> = {
            let m = self.membership.lock();
            let mut moves = Vec::new();
            'shards: for s in 0..m.primary.len() {
                for t in m.targets(s, self.config.replication_factor) {
                    if !m.replicas[s].contains(&t) {
                        moves.push((s, t));
                        if moves.len() >= self.config.max_moves_per_tick {
                            break 'shards;
                        }
                    }
                }
            }
            moves
        };
        for (s, t) in planned {
            match self.install(s, t) {
                Ok(()) => {
                    report.provisions += 1;
                    self.counters
                        .rebalance_moves
                        .fetch_add(1, Ordering::Relaxed);
                }
                Err(AttemptError::Transport(_)) => self.note_failure_hard(t),
                // A typed refusal of a known-good payload is not a health
                // signal; leave the worker in rotation and move on.
                Err(AttemptError::Fatal(_)) => {}
            }
        }
        let mut m = self.membership.lock();
        for s in 0..m.primary.len() {
            let targets = m.targets(s, self.config.replication_factor);
            let Some(&want) = targets.first() else {
                continue;
            };
            let current = m.primary[s];
            let current_ok = m.available(current) && m.replicas[s].contains(&current);
            if current != want && m.replicas[s].contains(&want) {
                // Canonical primary is warm: restore the layout.
                m.primary[s] = want;
                report.primary_flips += 1;
            } else if !current_ok {
                // Canonical primary not warm yet; point at any warm
                // available holder so queries stay on the fast path.
                let fallback = m.replicas[s].iter().copied().find(|&x| m.available(x));
                if let Some(r) = fallback {
                    if r != current {
                        m.primary[s] = r;
                        report.primary_flips += 1;
                    }
                }
            }
        }
    }

    /// Registers a new worker address into the rotation. The worker is
    /// pinged first (a join must start from a reachable process), enters
    /// as `Live` with no shards, and the rebalancer migrates load onto it
    /// over the following [`tick`](Self::tick)s — bounded by the move
    /// budget, so a join never stalls serving. Returns the worker index.
    pub fn admit(&self, addr: &str) -> Result<usize, SpqError> {
        let parsed = parse_worker_addrs(addr)?;
        let [addr] = parsed.as_slice() else {
            return Err(SpqError::invalid_config(format!(
                "admit takes exactly one worker address, got {addr:?}"
            )));
        };
        if self.worker_addrs().iter().any(|a| a == addr) {
            return Err(SpqError::invalid_config(format!(
                "worker {addr} is already registered"
            )));
        }
        let slot = Arc::new(WorkerSlot::new(addr.clone(), self.client_config));
        {
            let mut client = slot.client.lock();
            client
                .ping(b"spq-admit")
                .map_err(|e| SpqError::remote(format!("cannot admit worker {addr}: {e}")))?;
        }
        let index = {
            let mut workers = self.workers.lock();
            workers.push(slot);
            workers.len() - 1
        };
        let mut m = self.membership.lock();
        m.states.push(WorkerState::Live);
        m.probe_streak.push(0);
        Ok(index)
    }

    fn execute_inner(
        &self,
        request: &QueryRequest,
        scatter_override: Option<usize>,
    ) -> Result<QueryResponse, SpqError> {
        let started = Instant::now();
        let query = &request.query;
        let options = &request.options;
        let algorithm = options.algorithm.unwrap_or(self.exec.algorithm_choice());
        self.counters.queries.fetch_add(1, Ordering::Relaxed);

        // Probe the manager-side term index (features are broadcast, so
        // one set speaks for every shard): a query whose keywords no
        // feature carries cannot score any object on any worker.
        let probed = query.keywords.len();
        let matched = query
            .keywords
            .iter()
            .filter(|t| self.term_index.contains(&t.0))
            .count();
        self.counters
            .keyword_probes
            .fetch_add(probed as u64, Ordering::Relaxed);
        self.counters
            .keyword_hits
            .fetch_add(matched as u64, Ordering::Relaxed);
        let relevant: Vec<usize> = if matched == 0 {
            Vec::new()
        } else {
            (0..self.shard_payloads.len())
                .filter(|&s| self.shard_nonempty[s])
                .collect()
        };
        if relevant.is_empty() {
            return Ok(QueryResponse {
                results: Vec::new(),
                stats: QueryStats {
                    algorithm,
                    plan_cache_hit: false,
                    shards_touched: 0,
                    shuffle_records: 0,
                    shuffle_bytes: 0,
                    wall_micros: started.elapsed().as_micros() as u64,
                    keyword_terms_probed: probed,
                    keyword_terms_matched: matched,
                    retries: 0,
                    warm_failovers: 0,
                    cold_reprovisions: 0,
                },
                trace: options.trace.then(Vec::new),
            });
        }

        // Scatter: one framed call per relevant shard; the request's
        // worker budget bounds the scatter width (results are
        // width-invariant), exactly as in the in-process engine.
        let scatter = scatter_override
            .or(options.workers)
            .unwrap_or(self.scatter_workers)
            .clamp(1, relevant.len());
        let outcomes = run_tasks(scatter, relevant.len(), |i| {
            let shard = relevant[i];
            let payload = encode_shard_query(shard as u32, query, options);
            self.query_shard(shard, &payload)
        })
        .map_err(|p| SpqError::Worker {
            message: format!("shard {}: {}", relevant[p.task_index], p.message),
        })?;

        // Gather: the wire bytes come straight off the socket; resolve
        // them against the global store and merge, exactly as in-process.
        let mut flat = Vec::new();
        let mut plan_cache_hit = true;
        let mut shuffle_records = 0u64;
        let mut shuffle_bytes = 0u64;
        let mut retries = 0u64;
        let mut warm_failovers = 0u64;
        let mut cold_reprovisions = 0u64;
        let mut trace = options.trace.then(Vec::new);
        for outcome in outcomes {
            let (hit, records, stats, recovery) = outcome?;
            plan_cache_hit &= hit;
            if hit {
                self.counters
                    .plan_cache_hits
                    .fetch_add(1, Ordering::Relaxed);
            } else {
                self.counters
                    .plan_cache_misses
                    .fetch_add(1, Ordering::Relaxed);
            }
            shuffle_records += (records.len() / wire::RECORD_BYTES) as u64;
            shuffle_bytes += records.len() as u64;
            retries += recovery.retries;
            warm_failovers += recovery.warm;
            cold_reprovisions += recovery.cold;
            flat.extend(wire::decode_results(&records, self.dataset.data()));
            if let Some(t) = &mut trace {
                t.push(stats);
            }
        }
        let results = merge_top_k(flat, query.k);

        Ok(QueryResponse {
            results,
            stats: QueryStats {
                algorithm,
                plan_cache_hit,
                shards_touched: relevant.len(),
                shuffle_records,
                shuffle_bytes,
                wall_micros: started.elapsed().as_micros() as u64,
                keyword_terms_probed: probed,
                keyword_terms_matched: matched,
                retries,
                warm_failovers,
                cold_reprovisions,
            },
            trace,
        })
    }
}

impl QueryExecutor for RemoteEngine {
    /// The remote lifecycle: probe the manager-side term index, scatter
    /// framed shard queries over TCP (width 1 for
    /// [`ExecutionMode::Sequential`]), gather wire records with
    /// failover/retry, merge. Workers prune per shard, so
    /// [`ExecutionMode::Coalesced`] drives like
    /// [`ExecutionMode::Parallel`].
    fn run_validated(
        &self,
        request: &QueryRequest,
        mode: ExecutionMode,
    ) -> Result<QueryResponse, SpqError> {
        let scatter_override = match mode {
            ExecutionMode::Sequential => Some(1),
            ExecutionMode::Parallel | ExecutionMode::Coalesced => None,
        };
        self.execute_inner(request, scatter_override)
    }

    fn metrics(&self) -> MetricsSnapshot {
        RemoteEngine::metrics(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{DataObject, FeatureObject};
    use spq_spatial::{Point, Rect};

    fn feature(id: u64, x: f64, y: f64, kw: &[u32]) -> FeatureObject {
        FeatureObject::new(
            id,
            Point::new(x, y),
            KeywordSet::from_ids(kw.iter().copied()),
        )
    }

    fn paper_dataset() -> SharedDataset {
        SharedDataset::new(
            vec![
                DataObject::new(1, Point::new(4.6, 4.8)),
                DataObject::new(2, Point::new(7.5, 1.7)),
                DataObject::new(3, Point::new(8.9, 5.2)),
                DataObject::new(4, Point::new(1.8, 1.8)),
                DataObject::new(5, Point::new(1.9, 9.0)),
            ],
            vec![
                feature(1, 2.8, 1.2, &[0, 1]),
                feature(2, 5.0, 3.8, &[2, 3]),
                feature(3, 8.7, 1.9, &[4, 5]),
                feature(4, 3.8, 5.5, &[0]),
                feature(5, 5.2, 5.1, &[6, 7]),
                feature(6, 7.4, 5.4, &[8, 9]),
                feature(7, 3.0, 8.1, &[0, 10]),
                feature(8, 9.5, 7.0, &[11]),
            ],
        )
    }

    fn executor() -> SpqExecutor {
        SpqExecutor::new(Rect::from_coords(0.0, 0.0, 10.0, 10.0)).grid_size(4)
    }

    fn request(k: usize, r: f64, kw: &[u32]) -> QueryRequest {
        QueryRequest::new(SpqQuery::new(
            k,
            r,
            KeywordSet::from_ids(kw.iter().copied()),
        ))
    }

    #[test]
    fn executor_config_round_trips() {
        for exec in [
            executor(),
            executor()
                .algorithm(Algorithm::PSpq)
                .keyword_pruning(false)
                .cluster(ClusterConfig::with_workers(3)),
            SpqExecutor::new(Rect::from_coords(-1.0, -2.0, 3.0, 4.0))
                .auto_grid(32)
                .algorithm(Algorithm::ESpqLen)
                .load_balancing(LoadBalancing::AdaptiveQuadtree { sample_size: 100 }),
        ] {
            let mut bytes = Vec::new();
            encode_executor(&exec, &mut bytes);
            let decoded = decode_executor(&mut ByteReader::new(&bytes)).unwrap();
            assert_eq!(decoded.bounds(), exec.bounds());
            assert_eq!(decoded.algorithm_choice(), exec.algorithm_choice());
            assert_eq!(decoded.grid_sizing(), exec.grid_sizing());
            assert_eq!(
                decoded.load_balancing_choice(),
                exec.load_balancing_choice()
            );
            assert_eq!(
                decoded.keyword_pruning_enabled(),
                exec.keyword_pruning_enabled()
            );
            assert_eq!(decoded.cluster_config(), exec.cluster_config());
        }
    }

    #[test]
    fn worker_addr_parsing() {
        assert_eq!(
            parse_worker_addrs("127.0.0.1:7001, localhost:7002").unwrap(),
            vec!["127.0.0.1:7001".to_owned(), "localhost:7002".to_owned()]
        );
        for bad in [
            "",
            " , ",
            "127.0.0.1",
            ":7001",
            "127.0.0.1:0",
            "127.0.0.1:x",
            "127.0.0.1:99999",
            "127.0.0.1:-1",
        ] {
            let err = parse_worker_addrs(bad).unwrap_err();
            assert!(matches!(err, SpqError::InvalidConfig { .. }), "{bad:?}");
            assert!(err.to_string().contains(SPQ_REMOTE_WORKERS), "{bad:?}");
        }
    }

    #[test]
    fn shard_status_round_trips() {
        for shards in [vec![], vec![0u32], vec![0, 3, 7, 42]] {
            let bytes = encode_shard_status(&shards);
            assert_eq!(decode_shard_status(&bytes).unwrap(), shards);
        }
        let good = encode_shard_status(&[1, 2, 3]);
        for cut in 0..good.len() {
            assert!(decode_shard_status(&good[..cut]).is_err(), "cut={cut}");
        }
        let mut long = good.clone();
        long.push(0);
        assert!(decode_shard_status(&long).is_err());
    }

    #[test]
    fn matches_in_process_engines_for_every_worker_count() {
        let engine = QueryEngine::new(executor(), paper_dataset());
        for workers in [1, 2, 3, 5] {
            let remote = RemoteEngine::self_hosted(executor(), paper_dataset(), workers).unwrap();
            for req in [
                request(1, 1.5, &[0]),
                request(3, 1.5, &[0]),
                request(5, 2.5, &[0, 4, 11]),
            ] {
                let expect = engine.execute(&req).unwrap();
                let got = remote.execute(&req).unwrap();
                assert_eq!(got.results, expect.results, "workers={workers}");
                assert_eq!(got.stats.retries, 0);
            }
            assert_eq!(remote.retries(), 0);
            assert!(remote.traffic_bytes() > 0);
            // Build leaves the canonical layout in place: every shard on
            // min(replication_factor, workers) workers, primary = shard
            // index, nothing for a tick to do.
            remote.check_replication().unwrap();
            assert!(remote.tick().quiescent());
        }
    }

    #[test]
    fn build_installs_warm_replicas() {
        let remote = RemoteEngine::self_hosted(executor(), paper_dataset(), 3).unwrap();
        let view = remote.membership();
        assert_eq!(view.states, vec![WorkerState::Live; 3]);
        assert_eq!(view.primaries, vec![0, 1, 2]);
        assert_eq!(view.replicas, vec![vec![0, 1], vec![1, 2], vec![0, 2]]);
        // 3 shards × replication factor 2.
        assert_eq!(remote.provisions_sent(), 6);
    }

    #[test]
    fn unmatched_keywords_touch_no_worker() {
        let remote = RemoteEngine::self_hosted(executor(), paper_dataset(), 2).unwrap();
        let before = remote.traffic_bytes();
        let response = remote.execute(&request(3, 1.5, &[77])).unwrap();
        assert!(response.results.is_empty());
        assert_eq!(response.stats.shards_touched, 0);
        assert_eq!(response.stats.keyword_terms_matched, 0);
        // The short-circuit never crossed the wire.
        assert_eq!(remote.traffic_bytes(), before);
    }

    #[test]
    fn killed_worker_fails_over_warm_without_reprovision() {
        let engine = QueryEngine::new(executor(), paper_dataset());
        let remote = RemoteEngine::self_hosted(executor(), paper_dataset(), 3).unwrap();
        let provisions_after_build = remote.provisions_sent();
        let req = request(4, 1.5, &[0]);
        // Kill worker 0 on its next response; the first shard query it
        // receives takes it down mid-batch.
        remote
            .inject_fault(
                0,
                &FaultPlan {
                    kill_after_responses: Some(0),
                    ..FaultPlan::none()
                },
            )
            .unwrap();
        let got = remote.execute(&req).unwrap();
        assert_eq!(got.results, engine.execute(&req).unwrap().results);
        assert!(got.stats.retries >= 1, "stats: {:?}", got.stats);
        // Worker 1 held shard 0 warm: the failover was a pointer flip,
        // not a provision round-trip.
        assert!(got.stats.warm_failovers >= 1, "stats: {:?}", got.stats);
        assert_eq!(got.stats.cold_reprovisions, 0);
        assert_eq!(remote.provisions_sent(), provisions_after_build);
        assert!(remote.retries() >= 1);
        assert_eq!(remote.excluded_workers(), 1);
        assert_eq!(remote.membership().primaries[0], 1);
        // Later queries keep working on the survivors, without new
        // retries for the already-moved shard.
        let again = remote.execute(&req).unwrap();
        assert_eq!(again.results, engine.execute(&req).unwrap().results);
        assert_eq!(again.stats.retries, 0);
    }

    #[test]
    fn cold_reprovision_when_no_replica_survives() {
        let engine = QueryEngine::new(executor(), paper_dataset());
        let remote = RemoteEngine::self_hosted_with(
            executor(),
            paper_dataset(),
            2,
            MembershipConfig {
                replication_factor: 1,
                ..MembershipConfig::default()
            },
        )
        .unwrap();
        // Replication factor 1: each shard lives on exactly one worker,
        // so losing it forces the payload back over the wire.
        let provisions_after_build = remote.provisions_sent();
        assert_eq!(provisions_after_build, 2);
        remote
            .inject_fault(
                0,
                &FaultPlan {
                    kill_after_responses: Some(0),
                    ..FaultPlan::none()
                },
            )
            .unwrap();
        let req = request(4, 1.5, &[0]);
        let got = remote.execute(&req).unwrap();
        assert_eq!(got.results, engine.execute(&req).unwrap().results);
        assert!(got.stats.cold_reprovisions >= 1, "stats: {:?}", got.stats);
        assert_eq!(got.stats.warm_failovers, 0);
        assert!(remote.provisions_sent() > provisions_after_build);
    }

    #[test]
    fn losing_every_worker_is_worker_lost() {
        let remote = RemoteEngine::self_hosted(executor(), paper_dataset(), 2).unwrap();
        for w in 0..2 {
            remote
                .inject_fault(
                    w,
                    &FaultPlan {
                        kill_after_responses: Some(0),
                        ..FaultPlan::none()
                    },
                )
                .unwrap();
        }
        let err = remote.execute(&request(3, 1.5, &[0])).unwrap_err();
        assert!(matches!(err, SpqError::WorkerLost { .. }), "{err:?}");
        assert_eq!(remote.excluded_workers(), 2);
    }

    #[test]
    fn build_rejects_bad_configs() {
        assert!(matches!(
            RemoteEngine::self_hosted(executor(), paper_dataset(), 0),
            Err(SpqError::InvalidConfig { .. })
        ));
        assert!(matches!(
            RemoteEngine::self_hosted_with(
                executor(),
                paper_dataset(),
                2,
                MembershipConfig {
                    replication_factor: 0,
                    ..MembershipConfig::default()
                },
            ),
            Err(SpqError::InvalidConfig { .. })
        ));
        let dup = SharedDataset::new(
            vec![
                DataObject::new(7, Point::new(1.0, 1.0)),
                DataObject::new(7, Point::new(2.0, 2.0)),
            ],
            vec![],
        );
        let err = RemoteEngine::self_hosted(executor(), dup, 2).unwrap_err();
        assert!(matches!(err, SpqError::InvalidConfig { .. }), "{err}");
        assert!(!err.is_retryable(), "bad datasets must not be retried");
        // The offending id is part of the message contract.
        assert!(err.to_string().contains("duplicate data object id 7"));
    }

    #[test]
    fn shard_query_decode_rejects_garbage() {
        let good = encode_shard_query(0, &request(3, 1.5, &[0, 2]).query, &QueryOptions::default());
        assert!(decode_shard_query(&good).is_ok());
        // Truncations of a valid payload never panic, they error.
        for cut in 0..good.len() {
            assert!(decode_shard_query(&good[..cut]).is_err(), "cut={cut}");
        }
        // Trailing garbage is rejected too.
        let mut long = good.clone();
        long.push(0);
        assert!(decode_shard_query(&long).is_err());
    }
}
