//! Remote serving: the sharded layout placed on worker **processes**
//! behind TCP, with fault recovery.
//!
//! [`crate::sharded`] proves the scatter/gather shape inside one process;
//! this module moves each shard behind a socket. A [`RemoteEngine`] slices
//! the data objects exactly like [`crate::sharded::ShardedEngine`] — same
//! contiguous chunks, features broadcast to every shard — but instead of
//! building shard engines in-process it **provisions** each shard onto a
//! worker over the [`spq_mapreduce::remote`] frame protocol. Workers are
//! either spawned in-process (the default — real sockets, no extra
//! processes) or external `spq-worker` binaries named by
//! [`SPQ_REMOTE_WORKERS`].
//!
//! A query then scatters [`OP_SHARD_QUERY`] frames to the workers holding
//! relevant shards and gathers [`OP_SHARD_RESULT`] frames carrying the
//! same 12-byte [`wire`] records the in-process gather uses, so the merged
//! top-k is **byte-identical** to every other backend
//! (`tests/backend_equivalence.rs` proptests it across worker counts).
//!
//! ## Fault handling
//!
//! Workers die. The manager's per-shard retry state machine is:
//!
//! 1. ask the worker the shard is placed on; on a transport failure
//!    (connect refused, deadline missed, torn or corrupt frame) retry the
//!    **same worker once** — the client reconnects under exponential
//!    backoff, which rides out a worker restart;
//! 2. if the worker fails again it goes on the engine-wide **exclusion
//!    list**; the shard's provision payload (kept from build time) is
//!    re-provisioned onto the next surviving worker and the query is
//!    re-asked there;
//! 3. when every worker is excluded, the query fails with
//!    [`SpqError::WorkerLost`].
//!
//! Every re-ask increments [`QueryStats::retries`]; recovery never changes
//! result bytes, because any worker computes the same answer for the same
//! shard (`tests/remote_faults.rs` proptests this under injected
//! [`FaultPlan`]s). A typed error *reported by* a worker ([`OP_ERROR`],
//! e.g. a panic inside the algorithm) is **not** retried: it is
//! deterministic and would fail identically everywhere, so it surfaces
//! directly as [`SpqError::Remote`], matching the local backends'
//! error-path behaviour.

use crate::engine::QueryEngine;
use crate::executor::{GridSizing, LoadBalancing, SpqError, SpqExecutor};
use crate::merge::merge_top_k;
use crate::model::{DataObject, FeatureObject, ObjectId};
use crate::query::SpqQuery;
use crate::service::{QueryOptions, QueryRequest, QueryResponse, QueryStats};
use crate::sharded::wire;
use crate::store::SharedDataset;
use crate::Algorithm;
use parking_lot::Mutex;
use spq_mapreduce::pool::run_tasks;
use spq_mapreduce::remote::codec::{
    decode_job_stats, encode_job_stats, put_bytes, put_f64, put_u32, put_u64, put_u8,
};
use spq_mapreduce::remote::{
    decode_error_payload, ByteReader, ClientConfig, CodecError, FaultPlan, FrameHandler,
    WorkerClient, WorkerServer, OP_ERROR, OP_FAULT_OK, OP_PROVISION, OP_PROVISION_OK, OP_SET_FAULT,
    OP_SHARD_QUERY, OP_SHARD_RESULT,
};
use spq_mapreduce::{ClusterConfig, JobStats};
use spq_text::{KeywordSet, SetSimilarity};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Environment variable naming external worker processes for
/// [`crate::service::Backend::Remote`]: a comma-separated `host:port`
/// list, e.g. `SPQ_REMOTE_WORKERS=127.0.0.1:7001,127.0.0.1:7002`.
///
/// When set, `remote:N` requires **exactly `N` addresses** — a worker
/// count that disagrees with the deployment list is a configuration error,
/// not something to silently round. When unset, `remote:N` spawns `N`
/// in-process workers on ephemeral localhost ports. This is independent of
/// `SPQ_WORKERS` ([`spq_mapreduce::cluster::WORKERS_ENV`]), which sizes
/// the *thread* pool inside each process: `SPQ_REMOTE_WORKERS` places
/// shards across processes, `SPQ_WORKERS` sizes the scatter width and
/// per-job parallelism within one.
pub const SPQ_REMOTE_WORKERS: &str = "SPQ_REMOTE_WORKERS";

/// Parses a [`SPQ_REMOTE_WORKERS`]-style list into validated
/// `host:port` addresses.
///
/// # Errors
///
/// [`SpqError::InvalidConfig`] on an empty list, an empty entry, a
/// missing `:port`, or a port that is not a decimal `u16` ≥ 1.
pub fn parse_worker_addrs(list: &str) -> Result<Vec<String>, SpqError> {
    let mut addrs = Vec::new();
    for raw in list.split(',') {
        let entry = raw.trim();
        if entry.is_empty() {
            return Err(SpqError::invalid_config(format!(
                "{SPQ_REMOTE_WORKERS}: empty worker address in {list:?}"
            )));
        }
        let Some((host, port)) = entry.rsplit_once(':') else {
            return Err(SpqError::invalid_config(format!(
                "{SPQ_REMOTE_WORKERS}: worker address {entry:?} has no :port"
            )));
        };
        if host.is_empty() {
            return Err(SpqError::invalid_config(format!(
                "{SPQ_REMOTE_WORKERS}: worker address {entry:?} has no host"
            )));
        }
        match port.parse::<u16>() {
            Ok(p) if p > 0 => addrs.push(entry.to_owned()),
            _ => {
                return Err(SpqError::invalid_config(format!(
                    "{SPQ_REMOTE_WORKERS}: bad port {port:?} in {entry:?} (want 1..=65535)"
                )))
            }
        }
    }
    Ok(addrs)
}

// ---------------------------------------------------------------------
// Payload codecs. All little-endian, layered on the mapreduce byte codec;
// round-tripped by proptests in `tests/remote_wire.rs`.
// ---------------------------------------------------------------------

fn algorithm_to_u8(a: Algorithm) -> u8 {
    match a {
        Algorithm::PSpq => 0,
        Algorithm::ESpqLen => 1,
        Algorithm::ESpqSco => 2,
    }
}

fn algorithm_from_u8(v: u8) -> Result<Algorithm, CodecError> {
    match v {
        0 => Ok(Algorithm::PSpq),
        1 => Ok(Algorithm::ESpqLen),
        2 => Ok(Algorithm::ESpqSco),
        other => Err(CodecError::invalid(format!(
            "unknown algorithm tag {other}"
        ))),
    }
}

fn similarity_to_u8(s: SetSimilarity) -> u8 {
    match s {
        SetSimilarity::Jaccard => 0,
        SetSimilarity::Dice => 1,
        SetSimilarity::Overlap => 2,
    }
}

fn similarity_from_u8(v: u8) -> Result<SetSimilarity, CodecError> {
    match v {
        0 => Ok(SetSimilarity::Jaccard),
        1 => Ok(SetSimilarity::Dice),
        2 => Ok(SetSimilarity::Overlap),
        other => Err(CodecError::invalid(format!(
            "unknown similarity tag {other}"
        ))),
    }
}

fn encode_executor(exec: &SpqExecutor, out: &mut Vec<u8>) {
    let bounds = exec.bounds();
    put_f64(out, bounds.min().x);
    put_f64(out, bounds.min().y);
    put_f64(out, bounds.max().x);
    put_f64(out, bounds.max().y);
    put_u8(out, algorithm_to_u8(exec.algorithm_choice()));
    match exec.grid_sizing() {
        GridSizing::Fixed(n) => {
            put_u8(out, 0);
            put_u32(out, n);
        }
        GridSizing::Auto { max_cells_per_axis } => {
            put_u8(out, 1);
            put_u32(out, max_cells_per_axis);
        }
    }
    match exec.load_balancing_choice() {
        LoadBalancing::UniformGrid => {
            put_u8(out, 0);
            put_u64(out, 0);
        }
        LoadBalancing::AdaptiveQuadtree { sample_size } => {
            put_u8(out, 1);
            put_u64(out, sample_size as u64);
        }
    }
    put_u8(out, exec.keyword_pruning_enabled() as u8);
    put_u64(out, exec.cluster_config().workers as u64);
}

fn decode_executor(r: &mut ByteReader<'_>) -> Result<SpqExecutor, CodecError> {
    let (min_x, min_y, max_x, max_y) = (r.f64()?, r.f64()?, r.f64()?, r.f64()?);
    if !(min_x.is_finite() && min_y.is_finite() && max_x.is_finite() && max_y.is_finite()) {
        return Err(CodecError::invalid("non-finite data-space bounds"));
    }
    let algorithm = algorithm_from_u8(r.u8()?)?;
    let sizing_tag = r.u8()?;
    let sizing_value = r.u32()?;
    let balancing_tag = r.u8()?;
    let balancing_value = r.u64()?;
    let keyword_pruning = r.u8()? != 0;
    let workers = r.u64()? as usize;
    let mut exec = SpqExecutor::new(spq_spatial::Rect::from_coords(min_x, min_y, max_x, max_y))
        .algorithm(algorithm)
        .keyword_pruning(keyword_pruning)
        .cluster(ClusterConfig::with_workers(workers.max(1)));
    exec = match sizing_tag {
        0 => exec.grid_size(sizing_value),
        1 => exec.auto_grid(sizing_value),
        other => {
            return Err(CodecError::invalid(format!(
                "unknown grid-sizing tag {other}"
            )))
        }
    };
    exec = match balancing_tag {
        0 => exec.load_balancing(LoadBalancing::UniformGrid),
        1 => exec.load_balancing(LoadBalancing::AdaptiveQuadtree {
            sample_size: balancing_value as usize,
        }),
        other => {
            return Err(CodecError::invalid(format!(
                "unknown load-balancing tag {other}"
            )))
        }
    };
    Ok(exec)
}

/// Encodes an [`OP_PROVISION`] payload: the shard id, the executor
/// configuration, the shard's data slice (each object with its **global**
/// store index, so gather records resolve without any per-shard coordinate
/// space) and the broadcast feature set.
pub(crate) fn encode_provision(
    shard_id: u32,
    exec: &SpqExecutor,
    first_global_index: u32,
    data: &[DataObject],
    features: &[FeatureObject],
) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, shard_id);
    encode_executor(exec, &mut out);
    put_u32(&mut out, data.len() as u32);
    for (i, object) in data.iter().enumerate() {
        put_u32(&mut out, first_global_index + i as u32);
        put_u64(&mut out, object.id);
        put_f64(&mut out, object.location.x);
        put_f64(&mut out, object.location.y);
    }
    put_u32(&mut out, features.len() as u32);
    for feature in features {
        put_u64(&mut out, feature.id);
        put_f64(&mut out, feature.location.x);
        put_f64(&mut out, feature.location.y);
        put_u32(&mut out, feature.keywords.len() as u32);
        for term in feature.keywords.iter() {
            put_u32(&mut out, term.0);
        }
    }
    out
}

pub(crate) struct Provision {
    pub shard_id: u32,
    pub exec: SpqExecutor,
    pub id_to_index: HashMap<ObjectId, u32>,
    pub data: Vec<DataObject>,
    pub features: Vec<FeatureObject>,
}

pub(crate) fn decode_provision(payload: &[u8]) -> Result<Provision, CodecError> {
    let mut r = ByteReader::new(payload);
    let shard_id = r.u32()?;
    let exec = decode_executor(&mut r)?;
    let num_data = r.u32()? as usize;
    let mut id_to_index = HashMap::with_capacity(num_data);
    let mut data = Vec::with_capacity(num_data.min(1 << 16));
    for _ in 0..num_data {
        let global_index = r.u32()?;
        let id = r.u64()?;
        let (x, y) = (r.f64()?, r.f64()?);
        if id_to_index.insert(id, global_index).is_some() {
            return Err(CodecError::invalid(format!(
                "duplicate data object id {id} in provision"
            )));
        }
        data.push(DataObject::new(id, spq_spatial::Point::new(x, y)));
    }
    let num_features = r.u32()? as usize;
    let mut features = Vec::with_capacity(num_features.min(1 << 16));
    for _ in 0..num_features {
        let id = r.u64()?;
        let (x, y) = (r.f64()?, r.f64()?);
        let num_terms = r.u32()? as usize;
        let mut terms = Vec::with_capacity(num_terms.min(1 << 12));
        for _ in 0..num_terms {
            terms.push(r.u32()?);
        }
        features.push(FeatureObject::new(
            id,
            spq_spatial::Point::new(x, y),
            KeywordSet::from_ids(terms),
        ));
    }
    if !r.is_empty() {
        return Err(CodecError::invalid("trailing bytes after provision"));
    }
    Ok(Provision {
        shard_id,
        exec,
        id_to_index,
        data,
        features,
    })
}

/// Encodes an [`OP_SHARD_QUERY`] payload: the shard id, the query and the
/// result-relevant per-request options. The worker budget is **not**
/// shipped — shard jobs always run sequentially, exactly as the
/// in-process scatter does (the scatter width is the parallelism).
pub(crate) fn encode_shard_query(
    shard_id: u32,
    query: &SpqQuery,
    options: &QueryOptions,
) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, shard_id);
    put_u64(&mut out, query.k as u64);
    put_f64(&mut out, query.radius);
    put_u8(&mut out, similarity_to_u8(query.similarity));
    put_u32(&mut out, query.keywords.len() as u32);
    for term in query.keywords.iter() {
        put_u32(&mut out, term.0);
    }
    match options.algorithm {
        None => put_u8(&mut out, u8::MAX),
        Some(a) => put_u8(&mut out, algorithm_to_u8(a)),
    }
    match options.keyword_pruning {
        None => put_u8(&mut out, 2),
        Some(enabled) => put_u8(&mut out, enabled as u8),
    }
    out
}

pub(crate) fn decode_shard_query(
    payload: &[u8],
) -> Result<(u32, SpqQuery, QueryOptions), CodecError> {
    let mut r = ByteReader::new(payload);
    let shard_id = r.u32()?;
    let k = r.u64()? as usize;
    let radius = r.f64()?;
    if k == 0 || !radius.is_finite() || radius < 0.0 {
        return Err(CodecError::invalid(format!(
            "degenerate shard query (k={k}, r={radius})"
        )));
    }
    let similarity = similarity_from_u8(r.u8()?)?;
    let num_terms = r.u32()? as usize;
    if num_terms == 0 {
        return Err(CodecError::invalid("shard query with no keywords"));
    }
    let mut terms = Vec::with_capacity(num_terms.min(1 << 12));
    for _ in 0..num_terms {
        terms.push(r.u32()?);
    }
    let algorithm = match r.u8()? {
        u8::MAX => None,
        tag => Some(algorithm_from_u8(tag)?),
    };
    let keyword_pruning = match r.u8()? {
        0 => Some(false),
        1 => Some(true),
        2 => None,
        other => {
            return Err(CodecError::invalid(format!(
                "unknown keyword-pruning tag {other}"
            )))
        }
    };
    if !r.is_empty() {
        return Err(CodecError::invalid("trailing bytes after shard query"));
    }
    let query = SpqQuery::with_similarity(k, radius, KeywordSet::from_ids(terms), similarity);
    let options = QueryOptions {
        algorithm,
        workers: None,
        keyword_pruning,
        trace: false,
    };
    Ok((shard_id, query, options))
}

/// Encodes an [`OP_SHARD_RESULT`] payload: the plan-cache outcome, the
/// gather records ([`wire::RECORD_BYTES`]-byte each, global indexes) and
/// the shard job's [`JobStats`].
pub(crate) fn encode_shard_result(plan_hit: bool, records: &[u8], stats: &JobStats) -> Vec<u8> {
    let mut out = Vec::with_capacity(records.len() + 64);
    put_u8(&mut out, plan_hit as u8);
    put_bytes(&mut out, records);
    encode_job_stats(stats, &mut out);
    out
}

pub(crate) fn decode_shard_result(payload: &[u8]) -> Result<(bool, Vec<u8>, JobStats), CodecError> {
    let mut r = ByteReader::new(payload);
    let plan_hit = r.u8()? != 0;
    let records = r.bytes()?.to_vec();
    if !records.len().is_multiple_of(wire::RECORD_BYTES) {
        return Err(CodecError::invalid(format!(
            "gather buffer of {} bytes is not a whole number of records",
            records.len()
        )));
    }
    let stats = decode_job_stats(&mut r)?;
    if !r.is_empty() {
        return Err(CodecError::invalid("trailing bytes after shard result"));
    }
    Ok((plan_hit, records, stats))
}

// ---------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------

struct HostedShard {
    engine: QueryEngine,
    id_to_index: HashMap<ObjectId, u32>,
}

/// The worker-side shard host: a [`FrameHandler`] answering
/// [`OP_PROVISION`] (build a shard engine from a shipped dataset slice)
/// and [`OP_SHARD_QUERY`] (evaluate a query against a hosted shard and
/// reply with gather records). This is what the `spq-worker` binary and
/// the in-process workers of [`RemoteEngine::self_hosted`] serve.
#[derive(Default)]
pub struct ShardHost {
    shards: Mutex<HashMap<u32, HostedShard>>,
}

impl ShardHost {
    /// Creates an empty host; shards arrive via [`OP_PROVISION`] frames.
    pub fn new() -> Self {
        Self::default()
    }

    fn provision(&self, payload: &[u8]) -> Result<Vec<u8>, String> {
        let p = decode_provision(payload).map_err(|e| format!("bad provision payload: {e}"))?;
        let dataset = SharedDataset::new(p.data, p.features);
        let engine = QueryEngine::new(p.exec, dataset);
        self.shards.lock().insert(
            p.shard_id,
            HostedShard {
                engine,
                id_to_index: p.id_to_index,
            },
        );
        Ok(Vec::new())
    }

    fn query(&self, payload: &[u8]) -> Result<Vec<u8>, String> {
        let (shard_id, query, options) =
            decode_shard_query(payload).map_err(|e| format!("bad shard query payload: {e}"))?;
        let shards = self.shards.lock();
        let shard = shards
            .get(&shard_id)
            .ok_or_else(|| format!("shard {shard_id} is not provisioned on this worker"))?;
        let (result, plan_hit) = shard
            .engine
            .run_opts_pruned(&query, &options, true)
            .map_err(|e| format!("shard {shard_id} query failed: {e}"))?;
        let records = wire::encode_results(&result.top_k, &shard.id_to_index);
        Ok(encode_shard_result(plan_hit, &records, &result.stats))
    }

    /// Number of shards currently hosted (for tests and diagnostics).
    pub fn hosted_shards(&self) -> usize {
        self.shards.lock().len()
    }
}

impl std::fmt::Debug for ShardHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardHost")
            .field("hosted_shards", &self.hosted_shards())
            .finish()
    }
}

impl FrameHandler for ShardHost {
    fn handle(&self, opcode: u16, payload: &[u8]) -> Result<Option<(u16, Vec<u8>)>, String> {
        match opcode {
            OP_PROVISION => Ok(Some((OP_PROVISION_OK, self.provision(payload)?))),
            OP_SHARD_QUERY => Ok(Some((OP_SHARD_RESULT, self.query(payload)?))),
            _ => Ok(None),
        }
    }
}

// ---------------------------------------------------------------------
// Manager side
// ---------------------------------------------------------------------

struct WorkerSlot {
    client: Mutex<WorkerClient>,
    excluded: AtomicBool,
}

impl WorkerSlot {
    fn new(addr: String, config: ClientConfig) -> Self {
        Self {
            client: Mutex::new(WorkerClient::new(addr, config)),
            excluded: AtomicBool::new(false),
        }
    }
}

/// How one attempt at a worker failed, from the retry loop's viewpoint.
enum AttemptError {
    /// The transport failed — the worker may be dead; retrying elsewhere
    /// can recover.
    Transport(String),
    /// The worker reported a typed, deterministic failure — retrying would
    /// fail identically everywhere.
    Fatal(SpqError),
}

/// The engine behind [`crate::service::Backend::Remote`]: the sharded
/// scatter/gather with every shard behind a TCP worker, plus the
/// retry/failover state machine described in the [module docs](self).
///
/// Build with [`build`](Self::build) (environment-driven),
/// [`self_hosted`](Self::self_hosted) (in-process workers) or
/// [`connect`](Self::connect) (external workers), then serve typed
/// requests exactly like the other engines.
#[derive(Debug)]
pub struct RemoteEngine {
    dataset: SharedDataset,
    exec: SpqExecutor,
    workers: Vec<WorkerSlot>,
    /// Per-shard provision payload, kept for failover re-provisioning.
    shard_payloads: Vec<Vec<u8>>,
    /// Which worker currently hosts each shard.
    placement: Mutex<Vec<usize>>,
    /// Whether each shard owns any data objects.
    shard_nonempty: Vec<bool>,
    /// Terms carried by at least one feature (the manager-side keyword
    /// probe — same semantics as the engines' build-once keyword index).
    term_index: HashSet<u32>,
    retries: AtomicU64,
    scatter_workers: usize,
    /// In-process worker servers under [`self_hosted`](Self::self_hosted);
    /// empty when workers are external. Held so they serve for the
    /// engine's lifetime and shut down on drop.
    hosts: Vec<WorkerServer>,
}

impl std::fmt::Debug for WorkerSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let client = self.client.lock();
        f.debug_struct("WorkerSlot")
            .field("addr", &client.addr())
            .field("excluded", &self.excluded.load(Ordering::Relaxed))
            .finish()
    }
}

impl RemoteEngine {
    /// Builds the engine the way [`crate::service::SpqService::build`]
    /// does for `remote:N`: external workers when [`SPQ_REMOTE_WORKERS`]
    /// is set (the list length must equal `workers`), in-process workers
    /// otherwise.
    pub fn build(
        executor: SpqExecutor,
        dataset: SharedDataset,
        workers: usize,
    ) -> Result<Self, SpqError> {
        match std::env::var(SPQ_REMOTE_WORKERS) {
            Ok(list) if !list.trim().is_empty() => {
                let addrs = parse_worker_addrs(&list)?;
                if addrs.len() != workers {
                    return Err(SpqError::invalid_config(format!(
                        "remote:{workers} needs {workers} workers but {SPQ_REMOTE_WORKERS} \
                         names {} ({list:?})",
                        addrs.len()
                    )));
                }
                Self::connect(executor, dataset, &addrs)
            }
            _ => Self::self_hosted(executor, dataset, workers),
        }
    }

    /// Spawns `workers` in-process [`WorkerServer`]s (real localhost
    /// sockets, ephemeral ports, non-fatal fault plans) and provisions the
    /// shards onto them.
    pub fn self_hosted(
        executor: SpqExecutor,
        dataset: SharedDataset,
        workers: usize,
    ) -> Result<Self, SpqError> {
        if workers == 0 {
            return Err(SpqError::invalid_config(
                "remote backend needs at least one worker",
            ));
        }
        let mut hosts = Vec::with_capacity(workers);
        let mut addrs = Vec::with_capacity(workers);
        for _ in 0..workers {
            let host =
                WorkerServer::bind("127.0.0.1:0", vec![Box::new(ShardHost::new())], false)
                    .map_err(|e| SpqError::remote(format!("cannot bind in-process worker: {e}")))?;
            addrs.push(host.addr().to_string());
            hosts.push(host);
        }
        Self::with_workers(executor, dataset, &addrs, hosts, ClientConfig::fast())
    }

    /// Connects to external workers (e.g. `spq-worker` processes), one
    /// shard per address, and provisions the shards onto them.
    pub fn connect(
        executor: SpqExecutor,
        dataset: SharedDataset,
        addrs: &[String],
    ) -> Result<Self, SpqError> {
        Self::with_workers(
            executor,
            dataset,
            addrs,
            Vec::new(),
            ClientConfig::default(),
        )
    }

    fn with_workers(
        executor: SpqExecutor,
        dataset: SharedDataset,
        addrs: &[String],
        hosts: Vec<WorkerServer>,
        config: ClientConfig,
    ) -> Result<Self, SpqError> {
        if addrs.is_empty() {
            return Err(SpqError::invalid_config(
                "remote backend needs at least one worker",
            ));
        }
        let data = dataset.data();
        let mut seen = HashMap::with_capacity(data.len());
        for (i, object) in data.iter().enumerate() {
            if seen.insert(object.id, i).is_some() {
                return Err(SpqError::invalid_config(format!(
                    "duplicate data object id {} — the remote wire format resolves by id",
                    object.id
                )));
            }
        }
        let num_shards = addrs.len();
        let features = dataset.features();
        let mut shard_payloads = Vec::with_capacity(num_shards);
        let mut shard_nonempty = Vec::with_capacity(num_shards);
        for s in 0..num_shards {
            let start = s * data.len() / num_shards;
            let end = (s + 1) * data.len() / num_shards;
            shard_payloads.push(encode_provision(
                s as u32,
                &executor,
                start as u32,
                &data[start..end],
                features,
            ));
            shard_nonempty.push(end > start);
        }
        let term_index = features
            .iter()
            .flat_map(|f| f.keywords.iter().map(|t| t.0))
            .collect();
        let workers: Vec<WorkerSlot> = addrs
            .iter()
            .map(|a| WorkerSlot::new(a.clone(), config))
            .collect();
        let scatter_workers = executor.cluster_config().workers.max(1);
        let engine = Self {
            dataset,
            exec: executor,
            workers,
            shard_payloads,
            placement: Mutex::new((0..num_shards).collect()),
            shard_nonempty,
            term_index,
            retries: AtomicU64::new(0),
            scatter_workers,
            hosts,
        };
        // Initial placement: shard s on worker s. Build is strict — a
        // worker that cannot be provisioned fails the build instead of
        // starting life on the exclusion list.
        for s in 0..engine.shard_payloads.len() {
            engine.provision_on(s, s).map_err(|e| match e {
                AttemptError::Transport(message) => SpqError::WorkerLost { worker: s, message },
                AttemptError::Fatal(e) => e,
            })?;
        }
        Ok(engine)
    }

    /// Number of workers (= number of shards).
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// The global store the gather resolves against.
    pub fn dataset(&self) -> &SharedDataset {
        &self.dataset
    }

    /// The executor configuration the shards were provisioned with.
    pub fn executor(&self) -> &SpqExecutor {
        &self.exec
    }

    /// The worker addresses, in worker order.
    pub fn worker_addrs(&self) -> Vec<String> {
        self.workers
            .iter()
            .map(|w| w.client.lock().addr().to_owned())
            .collect()
    }

    /// True when the workers are in-process servers spawned by
    /// [`self_hosted`](Self::self_hosted) (as opposed to external
    /// processes named by [`SPQ_REMOTE_WORKERS`]).
    pub fn is_self_hosted(&self) -> bool {
        !self.hosts.is_empty()
    }

    /// Cumulative shard re-dispatches after worker failures, across all
    /// queries served so far.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Workers currently on the exclusion list.
    pub fn excluded_workers(&self) -> usize {
        self.workers
            .iter()
            .filter(|w| w.excluded.load(Ordering::Relaxed))
            .count()
    }

    /// Total frame bytes exchanged with workers (both directions, headers
    /// included), across provisioning and queries.
    pub fn traffic_bytes(&self) -> u64 {
        self.workers
            .iter()
            .map(|w| {
                let c = w.client.lock();
                c.bytes_sent() + c.bytes_received()
            })
            .sum()
    }

    /// Installs a [`FaultPlan`] on worker `worker` (the fault-injection
    /// seam `tests/remote_faults.rs` drives). The plan arms on the
    /// worker's *next* responses; installing resets its response counter.
    pub fn inject_fault(&self, worker: usize, plan: &FaultPlan) -> Result<(), SpqError> {
        let mut payload = Vec::new();
        plan.encode(&mut payload);
        let mut client = self.workers[worker].client.lock();
        match client.call(OP_SET_FAULT, &payload) {
            Ok((OP_FAULT_OK, _)) => Ok(()),
            Ok((op, _)) => Err(SpqError::remote(format!(
                "worker {worker} answered opcode {op} to a fault installation"
            ))),
            Err(e) => Err(SpqError::remote(format!(
                "cannot install fault on worker {worker}: {e}"
            ))),
        }
    }

    /// One framed call to worker `w`, mapping the reply to the retry
    /// loop's vocabulary: `Fatal` for typed worker-reported errors (never
    /// retried), `Transport` for anything that smells like a dead worker.
    fn call_worker(
        &self,
        w: usize,
        opcode: u16,
        payload: &[u8],
        ok_opcode: u16,
    ) -> Result<Vec<u8>, AttemptError> {
        let mut client = self.workers[w].client.lock();
        match client.call(opcode, payload) {
            Ok((op, resp)) if op == ok_opcode => Ok(resp),
            Ok((OP_ERROR, resp)) => Err(AttemptError::Fatal(SpqError::remote(format!(
                "worker {w}: {}",
                decode_error_payload(&resp)
            )))),
            Ok((op, _)) => Err(AttemptError::Transport(format!(
                "worker {w} answered unexpected opcode {op}"
            ))),
            Err(e) => Err(AttemptError::Transport(format!("worker {w}: {e}"))),
        }
    }

    fn provision_on(&self, shard: usize, w: usize) -> Result<(), AttemptError> {
        self.call_worker(
            w,
            OP_PROVISION,
            &self.shard_payloads[shard],
            OP_PROVISION_OK,
        )?;
        self.placement.lock()[shard] = w;
        Ok(())
    }

    fn exclude(&self, w: usize) {
        self.workers[w].excluded.store(true, Ordering::Relaxed);
    }

    fn is_excluded(&self, w: usize) -> bool {
        self.workers[w].excluded.load(Ordering::Relaxed)
    }

    /// The per-shard retry state machine (see the [module docs](self)).
    /// Returns the decoded shard result plus how many re-asks it took.
    fn query_shard(
        &self,
        shard: usize,
        payload: &[u8],
    ) -> Result<(bool, Vec<u8>, JobStats, u64), SpqError> {
        let mut retries = 0u64;
        let mut last_failure: Option<(usize, String)> = None;
        loop {
            let w = self.placement.lock()[shard];
            if !self.is_excluded(w) {
                let mut attempts_here = 0;
                loop {
                    match self.call_worker(w, OP_SHARD_QUERY, payload, OP_SHARD_RESULT) {
                        Ok(resp) => {
                            self.retries.fetch_add(retries, Ordering::Relaxed);
                            let decoded = decode_shard_result(&resp).map_err(|e| {
                                SpqError::remote(format!("worker {w} sent a bad shard result: {e}"))
                            })?;
                            return Ok((decoded.0, decoded.1, decoded.2, retries));
                        }
                        Err(AttemptError::Fatal(e)) => return Err(e),
                        Err(AttemptError::Transport(message)) => {
                            attempts_here += 1;
                            retries += 1;
                            if attempts_here >= 2 {
                                // Two straight transport failures: the
                                // worker is dead to us.
                                self.exclude(w);
                                last_failure = Some((w, message));
                                break;
                            }
                        }
                    }
                }
            }
            // Failover: re-provision the shard on the next survivor.
            let survivor = (0..self.workers.len())
                .map(|i| (w + 1 + i) % self.workers.len())
                .find(|&i| !self.is_excluded(i));
            let Some(next) = survivor else {
                let (worker, message) =
                    last_failure.unwrap_or((w, "every worker is on the exclusion list".to_owned()));
                self.retries.fetch_add(retries, Ordering::Relaxed);
                return Err(SpqError::WorkerLost { worker, message });
            };
            retries += 1;
            match self.provision_on(shard, next) {
                Ok(()) => {}
                Err(AttemptError::Fatal(e)) => return Err(e),
                Err(AttemptError::Transport(message)) => {
                    self.exclude(next);
                    last_failure = Some((next, message));
                }
            }
        }
    }

    /// Executes one typed request: probe, scatter over TCP, gather, merge.
    pub fn execute(&self, request: &QueryRequest) -> Result<QueryResponse, SpqError> {
        self.execute_inner(request, None)
    }

    /// [`execute`](Self::execute) with a sequential (width-1) scatter —
    /// the per-request building block of
    /// [`serve_requests`](Self::serve_requests).
    pub fn execute_sequential(&self, request: &QueryRequest) -> Result<QueryResponse, SpqError> {
        self.execute_inner(request, Some(1))
    }

    fn execute_inner(
        &self,
        request: &QueryRequest,
        scatter_override: Option<usize>,
    ) -> Result<QueryResponse, SpqError> {
        request.validate()?;
        let started = Instant::now();
        let query = &request.query;
        let options = &request.options;
        let algorithm = options.algorithm.unwrap_or(self.exec.algorithm_choice());

        // Probe the manager-side term index (features are broadcast, so
        // one set speaks for every shard): a query whose keywords no
        // feature carries cannot score any object on any worker.
        let probed = query.keywords.len();
        let matched = query
            .keywords
            .iter()
            .filter(|t| self.term_index.contains(&t.0))
            .count();
        let relevant: Vec<usize> = if matched == 0 {
            Vec::new()
        } else {
            (0..self.shard_payloads.len())
                .filter(|&s| self.shard_nonempty[s])
                .collect()
        };
        if relevant.is_empty() {
            return Ok(QueryResponse {
                results: Vec::new(),
                stats: QueryStats {
                    algorithm,
                    plan_cache_hit: false,
                    shards_touched: 0,
                    shuffle_records: 0,
                    shuffle_bytes: 0,
                    wall_micros: started.elapsed().as_micros() as u64,
                    keyword_terms_probed: probed,
                    keyword_terms_matched: matched,
                    retries: 0,
                },
                trace: options.trace.then(Vec::new),
            });
        }

        // Scatter: one framed call per relevant shard; the request's
        // worker budget bounds the scatter width (results are
        // width-invariant), exactly as in the in-process engine.
        let scatter = scatter_override
            .or(options.workers)
            .unwrap_or(self.scatter_workers)
            .clamp(1, relevant.len());
        let outcomes = run_tasks(scatter, relevant.len(), |i| {
            let shard = relevant[i];
            let payload = encode_shard_query(shard as u32, query, options);
            self.query_shard(shard, &payload)
        })
        .map_err(|p| SpqError::Worker {
            message: format!("shard {}: {}", relevant[p.task_index], p.message),
        })?;

        // Gather: the wire bytes come straight off the socket; resolve
        // them against the global store and merge, exactly as in-process.
        let mut flat = Vec::new();
        let mut plan_cache_hit = true;
        let mut shuffle_records = 0u64;
        let mut shuffle_bytes = 0u64;
        let mut retries = 0u64;
        let mut trace = options.trace.then(Vec::new);
        for outcome in outcomes {
            let (hit, records, stats, shard_retries) = outcome?;
            plan_cache_hit &= hit;
            shuffle_records += (records.len() / wire::RECORD_BYTES) as u64;
            shuffle_bytes += records.len() as u64;
            retries += shard_retries;
            flat.extend(wire::decode_results(&records, self.dataset.data()));
            if let Some(t) = &mut trace {
                t.push(stats);
            }
        }
        let results = merge_top_k(flat, query.k);

        Ok(QueryResponse {
            results,
            stats: QueryStats {
                algorithm,
                plan_cache_hit,
                shards_touched: relevant.len(),
                shuffle_records,
                shuffle_bytes,
                wall_micros: started.elapsed().as_micros() as u64,
                keyword_terms_probed: probed,
                keyword_terms_matched: matched,
                retries,
            },
            trace,
        })
    }

    /// Executes a batch of requests, in request order.
    pub fn execute_batch(&self, requests: &[QueryRequest]) -> Result<Vec<QueryResponse>, SpqError> {
        requests.iter().map(|r| self.execute(r)).collect()
    }

    /// Executes independent requests concurrently on `workers` threads,
    /// each with a sequential scatter. Responses in request order,
    /// byte-identical to sequential [`execute`](Self::execute) calls.
    pub fn serve_requests(
        &self,
        requests: &[QueryRequest],
        workers: usize,
    ) -> Result<Vec<QueryResponse>, SpqError> {
        let outcomes = run_tasks(workers.max(1), requests.len(), |i| {
            self.execute_sequential(&requests[i])
        })
        .map_err(|p| SpqError::Worker {
            message: format!("request {}: {}", p.task_index, p.message),
        })?;
        outcomes.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{DataObject, FeatureObject};
    use spq_spatial::{Point, Rect};

    fn feature(id: u64, x: f64, y: f64, kw: &[u32]) -> FeatureObject {
        FeatureObject::new(
            id,
            Point::new(x, y),
            KeywordSet::from_ids(kw.iter().copied()),
        )
    }

    fn paper_dataset() -> SharedDataset {
        SharedDataset::new(
            vec![
                DataObject::new(1, Point::new(4.6, 4.8)),
                DataObject::new(2, Point::new(7.5, 1.7)),
                DataObject::new(3, Point::new(8.9, 5.2)),
                DataObject::new(4, Point::new(1.8, 1.8)),
                DataObject::new(5, Point::new(1.9, 9.0)),
            ],
            vec![
                feature(1, 2.8, 1.2, &[0, 1]),
                feature(2, 5.0, 3.8, &[2, 3]),
                feature(3, 8.7, 1.9, &[4, 5]),
                feature(4, 3.8, 5.5, &[0]),
                feature(5, 5.2, 5.1, &[6, 7]),
                feature(6, 7.4, 5.4, &[8, 9]),
                feature(7, 3.0, 8.1, &[0, 10]),
                feature(8, 9.5, 7.0, &[11]),
            ],
        )
    }

    fn executor() -> SpqExecutor {
        SpqExecutor::new(Rect::from_coords(0.0, 0.0, 10.0, 10.0)).grid_size(4)
    }

    fn request(k: usize, r: f64, kw: &[u32]) -> QueryRequest {
        QueryRequest::new(SpqQuery::new(
            k,
            r,
            KeywordSet::from_ids(kw.iter().copied()),
        ))
    }

    #[test]
    fn executor_config_round_trips() {
        for exec in [
            executor(),
            executor()
                .algorithm(Algorithm::PSpq)
                .keyword_pruning(false)
                .cluster(ClusterConfig::with_workers(3)),
            SpqExecutor::new(Rect::from_coords(-1.0, -2.0, 3.0, 4.0))
                .auto_grid(32)
                .algorithm(Algorithm::ESpqLen)
                .load_balancing(LoadBalancing::AdaptiveQuadtree { sample_size: 100 }),
        ] {
            let mut bytes = Vec::new();
            encode_executor(&exec, &mut bytes);
            let decoded = decode_executor(&mut ByteReader::new(&bytes)).unwrap();
            assert_eq!(decoded.bounds(), exec.bounds());
            assert_eq!(decoded.algorithm_choice(), exec.algorithm_choice());
            assert_eq!(decoded.grid_sizing(), exec.grid_sizing());
            assert_eq!(
                decoded.load_balancing_choice(),
                exec.load_balancing_choice()
            );
            assert_eq!(
                decoded.keyword_pruning_enabled(),
                exec.keyword_pruning_enabled()
            );
            assert_eq!(decoded.cluster_config(), exec.cluster_config());
        }
    }

    #[test]
    fn worker_addr_parsing() {
        assert_eq!(
            parse_worker_addrs("127.0.0.1:7001, localhost:7002").unwrap(),
            vec!["127.0.0.1:7001".to_owned(), "localhost:7002".to_owned()]
        );
        for bad in [
            "",
            " , ",
            "127.0.0.1",
            ":7001",
            "127.0.0.1:0",
            "127.0.0.1:x",
            "127.0.0.1:99999",
            "127.0.0.1:-1",
        ] {
            let err = parse_worker_addrs(bad).unwrap_err();
            assert!(matches!(err, SpqError::InvalidConfig { .. }), "{bad:?}");
            assert!(err.to_string().contains(SPQ_REMOTE_WORKERS), "{bad:?}");
        }
    }

    #[test]
    fn matches_in_process_engines_for_every_worker_count() {
        let engine = QueryEngine::new(executor(), paper_dataset());
        for workers in [1, 2, 3, 5] {
            let remote = RemoteEngine::self_hosted(executor(), paper_dataset(), workers).unwrap();
            for req in [
                request(1, 1.5, &[0]),
                request(3, 1.5, &[0]),
                request(5, 2.5, &[0, 4, 11]),
            ] {
                let expect = engine.execute(&req).unwrap();
                let got = remote.execute(&req).unwrap();
                assert_eq!(got.results, expect.results, "workers={workers}");
                assert_eq!(got.stats.retries, 0);
            }
            assert_eq!(remote.retries(), 0);
            assert!(remote.traffic_bytes() > 0);
        }
    }

    #[test]
    fn unmatched_keywords_touch_no_worker() {
        let remote = RemoteEngine::self_hosted(executor(), paper_dataset(), 2).unwrap();
        let before = remote.traffic_bytes();
        let response = remote.execute(&request(3, 1.5, &[77])).unwrap();
        assert!(response.results.is_empty());
        assert_eq!(response.stats.shards_touched, 0);
        assert_eq!(response.stats.keyword_terms_matched, 0);
        // The short-circuit never crossed the wire.
        assert_eq!(remote.traffic_bytes(), before);
    }

    #[test]
    fn killed_worker_recovers_on_survivor() {
        let engine = QueryEngine::new(executor(), paper_dataset());
        let remote = RemoteEngine::self_hosted(executor(), paper_dataset(), 3).unwrap();
        let req = request(4, 1.5, &[0]);
        // Kill worker 0 on its next response; the first shard query it
        // receives takes it down mid-batch.
        remote
            .inject_fault(
                0,
                &FaultPlan {
                    kill_after_responses: Some(0),
                    ..FaultPlan::none()
                },
            )
            .unwrap();
        let got = remote.execute(&req).unwrap();
        assert_eq!(got.results, engine.execute(&req).unwrap().results);
        assert!(got.stats.retries >= 1, "stats: {:?}", got.stats);
        assert!(remote.retries() >= 1);
        assert_eq!(remote.excluded_workers(), 1);
        // Later queries keep working on the survivors, without new
        // retries for the already-moved shard.
        let again = remote.execute(&req).unwrap();
        assert_eq!(again.results, engine.execute(&req).unwrap().results);
        assert_eq!(again.stats.retries, 0);
    }

    #[test]
    fn losing_every_worker_is_worker_lost() {
        let remote = RemoteEngine::self_hosted(executor(), paper_dataset(), 2).unwrap();
        for w in 0..2 {
            remote
                .inject_fault(
                    w,
                    &FaultPlan {
                        kill_after_responses: Some(0),
                        ..FaultPlan::none()
                    },
                )
                .unwrap();
        }
        let err = remote.execute(&request(3, 1.5, &[0])).unwrap_err();
        assert!(matches!(err, SpqError::WorkerLost { .. }), "{err:?}");
        assert_eq!(remote.excluded_workers(), 2);
    }

    #[test]
    fn build_rejects_bad_configs() {
        assert!(matches!(
            RemoteEngine::self_hosted(executor(), paper_dataset(), 0),
            Err(SpqError::InvalidConfig { .. })
        ));
        let dup = SharedDataset::new(
            vec![
                DataObject::new(7, Point::new(1.0, 1.0)),
                DataObject::new(7, Point::new(2.0, 2.0)),
            ],
            vec![],
        );
        let err = RemoteEngine::self_hosted(executor(), dup, 2).unwrap_err();
        assert!(err.to_string().contains("duplicate data object id 7"));
    }

    #[test]
    fn shard_query_decode_rejects_garbage() {
        let good = encode_shard_query(0, &request(3, 1.5, &[0, 2]).query, &QueryOptions::default());
        assert!(decode_shard_query(&good).is_ok());
        // Truncations of a valid payload never panic, they error.
        for cut in 0..good.len() {
            assert!(decode_shard_query(&good[..cut]).is_err(), "cut={cut}");
        }
        // Trailing garbage is rejected too.
        let mut long = good.clone();
        long.push(0);
        assert!(decode_shard_query(&long).is_err());
    }
}
