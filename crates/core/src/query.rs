//! The query definition `q(k, r, W)`.

use spq_text::{KeywordSet, SetSimilarity};
use std::fmt;

/// A spatial preference query using keywords (Problem 1 of the paper).
///
/// * `k` — how many data objects to return,
/// * `radius` — the neighbourhood distance threshold `r`: only feature
///   objects within distance `r` of a data object contribute to its score,
/// * `keywords` — the query keyword set `q.W` matched against feature
///   annotations.
#[derive(Debug, Clone, PartialEq)]
pub struct SpqQuery {
    /// Number of results `k`.
    pub k: usize,
    /// Neighbourhood radius `r`.
    pub radius: f64,
    /// Query keywords `q.W`.
    pub keywords: KeywordSet,
    /// The set-similarity used as the non-spatial score. The paper fixes
    /// Jaccard (Definition 1); Dice/overlap are supported extensions.
    pub similarity: SetSimilarity,
}

impl SpqQuery {
    /// Creates a query with the paper's Jaccard similarity.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, the radius is negative or not finite, or the
    /// keyword set is empty (an empty `q.W` makes every score zero and the
    /// query degenerate).
    pub fn new(k: usize, radius: f64, keywords: KeywordSet) -> Self {
        Self::with_similarity(k, radius, keywords, SetSimilarity::Jaccard)
    }

    /// Creates a query with an explicit similarity function.
    pub fn with_similarity(
        k: usize,
        radius: f64,
        keywords: KeywordSet,
        similarity: SetSimilarity,
    ) -> Self {
        assert!(k > 0, "query must request at least one result");
        assert!(
            radius.is_finite() && radius >= 0.0,
            "query radius must be finite and non-negative"
        );
        assert!(!keywords.is_empty(), "query keyword set must be non-empty");
        Self {
            k,
            radius,
            keywords,
            similarity,
        }
    }

    /// Convenience: the similarity score `w(f, q)` of a feature keyword
    /// set against this query.
    #[inline]
    pub fn score(&self, feature_keywords: &KeywordSet) -> spq_text::Score {
        self.similarity.score(&self.keywords, feature_keywords)
    }

    /// Convenience: the Equation-1 style upper bound for a feature with
    /// `feature_len` keywords.
    #[inline]
    pub fn upper_bound(&self, feature_len: usize) -> spq_text::Score {
        self.similarity
            .upper_bound_by_len(self.keywords.len(), feature_len)
    }
}

impl fmt::Display for SpqQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "q(k={}, r={}, |W|={})",
            self.k,
            self.radius,
            self.keywords.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spq_text::Score;

    #[test]
    fn constructs_with_defaults() {
        let q = SpqQuery::new(5, 1.5, KeywordSet::from_ids([1, 2]));
        assert_eq!(q.k, 5);
        assert_eq!(q.similarity, SetSimilarity::Jaccard);
        assert_eq!(q.to_string(), "q(k=5, r=1.5, |W|=2)");
    }

    #[test]
    fn score_and_bound_delegate() {
        let q = SpqQuery::new(1, 1.0, KeywordSet::from_ids([1]));
        assert_eq!(q.score(&KeywordSet::from_ids([1, 2])), Score::ratio(1, 2));
        assert_eq!(q.upper_bound(4), Score::ratio(1, 4));
        assert_eq!(q.upper_bound(0), Score::ZERO);
    }

    #[test]
    #[should_panic]
    fn zero_k_rejected() {
        let _ = SpqQuery::new(0, 1.0, KeywordSet::from_ids([1]));
    }

    #[test]
    #[should_panic]
    fn negative_radius_rejected() {
        let _ = SpqQuery::new(1, -1.0, KeywordSet::from_ids([1]));
    }

    #[test]
    #[should_panic]
    fn empty_keywords_rejected() {
        let _ = SpqQuery::new(1, 1.0, KeywordSet::empty());
    }

    #[test]
    fn zero_radius_is_allowed() {
        // r = 0 means "exactly co-located features" — degenerate but legal.
        let q = SpqQuery::new(1, 0.0, KeywordSet::from_ids([1]));
        assert_eq!(q.radius, 0.0);
    }
}
