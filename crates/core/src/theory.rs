//! The Section-6 analysis: duplication factor, reducer cost model and
//! cell-size selection.
//!
//! Under uniformly distributed feature objects and a square cell of side
//! `a` with query radius `r <= a/2`, a feature is duplicated to 3, 2, 1 or
//! 0 neighbouring cells depending on which corner/border band it falls in
//! (areas A1–A4 of Figure 3), giving the closed form
//!
//! ```text
//! df = πr²/a² + 4r/a + 1,        1 <= df <= 3 + π/4
//! ```
//!
//! The per-reducer cost is proportional to `|O|·|F|·df / R²` (Section
//! 6.1), and normalising the space to `[0,1]²` with `R = 1/a` cells per
//! axis, minimising cost means minimising `df·a⁴ = πr²a² + 4ra³ + a⁴`
//! (Section 6.3) — i.e. *smaller cells are better*, bounded below by the
//! duplication explosion once `a` approaches `r`.

/// The worst-case duplication factor `3 + π/4`, reached at `a = 2r`.
pub const MAX_DUPLICATION_FACTOR: f64 = 3.0 + std::f64::consts::PI / 4.0;

/// The expected duplication factor `df = πr²/a² + 4r/a + 1` for uniformly
/// distributed features (Section 6.2).
///
/// The closed form is derived under `r <= a/2`; the function still
/// evaluates the polynomial outside that regime (the experiments sweep
/// radii up to `a`), but the analytical guarantees only hold inside it.
///
/// # Panics
///
/// Panics if either argument is negative, non-finite, or `cell_side == 0`.
pub fn duplication_factor(cell_side: f64, radius: f64) -> f64 {
    assert!(
        cell_side.is_finite() && cell_side > 0.0,
        "cell side must be positive"
    );
    assert!(radius.is_finite() && radius >= 0.0, "radius must be >= 0");
    let ratio = radius / cell_side;
    std::f64::consts::PI * ratio * ratio + 4.0 * ratio + 1.0
}

/// Probabilities of the four duplication areas of Figure 3:
/// `(P(A1), P(A2), P(A3), P(A4))` — corner (3 duplicates), double-border
/// (2), single border (1), interior (0). Valid for `r <= a/2`.
pub fn area_probabilities(cell_side: f64, radius: f64) -> (f64, f64, f64, f64) {
    assert!(
        radius * 2.0 <= cell_side * (1.0 + 1e-12),
        "area decomposition requires r <= a/2"
    );
    let a = cell_side;
    let r = radius;
    let cell = a * a;
    let a1 = std::f64::consts::PI * r * r;
    let a2 = (4.0 - std::f64::consts::PI) * r * r;
    let a3 = 4.0 * (a - 2.0 * r) * r;
    let a4 = (a - 2.0 * r) * (a - 2.0 * r);
    (a1 / cell, a2 / cell, a3 / cell, a4 / cell)
}

/// The per-reducer cost `|Oi|·|Fi| = |O|·|F|·df / R²` of Section 6.1,
/// where `R` is the number of cells.
pub fn reducer_cost(num_data: u64, num_features: u64, df: f64, num_cells: usize) -> f64 {
    assert!(num_cells > 0, "need at least one cell");
    let r = num_cells as f64;
    num_data as f64 * num_features as f64 * df / (r * r)
}

/// The §6.3 cost indicator `df·a⁴ = πr²a² + 4ra³ + a⁴` for a normalised
/// `[0,1]²` space — monotonically increasing in `a`, which is the paper's
/// argument that finer grids are cheaper per reducer.
pub fn cost_indicator(cell_side: f64, radius: f64) -> f64 {
    duplication_factor(cell_side, radius) * cell_side.powi(4)
}

/// Picks a query-time grid size (cells per axis) for a square data space
/// of the given extent.
///
/// Follows the paper's guidance: as fine as possible (Section 6.3) while
/// keeping `a >= r` to avoid excessive replication (Section 4.1), and
/// bounded by `max_cells_per_axis` (the cluster's appetite for reduce
/// tasks; the paper uses up to 100x100).
///
/// # Panics
///
/// Panics on non-positive extent or `max_cells_per_axis == 0`.
pub fn auto_grid_size(extent: f64, radius: f64, max_cells_per_axis: u32) -> u32 {
    assert!(
        extent.is_finite() && extent > 0.0,
        "extent must be positive"
    );
    assert!(radius.is_finite() && radius >= 0.0, "radius must be >= 0");
    assert!(max_cells_per_axis > 0, "need at least one cell per axis");
    if radius <= 0.0 {
        return max_cells_per_axis;
    }
    let max_by_radius = (extent / radius).floor();
    let n = max_by_radius.clamp(1.0, max_cells_per_axis as f64);
    n as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn df_bounds() {
        // No duplication when r = 0.
        assert_eq!(duplication_factor(1.0, 0.0), 1.0);
        // Worst case at a = 2r.
        let worst = duplication_factor(2.0, 1.0);
        assert!((worst - MAX_DUPLICATION_FACTOR).abs() < 1e-12);
    }

    #[test]
    fn df_monotone_in_radius() {
        let mut last = 0.0;
        for i in 0..=50 {
            let r = i as f64 / 100.0; // r in [0, a/2] for a = 1
            let df = duplication_factor(1.0, r);
            assert!(df >= last);
            last = df;
        }
    }

    #[test]
    fn df_scale_invariant() {
        // df depends only on r/a.
        let a = duplication_factor(1.0, 0.1);
        let b = duplication_factor(10.0, 1.0);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn area_probabilities_sum_to_one() {
        for &(a, r) in &[(1.0, 0.1), (1.0, 0.5), (2.5, 0.3), (4.0, 2.0)] {
            let (p1, p2, p3, p4) = area_probabilities(a, r);
            assert!((p1 + p2 + p3 + p4 - 1.0).abs() < 1e-12, "a={a} r={r}");
            assert!(p1 >= 0.0 && p2 >= 0.0 && p3 >= 0.0 && p4 >= 0.0);
        }
    }

    #[test]
    fn area_probabilities_reproduce_df() {
        // df = 3·P(A1) + 2·P(A2) + P(A3) + 1 (Section 6.2).
        let (a, r) = (1.0, 0.25);
        let (p1, p2, p3, _) = area_probabilities(a, r);
        let from_areas = 3.0 * p1 + 2.0 * p2 + p3 + 1.0;
        assert!((from_areas - duplication_factor(a, r)).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn area_decomposition_rejects_large_radius() {
        let _ = area_probabilities(1.0, 0.6);
    }

    #[test]
    fn reducer_cost_formula() {
        // |O|=|F|=1000, df=2, R=100 -> 1000*1000*2/10000 = 200.
        assert_eq!(reducer_cost(1000, 1000, 2.0, 100), 200.0);
    }

    #[test]
    fn cost_indicator_increases_with_cell_size() {
        let r = 0.01;
        let mut last = 0.0;
        for i in 1..=100 {
            let a = i as f64 / 100.0;
            let c = cost_indicator(a, r);
            assert!(c > last, "a={a}");
            last = c;
        }
    }

    #[test]
    fn auto_grid_respects_radius_floor() {
        // extent 1.0, r = 0.04: finest grid with a >= r is 25 cells/axis.
        assert_eq!(auto_grid_size(1.0, 0.04, 100), 25);
        // Capped by max.
        assert_eq!(auto_grid_size(1.0, 0.001, 100), 100);
        // Huge radius: single cell.
        assert_eq!(auto_grid_size(1.0, 5.0, 100), 1);
        // Zero radius: cap applies.
        assert_eq!(auto_grid_size(1.0, 0.0, 64), 64);
    }

    proptest! {
        /// df stays within [1, 3 + π/4] for the analysed regime r <= a/2.
        #[test]
        fn prop_df_in_bounds(a in 0.01f64..100.0, t in 0.0f64..=0.5) {
            let r = a * t;
            let df = duplication_factor(a, r);
            prop_assert!(df >= 1.0 - 1e-12);
            prop_assert!(df <= MAX_DUPLICATION_FACTOR + 1e-12);
        }

        /// The chosen grid always satisfies a >= r (up to fp rounding) and
        /// the cap.
        #[test]
        fn prop_auto_grid_valid(extent in 0.1f64..100.0, r in 0.0001f64..10.0,
                                cap in 1u32..200) {
            let n = auto_grid_size(extent, r, cap);
            prop_assert!(n >= 1 && n <= cap);
            let a = extent / n as f64;
            if n > 1 {
                prop_assert!(a >= r * (1.0 - 1e-9), "a={a} r={r}");
            }
        }
    }
}
