//! The typed serving facade: requests in, responses with statistics out.
//!
//! The engines underneath speak `SpqQuery → SpqResult` — enough for the
//! paper's experiments, too little for a service: there is nowhere to ask
//! for a different algorithm on one query, no per-query observability,
//! and no way to choose the execution backend without changing types.
//! This module is the public serving API over all of that:
//!
//! * [`QueryRequest`] — a query plus [`QueryOptions`]: per-request
//!   algorithm override, a worker **budget** (all execution is
//!   worker-count-invariant, so budget knobs never change result bytes —
//!   there are no timeouts to race against), the keyword-pruning ablation
//!   toggle and a trace flag.
//! * [`QueryResponse`] — the ranked results plus per-query [`QueryStats`]
//!   (plan-cache hit, shards touched, shuffle records/bytes, wall micros,
//!   keyword-index probe outcome) and, when tracing, the full per-job
//!   [`JobStats`].
//! * [`Backend`] — which engine serves: [`Backend::Local`] (one
//!   build-once [`QueryEngine`] on the in-process pool),
//!   [`Backend::Sharded`] (a scatter/gather
//!   [`ShardedEngine`] over per-shard
//!   dataset slices) or [`Backend::Remote`] (the same shard layout placed
//!   on worker *processes* behind TCP, see [`crate::remote`]). All return
//!   byte-identical results.
//! * [`SpqService`] — the backend-erased handle examples and benches
//!   serve through.
//!
//! All of it hangs off one trait: [`QueryExecutor`], whose single
//! required method ([`QueryExecutor::run_validated`]) is the only
//! engine-specific code — `execute`, `execute_sequential`,
//! `execute_batch` and `serve_requests` are provided once, on the trait,
//! so the four backends cannot drift apart. The [`crate::serve`]
//! admission front-end is generic over the same trait.
//!
//! Requests **validate before execution** ([`QueryRequest::validate`]):
//! a non-finite radius or a zero worker budget comes back as
//! [`SpqError::InvalidQuery`] instead of a panic deep inside routing. The
//! plain-`SpqQuery` engine methods ([`QueryEngine::query`] and friends)
//! are deprecated shims; migrate to the typed path (see the migration
//! notes in `docs/ARCHITECTURE.md`).
//!
//! ```
//! use spq_core::service::{Backend, QueryExecutor, QueryRequest, SpqService};
//! use spq_core::{DataObject, FeatureObject, SharedDataset, SpqExecutor, SpqQuery};
//! use spq_spatial::{Point, Rect};
//! use spq_text::KeywordSet;
//!
//! let dataset = SharedDataset::new(
//!     vec![DataObject::new(1, Point::new(4.6, 4.8))],
//!     vec![FeatureObject::new(4, Point::new(3.8, 5.5), KeywordSet::from_ids([0]))],
//! );
//! let executor = SpqExecutor::new(Rect::from_coords(0.0, 0.0, 10.0, 10.0)).grid_size(4);
//!
//! let service = SpqService::build(executor, dataset, Backend::Sharded { shards: 2 }).unwrap();
//! let request = QueryRequest::new(SpqQuery::new(1, 1.5, KeywordSet::from_ids([0])));
//! let response = service.execute(&request).unwrap();
//! assert_eq!(response.results[0].object, 1);
//! assert_eq!(response.stats.shards_touched, 1); // only one shard holds data
//! ```

use crate::algo::Algorithm;
use crate::engine::{MetricsSnapshot, QueryEngine};
use crate::executor::{SpqError, SpqExecutor};
use crate::model::RankedObject;
use crate::query::SpqQuery;
use crate::remote::{RemoteEngine, TickReport};
use crate::sharded::ShardedEngine;
use crate::store::SharedDataset;
use spq_mapreduce::pool::run_tasks;
use spq_mapreduce::JobStats;
use std::fmt;
use std::str::FromStr;

/// Which engine a [`SpqService`] serves through.
///
/// Every backend returns **byte-identical** results for the same request
/// (`tests/backend_equivalence.rs` proptests it); the choice trades
/// single-store simplicity against shard-per-node scale-out shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// One build-once [`QueryEngine`] over the whole dataset, executing
    /// jobs on the in-process [`spq_mapreduce::LocalPool`].
    Local,
    /// A [`ShardedEngine`]: the data
    /// objects are sliced into `shards` per-shard stores (features are
    /// broadcast by `Arc`), each shard runs its own build-once engine,
    /// and queries scatter/gather with a top-k merge.
    Sharded {
        /// Number of shards (≥ 1).
        shards: usize,
    },
    /// A [`RemoteEngine`]: the [`Backend::Sharded`] layout with one shard
    /// per worker *process*, reached over length-delimited TCP frames.
    /// Workers are either spawned in-process (the default) or external
    /// `spq-worker` processes named by the `SPQ_REMOTE_WORKERS`
    /// environment variable (see [`crate::remote::SPQ_REMOTE_WORKERS`]).
    Remote {
        /// Number of workers = number of shards (≥ 1).
        workers: usize,
    },
}

impl Backend {
    /// The backend's stable identifier (`"local"` / `"sharded"` /
    /// `"remote"`).
    pub fn name(&self) -> &'static str {
        match self {
            Backend::Local => "local",
            Backend::Sharded { .. } => "sharded",
            Backend::Remote { .. } => "remote",
        }
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Backend::Local => write!(f, "local"),
            Backend::Sharded { shards } => write!(f, "sharded:{shards}"),
            Backend::Remote { workers } => write!(f, "remote:{workers}"),
        }
    }
}

/// Default shard count for `"sharded"` given without an explicit count.
pub const DEFAULT_SHARDS: usize = 4;

impl FromStr for Backend {
    type Err = String;

    /// Parses `"local"`, `"sharded"` (= [`DEFAULT_SHARDS`] shards),
    /// `"sharded:N"` or `"remote:N"`. A bare `"remote"` is rejected: a
    /// worker count has no safe default when each worker is a process.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "local" => Ok(Backend::Local),
            "sharded" => Ok(Backend::Sharded {
                shards: DEFAULT_SHARDS,
            }),
            other => {
                if let Some(n) = other.strip_prefix("sharded:") {
                    return match n.parse::<usize>() {
                        Ok(shards) if shards > 0 => Ok(Backend::Sharded { shards }),
                        _ => Err(format!("bad shard count {n:?} (want sharded:N, N >= 1)")),
                    };
                }
                if let Some(n) = other.strip_prefix("remote:") {
                    return match n.parse::<usize>() {
                        Ok(workers) if workers > 0 => Ok(Backend::Remote { workers }),
                        _ => Err(format!("bad worker count {n:?} (want remote:N, N >= 1)")),
                    };
                }
                Err(format!(
                    "unknown backend {other:?} (want local, sharded, sharded:N or remote:N)"
                ))
            }
        }
    }
}

/// Per-request execution options. All knobs are **result-invariant**:
/// they change where and how fast a query runs, never what it answers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryOptions {
    /// Run this algorithm instead of the engine's configured one.
    pub algorithm: Option<Algorithm>,
    /// Worker budget for this request: intra-job workers on the local
    /// backend, scatter width on the sharded backend. Jobs are
    /// worker-count-invariant, so this is a pure resource knob — the
    /// timeout-free way to bound a query's CPU appetite.
    pub workers: Option<usize>,
    /// Override the map-side keyword-pruning rule (the shuffle ablation;
    /// results are unchanged, the shuffle just carries every feature).
    pub keyword_pruning: Option<bool>,
    /// Attach the full per-job [`JobStats`] to the response (one entry on
    /// the local backend, one per touched shard on the sharded one).
    pub trace: bool,
}

/// One typed query request: the query itself plus [`QueryOptions`] and
/// the admission-level fields the [`crate::serve`] front-end honours.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    /// The spatial preference query.
    pub query: SpqQuery,
    /// Execution options (all result-invariant).
    pub options: QueryOptions,
    /// Admission deadline in ticks of the admission queue's manual clock
    /// ([`crate::serve::AdmissionQueue::now`]): if the clock has passed
    /// this tick when the request is dequeued, it is shed with
    /// [`SpqError::DeadlineExceeded`] instead of executed. `None` (the
    /// default) never sheds. Direct engine calls ignore it — deadlines
    /// are an admission concern, and execution never aborts mid-query.
    pub deadline: Option<u64>,
    /// Admission priority: higher-priority requests dequeue first;
    /// arrival order breaks ties, so equal-priority traffic stays FIFO.
    /// Priorities change *when* a request runs, never its result bytes.
    /// Default `0`. Ignored outside the admission queue.
    pub priority: u8,
}

impl QueryRequest {
    /// Wraps a query with default options, no deadline, priority 0.
    pub fn new(query: SpqQuery) -> Self {
        Self {
            query,
            options: QueryOptions::default(),
            deadline: None,
            priority: 0,
        }
    }

    /// Sets the admission deadline (a tick on the admission queue's
    /// manual clock; see [`Self::deadline`]).
    pub fn with_deadline(mut self, tick: u64) -> Self {
        self.deadline = Some(tick);
        self
    }

    /// Sets the admission priority (see [`Self::priority`]).
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Overrides the algorithm for this request.
    pub fn with_algorithm(mut self, algorithm: Algorithm) -> Self {
        self.options.algorithm = Some(algorithm);
        self
    }

    /// Sets the worker budget for this request.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.options.workers = Some(workers);
        self
    }

    /// Overrides the keyword-pruning rule for this request.
    pub fn with_keyword_pruning(mut self, enabled: bool) -> Self {
        self.options.keyword_pruning = Some(enabled);
        self
    }

    /// Requests a full execution trace on the response.
    pub fn with_trace(mut self) -> Self {
        self.options.trace = true;
        self
    }

    /// Checks the request before execution. The typed path rejects inputs
    /// that the permissive shims would either panic on (non-finite radius
    /// reaches a routing assert) or answer degenerately (`k == 0`).
    pub fn validate(&self) -> Result<(), SpqError> {
        if !self.query.radius.is_finite() || self.query.radius < 0.0 {
            return Err(SpqError::invalid_query(format!(
                "radius must be finite and non-negative, got {}",
                self.query.radius
            )));
        }
        if self.query.k == 0 {
            return Err(SpqError::invalid_query("k must be at least 1"));
        }
        if self.options.workers == Some(0) {
            return Err(SpqError::invalid_query(
                "worker budget must be at least 1 when set",
            ));
        }
        Ok(())
    }
}

impl From<SpqQuery> for QueryRequest {
    fn from(query: SpqQuery) -> Self {
        QueryRequest::new(query)
    }
}

/// Per-query execution statistics, reported on every [`QueryResponse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryStats {
    /// The algorithm that answered the request.
    pub algorithm: Algorithm,
    /// Whether every consulted engine served this query's partition plan
    /// from its per-radius cache (`false` when any plan was built, and on
    /// requests short-circuited before consulting a plan).
    pub plan_cache_hit: bool,
    /// Shards the query scattered to (1 on the local backend; 0 when the
    /// keyword index proved no feature can match).
    pub shards_touched: usize,
    /// Records that crossed the data-movement boundary: the in-process
    /// shuffle on the local backend, the serialized gather on the sharded
    /// one.
    pub shuffle_records: u64,
    /// Bytes behind [`shuffle_records`](Self::shuffle_records) — actual
    /// wire bytes for the sharded gather, `records × record size` for the
    /// in-process shuffle.
    pub shuffle_bytes: u64,
    /// End-to-end wall time of the request, microseconds.
    pub wall_micros: u64,
    /// Query keywords probed against the build-once keyword index.
    pub keyword_terms_probed: usize,
    /// Probed keywords carried by at least one feature. `0` means the
    /// query cannot match anything and short-circuits.
    pub keyword_terms_matched: usize,
    /// Shard executions that were re-dispatched after a worker failure.
    /// Always `0` on the in-process backends; on [`Backend::Remote`] a
    /// non-zero count means a worker died (or missed its deadline) and
    /// the affected shards were recovered on survivors — the results are
    /// still byte-identical.
    pub retries: u64,
    /// Of the [`retries`](Self::retries), failovers this query served by
    /// flipping a shard's placement pointer to a warm replica — no
    /// provision payload crossed the wire. Always `0` on the in-process
    /// backends.
    pub warm_failovers: u64,
    /// Of the [`retries`](Self::retries), failovers this query served by
    /// re-shipping a shard's provision payload to a survivor (no warm
    /// replica was alive). Always `0` on the in-process backends.
    pub cold_reprovisions: u64,
}

/// The outcome of one executed [`QueryRequest`].
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// The global top-k, canonical order (score desc, id asc) — the same
    /// bytes [`QueryEngine::query`] returns for the same query.
    pub results: Vec<RankedObject>,
    /// Per-query execution statistics.
    pub stats: QueryStats,
    /// Full per-job statistics, present when the request set
    /// [`QueryOptions::trace`]: one entry on the local backend, one per
    /// touched shard on the sharded backend.
    pub trace: Option<Vec<JobStats>>,
}

/// How a validated request is driven through an engine — the one axis on
/// which the typed entry points differ. Every mode returns the same
/// result bytes; modes only move where the parallelism (and, on the
/// local backend, the map-side pruning) comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionMode {
    /// Full parallelism for a lone request: the worker budget drives the
    /// job on the local backend and the scatter width on the
    /// scatter/gather backends.
    Parallel,
    /// Single-threaded job (local) / width-1 scatter (sharded, remote) —
    /// the per-request building block of
    /// [`QueryExecutor::serve_requests`], where parallelism comes from
    /// running many such requests concurrently.
    Sequential,
    /// A member of a coalesced batch: the local backend prunes the map
    /// pass down to the request's candidate features through the
    /// build-once keyword index; the scatter/gather backends already
    /// prune per shard, so they drive it like
    /// [`Parallel`](Self::Parallel).
    Coalesced,
}

/// The one execute/batch/serve surface every engine speaks.
///
/// Implementations provide exactly one method — [`run_validated`]
/// (run_validated) — the engine-specific lifecycle for a request that
/// already passed [`QueryRequest::validate`]. Everything callers actually
/// invoke ([`execute`](Self::execute),
/// [`execute_sequential`](Self::execute_sequential),
/// [`execute_batch`](Self::execute_batch),
/// [`serve_requests`](Self::serve_requests)) is provided once here, so
/// validation, batching and the concurrent serve loop cannot drift
/// between backends. [`QueryEngine`], [`ShardedEngine`],
/// [`RemoteEngine`], [`SpqService`] and the
/// [`crate::serve::AdmissionQueue`] front-end all serve through this
/// trait.
///
/// [`run_validated`]: Self::run_validated
pub trait QueryExecutor: Sync {
    /// Executes one request **already checked** by
    /// [`QueryRequest::validate`] under `mode`. This is the only method a
    /// backend implements; callers should prefer the validating entry
    /// points below.
    fn run_validated(
        &self,
        request: &QueryRequest,
        mode: ExecutionMode,
    ) -> Result<QueryResponse, SpqError>;

    /// A snapshot of the engine's cumulative counters (see
    /// [`MetricsSnapshot`]); aggregated over shards on the scatter/gather
    /// backends.
    fn metrics(&self) -> MetricsSnapshot;

    /// Validates and executes one request with full parallelism
    /// ([`ExecutionMode::Parallel`]).
    fn execute(&self, request: &QueryRequest) -> Result<QueryResponse, SpqError> {
        request.validate()?;
        self.run_validated(request, ExecutionMode::Parallel)
    }

    /// Validates and executes one request single-threaded
    /// ([`ExecutionMode::Sequential`]) — same bytes as
    /// [`execute`](Self::execute); jobs are worker-count-invariant.
    fn execute_sequential(&self, request: &QueryRequest) -> Result<QueryResponse, SpqError> {
        request.validate()?;
        self.run_validated(request, ExecutionMode::Sequential)
    }

    /// Validates and executes a batch, responses in request order
    /// ([`ExecutionMode::Coalesced`] per request) — byte-identical to
    /// [`execute`](Self::execute) one by one.
    fn execute_batch(&self, requests: &[QueryRequest]) -> Result<Vec<QueryResponse>, SpqError> {
        requests
            .iter()
            .map(|request| {
                request.validate()?;
                self.run_validated(request, ExecutionMode::Coalesced)
            })
            .collect()
    }

    /// Executes independent requests concurrently on `workers` threads,
    /// each as [`execute_sequential`](Self::execute_sequential) —
    /// inter-query concurrency, the high-QPS serving shape. Responses in
    /// request order, byte-identical to sequential
    /// [`execute`](Self::execute) calls for any worker count.
    fn serve_requests(
        &self,
        requests: &[QueryRequest],
        workers: usize,
    ) -> Result<Vec<QueryResponse>, SpqError> {
        let outcomes = run_tasks(workers.max(1), requests.len(), |i| {
            self.execute_sequential(&requests[i])
        })
        .map_err(|p| SpqError::Worker {
            message: format!("request {}: {}", p.task_index, p.message),
        })?;
        outcomes.into_iter().collect()
    }
}

/// References execute wherever the referent does — what lets the
/// [`crate::serve::AdmissionQueue`] borrow a long-lived service instead
/// of taking it over.
impl<E: QueryExecutor> QueryExecutor for &E {
    fn run_validated(
        &self,
        request: &QueryRequest,
        mode: ExecutionMode,
    ) -> Result<QueryResponse, SpqError> {
        (**self).run_validated(request, mode)
    }

    fn metrics(&self) -> MetricsSnapshot {
        (**self).metrics()
    }
}

/// A backend-erased serving handle: one build step, then typed requests.
///
/// This is the type examples, benches and downstream callers hold; the
/// enum is public so callers that need backend-specific surface (per-shard
/// statistics, the raw engine) can match on it.
#[derive(Debug)]
pub enum SpqService {
    /// Serving through one build-once [`QueryEngine`].
    Local(QueryEngine),
    /// Serving through a scatter/gather [`ShardedEngine`].
    Sharded(ShardedEngine),
    /// Serving through a [`RemoteEngine`] over TCP worker processes.
    Remote(RemoteEngine),
}

impl SpqService {
    /// Builds the engine for `backend` over `dataset`. `executor`
    /// supplies the query configuration (bounds, algorithm, grid sizing,
    /// load balancing, pruning, cluster), exactly as for
    /// [`QueryEngine::new`].
    pub fn build(
        executor: SpqExecutor,
        dataset: SharedDataset,
        backend: Backend,
    ) -> Result<Self, SpqError> {
        match backend {
            Backend::Local => Ok(SpqService::Local(QueryEngine::new(executor, dataset))),
            Backend::Sharded { shards } => Ok(SpqService::Sharded(ShardedEngine::new(
                executor, dataset, shards,
            )?)),
            Backend::Remote { workers } => Ok(SpqService::Remote(RemoteEngine::build(
                executor, dataset, workers,
            )?)),
        }
    }

    /// The backend this service was built with.
    pub fn backend(&self) -> Backend {
        match self {
            SpqService::Local(_) => Backend::Local,
            SpqService::Sharded(engine) => Backend::Sharded {
                shards: engine.num_shards(),
            },
            SpqService::Remote(engine) => Backend::Remote {
                workers: engine.num_workers(),
            },
        }
    }

    /// Cumulative TCP frame traffic (request plus response bytes, all
    /// workers) on the remote backend; `None` on in-process backends,
    /// which never cross a socket.
    pub fn remote_traffic_bytes(&self) -> Option<u64> {
        match self {
            SpqService::Remote(engine) => Some(engine.traffic_bytes()),
            _ => None,
        }
    }

    /// Cumulative re-asks the remote retry state machine performed over
    /// this service's lifetime; `None` on in-process backends.
    pub fn remote_retries(&self) -> Option<u64> {
        match self {
            SpqService::Remote(engine) => Some(engine.retries()),
            _ => None,
        }
    }

    /// Remote workers currently out of rotation (excluded or probing);
    /// `None` on in-process backends.
    pub fn excluded_workers(&self) -> Option<usize> {
        match self {
            SpqService::Remote(engine) => Some(engine.excluded_workers()),
            _ => None,
        }
    }

    /// Cumulative engine counters in one backend-independent snapshot:
    /// the per-engine counters every backend keeps, plus the remote
    /// membership counters (retries, exclusions, warm/cold failovers,
    /// re-admissions), which stay zero on in-process backends.
    pub fn metrics(&self) -> MetricsSnapshot {
        QueryExecutor::metrics(self)
    }

    /// Advances the remote membership layer one deterministic step —
    /// probe excluded workers, re-admit recovered ones, rebalance shard
    /// placement (see [`RemoteEngine::tick`]). The outcome is typed: an
    /// in-process backend reports
    /// [`TickOutcome::NotApplicable`] (there is no membership layer to
    /// advance), which callers can tell apart from an applicable tick
    /// that found nothing to do ([`TickOutcome::Applied`] with a
    /// quiescent report).
    pub fn tick(&self) -> TickOutcome {
        match self {
            SpqService::Remote(engine) => TickOutcome::Applied(engine.tick()),
            _ => TickOutcome::NotApplicable {
                backend: self.backend(),
            },
        }
    }
}

impl QueryExecutor for SpqService {
    /// The one backend dispatch of the typed surface: every provided
    /// entry point of [`QueryExecutor`] funnels through this match.
    fn run_validated(
        &self,
        request: &QueryRequest,
        mode: ExecutionMode,
    ) -> Result<QueryResponse, SpqError> {
        match self {
            SpqService::Local(engine) => engine.run_validated(request, mode),
            SpqService::Sharded(engine) => engine.run_validated(request, mode),
            SpqService::Remote(engine) => engine.run_validated(request, mode),
        }
    }

    fn metrics(&self) -> MetricsSnapshot {
        match self {
            SpqService::Local(engine) => engine.metrics(),
            SpqService::Sharded(engine) => engine.metrics(),
            SpqService::Remote(engine) => engine.metrics(),
        }
    }
}

/// The typed outcome of [`SpqService::tick`]: a capability report that
/// distinguishes "this backend has no membership layer" from "the tick
/// ran and here is what it did" — previously both came back as a silent
/// no-op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TickOutcome {
    /// The backend is in-process: membership ticks are not applicable
    /// (as opposed to applicable-but-quiescent).
    NotApplicable {
        /// The backend that has no membership layer.
        backend: Backend,
    },
    /// The remote membership layer advanced one deterministic step.
    Applied(TickReport),
}

impl TickOutcome {
    /// The tick report, when the backend actually ticked.
    pub fn report(&self) -> Option<&TickReport> {
        match self {
            TickOutcome::Applied(report) => Some(report),
            TickOutcome::NotApplicable { .. } => None,
        }
    }

    /// Whether this service's backend has a membership layer to tick.
    pub fn applicable(&self) -> bool {
        matches!(self, TickOutcome::Applied(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spq_text::KeywordSet;

    fn q(k: usize, r: f64) -> SpqQuery {
        SpqQuery::new(k, r, KeywordSet::from_ids([0]))
    }

    #[test]
    fn backend_parsing_round_trips() {
        assert_eq!("local".parse::<Backend>().unwrap(), Backend::Local);
        assert_eq!(
            "sharded".parse::<Backend>().unwrap(),
            Backend::Sharded {
                shards: DEFAULT_SHARDS
            }
        );
        assert_eq!(
            "sharded:8".parse::<Backend>().unwrap(),
            Backend::Sharded { shards: 8 }
        );
        assert_eq!(
            "remote:2".parse::<Backend>().unwrap(),
            Backend::Remote { workers: 2 }
        );
        // Bare "remote" stays an error: no safe default worker count when
        // each worker is a process. Junk counts and junk ports too.
        for s in [
            "",
            "remote",
            "remote:",
            "remote:0",
            "remote:x",
            "remote:-1",
            "sharded:",
            "sharded:0",
            "sharded:x",
        ] {
            assert!(s.parse::<Backend>().is_err(), "{s:?}");
        }
        for b in [
            Backend::Local,
            Backend::Sharded { shards: 3 },
            Backend::Remote { workers: 4 },
        ] {
            assert_eq!(b.to_string().parse::<Backend>().unwrap(), b);
        }
        assert_eq!(Backend::Local.name(), "local");
        assert_eq!(Backend::Sharded { shards: 9 }.name(), "sharded");
        assert_eq!(Backend::Remote { workers: 1 }.name(), "remote");
    }

    #[test]
    fn remote_parse_paths_compose() {
        // The two halves of the remote configuration parse independently:
        // `remote:N` fixes the process count (and is what SPQ_WORKERS —
        // the *thread* pool override — never influences), while the
        // SPQ_REMOTE_WORKERS address list is validated separately, junk
        // ports included, with typed config errors either way.
        let backend: Backend = "remote:2".parse().unwrap();
        assert_eq!(backend, Backend::Remote { workers: 2 });
        assert_eq!(
            crate::remote::parse_worker_addrs("127.0.0.1:7001, 127.0.0.1:7002").unwrap(),
            vec!["127.0.0.1:7001".to_owned(), "127.0.0.1:7002".to_owned()]
        );
        for junk in ["127.0.0.1:0", "127.0.0.1:70000", "host:notaport", "nohost"] {
            let err = crate::remote::parse_worker_addrs(junk).unwrap_err();
            assert!(matches!(err, SpqError::InvalidConfig { .. }), "{junk:?}");
        }
    }

    #[test]
    fn request_builders_set_options() {
        let r = QueryRequest::new(q(3, 1.0))
            .with_algorithm(Algorithm::PSpq)
            .with_workers(2)
            .with_keyword_pruning(false)
            .with_trace();
        assert_eq!(r.options.algorithm, Some(Algorithm::PSpq));
        assert_eq!(r.options.workers, Some(2));
        assert_eq!(r.options.keyword_pruning, Some(false));
        assert!(r.options.trace);
        let shim: QueryRequest = q(3, 1.0).into();
        assert_eq!(shim.options, QueryOptions::default());
    }

    #[test]
    fn validation_rejects_degenerate_requests() {
        assert!(QueryRequest::new(q(1, 1.0)).validate().is_ok());
        // Radius 0 is allowed (a point query).
        assert!(QueryRequest::new(q(1, 0.0)).validate().is_ok());
        // `SpqQuery::new` asserts these invariants at construction, but
        // the fields are `pub` (requests may arrive deserialized); the
        // typed path turns corruption into errors instead of panics deep
        // inside routing.
        for bad in [f64::NAN, f64::INFINITY, -1.0] {
            let mut request = QueryRequest::new(q(1, 1.0));
            request.query.radius = bad;
            let err = request.validate().unwrap_err();
            assert!(matches!(err, SpqError::InvalidQuery { .. }), "{bad}");
        }
        let mut request = QueryRequest::new(q(1, 1.0));
        request.query.k = 0;
        let err = request.validate().unwrap_err();
        assert!(matches!(err, SpqError::InvalidQuery { .. }), "{err}");
        assert!(!err.is_retryable(), "malformed queries must not be retried");
        let err = QueryRequest::new(q(1, 1.0))
            .with_workers(0)
            .validate()
            .unwrap_err();
        assert!(matches!(err, SpqError::InvalidQuery { .. }), "{err}");
        assert!(
            !err.is_retryable(),
            "malformed requests must not be retried"
        );
    }
}
