//! Shared Map-phase logic: grid assignment, keyword pruning, Lemma-1
//! feature duplication.
//!
//! All three algorithms share the same Map skeleton (Algorithms 1, 3, 5
//! differ only in the composite key they attach):
//!
//! * a **data object** is routed to its enclosing cell, once;
//! * a **feature object** with no common keyword with `q.W` is dropped
//!   (the pruning rule of Algorithm 1 line 9 — such features cannot
//!   contribute to any score);
//! * a surviving feature object is routed to its enclosing cell *and*
//!   duplicated into every cell within `MINDIST <= r` (Lemma 1).
//!
//! The routing decisions depend only on the partition, the object
//! locations and the radius — **not** on the query keywords — so a
//! long-lived engine serving many queries at the same radius can compute
//! them once: [`CellRouting`] fossilises the full routing (enclosing cell
//! per data object, enclosing cell + Lemma-1 targets per feature object)
//! into flat lookup tables the algorithm tasks consume instead of
//! re-walking the partition per query.

use crate::model::FeatureObject;
use crate::query::SpqQuery;
use crate::store::SharedDataset;
use spq_spatial::{CellId, Point, SpacePartition};
use spq_text::Score;

/// Counter: data objects routed by the map phase.
pub const COUNTER_MAP_DATA: &str = "map.data_records";
/// Counter: feature objects that survived keyword pruning.
pub const COUNTER_MAP_FEATURES: &str = "map.feature_records";
/// Counter: feature objects dropped by the keyword pruning rule.
pub const COUNTER_MAP_PRUNED: &str = "map.features_pruned";
/// Counter: extra copies of feature objects created by Lemma-1 duplication
/// (the own-cell copy is not counted).
pub const COUNTER_MAP_DUPLICATES: &str = "map.feature_duplicates";
/// Counter: feature objects examined by reducers (score computations
/// attempted). Early termination shows up as this staying tiny.
pub const COUNTER_REDUCE_FEATURES_EXAMINED: &str = "reduce.features_examined";
/// Counter: distance evaluations `d(p, f) <= r` performed by reducers —
/// the `O(|Oi|·|Fi|)` term of the Section-6 cost analysis.
pub const COUNTER_REDUCE_DISTANCE_CHECKS: &str = "reduce.distance_checks";
/// Counter: reduce groups (cells) that terminated before exhausting their
/// feature stream.
pub const COUNTER_REDUCE_EARLY_TERMINATIONS: &str = "reduce.early_terminations";

/// Routes a data object: its enclosing cell only.
#[inline]
pub fn route_data(grid: &SpacePartition, location: &Point) -> CellId {
    grid.cell_of(location)
}

/// The keyword pruning rule of Algorithm 1 line 9: a feature with no
/// common keyword with `q.W` cannot contribute to any score. The map
/// tasks apply this *before* scoring a feature, so pruned features cost
/// neither a Jaccard computation nor a shuffle record.
#[inline]
pub fn feature_matches(query: &SpqQuery, feature: &FeatureObject) -> bool {
    query.keywords.intersects(&feature.keywords)
}

/// Routes a feature object, applying the keyword pruning rule and Lemma-1
/// duplication. Calls `emit(cell)` for the enclosing cell and every
/// duplication target; returns `false` (without emitting) when the
/// feature is pruned.
#[inline]
pub fn route_feature<F: FnMut(CellId)>(
    grid: &SpacePartition,
    query: &SpqQuery,
    feature: &FeatureObject,
    emit: F,
) -> bool {
    route_feature_with_pruning(grid, query, feature, true, emit)
}

/// [`route_feature`] with the pruning rule made optional — the ablation
/// knob behind [`crate::SpqExecutor::keyword_pruning`]. With pruning
/// disabled, every feature object is shuffled (and duplicated) regardless
/// of its keywords; the reducers still compute correct results because a
/// zero-score feature can never beat the top-k threshold.
#[inline]
pub fn route_feature_with_pruning<F: FnMut(CellId)>(
    grid: &SpacePartition,
    query: &SpqQuery,
    feature: &FeatureObject,
    prune: bool,
    mut emit: F,
) -> bool {
    if prune && !feature_matches(query, feature) {
        return false;
    }
    emit(grid.cell_of(&feature.location));
    grid.for_each_duplication_target(&feature.location, query.radius, &mut emit);
    true
}

/// The shared map-side feature skeleton of Algorithms 1, 3 and 5: applies
/// the keyword pruning rule, computes the feature's score **once**, and
/// calls `emit(cell, score)` for the enclosing cell and every Lemma-1
/// duplication target. Returns the number of emitted copies (>= 1), or
/// `None` when the feature was pruned.
#[inline]
pub fn route_scored_feature<F: FnMut(CellId, Score)>(
    grid: &SpacePartition,
    query: &SpqQuery,
    feature: &FeatureObject,
    prune: bool,
    mut emit: F,
) -> Option<u64> {
    if prune && !feature_matches(query, feature) {
        return None;
    }
    let score = query.score(&feature.keywords);
    let mut copies = 0u64;
    route_feature_with_pruning(grid, query, feature, false, |c| {
        copies += 1;
        emit(c, score);
    });
    Some(copies)
}

/// Prebuilt map-side routing for one `(partition, radius)` pair.
///
/// Built once by `spq_core::engine::QueryEngine` per distinct query
/// radius and shared by every query served at that radius: the map phase
/// then routes a data object with one array load and a feature object by
/// replaying its precomputed target-cell run (CSR layout — one flat
/// cell-id slice plus a per-feature offset table), instead of running
/// point-location and the Lemma-1 MINDIST walk per query.
///
/// The tables replay **exactly** the live routing — same cells, same
/// emission order (enclosing cell first, then the duplication targets in
/// partition order) — so a job driven through a `CellRouting` is
/// byte-identical to one routed live.
#[derive(Debug, Clone)]
pub struct CellRouting {
    radius: f64,
    /// Enclosing cell per data object (same index space as the store).
    data_cells: Box<[u32]>,
    /// `feature_targets[feature_offsets[i]..feature_offsets[i + 1]]` are
    /// feature `i`'s target cells: its enclosing cell followed by every
    /// Lemma-1 duplication target, in emission order.
    feature_offsets: Box<[usize]>,
    feature_targets: Box<[u32]>,
}

impl CellRouting {
    /// Precomputes the routing of every object in `dataset` over
    /// `partition` for queries of radius `radius`.
    pub fn build(partition: &SpacePartition, dataset: &SharedDataset, radius: f64) -> Self {
        assert!(
            radius.is_finite() && radius >= 0.0,
            "routing radius must be finite and non-negative"
        );
        let data_cells = dataset
            .data()
            .iter()
            .map(|o| route_data(partition, &o.location).0)
            .collect();
        let mut feature_offsets = Vec::with_capacity(dataset.features().len() + 1);
        let mut feature_targets = Vec::new();
        feature_offsets.push(0usize);
        for f in dataset.features() {
            feature_targets.push(partition.cell_of(&f.location).0);
            partition
                .for_each_duplication_target(&f.location, radius, |c| feature_targets.push(c.0));
            feature_offsets.push(feature_targets.len());
        }
        Self {
            radius,
            data_cells,
            feature_offsets: feature_offsets.into_boxed_slice(),
            feature_targets: feature_targets.into_boxed_slice(),
        }
    }

    /// The radius the feature targets were computed for.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// The precomputed enclosing cell of data object `i`.
    #[inline]
    pub fn data_cell(&self, i: u32) -> CellId {
        CellId(self.data_cells[i as usize])
    }

    /// The precomputed target cells of feature object `i` (enclosing cell
    /// first, then the Lemma-1 duplication targets).
    #[inline]
    pub fn feature_targets(&self, i: u32) -> &[u32] {
        let i = i as usize;
        &self.feature_targets[self.feature_offsets[i]..self.feature_offsets[i + 1]]
    }

    /// Total routed emissions over all features (the shuffle's feature
    /// record count before keyword pruning).
    pub fn total_feature_emissions(&self) -> usize {
        self.feature_targets.len()
    }

    /// The prebuilt counterpart of [`route_scored_feature`]: applies the
    /// keyword pruning rule, computes the score once, and replays feature
    /// `i`'s precomputed target run. Returns the number of emitted copies
    /// (>= 1), or `None` when the feature was pruned.
    #[inline]
    pub fn route_scored_feature<F: FnMut(CellId, Score)>(
        &self,
        query: &SpqQuery,
        feature: &FeatureObject,
        i: u32,
        prune: bool,
        mut emit: F,
    ) -> Option<u64> {
        debug_assert_eq!(
            self.radius.to_bits(),
            query.radius.to_bits(),
            "routing tables were built for a different radius"
        );
        if prune && !feature_matches(query, feature) {
            return None;
        }
        let score = query.score(&feature.keywords);
        let targets = self.feature_targets(i);
        for &c in targets {
            emit(CellId(c), score);
        }
        Some(targets.len() as u64)
    }
}

/// Number of duplicate emissions a routed feature produces (convenience
/// used by the duplication-factor experiments; equals
/// `emissions - 1`).
pub fn duplicate_count(grid: &SpacePartition, query: &SpqQuery, feature: &FeatureObject) -> u64 {
    let mut n = 0u64;
    if route_feature(grid, query, feature, |_| n += 1) {
        n - 1
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spq_spatial::{Grid, Rect};
    use spq_text::KeywordSet;

    fn grid() -> SpacePartition {
        Grid::square(Rect::from_coords(0.0, 0.0, 10.0, 10.0), 4).into()
    }

    fn query(r: f64) -> SpqQuery {
        SpqQuery::new(1, r, KeywordSet::from_ids([0]))
    }

    fn feat(x: f64, y: f64, ids: &[u32]) -> FeatureObject {
        FeatureObject::new(
            1,
            Point::new(x, y),
            KeywordSet::from_ids(ids.iter().copied()),
        )
    }

    #[test]
    fn data_routes_to_enclosing_cell() {
        assert_eq!(route_data(&grid(), &Point::new(1.8, 1.8)), CellId(0));
        assert_eq!(route_data(&grid(), &Point::new(9.9, 9.9)), CellId(15));
    }

    #[test]
    fn pruned_feature_emits_nothing() {
        let f = feat(5.0, 5.0, &[7, 8]); // no keyword 0
        let mut cells = vec![];
        let kept = route_feature(&grid(), &query(1.5), &f, |c| cells.push(c));
        assert!(!kept);
        assert!(cells.is_empty());
        assert_eq!(duplicate_count(&grid(), &query(1.5), &f), 0);
    }

    #[test]
    fn matching_feature_emits_own_cell_plus_duplicates() {
        // f7 of the paper: (3.0, 8.1) with r=1.5 duplicates to 3 cells.
        let f = feat(3.0, 8.1, &[0, 9]);
        let mut cells = vec![];
        let kept = route_feature(&grid(), &query(1.5), &f, |c| cells.push(c));
        assert!(kept);
        cells.sort();
        assert_eq!(cells, vec![CellId(8), CellId(9), CellId(12), CellId(13)]);
        assert_eq!(duplicate_count(&grid(), &query(1.5), &f), 3);
    }

    #[test]
    fn interior_feature_emits_once() {
        let f = feat(3.75, 3.75, &[0]);
        let mut cells = vec![];
        assert!(route_feature(&grid(), &query(1.0), &f, |c| cells.push(c)));
        assert_eq!(cells, vec![CellId(5)]);
    }

    #[test]
    fn prebuilt_routing_replays_live_routing_exactly() {
        use crate::model::DataObject;
        let data = vec![
            DataObject::new(1, Point::new(1.8, 1.8)),
            DataObject::new(2, Point::new(9.9, 9.9)),
        ];
        let features = vec![
            feat(3.0, 8.1, &[0, 9]), // boundary: several Lemma-1 targets
            feat(3.75, 3.75, &[0]),  // interior: one target
            feat(5.0, 5.0, &[7, 8]), // pruned for q.W = {0}
        ];
        let dataset = SharedDataset::new(data, features);
        let grid = grid();
        let q = query(1.5);
        let routing = CellRouting::build(&grid, &dataset, q.radius);

        assert_eq!(routing.radius(), 1.5);
        assert_eq!(
            routing.data_cell(0),
            route_data(&grid, &Point::new(1.8, 1.8))
        );
        assert_eq!(routing.data_cell(1), CellId(15));

        for (i, f) in dataset.features().iter().enumerate() {
            let mut live: Vec<(CellId, Score)> = vec![];
            let live_copies = route_scored_feature(&grid, &q, f, true, |c, w| live.push((c, w)));
            let mut pre: Vec<(CellId, Score)> = vec![];
            let pre_copies = routing.route_scored_feature(&q, f, i as u32, true, |c, w| {
                pre.push((c, w));
            });
            assert_eq!(live_copies, pre_copies, "feature {i}: copy counts");
            assert_eq!(live, pre, "feature {i}: cells, scores and order");
        }
        // The pruned feature still has precomputed targets (routing is
        // keyword-independent); pruning happens at query time.
        assert!(!routing.feature_targets(2).is_empty());
        assert_eq!(
            routing.total_feature_emissions(),
            (0..3)
                .map(|i| routing.feature_targets(i).len())
                .sum::<usize>()
        );
    }
}
