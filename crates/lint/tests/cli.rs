//! Integration tests driving the real `spq-lint` binary: the repo
//! itself must scan clean, an injected violation must fail the run, and
//! the bless workflow must behave as a decrease-only ratchet.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_spq-lint")
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

fn run(args: &[&str]) -> Output {
    Command::new(bin())
        .args(args)
        .output()
        .expect("spq-lint runs")
}

/// Builds a throwaway mini-workspace under `CARGO_TARGET_TMPDIR`
/// containing one crate with `lib_src` as its only source, and a
/// blessed-empty baseline unless `baseline` says otherwise.
fn scratch_workspace(name: &str, lib_src: &str, baseline: Option<&str>) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    if root.exists() {
        fs::remove_dir_all(&root).expect("stale scratch removed");
    }
    let src = root.join("crates/x/src");
    fs::create_dir_all(&src).expect("scratch tree created");
    fs::write(src.join("lib.rs"), lib_src).expect("scratch source written");
    if let Some(text) = baseline {
        fs::write(root.join("lint-baseline.toml"), text).expect("baseline written");
    }
    root
}

#[test]
fn real_repo_is_clean_and_reports_json() {
    let root = repo_root();
    let json_path = Path::new(env!("CARGO_TARGET_TMPDIR")).join("lint-report.json");
    let out = run(&[
        "--root",
        root.to_str().expect("utf8 root"),
        "--json",
        json_path.to_str().expect("utf8 json path"),
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "spq-lint failed on the real repo:\n{stderr}"
    );
    assert!(stderr.contains("0 violations"), "summary: {stderr}");
    assert!(stderr.contains("ratchet ok"), "summary: {stderr}");

    let json = fs::read_to_string(&json_path).expect("json report written");
    assert!(json.contains("\"tool\": \"spq-lint\""));
    assert!(json.contains("\"violations\": []"));
    assert!(json.contains("\"status\": \"ok\""));
    // The policy is part of the artifact: a CI report records what it
    // was checked against.
    assert!(json.contains("\"ordered_output_modules\""));
    assert!(json.contains("crates/core/src/remote.rs"));
}

#[test]
fn injected_instant_now_fails_the_run() {
    // The acceptance gate: a wall-clock read in a sanctioned-module-free
    // file must exit 1 with a pointed diagnostic.
    let root = scratch_workspace(
        "inject-instant",
        "pub fn f() -> std::time::Instant { std::time::Instant::now() }\n",
        Some("[panic-sites]\n"),
    );
    let out = run(&["--root", root.to_str().expect("utf8 scratch root")]);
    assert_eq!(out.status.code(), Some(1), "must exit 1");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("error[determinism/wall-clock]: crates/x/src/lib.rs:1"),
        "diagnostic: {stderr}"
    );
}

#[test]
fn injected_instant_in_test_code_passes() {
    let root = scratch_workspace(
        "inject-instant-test",
        "pub fn f() {}\n\
         #[cfg(test)]\n\
         mod tests {\n    pub fn t() -> std::time::Instant { std::time::Instant::now() }\n}\n",
        Some("[panic-sites]\n"),
    );
    let out = run(&["--root", root.to_str().expect("utf8 scratch root")]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn ratchet_regression_fails_and_bless_refuses_to_raise() {
    let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    // Baseline says this file is clean: the unwrap is a regression.
    let root = scratch_workspace("ratchet-regress", src, Some("[panic-sites]\n"));
    let out = run(&["--root", root.to_str().expect("utf8 root")]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error[panic/ratchet]"), "{stderr}");
    assert!(stderr.contains("baseline allows 0"), "{stderr}");

    // --bless must refuse to launder the regression into the baseline.
    let out = run(&["--root", root.to_str().expect("utf8 root"), "--bless"]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("refuses to raise"), "{stderr}");
    let baseline =
        fs::read_to_string(root.join("lint-baseline.toml")).expect("baseline still there");
    assert!(
        !baseline.contains("crates/x/src/lib.rs"),
        "unchanged: {baseline}"
    );
}

#[test]
fn improvement_is_stale_until_blessed_then_locks_in() {
    // Baseline says 2 sites; the code has 1: stale until blessed.
    let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    let root = scratch_workspace(
        "ratchet-improve",
        src,
        Some("[panic-sites]\n\"crates/x/src/lib.rs\" = 2\n"),
    );
    let out = run(&["--root", root.to_str().expect("utf8 root")]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "improvement unblessed = stale baseline"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("baseline still says 2"), "{stderr}");

    let out = run(&["--root", root.to_str().expect("utf8 root"), "--bless"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let baseline = fs::read_to_string(root.join("lint-baseline.toml")).expect("baseline");
    assert!(
        baseline.contains("\"crates/x/src/lib.rs\" = 1"),
        "{baseline}"
    );

    // And the blessed tree now scans clean.
    let out = run(&["--root", root.to_str().expect("utf8 root")]);
    assert!(out.status.success());
}

#[test]
fn suppression_directive_is_honored_and_reported() {
    let root = scratch_workspace(
        "directive",
        "// spq-lint: allow(determinism/wall-clock) — scratch fixture exercising directives\n\
         pub fn f() -> std::time::Instant { std::time::Instant::now() }\n",
        Some("[panic-sites]\n"),
    );
    let json_path = root.join("report.json");
    let out = run(&[
        "--root",
        root.to_str().expect("utf8 root"),
        "--json",
        json_path.to_str().expect("utf8 json"),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = fs::read_to_string(&json_path).expect("report");
    assert!(json.contains("\"suppressed\": [\n"), "{json}");
    assert!(json.contains("determinism/wall-clock"), "{json}");
}

#[test]
fn lint_catalogue_is_listed() {
    let out = run(&["--list"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in [
        "determinism/wall-clock",
        "determinism/unordered-iter",
        "panic/ratchet",
        "hygiene/allow-justification",
        "bench/stats-discipline",
    ] {
        assert!(stdout.contains(name), "missing {name} in:\n{stdout}");
    }
}
