//! Property tests for the scanner: the lexer must never panic and never
//! mis-track string/comment state, on arbitrary byte soup as well as on
//! soup biased toward the characters that drive its state machine.

use proptest::prelude::*;
use spq_lint::lexer::{self, TokenKind};

/// Re-renders a token stream as source: idents/puncts verbatim,
/// literals as a placeholder literal, lifetimes as `'a`. Lexing the
/// rendering must reproduce the same significant-token sequence — a
/// lexer that lost track of string or comment state fails this, because
/// tokens leak into (or out of) literal territory.
fn render(tokens: &[lexer::Token]) -> String {
    let mut out = String::new();
    for t in tokens {
        match &t.kind {
            TokenKind::Ident(s) => out.push_str(s),
            TokenKind::Punct(b) => out.push(*b as char),
            TokenKind::Lifetime => out.push_str("'a"),
            TokenKind::Literal => out.push('0'),
        }
        out.push(' ');
    }
    out
}

fn kinds_only(tokens: &[lexer::Token]) -> Vec<TokenKind> {
    tokens.iter().map(|t| t.kind.clone()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes: no panic, and line numbers stay sane (monotonic,
    /// bounded by the newline count).
    #[test]
    fn lexer_survives_arbitrary_bytes(bytes in proptest::collection::vec(0u8..=255, 0..512)) {
        let out = lexer::lex(&bytes);
        let lines = bytes.iter().filter(|&&b| b == b'\n').count() as u32 + 1;
        let mut last = 1u32;
        for t in &out.tokens {
            prop_assert!(t.line >= last, "line numbers must be monotonic");
            prop_assert!(t.line <= lines, "line {} beyond file end {}", t.line, lines);
            last = t.line;
        }
        // Stripping test regions never panics either and never grows.
        let stripped = lexer::strip_tests(&out.tokens);
        prop_assert!(stripped.len() <= out.tokens.len());
    }

    /// Structure-biased soup: draw from the alphabet that exercises
    /// string/comment/raw-string state transitions.
    #[test]
    fn lexer_survives_structural_soup(picks in proptest::collection::vec(0usize..16, 0..256)) {
        const PIECES: [&str; 16] = [
            "\"", "'", "r#\"", "#\"", "\\", "//", "/*", "*/",
            "\n", "r", "b\"", "ident", "{", "}", "#[cfg(test)]", "mod tests",
        ];
        let src: String = picks.iter().map(|&i| PIECES[i]).collect();
        let out = lexer::lex(src.as_bytes());
        let _ = lexer::strip_tests(&out.tokens);
    }

    /// Round-trip: re-lexing a rendering of the token stream yields the
    /// same kinds. Catches state bleed between literals and code.
    #[test]
    fn token_stream_round_trips(picks in proptest::collection::vec(0usize..12, 0..128)) {
        const PIECES: [&str; 12] = [
            "fn f", "let x = \"str with // no comment\"", "'c'", "r##\"raw \" body\"##",
            "/* block /* nested */ still */", "// line\n", "1.5e-3", "0..10",
            "m.keys()", "#[allow(dead_code)]", "{ }", "b'\\n'",
        ];
        let src: String = picks.iter().map(|&i| PIECES[i]).collect::<Vec<_>>().join(" ");
        let first = lexer::lex(src.as_bytes());
        let second = lexer::lex(render(&first.tokens).as_bytes());
        prop_assert_eq!(kinds_only(&first.tokens), kinds_only(&second.tokens));
    }
}
