//! The `spq-lint` binary. Exit status: 0 clean, 1 on any violation or
//! ratchet discrepancy, 2 on usage/IO errors.
//!
//! ```text
//! spq-lint [--root PATH] [--json PATH] [--bless] [--list] [--quiet]
//! ```

use spq_lint::{baseline, config, report, run_workspace};
use std::path::PathBuf;

struct Args {
    root: PathBuf,
    json: Option<PathBuf>,
    bless: bool,
    list: bool,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        json: None,
        bless: false,
        list: false,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root =
                    PathBuf::from(it.next().ok_or_else(|| "--root needs a path".to_string())?);
            }
            "--json" => {
                args.json = Some(PathBuf::from(
                    it.next().ok_or_else(|| "--json needs a path".to_string())?,
                ));
            }
            "--bless" => args.bless = true,
            "--list" => args.list = true,
            "--quiet" => args.quiet = true,
            "--help" | "-h" => {
                println!(
                    "spq-lint — workspace invariant checker\n\n\
                     USAGE: spq-lint [--root PATH] [--json PATH] [--bless] [--list] [--quiet]\n\n\
                     --root PATH   workspace root to scan (default: .)\n\
                     --json PATH   also write the machine-readable report to PATH\n\
                     --bless       rewrite lint-baseline.toml with current (lower) counts\n\
                     --list        print the lint catalogue and exit\n\
                     --quiet       suppress the summary line"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn real_main() -> Result<i32, String> {
    let args = parse_args()?;
    if args.list {
        for name in config::lint::ALL {
            println!("{name}");
        }
        return Ok(0);
    }

    let mut outcome = run_workspace(&args.root)?;

    let baseline_path = args.root.join(baseline::BASELINE_FILE);
    // `None` = no baseline file at all (seedable); an existing file,
    // even with zero entries, is a commitment --bless must not raise.
    let committed: Option<baseline::Counts> = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => Some(baseline::parse(&text)?),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
        Err(e) => return Err(format!("cannot read {}: {e}", baseline_path.display())),
    };

    if args.bless {
        match baseline::bless(&outcome.panic_counts, committed.as_ref()) {
            Ok(next) => {
                std::fs::write(&baseline_path, baseline::render(&next))
                    .map_err(|e| format!("cannot write {}: {e}", baseline_path.display()))?;
                eprintln!(
                    "spq-lint: blessed {} → {} entries, {} panic sites",
                    baseline_path.display(),
                    next.len(),
                    next.values().sum::<u64>()
                );
            }
            Err(regressions) => {
                for r in &regressions {
                    eprintln!(
                        "error[{}]: --bless refuses to raise {}: {} sites > baseline {}",
                        config::lint::PANIC_RATCHET,
                        r.file,
                        r.actual,
                        r.expected
                    );
                }
                eprintln!(
                    "  = help: the ratchet only tightens; remove the new sites, or \
                     hand-edit lint-baseline.toml in review"
                );
                return Ok(1);
            }
        }
    } else {
        outcome.ratchet_issues =
            baseline::check(&outcome.panic_counts, &committed.unwrap_or_default());
    }

    eprint!("{}", report::render_diagnostics(&outcome));
    if !args.quiet {
        eprint!("{}", report::render_summary(&outcome));
    }
    if let Some(path) = &args.json {
        std::fs::write(path, report::render_json(&outcome))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    Ok(if outcome.clean() { 0 } else { 1 })
}

fn main() {
    match real_main() {
        Ok(code) => std::process::exit(code),
        Err(message) => {
            eprintln!("spq-lint: {message}");
            std::process::exit(2);
        }
    }
}
