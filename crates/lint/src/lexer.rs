//! A minimal, panic-free token scanner for Rust source.
//!
//! The lints in this crate are token-sequence matchers, so the lexer's
//! whole job is to classify bytes correctly: code vs. line/block
//! comments (nested), vs. string/char/byte/raw-string literals — and to
//! carve out `#[cfg(test)]` / `#[test]` / `mod tests` regions so that
//! test code is never linted. It operates on raw bytes (invalid UTF-8
//! must not panic: the proptest in `tests/` feeds it arbitrary byte
//! soup) and is deliberately forgiving: an unterminated literal ends at
//! the end of input instead of erroring, because a scanner that dies on
//! one weird file checks nothing at all.

use std::collections::BTreeSet;

/// One significant token. Literals and comments are consumed but not
/// emitted — no lint needs their contents, only their extent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// 1-based source line the token starts on.
    pub line: u32,
    /// What the token is.
    pub kind: TokenKind,
}

/// Token classification, just rich enough for sequence matching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`Instant`, `fn`, `unwrap`, ...).
    Ident(String),
    /// A single punctuation byte (`#`, `[`, `:`, `.`, `!`, ...).
    /// Multi-byte operators arrive as consecutive singles (`::` is two
    /// `:` tokens), which keeps the matcher alphabet tiny.
    Punct(u8),
    /// A lifetime such as `'a` (kept distinct so `'a` never opens a
    /// char literal).
    Lifetime,
    /// Any consumed literal: string, raw string, char, byte, number.
    Literal,
}

impl TokenKind {
    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// True when this is punctuation byte `b`.
    pub fn is_punct(&self, b: u8) -> bool {
        matches!(self, TokenKind::Punct(p) if *p == b)
    }
}

/// Lexer output: the token stream plus the comment geography the
/// hygiene lint needs (which lines carry a comment, and any
/// `spq-lint: allow(...)` suppression directives found in comments).
#[derive(Debug, Default)]
pub struct LexOut {
    /// Significant tokens in source order.
    pub tokens: Vec<Token>,
    /// 1-based lines that contain (part of) a comment.
    pub comment_lines: BTreeSet<u32>,
    /// `(line, lint-name)` pairs from `spq-lint: allow(<name>)` comment
    /// directives; a directive suppresses findings of that lint on its
    /// own line and the next one.
    pub directives: Vec<(u32, String)>,
}

/// Scans `src` into tokens. Never panics, never errors: malformed input
/// degrades to fewer/odd tokens, which the lints treat as ordinary code.
pub fn lex(src: &[u8]) -> LexOut {
    Scanner {
        src,
        pos: 0,
        line: 1,
        out: LexOut::default(),
    }
    .run()
}

struct Scanner<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    out: LexOut,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

impl<'a> Scanner<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    /// Advances one byte, tracking line numbers.
    fn bump(&mut self) {
        if self.peek(0) == Some(b'\n') {
            self.line += 1;
        }
        self.pos += 1;
    }

    fn push(&mut self, line: u32, kind: TokenKind) {
        self.out.tokens.push(Token { line, kind });
    }

    fn run(mut self) -> LexOut {
        while let Some(b) = self.peek(0) {
            match b {
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string_literal(),
                b'\'' => self.quote(),
                _ if b.is_ascii_whitespace() => self.bump(),
                _ if b.is_ascii_digit() => self.number(),
                _ if is_ident_start(b) => self.ident_or_prefixed_literal(),
                _ => {
                    let line = self.line;
                    self.bump();
                    self.push(line, TokenKind::Punct(b));
                }
            }
        }
        self.out
    }

    /// `// ...` to end of line (doc comments included).
    fn line_comment(&mut self) {
        let line = self.line;
        let start = self.pos;
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
        self.out.comment_lines.insert(line);
        self.record_directive(line, start, self.pos);
    }

    /// `/* ... */`, nested. Unterminated comments swallow to EOF.
    fn block_comment(&mut self) {
        let start_line = self.line;
        let start = self.pos;
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => self.bump(),
                (None, _) => break,
            }
        }
        for l in start_line..=self.line {
            self.out.comment_lines.insert(l);
        }
        self.record_directive(start_line, start, self.pos);
    }

    /// Parses `spq-lint: allow(<name>)` out of a comment's bytes.
    fn record_directive(&mut self, line: u32, start: usize, end: usize) {
        let text = &self.src[start..end.min(self.src.len())];
        let Ok(text) = std::str::from_utf8(text) else {
            return;
        };
        let mut rest = text;
        while let Some(at) = rest.find("spq-lint: allow(") {
            rest = &rest[at + "spq-lint: allow(".len()..];
            if let Some(close) = rest.find(')') {
                let name = rest[..close].trim().to_string();
                if !name.is_empty() {
                    self.out.directives.push((line, name));
                }
                rest = &rest[close + 1..];
            } else {
                break;
            }
        }
    }

    /// `"..."` with backslash escapes. Unterminated → EOF.
    fn string_literal(&mut self) {
        let line = self.line;
        self.bump();
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => {
                    self.bump();
                    if self.peek(0).is_some() {
                        self.bump();
                    }
                }
                b'"' => {
                    self.bump();
                    break;
                }
                _ => self.bump(),
            }
        }
        self.push(line, TokenKind::Literal);
    }

    /// `'` opens either a lifetime (`'a`) or a char literal (`'x'`,
    /// `'\n'`, `'🦀'`). Rule: ident-start not immediately closed by
    /// another `'` is a lifetime; everything else scans for a closing
    /// quote on the same line.
    fn quote(&mut self) {
        let line = self.line;
        self.bump();
        match self.peek(0) {
            Some(b) if is_ident_start(b) && self.peek(1) != Some(b'\'') => {
                while let Some(c) = self.peek(0) {
                    if !is_ident_continue(c) {
                        break;
                    }
                    self.bump();
                }
                self.push(line, TokenKind::Lifetime);
            }
            _ => {
                while let Some(b) = self.peek(0) {
                    match b {
                        b'\\' => {
                            self.bump();
                            if self.peek(0).is_some() {
                                self.bump();
                            }
                        }
                        b'\'' => {
                            self.bump();
                            break;
                        }
                        // An unclosed char literal ends at the line end;
                        // running to EOF would let one stray quote hide
                        // the rest of the file from every lint.
                        b'\n' => break,
                        _ => self.bump(),
                    }
                }
                self.push(line, TokenKind::Literal);
            }
        }
    }

    /// Number literal: digits with `_`, type-suffix/hex letters, a
    /// fractional part only when a digit follows the dot (so `0..10`
    /// leaves the range dots alone), and signed exponents.
    fn number(&mut self) {
        let line = self.line;
        loop {
            match self.peek(0) {
                Some(b) if b.is_ascii_alphanumeric() || b == b'_' => {
                    let was_exp = (b == b'e' || b == b'E')
                        && matches!(self.peek(1), Some(b'+') | Some(b'-'))
                        && matches!(self.peek(2), Some(d) if d.is_ascii_digit());
                    self.bump();
                    if was_exp {
                        self.bump(); // the sign
                    }
                }
                Some(b'.') if matches!(self.peek(1), Some(d) if d.is_ascii_digit()) => {
                    self.bump();
                }
                _ => break,
            }
        }
        self.push(line, TokenKind::Literal);
    }

    /// Identifier, or a string literal with an ident-like prefix
    /// (`r"..."`, `r#"..."#`, `b"..."`, `br#"..."#`, `c"..."`, ...).
    fn ident_or_prefixed_literal(&mut self) {
        let line = self.line;
        let start = self.pos;
        while let Some(b) = self.peek(0) {
            if !is_ident_continue(b) {
                break;
            }
            self.bump();
        }
        let text = &self.src[start..self.pos];
        let raw_capable = matches!(text, b"r" | b"br" | b"cr");
        let escaped_string_prefix = matches!(text, b"b" | b"c");
        match self.peek(0) {
            Some(b'"') if raw_capable => {
                self.raw_string(0);
                self.push(line, TokenKind::Literal);
            }
            Some(b'"') if escaped_string_prefix => {
                self.string_literal(); // pushes the Literal itself
            }
            Some(b'#') if raw_capable => {
                let mut hashes = 0usize;
                while self.peek(hashes) == Some(b'#') {
                    hashes += 1;
                }
                if self.peek(hashes) == Some(b'"') {
                    for _ in 0..hashes {
                        self.bump();
                    }
                    self.raw_string(hashes);
                    self.push(line, TokenKind::Literal);
                } else {
                    // `r#ident` raw identifier: emit the ident, leave
                    // the `#` (and the identifier after it) to the
                    // main loop.
                    self.push_ident(line, text);
                }
            }
            _ => self.push_ident(line, text),
        }
    }

    fn push_ident(&mut self, line: u32, text: &[u8]) {
        let text = String::from_utf8_lossy(text).into_owned();
        self.push(line, TokenKind::Ident(text));
    }

    /// Raw string body starting at the opening `"`: no escapes, closed
    /// by `"` followed by `hashes` `#`s. Unterminated → EOF.
    fn raw_string(&mut self, hashes: usize) {
        self.bump(); // opening quote
        while let Some(b) = self.peek(0) {
            if b == b'"' {
                let mut matched = true;
                for i in 0..hashes {
                    if self.peek(1 + i) != Some(b'#') {
                        matched = false;
                        break;
                    }
                }
                if matched {
                    self.bump();
                    for _ in 0..hashes {
                        self.bump();
                    }
                    return;
                }
            }
            self.bump();
        }
    }
}

/// Removes test regions from a token stream: any item annotated
/// `#[cfg(test)]` or `#[test]`, and any `mod tests { ... }` block. The
/// skip is item-shaped — attributes, then either a braced body
/// (balanced, so nested `cfg(test)` inside is irrelevant) or a
/// `;`-terminated item. A file opening with `#![cfg(test)]` is dropped
/// entirely.
pub fn strip_tests(tokens: &[Token]) -> Vec<Token> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0usize;
    while i < tokens.len() {
        if let Some(after_attr) = match_test_attr(tokens, i) {
            if after_attr == usize::MAX {
                return out; // inner #![cfg(test)]: whole file is tests
            }
            i = skip_item(tokens, after_attr);
            continue;
        }
        if tokens[i].kind.ident() == Some("mod")
            && tokens.get(i + 1).and_then(|t| t.kind.ident()) == Some("tests")
            && tokens.get(i + 2).is_some_and(|t| t.kind.is_punct(b'{'))
        {
            i = skip_braced(tokens, i + 2);
            continue;
        }
        out.push(tokens[i].clone());
        i += 1;
    }
    out
}

/// If `tokens[i..]` opens a `#[test]` / `#[cfg(test)]` attribute,
/// returns the index just past the closing `]`. Returns `usize::MAX`
/// for the inner-attribute form `#![cfg(test)]`.
fn match_test_attr(tokens: &[Token], i: usize) -> Option<usize> {
    if !tokens.get(i)?.kind.is_punct(b'#') {
        return None;
    }
    let mut j = i + 1;
    let inner = tokens.get(j)?.kind.is_punct(b'!');
    if inner {
        j += 1;
    }
    if !tokens.get(j)?.kind.is_punct(b'[') {
        return None;
    }
    // Collect the attribute's tokens up to the matching `]`.
    let mut depth = 1usize;
    let mut body: Vec<&TokenKind> = Vec::new();
    let mut k = j + 1;
    while k < tokens.len() && depth > 0 {
        let t = &tokens[k].kind;
        if t.is_punct(b'[') {
            depth += 1;
        } else if t.is_punct(b']') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        body.push(t);
        k += 1;
    }
    let is_test = match body.as_slice() {
        [TokenKind::Ident(a)] if a == "test" => true,
        [TokenKind::Ident(a), open, TokenKind::Ident(b), close]
            if a == "cfg" && b == "test" && open.is_punct(b'(') && close.is_punct(b')') =>
        {
            true
        }
        _ => false,
    };
    if !is_test {
        return None;
    }
    if inner {
        return Some(usize::MAX);
    }
    Some(k + 1)
}

/// Skips one item starting at `i`: further attributes, then through a
/// balanced `{...}` body or a terminating `;` (or `,`, for
/// enum-variant/expression positions), whichever comes first.
fn skip_item(tokens: &[Token], mut i: usize) -> usize {
    while i < tokens.len() {
        // Chained attributes on the same item.
        if tokens[i].kind.is_punct(b'#') && tokens.get(i + 1).is_some_and(|t| t.kind.is_punct(b'['))
        {
            let mut depth = 0usize;
            while i < tokens.len() {
                if tokens[i].kind.is_punct(b'[') {
                    depth += 1;
                } else if tokens[i].kind.is_punct(b']') {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                i += 1;
            }
            continue;
        }
        if tokens[i].kind.is_punct(b'{') {
            return skip_braced(tokens, i);
        }
        if tokens[i].kind.is_punct(b';') || tokens[i].kind.is_punct(b',') {
            return i + 1;
        }
        // Braces inside parens/brackets (e.g. default expressions)
        // don't open the item body; fast-forward through the group.
        if tokens[i].kind.is_punct(b'(') || tokens[i].kind.is_punct(b'[') {
            let (open, close) = if tokens[i].kind.is_punct(b'(') {
                (b'(', b')')
            } else {
                (b'[', b']')
            };
            let mut depth = 0usize;
            while i < tokens.len() {
                if tokens[i].kind.is_punct(open) {
                    depth += 1;
                } else if tokens[i].kind.is_punct(close) {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                i += 1;
            }
            continue;
        }
        i += 1;
    }
    i
}

/// Skips from an opening `{` at `i` past its matching `}`.
fn skip_braced(tokens: &[Token], mut i: usize) -> usize {
    let mut depth = 0usize;
    while i < tokens.len() {
        if tokens[i].kind.is_punct(b'{') {
            depth += 1;
        } else if tokens[i].kind.is_punct(b'}') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src.as_bytes())
            .tokens
            .iter()
            .filter_map(|t| t.kind.ident().map(str::to_string))
            .collect()
    }

    fn stripped_idents(src: &str) -> Vec<String> {
        strip_tests(&lex(src.as_bytes()).tokens)
            .iter()
            .filter_map(|t| t.kind.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_tokens() {
        let src = r##"
            // Instant::now() in a line comment
            /* unwrap() in /* a nested */ block comment */
            let s = "Instant::now()";
            let r = r#"thread_rng() and "quotes" inside"#;
            let b = b"panic!";
            real_token();
        "##;
        assert_eq!(
            idents(src),
            vec!["let", "s", "let", "r", "let", "b", "real_token"]
        );
    }

    #[test]
    fn nested_block_comment_terminates_correctly() {
        let src = "/* a /* b /* c */ */ still comment */ after";
        assert_eq!(idents(src), vec!["after"]);
    }

    #[test]
    fn raw_string_hash_mismatch_keeps_scanning() {
        // The "# inside the r##-string must not close it.
        let src = r###"let x = r##"has "# inside"##; tail"###;
        assert_eq!(idents(src), vec!["let", "x", "tail"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }";
        assert_eq!(
            idents(src),
            vec!["fn", "f", "x", "str", "let", "c", "let", "n"]
        );
        let lifetimes = lex(src.as_bytes())
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        assert_eq!(lifetimes, 2);
    }

    #[test]
    fn number_dots_do_not_eat_ranges() {
        let src = "for i in 0..10 { x(1.5e-3, 0xff_u32, 2.) }";
        // `2.` keeps its dot separate (digit must follow), which is
        // fine: a stray '.' punct hurts nothing.
        let dots = lex(src.as_bytes())
            .tokens
            .iter()
            .filter(|t| t.kind.is_punct(b'.'))
            .count();
        assert_eq!(dots, 3); // the two range dots + the one in `2.`
    }

    #[test]
    fn cfg_test_region_is_stripped() {
        let src = r#"
            fn lib() {}
            #[cfg(test)]
            mod tests {
                fn inner() { victim(); }
                #[cfg(test)]
                mod nested { fn deeper() {} }
            }
            fn also_lib() {}
        "#;
        assert_eq!(stripped_idents(src), vec!["fn", "lib", "fn", "also_lib"]);
    }

    #[test]
    fn test_attr_fn_is_stripped() {
        let src = "#[test]\nfn t() { victim() }\nfn keep() {}";
        assert_eq!(stripped_idents(src), vec!["fn", "keep"]);
    }

    #[test]
    fn mod_tests_without_cfg_is_stripped() {
        let src = "mod tests { fn hidden() {} }\nfn keep() {}";
        assert_eq!(stripped_idents(src), vec!["fn", "keep"]);
    }

    #[test]
    fn cfg_not_test_is_kept() {
        // The attribute's own idents pass through (only the *item* of a
        // test attribute is stripped); what matters is `keep` survives.
        let src = "#[cfg(not(test))]\nfn keep() {}";
        assert_eq!(
            stripped_idents(src),
            vec!["cfg", "not", "test", "fn", "keep"]
        );
    }

    #[test]
    fn inner_cfg_test_drops_whole_file() {
        let src = "#![cfg(test)]\nfn hidden() {}";
        assert!(stripped_idents(src).is_empty());
    }

    #[test]
    fn directives_are_collected() {
        let src = "// spq-lint: allow(determinism/wall-clock) — bench timing\nfn f() {}";
        let out = lex(src.as_bytes());
        assert_eq!(
            out.directives,
            vec![(1, "determinism/wall-clock".to_string())]
        );
    }

    #[test]
    fn comment_lines_cover_block_extent() {
        let src = "/* one\ntwo */\ncode();";
        let out = lex(src.as_bytes());
        assert_eq!(
            out.comment_lines.iter().copied().collect::<Vec<_>>(),
            vec![1, 2]
        );
    }

    #[test]
    fn invalid_utf8_and_odd_bytes_do_not_panic() {
        let soup: Vec<u8> = vec![0xff, b'"', 0xfe, b'\n', b'\'', 0x80, b'r', b'#', 0x00];
        let _ = lex(&soup);
    }
}
