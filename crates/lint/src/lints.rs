//! The lint passes. Each pass is a token-sequence matcher over the
//! test-stripped token stream of one file; none of them parse Rust
//! beyond what [`crate::lexer`] already did.

use crate::config::{self, lint};
use crate::lexer::{LexOut, Token, TokenKind};
use std::collections::BTreeSet;

/// One finding, pointing at a workspace-relative `file:line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable lint id (see [`config::lint`]).
    pub lint: &'static str,
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub help: String,
}

/// Everything the passes learned about one file.
#[derive(Debug, Default)]
pub struct FileFindings {
    /// Violations that survived suppression directives.
    pub violations: Vec<Violation>,
    /// Violations silenced by an `spq-lint: allow(...)` directive.
    pub suppressed: Vec<Violation>,
    /// Panic-family sites (`unwrap()` / `expect(` / `panic!` /
    /// `unreachable!` / `todo!`) in non-test code, for the ratchet.
    pub panic_sites: Vec<(u32, &'static str)>,
    /// Percentile-ish helper functions seen by the bench-stats pass
    /// (names), whether flagged or not — lets tests assert the pass
    /// actually looked at something.
    pub stats_helpers: Vec<String>,
}

/// Runs every pass over one file. `path` is workspace-relative with
/// `/` separators; `lexed` is the raw lex; the test-stripped stream is
/// derived here.
pub fn check_file(path: &str, lexed: &LexOut) -> FileFindings {
    let tokens = crate::lexer::strip_tests(&lexed.tokens);
    let mut raw: Vec<Violation> = Vec::new();

    wall_clock(path, &tokens, &mut raw);
    if config::path_in(path, config::ORDERED_OUTPUT_MODULES) {
        unordered_iter(path, &tokens, &mut raw);
    }
    allow_justification(path, &tokens, lexed, &mut raw);

    let mut out = FileFindings {
        panic_sites: panic_sites(&tokens),
        ..FileFindings::default()
    };
    if config::path_in(path, config::BENCH_WRITER_MODULES) {
        bench_stats(path, &tokens, &mut raw, &mut out.stats_helpers);
    }

    // One finding per (lint, line): `for x in m.keys()` trips both the
    // chain matcher and the for-loop matcher.
    let mut seen = BTreeSet::new();
    raw.retain(|v| seen.insert((v.lint, v.line)));

    // A directive silences findings of its lint on the directive's own
    // line and the line after it (comment-above-the-offense style).
    for v in raw {
        let silenced = lexed
            .directives
            .iter()
            .any(|(dl, name)| name == v.lint && (v.line == *dl || v.line == dl + 1));
        if silenced {
            out.suppressed.push(v);
        } else {
            out.violations.push(v);
        }
    }
    out
}

fn ident_at(tokens: &[Token], i: usize) -> Option<&str> {
    tokens.get(i).and_then(|t| t.kind.ident())
}

fn punct_at(tokens: &[Token], i: usize, b: u8) -> bool {
    tokens.get(i).is_some_and(|t| t.kind.is_punct(b))
}

/// `determinism/wall-clock`: `Instant::now` / `SystemTime::now` /
/// `thread_rng` / `random(` outside the sanctioned modules.
fn wall_clock(path: &str, tokens: &[Token], out: &mut Vec<Violation>) {
    if config::sanction_for(path).is_some() {
        return;
    }
    for i in 0..tokens.len() {
        let Some(name) = ident_at(tokens, i) else {
            continue;
        };
        let flagged = match name {
            "Instant" | "SystemTime" => {
                punct_at(tokens, i + 1, b':')
                    && punct_at(tokens, i + 2, b':')
                    && ident_at(tokens, i + 3) == Some("now")
            }
            "thread_rng" => true,
            "random" => punct_at(tokens, i + 1, b'('),
            _ => false,
        };
        if flagged {
            let what = match name {
                "Instant" => "Instant::now",
                "SystemTime" => "SystemTime::now",
                "thread_rng" => "thread_rng",
                _ => "random()",
            };
            out.push(Violation {
                lint: lint::WALL_CLOCK,
                file: path.to_string(),
                line: tokens[i].line,
                message: format!(
                    "{what} in a module that is not sanctioned for wall-clock/ambient \
                     randomness"
                ),
                help: "results must be reproducible: thread ticks and seeded StdRng only. \
                       If this module genuinely needs the wall clock for metrics, add it to \
                       WALL_CLOCK_SANCTIONED in crates/lint/src/config.rs with a rationale"
                    .to_string(),
            });
        }
    }
}

/// Methods whose call on a hash collection iterates it in arbitrary
/// order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "drain",
];

/// `determinism/unordered-iter`: iteration over a `HashMap`/`HashSet`
/// in a module that produces serialized or wire output.
///
/// Pass A collects names declared with a hash-collection type (`name:
/// ... HashMap<...>` fields/params/lets, and `name = HashMap::...`
/// bindings); pass B flags iterator-method calls whose receiver chain
/// touches one of those names, and `for ... in` expressions mentioning
/// one.
fn unordered_iter(path: &str, tokens: &[Token], out: &mut Vec<Violation>) {
    let hash_names = collect_hash_names(tokens);
    if hash_names.is_empty() {
        return;
    }
    let mut flag = |line: u32, name: &str, how: &str| {
        out.push(Violation {
            lint: lint::UNORDERED_ITER,
            file: path.to_string(),
            line,
            message: format!("{how} `{name}`, a HashMap/HashSet, in an ordered-output module"),
            help: "this module feeds serialized output; hash iteration order would make \
                   it nondeterministic. Use BTreeMap/BTreeSet, or collect and sort before \
                   emitting"
                .to_string(),
        });
    };

    for i in 0..tokens.len() {
        // `.iter()`-family calls: walk the receiver chain backwards.
        if let Some(m) = ident_at(tokens, i) {
            if ITER_METHODS.contains(&m) && punct_at(tokens, i + 1, b'(') && i >= 2 {
                if let Some(base) = chain_hits(tokens, i, &hash_names) {
                    flag(tokens[i].line, &base, &format!("calling `.{m}()` on"));
                }
            }
        }
        // `for pat in expr {`: any hash-typed name in the expression.
        if ident_at(tokens, i) == Some("for") {
            if let Some(v) = for_loop_hits(tokens, i, &hash_names) {
                flag(v.0, &v.1, "iterating over");
            }
        }
    }
}

/// Collects identifiers declared with a `HashMap`/`HashSet` type. Two
/// shapes: `name : <type tokens> HashMap` (fields, params, typed lets)
/// and `name = HashMap ::` (inferred lets).
fn collect_hash_names(tokens: &[Token]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for i in 0..tokens.len() {
        match ident_at(tokens, i) {
            Some("HashMap") | Some("HashSet") => {}
            _ => continue,
        }
        // `name = HashMap::...`
        if i >= 2 && punct_at(tokens, i - 1, b'=') {
            if let Some(name) = ident_at(tokens, i - 2) {
                names.insert(name.to_string());
                continue;
            }
        }
        // Walk back over type tokens (`&`, `<`, path idents, `:`) to
        // the declared name: the first `X :` where the `:` is single
        // (not part of `::`). Stop at anything that can't be inside a
        // type annotation.
        let mut j = i;
        let mut budget = 12usize; // types here are shallow; bail on monsters
        while j > 0 && budget > 0 {
            j -= 1;
            budget -= 1;
            match &tokens[j].kind {
                TokenKind::Punct(b'&') | TokenKind::Punct(b'<') | TokenKind::Lifetime => {}
                TokenKind::Punct(b':') => {
                    let double =
                        (j > 0 && punct_at(tokens, j - 1, b':')) || punct_at(tokens, j + 1, b':');
                    if double {
                        continue; // path separator, keep walking
                    }
                    if let Some(name) = ident_at(tokens, j.wrapping_sub(1)) {
                        names.insert(name.to_string());
                    }
                    break;
                }
                TokenKind::Ident(_) => {}
                _ => break,
            }
        }
    }
    names
}

/// From an iterator-method token at `i`, walks the `a.b().c` receiver
/// chain backwards; returns the first chain identifier that is a known
/// hash-collection name.
fn chain_hits(tokens: &[Token], i: usize, names: &BTreeSet<String>) -> Option<String> {
    if !punct_at(tokens, i - 1, b'.') {
        return None;
    }
    let mut j = i - 1; // at the '.'
    loop {
        if j == 0 {
            return None;
        }
        j -= 1; // token before the '.'
                // `...)`: skip back over the argument list to its '(' and the
                // method name before it.
        if punct_at(tokens, j, b')') {
            let mut depth = 0usize;
            loop {
                if tokens[j].kind.is_punct(b')') {
                    depth += 1;
                } else if tokens[j].kind.is_punct(b'(') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if j == 0 {
                    return None;
                }
                j -= 1;
            }
            if j == 0 {
                return None;
            }
            j -= 1; // the method name (or expression head) before '('
        }
        if punct_at(tokens, j, b'?') {
            continue;
        }
        let name = ident_at(tokens, j)?;
        if names.contains(name) {
            return Some(name.to_string());
        }
        // Continue only while the chain keeps dotting leftwards.
        if j == 0 || !punct_at(tokens, j - 1, b'.') {
            return None;
        }
        j -= 1;
    }
}

/// For a `for` keyword at `i`, scans `for <pat> in <expr> {` and
/// returns `(line, name)` if the expression mentions a hash name.
fn for_loop_hits(tokens: &[Token], i: usize, names: &BTreeSet<String>) -> Option<(u32, String)> {
    // Find the `in` at bracket depth 0 (patterns may contain tuples).
    let mut depth = 0i32;
    let mut j = i + 1;
    let in_pos = loop {
        let t = tokens.get(j)?;
        match &t.kind {
            TokenKind::Punct(b'(') | TokenKind::Punct(b'[') => depth += 1,
            TokenKind::Punct(b')') | TokenKind::Punct(b']') => depth -= 1,
            TokenKind::Punct(b'{') => return None, // `for` in a type/macro? bail
            TokenKind::Ident(s) if s == "in" && depth == 0 => break j,
            _ => {}
        }
        j += 1;
    };
    // Expression runs to the body '{' at depth 0.
    let mut depth = 0i32;
    let mut j = in_pos + 1;
    loop {
        let t = tokens.get(j)?;
        match &t.kind {
            TokenKind::Punct(b'(') | TokenKind::Punct(b'[') => depth += 1,
            TokenKind::Punct(b')') | TokenKind::Punct(b']') => depth -= 1,
            TokenKind::Punct(b'{') if depth == 0 => return None,
            TokenKind::Ident(s) if names.contains(s.as_str()) => {
                return Some((t.line, s.clone()));
            }
            _ => {}
        }
        j += 1;
    }
}

/// `hygiene/allow-justification`: every `#[allow(...)]` /
/// `#![allow(...)]` in library code needs a comment on its own line or
/// the line above.
fn allow_justification(path: &str, tokens: &[Token], lexed: &LexOut, out: &mut Vec<Violation>) {
    for i in 0..tokens.len() {
        if !punct_at(tokens, i, b'#') {
            continue;
        }
        let mut j = i + 1;
        if punct_at(tokens, j, b'!') {
            j += 1;
        }
        if !punct_at(tokens, j, b'[') || ident_at(tokens, j + 1) != Some("allow") {
            continue;
        }
        let line = tokens[i].line;
        let justified =
            lexed.comment_lines.contains(&line) || lexed.comment_lines.contains(&(line - 1));
        if !justified {
            out.push(Violation {
                lint: lint::ALLOW_JUSTIFICATION,
                file: path.to_string(),
                line,
                message: "#[allow(...)] without a justification comment".to_string(),
                help: "say why the suppression is sound, on the same line or the line \
                       above — unexplained allows rot into permanent blind spots"
                    .to_string(),
            });
        }
    }
}

/// `panic/ratchet`: every `unwrap()` / `expect(` / `panic!` /
/// `unreachable!` / `todo!` site in non-test code.
fn panic_sites(tokens: &[Token]) -> Vec<(u32, &'static str)> {
    let mut sites = Vec::new();
    for i in 0..tokens.len() {
        let Some(name) = ident_at(tokens, i) else {
            continue;
        };
        let hit: Option<&'static str> = match name {
            "unwrap" if punct_at(tokens, i + 1, b'(') && punct_at(tokens, i + 2, b')') => {
                Some("unwrap()")
            }
            "expect" if punct_at(tokens, i + 1, b'(') => Some("expect("),
            "panic" if punct_at(tokens, i + 1, b'!') => Some("panic!"),
            "unreachable" if punct_at(tokens, i + 1, b'!') => Some("unreachable!"),
            "todo" if punct_at(tokens, i + 1, b'!') => Some("todo!"),
            _ => None,
        };
        if let Some(what) = hit {
            sites.push((tokens[i].line, what));
        }
    }
    sites
}

/// `bench/stats-discipline`: a `fn` whose name smells like rank math
/// (`percentile`/`median`/`quantile`) defined in a `BENCH_*` writer
/// module must route through `criterion::stats::Sample` — its body has
/// to mention `Sample`.
fn bench_stats(path: &str, tokens: &[Token], out: &mut Vec<Violation>, helpers: &mut Vec<String>) {
    for i in 0..tokens.len() {
        if ident_at(tokens, i) != Some("fn") {
            continue;
        }
        let Some(name) = ident_at(tokens, i + 1) else {
            continue;
        };
        let lower = name.to_ascii_lowercase();
        let statsy = ["percentile", "median", "quantile"]
            .iter()
            .any(|s| lower.contains(s));
        if !statsy {
            continue;
        }
        helpers.push(name.to_string());
        // Body: first '{' after the signature, then its balanced extent.
        let mut j = i + 2;
        while j < tokens.len() && !tokens[j].kind.is_punct(b'{') {
            j += 1;
        }
        let mut depth = 0usize;
        let mut routed = false;
        while j < tokens.len() {
            match &tokens[j].kind {
                TokenKind::Punct(b'{') => depth += 1,
                TokenKind::Punct(b'}') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokenKind::Ident(s) if s == "Sample" => routed = true,
                _ => {}
            }
            j += 1;
        }
        if !routed {
            out.push(Violation {
                lint: lint::BENCH_STATS,
                file: path.to_string(),
                line: tokens[i].line,
                message: format!(
                    "`fn {name}` hand-rolls percentile/median math in a BENCH_* writer \
                     module"
                ),
                help: "route through criterion::stats::Sample (sorted, \
                       linear-interpolation percentiles) so every report computes rank \
                       statistics the same way"
                    .to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(path: &str, src: &str) -> FileFindings {
        check_file(path, &lex(src.as_bytes()))
    }

    fn lints_of(f: &FileFindings) -> Vec<&'static str> {
        f.violations.iter().map(|v| v.lint).collect()
    }

    // ---- determinism/wall-clock ----

    #[test]
    fn instant_now_flagged_outside_sanctioned_modules() {
        let f = run(
            "crates/core/src/serve.rs",
            "fn f() { let t = std::time::Instant::now(); }",
        );
        assert_eq!(lints_of(&f), vec![lint::WALL_CLOCK]);
        assert_eq!(f.violations[0].line, 1);
    }

    #[test]
    fn wall_clock_ok_in_sanctioned_module_and_in_tests() {
        let f = run(
            "crates/bench/src/qps.rs",
            "fn f() { let t = Instant::now(); }",
        );
        assert!(f.violations.is_empty());
        let f = run(
            "crates/core/src/serve.rs",
            "#[cfg(test)]\nmod tests { fn f() { let t = Instant::now(); } }",
        );
        assert!(f.violations.is_empty());
    }

    #[test]
    fn thread_rng_and_random_flagged_but_named_vars_pass() {
        let f = run("src/lib.rs", "fn f() { let x = rand::thread_rng(); }");
        assert_eq!(lints_of(&f), vec![lint::WALL_CLOCK]);
        let f = run("src/lib.rs", "fn f() { let y = random(); }");
        assert_eq!(lints_of(&f), vec![lint::WALL_CLOCK]);
        // `random` as a plain binding is not a call.
        let f = run("src/lib.rs", "fn f(random: u32) -> u32 { random + 1 }");
        assert!(f.violations.is_empty());
    }

    #[test]
    fn wall_clock_in_comment_or_string_passes() {
        let f = run(
            "src/lib.rs",
            "// Instant::now() is banned here\nfn f() { let s = \"Instant::now()\"; }",
        );
        assert!(f.violations.is_empty());
    }

    #[test]
    fn directive_suppresses_and_is_counted() {
        let f = run(
            "src/lib.rs",
            "// spq-lint: allow(determinism/wall-clock) — example carve-out\n\
             fn f() { let t = Instant::now(); }",
        );
        assert!(f.violations.is_empty());
        assert_eq!(f.suppressed.len(), 1);
    }

    // ---- determinism/unordered-iter ----

    #[test]
    fn hash_iteration_flagged_in_ordered_module() {
        let src = "struct S { shards: Mutex<HashMap<u32, Shard>> }\n\
                   impl S { fn status(&self) -> Vec<u32> { \
                   self.shards.lock().keys().copied().collect() } }";
        let f = run("crates/core/src/remote.rs", src);
        assert_eq!(lints_of(&f), vec![lint::UNORDERED_ITER]);
        assert!(f.violations[0].message.contains("shards"));
    }

    #[test]
    fn hash_for_loop_flagged_in_ordered_module() {
        let src = "fn f(seen: &HashSet<u32>) { for s in seen { emit(s); } }";
        let f = run("crates/core/src/sharded.rs", src);
        assert_eq!(lints_of(&f), vec![lint::UNORDERED_ITER]);
    }

    #[test]
    fn hash_lookup_passes_and_other_modules_exempt() {
        // Point lookups don't iterate: no violation.
        let src = "fn g(m: &HashMap<u32, u32>) -> Option<&u32> { m.get(&1) }";
        assert!(run("crates/core/src/remote.rs", src).violations.is_empty());
        // Same iteration outside the ordered-output list: no violation.
        let src = "fn f(seen: &HashSet<u32>) { for s in seen { emit(s); } }";
        assert!(run("crates/core/src/engine.rs", src).violations.is_empty());
    }

    #[test]
    fn btree_iteration_passes_in_ordered_module() {
        let src = "fn f(m: &BTreeMap<u32, u32>) { for (k, v) in m.iter() { emit(k, v); } }";
        assert!(run("crates/core/src/remote.rs", src).violations.is_empty());
    }

    #[test]
    fn inferred_let_binding_is_tracked() {
        let src = "fn f() { let seen = HashMap::with_capacity(4); for x in seen.keys() {} }";
        let f = run("crates/core/src/remote.rs", src);
        assert_eq!(lints_of(&f), vec![lint::UNORDERED_ITER]);
    }

    // ---- hygiene/allow-justification ----

    #[test]
    fn bare_allow_flagged_justified_allow_passes() {
        let f = run("src/lib.rs", "#[allow(dead_code)]\nfn f() {}");
        assert_eq!(lints_of(&f), vec![lint::ALLOW_JUSTIFICATION]);
        let f = run(
            "src/lib.rs",
            "// the facade re-exports this for doc examples only\n#[allow(dead_code)]\nfn f() {}",
        );
        assert!(f.violations.is_empty());
        let f = run(
            "src/lib.rs",
            "#[allow(dead_code)] // doc-example hook\nfn f() {}",
        );
        assert!(f.violations.is_empty());
    }

    #[test]
    fn allow_in_test_mod_is_ignored() {
        let f = run(
            "src/lib.rs",
            "#[cfg(test)]\nmod tests { #[allow(dead_code)] fn f() {} }",
        );
        assert!(f.violations.is_empty());
    }

    // ---- panic/ratchet ----

    #[test]
    fn panic_sites_counted_outside_tests_only() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
                   fn g(x: Option<u32>) -> u32 { x.expect(\"msg\") }\n\
                   fn h() { panic!(\"boom\"); }\n\
                   #[cfg(test)]\nmod tests { fn t() { None::<u32>.unwrap(); } }";
        let f = run("src/lib.rs", src);
        assert_eq!(
            f.panic_sites,
            vec![(1, "unwrap()"), (2, "expect("), (3, "panic!")]
        );
    }

    #[test]
    fn unwrap_or_and_doc_comments_not_counted() {
        let src = "/// call `x.unwrap()` at your peril\n\
                   fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n\
                   fn g() { std::panic::catch_unwind(|| {}).ok(); }";
        let f = run("src/lib.rs", src);
        assert!(f.panic_sites.is_empty());
    }

    // ---- bench/stats-discipline ----

    #[test]
    fn hand_rolled_percentile_flagged_sample_routed_passes() {
        let bad = "fn percentile_ms(mut v: Vec<f64>, p: f64) -> f64 {\n\
                   v.sort_by(f64::total_cmp); v[(p * v.len() as f64) as usize] }";
        let f = run("crates/bench/src/qps.rs", bad);
        assert_eq!(lints_of(&f), vec![lint::BENCH_STATS]);
        assert_eq!(f.stats_helpers, vec!["percentile_ms"]);

        let good = "fn median_ms(v: Vec<f64>) -> f64 {\n\
                    criterion::stats::Sample::new(&v).percentile(0.50) }";
        let f = run("crates/bench/src/qps.rs", good);
        assert!(f.violations.is_empty());
        assert_eq!(f.stats_helpers, vec!["median_ms"]);
    }

    #[test]
    fn percentile_fn_outside_writer_modules_ignored() {
        let bad = "fn percentile(v: &[f64], p: f64) -> f64 { v[0] }";
        let f = run("crates/core/src/topk.rs", bad);
        assert!(f.violations.is_empty());
        assert!(f.stats_helpers.is_empty());
    }
}
