//! Rendering: rustc-style diagnostics for humans, a JSON document for
//! CI artifacts. The JSON is hand-rolled (like every other report in
//! this workspace) and fully sorted, so two runs over the same tree
//! are byte-identical.

use crate::baseline::{Counts, RatchetIssue};
use crate::config::{self, lint};
use crate::lints::Violation;

/// The complete outcome of one workspace scan.
#[derive(Debug, Default)]
pub struct RunOutcome {
    /// Files scanned, workspace-relative, sorted.
    pub files: Vec<String>,
    /// All surviving violations, sorted by (file, line, lint).
    pub violations: Vec<Violation>,
    /// Directive-suppressed findings, same ordering.
    pub suppressed: Vec<Violation>,
    /// Per-file panic-site counts (zero-count files included).
    pub panic_counts: Counts,
    /// Ratchet discrepancies against the committed baseline.
    pub ratchet_issues: Vec<RatchetIssue>,
    /// Percentile-ish helpers the bench-stats pass inspected, as
    /// `file::fn_name`, sorted.
    pub stats_helpers: Vec<String>,
}

impl RunOutcome {
    /// True when the run should exit 0.
    pub fn clean(&self) -> bool {
        self.violations.is_empty() && self.ratchet_issues.is_empty()
    }

    /// Total panic sites across the tree.
    pub fn panic_total(&self) -> u64 {
        self.panic_counts.values().sum()
    }
}

/// Renders the human diagnostics (empty string when clean).
pub fn render_diagnostics(outcome: &RunOutcome) -> String {
    let mut out = String::new();
    for v in &outcome.violations {
        out.push_str(&format!(
            "error[{}]: {}:{}: {}\n  = help: {}\n",
            v.lint, v.file, v.line, v.message, v.help
        ));
    }
    for i in &outcome.ratchet_issues {
        if i.regression {
            out.push_str(&format!(
                "error[{}]: {}: {} panic sites, baseline allows {}\n  = help: remove the \
                 new unwrap()/expect(/panic! sites (typed SpqError propagation), or \
                 hand-edit lint-baseline.toml if the increase is truly justified\n",
                lint::PANIC_RATCHET,
                i.file,
                i.actual,
                i.expected
            ));
        } else {
            out.push_str(&format!(
                "error[{}]: {}: {} panic sites, baseline still says {}\n  = help: the \
                 code improved — run `cargo run -p spq-lint -- --bless` to tighten the \
                 ratchet\n",
                lint::PANIC_RATCHET,
                i.file,
                i.actual,
                i.expected
            ));
        }
    }
    out
}

/// One-line summary for the end of a run.
pub fn render_summary(outcome: &RunOutcome) -> String {
    format!(
        "spq-lint: {} files, {} violations ({} suppressed), {} panic sites, ratchet {}\n",
        outcome.files.len(),
        outcome.violations.len(),
        outcome.suppressed.len(),
        outcome.panic_total(),
        if outcome.ratchet_issues.is_empty() {
            "ok".to_string()
        } else {
            format!("{} issues", outcome.ratchet_issues.len())
        }
    )
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_violation(v: &Violation, indent: &str) -> String {
    format!(
        "{indent}{{ \"lint\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\" }}",
        v.lint,
        json_escape(&v.file),
        v.line,
        json_escape(&v.message)
    )
}

/// Renders the machine-readable report. Schema (all arrays sorted):
///
/// ```json
/// {
///   "tool": "spq-lint",
///   "lints": [...],
///   "files_scanned": N,
///   "violations": [{"lint", "file", "line", "message"}],
///   "suppressed": [...same shape...],
///   "panic_sites": {"<file>": count, ...},
///   "panic_total": N,
///   "ratchet": {"status": "ok"|"failed", "issues": [...]},
///   "policy": {"wall_clock_sanctioned": [...], "ordered_output_modules": [...],
///              "bench_writer_modules": [...]},
///   "bench_stats": {"helpers": ["file::fn", ...]}
/// }
/// ```
pub fn render_json(outcome: &RunOutcome) -> String {
    let mut out = String::from("{\n  \"tool\": \"spq-lint\",\n");
    out.push_str(&format!(
        "  \"lints\": [{}],\n",
        lint::ALL
            .iter()
            .map(|l| format!("\"{l}\""))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str(&format!("  \"files_scanned\": {},\n", outcome.files.len()));

    for (key, list) in [
        ("violations", &outcome.violations),
        ("suppressed", &outcome.suppressed),
    ] {
        if list.is_empty() {
            out.push_str(&format!("  \"{key}\": [],\n"));
        } else {
            out.push_str(&format!("  \"{key}\": [\n"));
            let rows: Vec<String> = list.iter().map(|v| json_violation(v, "    ")).collect();
            out.push_str(&rows.join(",\n"));
            out.push_str("\n  ],\n");
        }
    }

    out.push_str("  \"panic_sites\": {\n");
    let rows: Vec<String> = outcome
        .panic_counts
        .iter()
        .filter(|(_, &n)| n > 0)
        .map(|(f, n)| format!("    \"{}\": {}", json_escape(f), n))
        .collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  },\n");
    out.push_str(&format!("  \"panic_total\": {},\n", outcome.panic_total()));

    out.push_str(&format!(
        "  \"ratchet\": {{ \"status\": \"{}\", \"issues\": [{}] }},\n",
        if outcome.ratchet_issues.is_empty() {
            "ok"
        } else {
            "failed"
        },
        outcome
            .ratchet_issues
            .iter()
            .map(|i| format!(
                "{{ \"file\": \"{}\", \"actual\": {}, \"expected\": {}, \"regression\": {} }}",
                json_escape(&i.file),
                i.actual,
                i.expected,
                i.regression
            ))
            .collect::<Vec<_>>()
            .join(", ")
    ));

    out.push_str("  \"policy\": {\n");
    out.push_str(&format!(
        "    \"wall_clock_sanctioned\": [{}],\n",
        config::WALL_CLOCK_SANCTIONED
            .iter()
            .map(|s| format!("\"{}\"", s.prefix))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    for (key, list) in [
        ("ordered_output_modules", config::ORDERED_OUTPUT_MODULES),
        ("bench_writer_modules", config::BENCH_WRITER_MODULES),
    ] {
        out.push_str(&format!(
            "    \"{key}\": [{}],\n",
            list.iter()
                .map(|m| format!("\"{m}\""))
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }
    // Trailing comma cleanup: rewrite last ",\n" of the policy block.
    if out.ends_with(",\n") {
        out.truncate(out.len() - 2);
        out.push('\n');
    }
    out.push_str("  },\n");

    out.push_str(&format!(
        "  \"bench_stats\": {{ \"helpers\": [{}] }}\n",
        outcome
            .stats_helpers
            .iter()
            .map(|h| format!("\"{}\"", json_escape(h)))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome_with_violation() -> RunOutcome {
        RunOutcome {
            files: vec!["src/lib.rs".to_string()],
            violations: vec![Violation {
                lint: lint::WALL_CLOCK,
                file: "src/lib.rs".to_string(),
                line: 7,
                message: "Instant::now in a module that is not sanctioned".to_string(),
                help: "use ticks".to_string(),
            }],
            ..RunOutcome::default()
        }
    }

    #[test]
    fn diagnostics_are_rustc_shaped() {
        let text = render_diagnostics(&outcome_with_violation());
        assert!(text.starts_with("error[determinism/wall-clock]: src/lib.rs:7: "));
        assert!(text.contains("= help:"));
    }

    #[test]
    fn json_is_well_formed_and_sorted() {
        let mut o = outcome_with_violation();
        o.panic_counts.insert("src/lib.rs".to_string(), 2);
        o.ratchet_issues.push(RatchetIssue {
            file: "src/lib.rs".to_string(),
            actual: 2,
            expected: 1,
            regression: true,
        });
        let json = render_json(&o);
        assert!(json.contains("\"tool\": \"spq-lint\""));
        assert!(json.contains("\"files_scanned\": 1"));
        assert!(json.contains("\"panic_total\": 2"));
        assert!(json.contains("\"status\": \"failed\""));
        assert!(json.contains("\"regression\": true"));
        // Quotes/backslashes in messages must be escaped.
        assert!(!json.contains("\"message\": \"a \"quoted\"\""));
        // Balanced braces is a cheap well-formedness smoke check given
        // every embedded string is escaped.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn clean_outcome_renders_empty_diagnostics() {
        let o = RunOutcome::default();
        assert!(render_diagnostics(&o).is_empty());
        assert!(o.clean());
        assert!(render_json(&o).contains("\"status\": \"ok\""));
    }
}
