//! The lint policy: which lints exist, which modules are sanctioned for
//! wall-clock reads, and which modules must keep serialized output
//! deterministically ordered.
//!
//! The lists live in code rather than a config file on purpose: changing
//! the determinism policy should be a reviewed source change with a
//! rationale string attached, not a drive-by edit to a dotfile. The
//! same lists are rendered into the JSON report so CI artifacts record
//! the policy a run was checked against.

/// One entry in a sanctioned-module list: a workspace-relative path
/// prefix plus the reason it is exempt.
#[derive(Debug, Clone, Copy)]
pub struct Sanctioned {
    /// Workspace-relative path prefix (`/`-separated).
    pub prefix: &'static str,
    /// Why the exemption is sound — rendered in diagnostics and docs.
    pub rationale: &'static str,
}

/// Modules allowed to read the wall clock (`Instant::now`,
/// `SystemTime::now`). Everything here routes timing exclusively into
/// metrics surfaces (latency histograms, `QueryStats::wall_micros`,
/// phase counters, bench reports) that the byte-identity checks
/// deliberately exclude; query *results* never depend on time.
pub const WALL_CLOCK_SANCTIONED: &[Sanctioned] = &[
    Sanctioned {
        prefix: "crates/bench/src",
        rationale: "the measurement harness: wall-clock readings are its output, \
                    never part of result payloads",
    },
    Sanctioned {
        prefix: "crates/core/src/engine.rs",
        rationale: "QueryStats::wall_micros only — results are computed before \
                    the clock is read",
    },
    Sanctioned {
        prefix: "crates/core/src/sharded.rs",
        rationale: "gather-phase wall time for QueryStats; result bytes are \
                    asserted identical to the single-store engine",
    },
    Sanctioned {
        prefix: "crates/core/src/remote.rs",
        rationale: "scatter wall time for QueryStats; membership is tick-driven, \
                    never wall-clock-driven",
    },
    Sanctioned {
        prefix: "crates/mapreduce/src/backend.rs",
        rationale: "map/shuffle/reduce phase timings feeding PhaseTimings \
                    counters only",
    },
    Sanctioned {
        prefix: "crates/mapreduce/src/remote/worker.rs",
        rationale: "per-request serve timing in the worker loop, reported in \
                    worker stats frames that carry no result data",
    },
];

/// Modules that produce serialized or wire output (12-byte gather
/// records, remote frames, `BENCH_*` JSON documents). Iterating a
/// `HashMap`/`HashSet` here can silently break the byte-identity
/// invariant, so the `determinism/unordered-iter` lint demands
/// `BTreeMap`/`BTreeSet` or an explicit sort before anything is
/// iterated.
pub const ORDERED_OUTPUT_MODULES: &[&str] = &[
    "crates/core/src/remote.rs",
    "crates/core/src/sharded.rs",
    "crates/mapreduce/src/remote",
    "crates/bench/src/matrix",
    "crates/bench/src/qps.rs",
    "crates/bench/src/trajectory.rs",
    "crates/bench/src/ingest_bench.rs",
    "crates/bench/src/backend_bench.rs",
    "crates/bench/src/figures.rs",
];

/// Bench modules that write `BENCH_*`/`BENCH_MATRIX` documents. Any
/// percentile/median/quantile helper defined here must route through
/// `criterion::stats::Sample` instead of hand-rolling rank math — the
/// first slice of the ROADMAP's legacy-bench-writer migration.
pub const BENCH_WRITER_MODULES: &[&str] = &[
    "crates/bench/src/matrix",
    "crates/bench/src/qps.rs",
    "crates/bench/src/trajectory.rs",
    "crates/bench/src/ingest_bench.rs",
    "crates/bench/src/backend_bench.rs",
    "crates/bench/src/figures.rs",
];

/// Stable lint identifiers, shared by diagnostics, suppression
/// directives, the JSON report and the docs.
pub mod lint {
    /// Wall-clock / ambient-randomness ban.
    pub const WALL_CLOCK: &str = "determinism/wall-clock";
    /// Hash-collection iteration in ordered-output modules.
    pub const UNORDERED_ITER: &str = "determinism/unordered-iter";
    /// `unwrap`/`expect`/`panic!`-family ratchet.
    pub const PANIC_RATCHET: &str = "panic/ratchet";
    /// `#[allow(...)]` without a justification comment.
    pub const ALLOW_JUSTIFICATION: &str = "hygiene/allow-justification";
    /// Hand-rolled percentile math in bench writers.
    pub const BENCH_STATS: &str = "bench/stats-discipline";

    /// Every lint this binary knows, for `--list` and the report.
    pub const ALL: &[&str] = &[
        WALL_CLOCK,
        UNORDERED_ITER,
        PANIC_RATCHET,
        ALLOW_JUSTIFICATION,
        BENCH_STATS,
    ];
}

/// True when `path` (workspace-relative, `/`-separated) falls under any
/// prefix in `list`.
pub fn path_in(path: &str, list: &[&str]) -> bool {
    list.iter()
        .any(|p| path == *p || path.starts_with(&format!("{p}/")))
}

/// Returns the sanction entry covering `path`, if any.
pub fn sanction_for(path: &str) -> Option<&'static Sanctioned> {
    WALL_CLOCK_SANCTIONED
        .iter()
        .find(|s| path == s.prefix || path.starts_with(&format!("{}/", s.prefix)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_matching_is_boundary_aware() {
        assert!(path_in("crates/bench/src/qps.rs", &["crates/bench/src"]));
        assert!(path_in("crates/bench/src", &["crates/bench/src"]));
        assert!(!path_in("crates/bench/src2/qps.rs", &["crates/bench/src"]));
    }

    #[test]
    fn sanctioned_entries_resolve() {
        assert!(sanction_for("crates/bench/src/bin/chaos.rs").is_some());
        assert!(sanction_for("crates/core/src/serve.rs").is_none());
    }
}
