//! The panic-freedom ratchet: a committed per-file count of
//! `unwrap()`/`expect(`/`panic!`/`unreachable!`/`todo!` sites in
//! non-test library code that may only go down.
//!
//! Semantics are exact-match, not ceiling: a scan must reproduce the
//! baseline counts precisely. Above → regression. Below → stale
//! baseline, run `--bless` to lock the improvement in. `--bless`
//! itself refuses to raise any count — deliberately adding a panic
//! site means hand-editing `lint-baseline.toml` where a reviewer will
//! see it.
//!
//! The file is a single-table TOML document; the parser here covers
//! exactly that shape (comments, `[panic-sites]`, `"path" = count`)
//! so the crate stays dependency-free.

use std::collections::BTreeMap;

/// Per-file panic-site counts, keyed by workspace-relative path.
pub type Counts = BTreeMap<String, u64>;

/// Name of the baseline file at the workspace root.
pub const BASELINE_FILE: &str = "lint-baseline.toml";

/// Parses the baseline document. Unknown sections or malformed lines
/// are errors: a baseline that silently drops entries ratchets nothing.
pub fn parse(text: &str) -> Result<Counts, String> {
    let mut counts = Counts::new();
    let mut in_section = false;
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
            in_section = name.trim() == "panic-sites";
            if !in_section {
                return Err(format!(
                    "{BASELINE_FILE}:{}: unknown section [{}]",
                    ln + 1,
                    name.trim()
                ));
            }
            continue;
        }
        if !in_section {
            return Err(format!(
                "{BASELINE_FILE}:{}: entry before [panic-sites] section",
                ln + 1
            ));
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!(
                "{BASELINE_FILE}:{}: expected `\"path\" = count`",
                ln + 1
            ));
        };
        let key = key.trim().trim_matches('"').to_string();
        let value: u64 = value
            .trim()
            .parse()
            .map_err(|e| format!("{BASELINE_FILE}:{}: bad count: {e}", ln + 1))?;
        if key.is_empty() {
            return Err(format!("{BASELINE_FILE}:{}: empty path key", ln + 1));
        }
        if counts.insert(key.clone(), value).is_some() {
            return Err(format!(
                "{BASELINE_FILE}:{}: duplicate entry for {key}",
                ln + 1
            ));
        }
    }
    Ok(counts)
}

/// Renders the baseline document (sorted, commented, zero-count files
/// omitted — absence *is* the zero).
pub fn render(counts: &Counts) -> String {
    let mut out = String::from(
        "# Panic-freedom ratchet for `spq-lint` (see docs/ARCHITECTURE.md,\n\
         # \"Static analysis & invariants\"). Counts of unwrap()/expect(/panic!/\n\
         # unreachable!/todo! sites in non-test library code, per file. The\n\
         # ratchet is exact-match and decrease-only: `spq-lint --bless` locks in\n\
         # improvements and refuses increases; raising a count on purpose means\n\
         # editing this file by hand, in review.\n\
         \n[panic-sites]\n",
    );
    for (file, n) in counts {
        if *n > 0 {
            out.push_str(&format!("\"{file}\" = {n}\n"));
        }
    }
    out
}

/// One ratchet discrepancy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RatchetIssue {
    /// The file whose count disagrees.
    pub file: String,
    /// Count found by this scan.
    pub actual: u64,
    /// Count the baseline expects.
    pub expected: u64,
    /// `true` for a regression (actual > expected), `false` for a
    /// stale baseline (actual < expected — improvement not blessed).
    pub regression: bool,
}

/// Compares scanned counts against the baseline. Every discrepancy is
/// fatal to the run; the flag distinguishes the message.
pub fn check(actual: &Counts, baseline: &Counts) -> Vec<RatchetIssue> {
    let mut issues = Vec::new();
    for (file, &n) in actual {
        if n == 0 {
            continue;
        }
        let expected = baseline.get(file).copied().unwrap_or(0);
        if n != expected {
            issues.push(RatchetIssue {
                file: file.clone(),
                actual: n,
                expected,
                regression: n > expected,
            });
        }
    }
    for (file, &expected) in baseline {
        if expected > 0 && actual.get(file).copied().unwrap_or(0) == 0 {
            issues.push(RatchetIssue {
                file: file.clone(),
                actual: 0,
                expected,
                regression: false,
            });
        }
    }
    issues.sort_by(|a, b| a.file.cmp(&b.file));
    issues.dedup();
    issues
}

/// Computes the blessed baseline: current counts, refusing to raise
/// any committed entry. `baseline` is `None` only when no
/// `lint-baseline.toml` exists yet — the one case where seeding
/// arbitrary counts is sanctioned. Returns the offending files on
/// refusal.
pub fn bless(actual: &Counts, baseline: Option<&Counts>) -> Result<Counts, Vec<RatchetIssue>> {
    if let Some(baseline) = baseline {
        let regressions: Vec<RatchetIssue> = actual
            .iter()
            .filter(|(file, &n)| n > baseline.get(*file).copied().unwrap_or(0))
            .map(|(file, &n)| RatchetIssue {
                file: file.clone(),
                actual: n,
                expected: baseline.get(file).copied().unwrap_or(0),
                regression: true,
            })
            .collect();
        if !regressions.is_empty() {
            return Err(regressions);
        }
    }
    Ok(actual
        .iter()
        .filter(|(_, &n)| n > 0)
        .map(|(f, &n)| (f.clone(), n))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(pairs: &[(&str, u64)]) -> Counts {
        pairs.iter().map(|(f, n)| (f.to_string(), *n)).collect()
    }

    #[test]
    fn render_parse_round_trip() {
        let c = counts(&[
            ("crates/a/src/lib.rs", 3),
            ("src/lib.rs", 1),
            ("zero.rs", 0),
        ]);
        let parsed = parse(&render(&c)).expect("round trip parses");
        assert_eq!(
            parsed,
            counts(&[("crates/a/src/lib.rs", 3), ("src/lib.rs", 1)])
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("[other-section]\n").is_err());
        assert!(parse("\"a\" = 1\n").is_err()); // before section header
        assert!(parse("[panic-sites]\nnot a pair\n").is_err());
        assert!(parse("[panic-sites]\n\"a\" = x\n").is_err());
        assert!(parse("[panic-sites]\n\"a\" = 1\n\"a\" = 2\n").is_err());
    }

    #[test]
    fn exact_match_is_clean() {
        let c = counts(&[("a.rs", 2)]);
        assert!(check(&c, &c).is_empty());
    }

    #[test]
    fn regression_and_stale_both_fail() {
        let base = counts(&[("a.rs", 2), ("b.rs", 1)]);
        let issues = check(&counts(&[("a.rs", 3), ("b.rs", 1)]), &base);
        assert_eq!(issues.len(), 1);
        assert!(issues[0].regression);

        let issues = check(&counts(&[("a.rs", 1), ("b.rs", 1)]), &base);
        assert_eq!(issues.len(), 1);
        assert!(!issues[0].regression);

        // File gone clean entirely: stale entry must be blessed away.
        let issues = check(&counts(&[("a.rs", 2)]), &base);
        assert_eq!(issues.len(), 1);
        assert_eq!(issues[0].file, "b.rs");

        // New file with sites, absent from baseline: regression.
        let issues = check(&counts(&[("a.rs", 2), ("b.rs", 1), ("c.rs", 1)]), &base);
        assert_eq!(issues.len(), 1);
        assert!(issues[0].regression);
        assert_eq!(issues[0].expected, 0);
    }

    #[test]
    fn bless_lowers_but_never_raises() {
        let base = counts(&[("a.rs", 2)]);
        let blessed = bless(&counts(&[("a.rs", 1)]), Some(&base)).expect("lowering is fine");
        assert_eq!(blessed, counts(&[("a.rs", 1)]));

        assert!(bless(&counts(&[("a.rs", 3)]), Some(&base)).is_err());
        assert!(bless(&counts(&[("a.rs", 2), ("new.rs", 1)]), Some(&base)).is_err());

        // An existing-but-empty baseline is still a commitment.
        assert!(bless(&counts(&[("a.rs", 5)]), Some(&Counts::new())).is_err());

        // Only a missing baseline file may be seeded.
        let seeded = bless(&counts(&[("a.rs", 5)]), None).expect("seed");
        assert_eq!(seeded, counts(&[("a.rs", 5)]));
    }
}
