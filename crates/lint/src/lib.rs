//! `spq-lint`: the workspace invariant checker.
//!
//! Every PR in this repo leans on one standing invariant: query results
//! are byte-identical across execution modes, backends, worker counts
//! and fault schedules. That only holds because the codebase bans wall
//! clocks (membership is tick-driven), ambient randomness (seeded
//! `StdRng` everywhere) and unordered iteration anywhere that feeds
//! serialized output. Tests catch violations after the fact; this crate
//! catches them at the source level, as named lints:
//!
//! * `determinism/wall-clock` — no `Instant::now` / `SystemTime::now` /
//!   `thread_rng` / `random()` outside the sanctioned modules in
//!   [`config::WALL_CLOCK_SANCTIONED`].
//! * `determinism/unordered-iter` — no `HashMap`/`HashSet` iteration in
//!   the ordered-output modules of [`config::ORDERED_OUTPUT_MODULES`].
//! * `panic/ratchet` — `unwrap()`/`expect(`/`panic!`/`unreachable!`/
//!   `todo!` counts per file, exact-matched against the committed
//!   `lint-baseline.toml` and only ever allowed to go down.
//! * `hygiene/allow-justification` — every `#[allow(...)]` carries a
//!   justification comment.
//! * `bench/stats-discipline` — percentile helpers in `BENCH_*` writer
//!   modules route through `criterion::stats::Sample`.
//!
//! The scanner is a token-level lexer ([`lexer`]) that skips comments,
//! string/char/raw-string literals and `#[cfg(test)]`/`mod tests`
//! regions, so test code may unwrap freely and doc prose never trips a
//! lint. See docs/ARCHITECTURE.md, "Static analysis & invariants".

pub mod baseline;
pub mod config;
pub mod lexer;
pub mod lints;
pub mod report;

pub use report::RunOutcome;

use std::path::{Path, PathBuf};

/// Collects the workspace's lintable sources under `root`: `src/` and
/// every `crates/*/src/`, recursively — `vendor/` and integration
/// `tests/` directories are outside these roots by construction. The
/// list is sorted, so a run's output is deterministic.
pub fn workspace_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    let src = root.join("src");
    if src.is_dir() {
        collect_rs(&src, &mut files)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates)
            .map_err(|e| format!("cannot read {}: {e}", crates.display()))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            let src = dir.join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let path = entry
            .map_err(|e| format!("read_dir {}: {e}", dir.display()))?
            .path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative `/`-separated display path for `file` under
/// `root` (falls back to the absolute path if `file` is elsewhere).
pub fn relative_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Scans the workspace under `root` and runs every lint. Ratchet
/// comparison is left to the caller (the CLI), which owns the baseline
/// file.
pub fn run_workspace(root: &Path) -> Result<RunOutcome, String> {
    let files = workspace_files(root)?;
    if files.is_empty() {
        return Err(format!(
            "no Rust sources under {} — is this the workspace root?",
            root.display()
        ));
    }
    let mut outcome = RunOutcome::default();
    for file in &files {
        let rel = relative_path(root, file);
        let bytes =
            std::fs::read(file).map_err(|e| format!("cannot read {}: {e}", file.display()))?;
        let lexed = lexer::lex(&bytes);
        let findings = lints::check_file(&rel, &lexed);
        outcome.violations.extend(findings.violations);
        outcome.suppressed.extend(findings.suppressed);
        outcome
            .panic_counts
            .insert(rel.clone(), findings.panic_sites.len() as u64);
        outcome
            .stats_helpers
            .extend(findings.stats_helpers.iter().map(|h| format!("{rel}::{h}")));
        outcome.files.push(rel);
    }
    let sort_key = |v: &lints::Violation| (v.file.clone(), v.line, v.lint);
    outcome.violations.sort_by_key(sort_key);
    outcome.suppressed.sort_by_key(sort_key);
    outcome.stats_helpers.sort();
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repo_root() -> PathBuf {
        // crates/lint → workspace root.
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .unwrap()
    }

    #[test]
    fn workspace_walk_finds_this_crate_and_skips_vendor() {
        let files = workspace_files(&repo_root()).unwrap();
        let rels: Vec<String> = files
            .iter()
            .map(|f| relative_path(&repo_root(), f))
            .collect();
        assert!(rels.contains(&"crates/lint/src/lib.rs".to_string()));
        assert!(rels.contains(&"crates/core/src/serve.rs".to_string()));
        assert!(rels.contains(&"src/lib.rs".to_string()));
        assert!(!rels.iter().any(|r| r.starts_with("vendor/")));
        assert!(!rels.iter().any(|r| r.starts_with("tests/")));
        // Sorted ⇒ deterministic report order.
        let mut sorted = rels.clone();
        sorted.sort();
        assert_eq!(rels, sorted);
    }

    /// The tentpole's standing gate, as a unit test: the real tree is
    /// lint-clean. (The CLI integration test drives the binary; this
    /// one pins the library API.)
    #[test]
    fn real_workspace_has_no_violations() {
        let outcome = run_workspace(&repo_root()).unwrap();
        assert!(
            outcome.violations.is_empty(),
            "violations: {:#?}",
            outcome.violations
        );
    }

    /// The ordered-output modules ship with zero suppression
    /// directives — the determinism story has no carve-outs there.
    #[test]
    fn ordered_output_modules_carry_no_suppressions() {
        let outcome = run_workspace(&repo_root()).unwrap();
        let in_ordered: Vec<_> = outcome
            .suppressed
            .iter()
            .filter(|v| config::path_in(&v.file, config::ORDERED_OUTPUT_MODULES))
            .collect();
        assert!(in_ordered.is_empty(), "suppressions: {in_ordered:#?}");
    }

    /// The bench-stats pass is not vacuous: it actually inspected the
    /// known percentile helpers in the BENCH_* writer modules.
    #[test]
    fn bench_stats_pass_saw_the_writers() {
        let outcome = run_workspace(&repo_root()).unwrap();
        assert!(
            outcome
                .stats_helpers
                .iter()
                .any(|h| h.starts_with("crates/bench/src/trajectory.rs::")),
            "helpers seen: {:?}",
            outcome.stats_helpers
        );
    }
}
