//! Cluster configuration and virtual-cluster makespan simulation.
//!
//! The paper's experiments report MapReduce *job execution time* on a
//! 16-node cluster. Reproducing the shape of those curves needs two
//! things this module provides:
//!
//! * [`ClusterConfig`] — how many real worker threads execute tasks on the
//!   host machine (the measured baseline), and
//! * [`SimulatedCluster`] — a deterministic list scheduler that replays the
//!   measured per-task durations onto `slots` virtual task slots, to
//!   estimate what the makespan would be on a cluster of a different size.
//!   This is a classic `P || Cmax` greedy schedule — tasks are assigned in
//!   submission order to the earliest-free slot, which is exactly what a
//!   FIFO Hadoop scheduler does for a single job's task queue.

use crate::stats::JobStats;
use std::fmt;
use std::time::Duration;

/// Execution configuration for [`crate::JobRunner`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Number of real worker threads (task slots) on the host.
    pub workers: usize,
}

/// Environment variable overriding [`ClusterConfig::auto`]'s worker count.
///
/// Scope: this sizes **thread** pools inside one process — map/reduce
/// task slots and serve concurrency. It is orthogonal to the remote
/// backend's worker **processes**: there the count comes from the backend
/// spec itself (`remote:N`) and the addresses from the
/// `SPQ_REMOTE_WORKERS` variable (see `spq-core`'s `remote` module).
/// Setting `SPQ_WORKERS` neither changes how `remote:N` parses nor how
/// many worker processes serve it; and because the manager ships its full
/// executor configuration (cluster sizing included) in the provision
/// payload, a worker process never consults its *own* `SPQ_WORKERS` when
/// answering shard queries.
pub const WORKERS_ENV: &str = "SPQ_WORKERS";

/// Worker count [`ClusterConfig::auto`] falls back to when the host does
/// not report its parallelism (see [`ClusterConfig::auto`] for when that
/// happens and how to override it).
pub const WORKERS_FALLBACK: usize = 4;

/// Why a [`SPQ_WORKERS`](WORKERS_ENV) value could not be used.
///
/// Returned by [`ClusterConfig::try_auto`]; [`ClusterConfig::auto`] prints
/// the same diagnostic to stderr and falls back, so a typo in a deployment
/// manifest is *visible* instead of silently sizing the pool differently
/// than the operator asked for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkersEnvError {
    /// The value did not parse as an unsigned integer.
    NotANumber {
        /// The raw value found in the environment.
        value: String,
    },
    /// The value parsed but was zero (a pool needs at least one worker).
    Zero,
}

impl fmt::Display for WorkersEnvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkersEnvError::NotANumber { value } => write!(
                f,
                "{WORKERS_ENV}={value:?} is not a positive integer worker count"
            ),
            WorkersEnvError::Zero => {
                write!(f, "{WORKERS_ENV}=0 is invalid: need at least one worker")
            }
        }
    }
}

impl std::error::Error for WorkersEnvError {}

impl ClusterConfig {
    /// A cluster using every available core.
    ///
    /// Resolution order:
    ///
    /// 1. the [`SPQ_WORKERS`](WORKERS_ENV) environment variable, when set
    ///    to a positive integer — a malformed or zero value prints a
    ///    one-line diagnostic to stderr and falls through (use
    ///    [`try_auto`](Self::try_auto) to make that an error instead);
    /// 2. [`std::thread::available_parallelism`];
    /// 3. the fixed fallback of [`WORKERS_FALLBACK`] (= 4) workers.
    ///
    /// The fallback matters in containers and sandboxes where
    /// `available_parallelism` errors out (no `/proc`, restricted
    /// `sched_getaffinity`, …): there `auto()` silently becomes 4 workers,
    /// which also caps anything that derives its concurrency from it —
    /// e.g. `spq_core::engine::QueryEngine::serve_auto`. Set `SPQ_WORKERS`
    /// to size such hosts explicitly.
    pub fn auto() -> Self {
        match Self::try_auto() {
            Ok(config) => config,
            Err(e) => {
                eprintln!("spq-mapreduce: ignoring {e}; using host parallelism");
                Self::host_parallelism()
            }
        }
    }

    /// [`auto`](Self::auto) with strict [`SPQ_WORKERS`](WORKERS_ENV)
    /// handling: a malformed or zero value is returned as a
    /// [`WorkersEnvError`] instead of being logged and skipped — the right
    /// entry point for services that would rather fail fast at startup
    /// than run with a worker count the operator did not intend.
    pub fn try_auto() -> Result<Self, WorkersEnvError> {
        match parse_workers(std::env::var(WORKERS_ENV).ok().as_deref())? {
            Some(workers) => Ok(Self { workers }),
            None => Ok(Self::host_parallelism()),
        }
    }

    /// The host-reported parallelism with the documented fixed fallback,
    /// ignoring the environment override entirely.
    fn host_parallelism() -> Self {
        Self {
            workers: std::thread::available_parallelism().map_or(WORKERS_FALLBACK, |n| n.get()),
        }
    }

    /// A cluster with an explicit number of worker slots.
    ///
    /// # Panics
    ///
    /// Panics when `workers == 0`.
    pub fn with_workers(workers: usize) -> Self {
        assert!(workers > 0, "cluster needs at least one worker");
        Self { workers }
    }

    /// A single-threaded cluster — useful for deterministic debugging.
    pub fn sequential() -> Self {
        Self { workers: 1 }
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self::auto()
    }
}

/// Parses a `SPQ_WORKERS`-style override: `Ok(Some(n))` for a positive
/// integer, `Ok(None)` when the variable is unset, and a typed
/// [`WorkersEnvError`] for malformed or zero values (so callers can choose
/// between logging and failing — silently ignoring an operator-provided
/// value is not an option).
fn parse_workers(value: Option<&str>) -> Result<Option<usize>, WorkersEnvError> {
    let Some(raw) = value else { return Ok(None) };
    match raw.trim().parse::<usize>() {
        Ok(0) => Err(WorkersEnvError::Zero),
        Ok(n) => Ok(Some(n)),
        Err(_) => Err(WorkersEnvError::NotANumber {
            value: raw.to_owned(),
        }),
    }
}

/// A deterministic virtual cluster for makespan estimation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimulatedCluster {
    /// Number of parallel task slots.
    pub slots: usize,
}

impl SimulatedCluster {
    /// Creates a virtual cluster.
    ///
    /// # Panics
    ///
    /// Panics when `slots == 0`.
    pub fn new(slots: usize) -> Self {
        assert!(slots > 0, "simulated cluster needs at least one slot");
        Self { slots }
    }

    /// Greedy list-schedule of `durations` (in submission order) onto the
    /// slots; returns the makespan.
    pub fn makespan(&self, durations: &[Duration]) -> Duration {
        let mut slots = vec![Duration::ZERO; self.slots];
        for &d in durations {
            // Earliest-free slot; ties resolved by lowest index, so the
            // schedule is deterministic.
            let (idx, _) = slots
                .iter()
                .enumerate()
                .min_by_key(|&(i, &t)| (t, i))
                .expect("slots is non-empty");
            slots[idx] += d;
        }
        slots.into_iter().max().unwrap_or(Duration::ZERO)
    }

    /// Estimated job execution time on this virtual cluster: map-phase
    /// makespan + shuffle + reduce-phase makespan, using the real measured
    /// per-task durations recorded in `stats`.
    ///
    /// The paper sets the number of reducers equal to the number of grid
    /// cells and lets the cluster's ~100 cores process them in waves
    /// (footnote 1 of Section 6.3); the greedy schedule reproduces that
    /// wave behaviour including stragglers on skewed data.
    pub fn job_makespan(&self, stats: &JobStats) -> Duration {
        let map: Vec<Duration> = stats.map_tasks.iter().map(|t| t.duration).collect();
        let red: Vec<Duration> = stats.reduce_tasks.iter().map(|t| t.duration).collect();
        self.makespan(&map) + stats.shuffle_wall + self.makespan(&red)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TaskStats;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn single_slot_sums_everything() {
        let c = SimulatedCluster::new(1);
        assert_eq!(c.makespan(&[ms(5), ms(10), ms(1)]), ms(16));
    }

    #[test]
    fn enough_slots_take_the_maximum() {
        let c = SimulatedCluster::new(8);
        assert_eq!(c.makespan(&[ms(5), ms(10), ms(1)]), ms(10));
    }

    #[test]
    fn greedy_wave_scheduling() {
        // 4 equal tasks on 2 slots -> two waves.
        let c = SimulatedCluster::new(2);
        assert_eq!(c.makespan(&[ms(10); 4]), ms(20));
        // A straggler dominates: [10,10,10,30] on 2 slots.
        // slot0: 10+10=20, slot1: 10+30=40 (greedy assigns in order).
        assert_eq!(c.makespan(&[ms(10), ms(10), ms(10), ms(30)]), ms(40));
    }

    #[test]
    fn empty_schedule_is_zero() {
        assert_eq!(SimulatedCluster::new(4).makespan(&[]), Duration::ZERO);
    }

    #[test]
    fn job_makespan_combines_phases() {
        let stats = JobStats {
            map_tasks: vec![
                TaskStats {
                    duration: ms(10),
                    ..Default::default()
                },
                TaskStats {
                    duration: ms(10),
                    ..Default::default()
                },
            ],
            reduce_tasks: vec![TaskStats {
                duration: ms(7),
                ..Default::default()
            }],
            shuffle_wall: ms(3),
            ..Default::default()
        };
        // 2 slots: map makespan 10, shuffle 3, reduce 7.
        assert_eq!(SimulatedCluster::new(2).job_makespan(&stats), ms(20));
        // 1 slot: 20 + 3 + 7.
        assert_eq!(SimulatedCluster::new(1).job_makespan(&stats), ms(30));
    }

    #[test]
    fn more_slots_never_hurt() {
        let durations: Vec<Duration> = (1..40u64).map(ms).collect();
        let mut prev = SimulatedCluster::new(1).makespan(&durations);
        for slots in 2..12 {
            let cur = SimulatedCluster::new(slots).makespan(&durations);
            assert!(cur <= prev, "slots {slots}: {cur:?} > {prev:?}");
            prev = cur;
        }
    }

    #[test]
    #[should_panic]
    fn zero_slots_rejected() {
        let _ = SimulatedCluster::new(0);
    }

    #[test]
    #[should_panic]
    fn zero_workers_rejected() {
        let _ = ClusterConfig::with_workers(0);
    }

    #[test]
    fn config_constructors() {
        assert!(ClusterConfig::auto().workers >= 1);
        assert_eq!(ClusterConfig::sequential().workers, 1);
        assert_eq!(ClusterConfig::with_workers(5).workers, 5);
    }

    #[test]
    fn workers_env_parsing() {
        // Unset: defer to host parallelism.
        assert_eq!(parse_workers(None), Ok(None));
        // Valid positive integers, whitespace tolerated.
        assert_eq!(parse_workers(Some("3")), Ok(Some(3)));
        assert_eq!(parse_workers(Some(" 12 ")), Ok(Some(12)));
        // Malformed values carry the offending text in the diagnostic.
        for bad in ["", "-2", "not a number", "3.5", "4x"] {
            assert_eq!(
                parse_workers(Some(bad)),
                Err(WorkersEnvError::NotANumber {
                    value: bad.to_owned()
                }),
                "{bad:?}"
            );
        }
        // Zero is its own diagnostic (it parses, but can't run tasks).
        assert_eq!(parse_workers(Some("0")), Err(WorkersEnvError::Zero));
        assert_eq!(parse_workers(Some(" 0 ")), Err(WorkersEnvError::Zero));
    }

    #[test]
    fn workers_env_errors_render_the_variable_name() {
        let e = WorkersEnvError::NotANumber {
            value: "bogus".to_owned(),
        };
        assert!(e.to_string().contains("SPQ_WORKERS"));
        assert!(e.to_string().contains("bogus"));
        assert!(WorkersEnvError::Zero.to_string().contains("SPQ_WORKERS=0"));
    }

    #[test]
    fn workers_env_overrides_auto() {
        // Other tests only require auto().workers >= 1, which holds for
        // any value this test can set, so the process-global env var is
        // safe to touch here.
        std::env::set_var(WORKERS_ENV, "3");
        assert_eq!(ClusterConfig::auto().workers, 3);
        assert_eq!(
            ClusterConfig::try_auto(),
            Ok(ClusterConfig::with_workers(3))
        );
        // Malformed: auto() logs and falls back; try_auto() surfaces it.
        std::env::set_var(WORKERS_ENV, "bogus");
        assert!(ClusterConfig::auto().workers >= 1); // diagnosed, not a panic
        assert_eq!(
            ClusterConfig::try_auto(),
            Err(WorkersEnvError::NotANumber {
                value: "bogus".to_owned()
            })
        );
        std::env::set_var(WORKERS_ENV, "0");
        assert_eq!(ClusterConfig::try_auto(), Err(WorkersEnvError::Zero));
        std::env::remove_var(WORKERS_ENV);
        assert!(ClusterConfig::try_auto().is_ok());
    }
}
