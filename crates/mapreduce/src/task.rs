//! The MapReduce task contract: map, partition, sort, group, reduce.

use crate::counters::Counters;
use crate::remote::{ByteReader, CodecError};
use std::cmp::Ordering;
use std::iter::Peekable;
use std::vec::IntoIter;

/// A complete MapReduce job description.
///
/// This bundles what Hadoop spreads over four classes: the `Mapper`, the
/// custom `Partitioner` (Section 2.1 of the paper), the sort `Comparator`
/// over the composite key and the grouping comparator, and the `Reducer`.
///
/// The composite-key idiom works exactly like Hadoop's secondary sort:
/// [`partition`](MapReduceTask::partition) and
/// [`group_eq`](MapReduceTask::group_eq) look only at the *natural* part of
/// the key (for SPQ: the grid cell id), while
/// [`sort_cmp`](MapReduceTask::sort_cmp) orders the *full* key, so the
/// values of one group arrive at the reducer in a deliberate order (tag,
/// keyword length, or score).
///
/// ## Sort-free grouping (sub-buckets)
///
/// A task whose sort order has a cheap, low-cardinality primary component
/// can opt out of the full reducer-side comparison sort: override
/// [`num_subbuckets`](MapReduceTask::num_subbuckets) and
/// [`subbucket`](MapReduceTask::subbucket) so the map side buckets each
/// record into its *sort run* directly. The shuffle concatenates the runs
/// in sub-bucket order (map-task order within a run), and the reducer
/// sorts only the runs for which
/// [`subbucket_needs_sort`](MapReduceTask::subbucket_needs_sort) still
/// returns `true` — shrinking the sorted range from "all records" to one
/// run, or to nothing.
///
/// Contract: for any two keys `a`, `b` routed to the *same reducer*,
/// `subbucket(a) < subbucket(b)` must imply `sort_cmp(a, b) == Less`. The
/// SPQ tasks satisfy this trivially — with one reducer per grid cell, all
/// keys of a reducer share the cell and the sub-bucket is exactly the
/// data-before-features tag.
pub trait MapReduceTask: Sync {
    /// One input record (the paper's data or feature object).
    type Input: Sync;
    /// The composite key emitted by the map function.
    type Key: Send + Clone;
    /// The value emitted by the map function.
    type Value: Send;
    /// One output record of the reduce function.
    type Output: Send;

    /// Wire identifier under which remote workers know this task type, or
    /// `None` (the default) for tasks that only run in-process.
    ///
    /// A task that sets this must also implement the six remote codec
    /// hooks below and be registered on the worker under the same name
    /// (see `spq_mapreduce::remote::WorkerRegistry`). The
    /// `RemoteBackend` refuses tasks without a kind instead of shipping
    /// them half-serialized.
    const REMOTE_KIND: Option<&'static str> = None;

    /// Serializes the task's configuration (everything `decode_spec`
    /// needs to rebuild an equivalent task on the worker). Only called
    /// when [`REMOTE_KIND`](Self::REMOTE_KIND) is `Some`; the default
    /// writes nothing.
    fn encode_spec(&self, out: &mut Vec<u8>) {
        let _ = out;
    }

    /// Rebuilds the task from bytes written by
    /// [`encode_spec`](Self::encode_spec). The default rejects the
    /// payload, so a task that sets `REMOTE_KIND` without a codec fails
    /// loudly on the worker instead of silently misbehaving.
    fn decode_spec(r: &mut ByteReader<'_>) -> Result<Self, CodecError>
    where
        Self: Sized,
    {
        let _ = r;
        Err(CodecError::invalid("task implements no remote spec codec"))
    }

    /// Serializes one input record. Only called when `REMOTE_KIND` is
    /// `Some`.
    fn encode_input(record: &Self::Input, out: &mut Vec<u8>)
    where
        Self: Sized,
    {
        let _ = (record, out);
    }

    /// Decodes one input record written by
    /// [`encode_input`](Self::encode_input).
    fn decode_input(r: &mut ByteReader<'_>) -> Result<Self::Input, CodecError>
    where
        Self: Sized,
    {
        let _ = r;
        Err(CodecError::invalid("task implements no remote input codec"))
    }

    /// Serializes one output record. Only called when `REMOTE_KIND` is
    /// `Some`.
    fn encode_output(record: &Self::Output, out: &mut Vec<u8>)
    where
        Self: Sized,
    {
        let _ = (record, out);
    }

    /// Decodes one output record written by
    /// [`encode_output`](Self::encode_output).
    fn decode_output(r: &mut ByteReader<'_>) -> Result<Self::Output, CodecError>
    where
        Self: Sized,
    {
        let _ = r;
        Err(CodecError::invalid(
            "task implements no remote output codec",
        ))
    }

    /// Number of reduce tasks `R` (one per grid cell in the paper).
    fn num_reducers(&self) -> usize;

    /// The map function, called once per input record.
    fn map(&self, record: &Self::Input, ctx: &mut MapContext<'_, Self>);

    /// Routes a key to a reducer in `0..num_reducers()`; must depend only
    /// on the natural key so that all records of a group meet at one
    /// reducer.
    fn partition(&self, key: &Self::Key) -> usize;

    /// Total order used to sort each reducer's input (the customized
    /// Comparator of the paper).
    fn sort_cmp(&self, a: &Self::Key, b: &Self::Key) -> Ordering;

    /// Grouping comparator: records whose keys compare equal here form one
    /// reduce group. Defaults to "sorts equal".
    fn group_eq(&self, a: &Self::Key, b: &Self::Key) -> bool {
        self.sort_cmp(a, b) == Ordering::Equal
    }

    /// Number of pre-grouped sort runs per reducer. The default (1) keeps
    /// the classic behaviour: one run per reducer, fully sorted.
    fn num_subbuckets(&self) -> usize {
        1
    }

    /// The sort run a key belongs to, in `0..num_subbuckets()`. Within one
    /// reducer, run index must be consistent with `sort_cmp` (see the
    /// trait-level contract).
    fn subbucket(&self, _key: &Self::Key) -> usize {
        0
    }

    /// Whether the concatenated run `sub` still needs the reducer-side
    /// sort. Return `false` when any map-task-ordered concatenation of the
    /// run is acceptable to [`reduce`](MapReduceTask::reduce) — the run is
    /// then handed over exactly as shuffled, comparison-free.
    fn subbucket_needs_sort(&self, _sub: usize) -> bool {
        true
    }

    /// The reduce function, called once per group with the values in
    /// sort order. Returning before `values` is exhausted is the early
    /// termination of Section 5 — the runtime drains and counts the
    /// skipped records (counter `reduce.records_skipped`).
    fn reduce(
        &self,
        group: &Self::Key,
        values: &mut GroupValues<'_, Self>,
        ctx: &mut ReduceContext<'_, Self::Output>,
    );
}

/// Map-side emit context: partitions records into per-reducer, per-run
/// buckets as they are emitted and carries the task-local counters.
///
/// Buckets are laid out flat as `reducer * num_subbuckets + subbucket`.
pub struct MapContext<'a, T: MapReduceTask + ?Sized> {
    pub(crate) buckets: &'a mut Vec<Vec<(T::Key, T::Value)>>,
    pub(crate) num_subbuckets: usize,
    pub(crate) counters: &'a mut Counters,
    pub(crate) records_out: &'a mut u64,
}

impl<T: MapReduceTask + ?Sized> MapContext<'_, T> {
    /// Emits one key/value pair (the paper's `output ⟨key, value⟩`).
    #[inline]
    pub fn emit(&mut self, task: &T, key: T::Key, value: T::Value) {
        let r = task.partition(&key);
        let sub = task.subbucket(&key);
        debug_assert!(sub < self.num_subbuckets, "subbucket {} out of range", sub);
        let slot = r * self.num_subbuckets + sub;
        debug_assert!(slot < self.buckets.len(), "partition {} out of range", r);
        self.buckets[slot].push((key, value));
        *self.records_out += 1;
    }

    /// Task-local counters.
    #[inline]
    pub fn counters(&mut self) -> &mut Counters {
        self.counters
    }
}

/// Reduce-side output context.
pub struct ReduceContext<'a, O> {
    pub(crate) out: &'a mut Vec<O>,
    pub(crate) counters: &'a mut Counters,
}

impl<O> ReduceContext<'_, O> {
    /// Emits one output record.
    #[inline]
    pub fn emit(&mut self, record: O) {
        self.out.push(record);
    }

    /// Task-local counters.
    #[inline]
    pub fn counters(&mut self) -> &mut Counters {
        self.counters
    }
}

/// Streaming iterator over the `(key, value)` pairs of one reduce group,
/// in sort order.
///
/// Yields owned pairs (each record carries its own composite key, exactly
/// like Hadoop where the current key mutates as the value iterator
/// advances). The reducer may stop consuming at any point — the runtime
/// drains the rest of the group and accounts it as skipped.
pub struct GroupValues<'a, T: MapReduceTask + ?Sized> {
    task: &'a T,
    group_key: &'a T::Key,
    source: &'a mut Peekable<IntoIter<(T::Key, T::Value)>>,
    skipped: u64,
}

impl<'a, T: MapReduceTask + ?Sized> GroupValues<'a, T> {
    pub(crate) fn new(
        task: &'a T,
        group_key: &'a T::Key,
        source: &'a mut Peekable<IntoIter<(T::Key, T::Value)>>,
    ) -> Self {
        Self {
            task,
            group_key,
            source,
            skipped: 0,
        }
    }

    /// Consumes whatever the reducer did not, counting skipped records.
    pub(crate) fn drain_remaining(&mut self) -> u64 {
        while self.next().is_some() {
            self.skipped += 1;
        }
        self.skipped
    }
}

impl<T: MapReduceTask + ?Sized> Iterator for GroupValues<'_, T> {
    type Item = (T::Key, T::Value);

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        match self.source.peek() {
            Some((k, _)) if self.task.group_eq(k, self.group_key) => self.source.next(),
            _ => None,
        }
    }
}
