//! An in-process MapReduce runtime modelled on Hadoop's execution contract.
//!
//! The EDBT 2017 SPQ paper implements its algorithms as single Hadoop
//! MapReduce jobs and leans on three Hadoop extension points (Section 2.1):
//!
//! 1. a custom **Partitioner** that routes map output to reducers by the
//!    *natural key* (the grid cell id) of a composite key,
//! 2. a custom **sort Comparator** over the full composite key, so values
//!    arrive at the reducer in a deliberate order (data objects before
//!    feature objects; features by increasing keyword length for eSPQlen or
//!    decreasing score for eSPQsco), and
//! 3. a **grouping comparator** that makes all records of one cell a single
//!    reduce group despite their differing composite keys.
//!
//! This crate reproduces that contract faithfully, in process, so the
//! paper's algorithms can be expressed exactly as their pseudocode:
//!
//! * [`MapReduceTask`] — one trait bundling map, partition, sort, group and
//!   reduce (the paper's Map/Partitioner/Comparator/Reduce quadruple).
//! * [`JobRunner`] — executes a task over horizontally partitioned input
//!   splits on a bounded worker pool, with a sort-based shuffle.
//! * [`ExecutionBackend`] — the placement seam underneath the runner:
//!   *where* a planned job's map/reduce tasks run. [`LocalPool`] is the
//!   in-process implementation; [`remote::RemoteBackend`] ships whole
//!   jobs to worker processes over the framed TCP protocol in [`remote`],
//!   with backoff connect, per-task deadlines, worker exclusion and
//!   deterministic fault injection.
//! * [`GroupValues`] — the streaming per-group value iterator handed to
//!   reducers; **early termination** is simply returning before the
//!   iterator is exhausted, and the runtime accounts skipped records.
//! * [`Counters`] — Hadoop-style named counters for instrumentation.
//! * [`SimulatedCluster`] — replays measured task durations onto a
//!   configurable number of virtual slots, to estimate the makespan on a
//!   cluster larger than the host machine (the paper used 16 nodes).
//!
//! The runtime is synchronous and in-memory: splits are `Vec`s, the shuffle
//! is a partitioned stable sort. That preserves what the paper measures —
//! per-reducer compute (`O(|Oi|·|Fi|)` worst case for pSPQ) and shuffle
//! volume (duplication factor) — while staying deterministic and
//! dependency-light.

pub mod backend;
pub mod cluster;
pub mod counters;
pub mod job;
pub mod pool;
pub mod remote;
pub mod stats;
pub mod task;

pub use backend::{BackendDescriptor, ExecutionBackend, LocalPool};
pub use cluster::{ClusterConfig, SimulatedCluster, WorkersEnvError};
pub use counters::Counters;
pub use job::{JobContext, JobError, JobOutput, JobRunner};
pub use remote::{FaultPlan, RemoteBackend, WorkerRegistry, WorkerServer};
pub use stats::{JobStats, Phase, TaskStats};
pub use task::{GroupValues, MapContext, MapReduceTask, ReduceContext};
