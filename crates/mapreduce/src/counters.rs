//! Hadoop-style named counters.
//!
//! Every map and reduce task accumulates counters locally (no contention on
//! the hot path); the runtime merges them into the job-level totals after
//! each phase. The SPQ algorithms use them to report how much work early
//! termination avoided (features examined vs. skipped, duplicates created,
//! map-side pruning), which is the quantitative backbone of EXPERIMENTS.md.

use std::fmt;

/// A set of named monotonic counters.
///
/// Backed by a short flat vector: counter cardinality is tiny (tens), and
/// counters are bumped on the map/reduce hot path — once per record — so
/// the lookup is a linear scan that compares the `&'static str` *pointer*
/// first (the names are interned constants, so repeat bumps of the same
/// counter hit on the first pointer compare) and falls back to a string
/// compare only for distinct constants with equal text. This is several
/// times cheaper per bump than the tree map it replaces.
#[derive(Debug, Clone, Default)]
pub struct Counters {
    values: Vec<(&'static str, u64)>,
}

impl Counters {
    /// Creates an empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the counter `name`, creating it at zero if absent.
    #[inline]
    pub fn add(&mut self, name: &'static str, n: u64) {
        for (k, v) in &mut self.values {
            if std::ptr::eq(*k as *const str, name as *const str) || *k == name {
                *v += n;
                return;
            }
        }
        self.values.push((name, n));
    }

    /// Increments the counter by one.
    #[inline]
    pub fn inc(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Current value of a counter (0 if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.values
            .iter()
            .find(|(k, _)| *k == name)
            .map_or(0, |&(_, v)| v)
    }

    /// Resets every counter while keeping the backing allocation, so a
    /// recycled `Counters` (see `spq_mapreduce::JobContext`) starts empty
    /// without re-allocating on its first bump.
    pub fn clear(&mut self) {
        self.values.clear();
    }

    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: &Counters) {
        for &(name, v) in &other.values {
            self.add(name, v);
        }
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> {
        let mut sorted = self.values.clone();
        sorted.sort_unstable_by_key(|&(k, _)| k);
        sorted.into_iter()
    }

    /// True if no counter was ever touched.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl PartialEq for Counters {
    fn eq(&self, other: &Self) -> bool {
        self.iter().eq(other.iter())
    }
}

impl Eq for Counters {}

impl fmt::Display for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, v) in self.iter() {
            writeln!(f, "  {name:<32} {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let mut c = Counters::new();
        c.add("a", 3);
        c.inc("a");
        c.inc("b");
        assert_eq!(c.get("a"), 4);
        assert_eq!(c.get("b"), 1);
        assert_eq!(c.get("missing"), 0);
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = Counters::new();
        a.add("x", 2);
        a.add("y", 5);
        let mut b = Counters::new();
        b.add("y", 1);
        b.add("z", 7);
        a.merge(&b);
        assert_eq!(a.get("x"), 2);
        assert_eq!(a.get("y"), 6);
        assert_eq!(a.get("z"), 7);
    }

    #[test]
    fn iteration_is_name_ordered() {
        let mut c = Counters::new();
        c.inc("zeta");
        c.inc("alpha");
        let names: Vec<_> = c.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }

    #[test]
    fn display_renders_lines() {
        let mut c = Counters::new();
        c.add("records", 12);
        let s = c.to_string();
        assert!(s.contains("records"));
        assert!(s.contains("12"));
    }

    #[test]
    fn empty_state() {
        let c = Counters::new();
        assert!(c.is_empty());
        assert_eq!(c.to_string(), "");
    }

    #[test]
    fn clear_resets_values() {
        let mut c = Counters::new();
        c.add("records", 12);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.get("records"), 0);
        c.inc("records");
        assert_eq!(c.get("records"), 1);
    }
}
