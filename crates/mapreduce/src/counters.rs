//! Hadoop-style named counters.
//!
//! Every map and reduce task accumulates counters locally (no contention on
//! the hot path); the runtime merges them into the job-level totals after
//! each phase. The SPQ algorithms use them to report how much work early
//! termination avoided (features examined vs. skipped, duplicates created,
//! map-side pruning), which is the quantitative backbone of EXPERIMENTS.md.

use std::collections::BTreeMap;
use std::fmt;

/// A set of named monotonic counters.
///
/// Backed by a `BTreeMap` so that rendered output is deterministically
/// ordered; counter cardinality is tiny (tens), so lookup cost is
/// irrelevant next to the work being counted.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counters {
    values: BTreeMap<&'static str, u64>,
}

impl Counters {
    /// Creates an empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the counter `name`, creating it at zero if absent.
    #[inline]
    pub fn add(&mut self, name: &'static str, n: u64) {
        *self.values.entry(name).or_insert(0) += n;
    }

    /// Increments the counter by one.
    #[inline]
    pub fn inc(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Current value of a counter (0 if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.values.get(name).copied().unwrap_or(0)
    }

    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: &Counters) {
        for (&name, &v) in &other.values {
            self.add(name, v);
        }
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.values.iter().map(|(&k, &v)| (k, v))
    }

    /// True if no counter was ever touched.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl fmt::Display for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, v) in self.iter() {
            writeln!(f, "  {name:<32} {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let mut c = Counters::new();
        c.add("a", 3);
        c.inc("a");
        c.inc("b");
        assert_eq!(c.get("a"), 4);
        assert_eq!(c.get("b"), 1);
        assert_eq!(c.get("missing"), 0);
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = Counters::new();
        a.add("x", 2);
        a.add("y", 5);
        let mut b = Counters::new();
        b.add("y", 1);
        b.add("z", 7);
        a.merge(&b);
        assert_eq!(a.get("x"), 2);
        assert_eq!(a.get("y"), 6);
        assert_eq!(a.get("z"), 7);
    }

    #[test]
    fn iteration_is_name_ordered() {
        let mut c = Counters::new();
        c.inc("zeta");
        c.inc("alpha");
        let names: Vec<_> = c.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }

    #[test]
    fn display_renders_lines() {
        let mut c = Counters::new();
        c.add("records", 12);
        let s = c.to_string();
        assert!(s.contains("records"));
        assert!(s.contains("12"));
    }

    #[test]
    fn empty_state() {
        let c = Counters::new();
        assert!(c.is_empty());
        assert_eq!(c.to_string(), "");
    }
}
