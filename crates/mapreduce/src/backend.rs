//! Pluggable execution backends: where a planned job's tasks actually run.
//!
//! [`crate::JobRunner`] owns the *contract* of a job — map every split,
//! shuffle by the task's partitioner/comparator, reduce every partition —
//! but it should not own the *placement* of that work. The paper makes the
//! same separation: its algorithms are expressed against Hadoop's task
//! interfaces precisely so the cluster substrate underneath can change
//! without touching a line of the map/reduce logic. [`ExecutionBackend`]
//! is that seam in this codebase:
//!
//! * [`LocalPool`] — the in-process bounded worker pool that has executed
//!   every job since PR 1, now factored behind the trait. This is the
//!   reference backend: deterministic output for a fixed task and input,
//!   regardless of worker count.
//! * [`RemoteBackend`](crate::remote::RemoteBackend) places whole jobs on
//!   worker *processes* over a framed TCP protocol (see [`crate::remote`]),
//!   retrying a dead worker's jobs on survivors; shard-per-node serving is
//!   built one layer up, in `spq-core`'s sharded and remote engines, where
//!   the SPQ top-k merge makes the cross-shard gather trivial.
//!
//! The trait is deliberately *not* object-safe ([`ExecutionBackend::execute`]
//! is generic over the task type, mirroring [`crate::JobRunner::run_in`]):
//! backends are chosen statically, and callers that need runtime selection
//! wrap backends in an enum (as `spq-core`'s service layer does).
//!
//! ```
//! use spq_mapreduce::backend::{ExecutionBackend, LocalPool};
//! use spq_mapreduce::{ClusterConfig, GroupValues, JobContext, MapContext, MapReduceTask,
//!     ReduceContext};
//! use std::cmp::Ordering;
//!
//! struct CharCount;
//! impl MapReduceTask for CharCount {
//!     type Input = String;
//!     type Key = char;
//!     type Value = u64;
//!     type Output = (char, u64);
//!     fn num_reducers(&self) -> usize { 2 }
//!     fn map(&self, line: &String, ctx: &mut MapContext<'_, Self>) {
//!         for c in line.chars() { ctx.emit(self, c, 1); }
//!     }
//!     fn partition(&self, key: &char) -> usize { *key as usize % 2 }
//!     fn sort_cmp(&self, a: &char, b: &char) -> Ordering { a.cmp(b) }
//!     fn reduce(&self, c: &char, values: &mut GroupValues<'_, Self>,
//!               ctx: &mut ReduceContext<'_, (char, u64)>) {
//!         ctx.emit((*c, values.map(|(_, n)| n).sum()));
//!     }
//! }
//!
//! let backend = LocalPool::new(ClusterConfig::with_workers(2));
//! assert_eq!(backend.descriptor().name, "local");
//! let out = backend
//!     .execute(&JobContext::new(), &CharCount, &[vec!["abba".to_owned()]])
//!     .unwrap();
//! assert_eq!(out.len(), 2); // 'a' and 'b'
//! ```

use crate::cluster::ClusterConfig;
use crate::counters::Counters;
use crate::job::{JobContext, JobError, JobOutput, COUNTER_REDUCE_GROUPS, COUNTER_REDUCE_SKIPPED};
use crate::pool::run_tasks;
use crate::stats::{JobStats, Phase, TaskStats};
use crate::task::{GroupValues, MapContext, MapReduceTask, ReduceContext};
use parking_lot::Mutex;
use std::fmt;
use std::time::Instant;

/// A static description of a backend, for logs, stats and bench reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackendDescriptor {
    /// Short stable identifier (`"local"`, `"sharded"`, …).
    pub name: &'static str,
    /// Degree of task parallelism the backend schedules onto (worker
    /// threads for [`LocalPool`]; nodes for a distributed backend).
    pub parallelism: usize,
}

impl fmt::Display for BackendDescriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.name, self.parallelism)
    }
}

/// Executes one planned MapReduce job: map tasks over the given splits,
/// shuffle by the task's partition/sort/group contract, reduce tasks over
/// every partition — returning the grouped output together with merged
/// counters and per-task statistics.
///
/// The contract every implementation must honour (it is what all of
/// `spq-core`'s byte-identity guarantees rest on):
///
/// * **Determinism** — for a fixed task and input, the returned records
///   and counters are identical across calls and across backends; only
///   measured durations may differ.
/// * **Output order** — [`JobOutput`] holds outputs in reducer order, with
///   each reducer's records in its emission order.
/// * **Failure** — a panicking task surfaces as [`JobError::TaskPanicked`]
///   with the phase and task index; it never tears down the caller.
pub trait ExecutionBackend {
    /// Runs `task` over `splits`, recycling per-task scratch state through
    /// `ctx` (see [`JobContext`]).
    fn execute<T: MapReduceTask>(
        &self,
        ctx: &JobContext,
        task: &T,
        splits: &[Vec<T::Input>],
    ) -> Result<JobOutput<T::Output>, JobError>;

    /// The backend's static description.
    fn descriptor(&self) -> BackendDescriptor;
}

/// The in-process thread-pool backend — the bounded worker pool the
/// runtime has always used, now behind [`ExecutionBackend`].
///
/// Map tasks run on at most [`ClusterConfig::workers`] threads, the
/// shuffle concatenates pre-grouped sub-bucket runs into exactly-sized
/// buffers on the submitting thread, and reduce tasks run on the pool
/// again. See [`crate::JobRunner`] for the convenience wrapper most
/// callers use.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LocalPool {
    config: ClusterConfig,
}

impl LocalPool {
    /// Creates a pool backend over the given cluster configuration.
    pub fn new(config: ClusterConfig) -> Self {
        Self { config }
    }

    /// The cluster configuration the pool schedules onto.
    pub fn config(&self) -> ClusterConfig {
        self.config
    }
}

type MapTaskResult<T> = (
    Vec<Vec<(<T as MapReduceTask>::Key, <T as MapReduceTask>::Value)>>,
    TaskStats,
    Counters,
);

/// One reducer's shuffled input — the concatenated records plus the start
/// offset of each sort run — handed off to its reduce task exactly once.
type ReduceInput<T> = (
    Vec<(<T as MapReduceTask>::Key, <T as MapReduceTask>::Value)>,
    Vec<usize>,
);

/// See [`ReduceInput`].
type ReduceSlot<T> = Mutex<Option<ReduceInput<T>>>;

/// One map task's emitted buckets, indexed `reducer * num_subs + sub`.
type MapBuckets<T> = Vec<Vec<(<T as MapReduceTask>::Key, <T as MapReduceTask>::Value)>>;

impl ExecutionBackend for LocalPool {
    fn execute<T: MapReduceTask>(
        &self,
        ctx: &JobContext,
        task: &T,
        splits: &[Vec<T::Input>],
    ) -> Result<JobOutput<T::Output>, JobError> {
        let num_reducers = task.num_reducers();
        assert!(num_reducers > 0, "job needs at least one reducer");
        let num_subs = task.num_subbuckets();
        assert!(num_subs > 0, "job needs at least one subbucket");
        let job_start = Instant::now();

        // ---- Map phase -------------------------------------------------
        let map_start = Instant::now();
        let map_results: Vec<MapTaskResult<T>> =
            run_tasks(self.config.workers, splits.len(), |i| {
                let t0 = Instant::now();
                let mut buckets: Vec<Vec<(T::Key, T::Value)>> =
                    (0..num_reducers * num_subs).map(|_| Vec::new()).collect();
                let mut counters = ctx.checkout_counters();
                let mut records_out = 0u64;
                let mut ctx = MapContext {
                    buckets: &mut buckets,
                    num_subbuckets: num_subs,
                    counters: &mut counters,
                    records_out: &mut records_out,
                };
                for record in &splits[i] {
                    task.map(record, &mut ctx);
                }
                let stats = TaskStats {
                    duration: t0.elapsed(),
                    records_in: splits[i].len() as u64,
                    records_out,
                };
                (buckets, stats, counters)
            })
            .map_err(|p| JobError::TaskPanicked {
                phase: Phase::Map,
                task_index: p.task_index,
                message: p.message,
            })?;
        let map_wall = map_start.elapsed();

        // ---- Shuffle: regroup map buckets by reducer --------------------
        // Each reducer's input is assembled run by run (sub-bucket order,
        // map-task order within a run) into one exactly-sized buffer, so
        // the runs arrive pre-grouped and nothing is re-allocated mid-way.
        // The deterministic concatenation order, together with the
        // deterministic per-run sort, makes the job deterministic under
        // any worker count.
        let shuffle_start = Instant::now();
        let mut counters = Counters::new();
        let mut map_tasks = Vec::with_capacity(map_results.len());
        let mut all_buckets: Vec<MapBuckets<T>> = Vec::with_capacity(map_results.len());
        let mut shuffle_records = 0u64;
        for (buckets, stats, task_counters) in map_results {
            counters.merge(&task_counters);
            ctx.recycle_counters(task_counters);
            shuffle_records += stats.records_out;
            map_tasks.push(stats);
            all_buckets.push(buckets);
        }
        let mut reducer_inputs: Vec<ReduceInput<T>> = Vec::with_capacity(num_reducers);
        for r in 0..num_reducers {
            let total: usize = all_buckets
                .iter()
                .map(|b| {
                    (0..num_subs)
                        .map(|s| b[r * num_subs + s].len())
                        .sum::<usize>()
                })
                .sum();
            let mut input = Vec::with_capacity(total);
            let mut run_starts = Vec::with_capacity(num_subs + 1);
            for sub in 0..num_subs {
                run_starts.push(input.len());
                for buckets in &mut all_buckets {
                    input.append(&mut buckets[r * num_subs + sub]);
                }
            }
            run_starts.push(input.len());
            reducer_inputs.push((input, run_starts));
        }
        let shuffle_wall = shuffle_start.elapsed();

        // ---- Reduce phase ----------------------------------------------
        // The reducer-side sort (Hadoop's merge) is attributed to the
        // reduce task's duration, as in Hadoop. Only runs the task did not
        // pre-group on the map side are sorted — for a fully sub-bucketed
        // task this phase is comparison-free.
        let reduce_start = Instant::now();
        let slots: Vec<ReduceSlot<T>> = reducer_inputs
            .into_iter()
            .map(|v| Mutex::new(Some(v)))
            .collect();
        let reduce_results: Vec<(Vec<T::Output>, TaskStats, Counters)> =
            run_tasks(self.config.workers, num_reducers, |r| {
                let t0 = Instant::now();
                let (mut buffer, run_starts) =
                    slots[r].lock().take().expect("reduce input taken once");
                let records_in = buffer.len() as u64;
                // Unstable sort: Hadoop's merge likewise leaves the order
                // of equal composite keys unspecified; pdqsort is
                // deterministic for a given input order, which the
                // map-task-ordered concatenation above fixes.
                for sub in 0..num_subs {
                    if task.subbucket_needs_sort(sub) {
                        buffer[run_starts[sub]..run_starts[sub + 1]]
                            .sort_unstable_by(|a, b| task.sort_cmp(&a.0, &b.0));
                    }
                }
                // Canary for the sub-bucket contract (task.rs): sort
                // order must never go backwards across a run boundary,
                // or grouping would split a group across runs and
                // reduce() would run on partial values. (Order *inside*
                // a run the task declared unsorted is the task's own
                // responsibility — it promised order-insensitivity.)
                #[cfg(debug_assertions)]
                for &b in run_starts.iter().take(num_subs).skip(1) {
                    if b > 0 && b < buffer.len() {
                        debug_assert!(
                            task.sort_cmp(&buffer[b - 1].0, &buffer[b].0)
                                != std::cmp::Ordering::Greater,
                            "sub-bucket contract violated: subbucket() disagrees with \
                             sort_cmp() for keys routed to reducer {r}"
                        );
                    }
                }

                let mut out = Vec::new();
                let mut task_counters = ctx.checkout_counters();
                let mut source = buffer.into_iter().peekable();
                while let Some((group_key, _)) = source.peek() {
                    let group_key = group_key.clone();
                    let mut values = GroupValues::new(task, &group_key, &mut source);
                    let mut ctx = ReduceContext {
                        out: &mut out,
                        counters: &mut task_counters,
                    };
                    task.reduce(&group_key, &mut values, &mut ctx);
                    let skipped = values.drain_remaining();
                    task_counters.add(COUNTER_REDUCE_SKIPPED, skipped);
                    task_counters.inc(COUNTER_REDUCE_GROUPS);
                }
                let stats = TaskStats {
                    duration: t0.elapsed(),
                    records_in,
                    records_out: out.len() as u64,
                };
                (out, stats, task_counters)
            })
            .map_err(|p| JobError::TaskPanicked {
                phase: Phase::Reduce,
                task_index: p.task_index,
                message: p.message,
            })?;
        let reduce_wall = reduce_start.elapsed();

        let mut per_reducer = Vec::with_capacity(num_reducers);
        let mut reduce_tasks = Vec::with_capacity(num_reducers);
        for (out, stats, task_counters) in reduce_results {
            counters.merge(&task_counters);
            ctx.recycle_counters(task_counters);
            reduce_tasks.push(stats);
            per_reducer.push(out);
        }

        Ok(JobOutput::from_parts(
            per_reducer,
            JobStats {
                map_tasks,
                reduce_tasks,
                map_wall,
                shuffle_wall,
                reduce_wall,
                total_wall: job_start.elapsed(),
                shuffle_records,
                counters,
            },
        ))
    }

    fn descriptor(&self) -> BackendDescriptor {
        BackendDescriptor {
            name: "local",
            parallelism: self.config.workers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    struct Sum;
    impl MapReduceTask for Sum {
        type Input = u64;
        type Key = u64;
        type Value = u64;
        type Output = (u64, u64);
        fn num_reducers(&self) -> usize {
            3
        }
        fn map(&self, n: &u64, ctx: &mut MapContext<'_, Self>) {
            ctx.emit(self, n % 3, *n);
        }
        fn partition(&self, key: &u64) -> usize {
            *key as usize
        }
        fn sort_cmp(&self, a: &u64, b: &u64) -> Ordering {
            a.cmp(b)
        }
        fn reduce(
            &self,
            key: &u64,
            values: &mut GroupValues<'_, Self>,
            ctx: &mut ReduceContext<'_, (u64, u64)>,
        ) {
            ctx.emit((*key, values.map(|(_, v)| v).sum()));
        }
    }

    #[test]
    fn local_pool_descriptor() {
        let backend = LocalPool::new(ClusterConfig::with_workers(7));
        let d = backend.descriptor();
        assert_eq!(d.name, "local");
        assert_eq!(d.parallelism, 7);
        assert_eq!(d.to_string(), "localx7");
        assert_eq!(backend.config().workers, 7);
    }

    #[test]
    fn local_pool_matches_job_runner() {
        // The runner is a thin wrapper over the backend; both entry points
        // must return identical bytes.
        let splits: Vec<Vec<u64>> = vec![vec![1, 2, 3], vec![4, 5], vec![6]];
        let ctx = JobContext::new();
        let direct = LocalPool::new(ClusterConfig::with_workers(2))
            .execute(&ctx, &Sum, &splits)
            .unwrap();
        let via_runner = crate::JobRunner::new(ClusterConfig::with_workers(2))
            .run(&Sum, &splits)
            .unwrap();
        assert_eq!(direct.per_reducer(), via_runner.per_reducer());
        assert_eq!(direct.stats.counters, via_runner.stats.counters);
        assert_eq!(
            direct.stats.shuffle_records,
            via_runner.stats.shuffle_records
        );
    }

    #[test]
    fn deterministic_across_worker_counts() {
        let splits: Vec<Vec<u64>> = (0..6).map(|s| (s * 10..s * 10 + 7).collect()).collect();
        let ctx = JobContext::new();
        let base = LocalPool::new(ClusterConfig::sequential())
            .execute(&ctx, &Sum, &splits)
            .unwrap();
        for workers in [2, 4, 8] {
            let out = LocalPool::new(ClusterConfig::with_workers(workers))
                .execute(&ctx, &Sum, &splits)
                .unwrap();
            assert_eq!(out.per_reducer(), base.per_reducer(), "workers={workers}");
        }
    }
}
