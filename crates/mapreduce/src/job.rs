//! The job runner: map → shuffle → reduce over a bounded worker pool.
//!
//! [`JobRunner::run`] executes one [`MapReduceTask`] over horizontally
//! partitioned input: every split becomes a map task, map output is
//! partitioned/grouped by the shuffle (concatenating pre-grouped
//! sub-bucket runs, sorting only the runs the task asks for), and each of
//! the task's `num_reducers()` partitions becomes a reduce task. Results
//! and counters are deterministic for a fixed task and input — the worker
//! count only changes measured durations.
//!
//! Callers that run **many jobs over the same cluster** — one job per
//! query, as `spq_core::engine::QueryEngine` does — should create one
//! [`JobContext`] and go through [`JobRunner::run_in`], which recycles
//! per-task scratch state (the [`Counters`] sets every map and reduce
//! task allocates) across jobs instead of re-allocating it per query.
//! [`JobRunner::run`] is the one-shot convenience wrapper over a fresh
//! context.
//!
//! ```
//! use spq_mapreduce::{
//!     ClusterConfig, GroupValues, JobContext, JobRunner, MapContext, MapReduceTask,
//!     ReduceContext,
//! };
//! use std::cmp::Ordering;
//!
//! /// Classic word count: natural key = the word itself.
//! struct WordCount;
//!
//! impl MapReduceTask for WordCount {
//!     type Input = String;
//!     type Key = String;
//!     type Value = u64;
//!     type Output = (String, u64);
//!
//!     fn num_reducers(&self) -> usize {
//!         2
//!     }
//!     fn map(&self, line: &String, ctx: &mut MapContext<'_, Self>) {
//!         for word in line.split_whitespace() {
//!             ctx.emit(self, word.to_owned(), 1);
//!         }
//!     }
//!     fn partition(&self, key: &String) -> usize {
//!         key.len() % 2
//!     }
//!     fn sort_cmp(&self, a: &String, b: &String) -> Ordering {
//!         a.cmp(b)
//!     }
//!     fn reduce(
//!         &self,
//!         word: &String,
//!         values: &mut GroupValues<'_, Self>,
//!         ctx: &mut ReduceContext<'_, (String, u64)>,
//!     ) {
//!         ctx.emit((word.clone(), values.map(|(_, n)| n).sum()));
//!     }
//! }
//!
//! let runner = JobRunner::new(ClusterConfig::with_workers(2));
//! let splits = vec![vec!["to be or".to_owned()], vec!["not to be".to_owned()]];
//!
//! // One-shot:
//! let out = runner.run(&WordCount, &splits).unwrap();
//! assert_eq!(out.len(), 4); // to, be, or, not
//!
//! // Job-per-query serving: reuse one context across jobs.
//! let ctx = JobContext::new();
//! for _ in 0..3 {
//!     let again = runner.run_in(&ctx, &WordCount, &splits).unwrap();
//!     assert_eq!(again.len(), out.len());
//! }
//! ```

use crate::backend::{ExecutionBackend, LocalPool};
use crate::cluster::ClusterConfig;
use crate::counters::Counters;
use crate::stats::{JobStats, Phase};
use crate::task::MapReduceTask;
use parking_lot::Mutex;
use std::fmt;

/// Counter: reduce-group values left unconsumed by early termination.
pub const COUNTER_REDUCE_SKIPPED: &str = "reduce.records_skipped";
/// Counter: number of reduce groups processed.
pub const COUNTER_REDUCE_GROUPS: &str = "reduce.groups";

/// Error produced when a job fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// A map or reduce task panicked.
    TaskPanicked {
        /// The phase the task belonged to.
        phase: Phase,
        /// Task index within the phase.
        task_index: usize,
        /// Captured panic message.
        message: String,
    },
    /// The task cannot run on a remote backend: it declares no
    /// `REMOTE_KIND` (see [`MapReduceTask`]) or the worker does not have
    /// it registered.
    NotRemotable {
        /// The task's type or wire-kind name.
        task: String,
    },
    /// The remote transport or worker-side execution failed after every
    /// retry — including the case where all workers are on the exclusion
    /// list.
    Remote {
        /// What happened, including the per-worker failure trail.
        message: String,
    },
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::TaskPanicked {
                phase,
                task_index,
                message,
            } => write!(f, "{phase} task {task_index} panicked: {message}"),
            JobError::NotRemotable { task } => {
                write!(f, "task {task} is not registered for remote execution")
            }
            JobError::Remote { message } => write!(f, "remote job failed: {message}"),
        }
    }
}

impl std::error::Error for JobError {}

/// The result of a successful job.
#[derive(Debug, Clone)]
pub struct JobOutput<O> {
    /// Outputs per reducer, in reducer order. Private so the record
    /// count cached in `num_records` can never go stale.
    per_reducer: Vec<Vec<O>>,
    /// Execution statistics.
    pub stats: JobStats,
    /// Total record count, cached at job completion so `len`/`is_empty`
    /// don't rescan `per_reducer` on every call.
    num_records: usize,
}

impl<O> JobOutput<O> {
    /// Assembles a job output from per-reducer vectors, caching the record
    /// count. Crate-internal: only execution backends build outputs.
    pub(crate) fn from_parts(per_reducer: Vec<Vec<O>>, stats: JobStats) -> Self {
        let num_records = per_reducer.iter().map(Vec::len).sum();
        Self {
            per_reducer,
            stats,
            num_records,
        }
    }

    /// The outputs per reducer, in reducer order.
    pub fn per_reducer(&self) -> &[Vec<O>] {
        &self.per_reducer
    }

    /// Consumes the output into the per-reducer vectors (reducer order).
    pub fn into_per_reducer(self) -> Vec<Vec<O>> {
        self.per_reducer
    }

    /// Flattens the per-reducer outputs into one vector (reducer order).
    pub fn into_flat(self) -> Vec<O> {
        let mut flat = Vec::with_capacity(self.num_records);
        flat.extend(self.per_reducer.into_iter().flatten());
        flat
    }

    /// Iterates over all outputs without consuming.
    pub fn iter(&self) -> impl Iterator<Item = &O> {
        self.per_reducer.iter().flatten()
    }

    /// Total number of output records (cached; O(1)).
    pub fn len(&self) -> usize {
        self.num_records
    }

    /// True when no reducer produced output (cached; O(1)).
    pub fn is_empty(&self) -> bool {
        self.num_records == 0
    }
}

/// Reusable scratch state for running many jobs back to back.
///
/// Every map and reduce task allocates a task-local [`Counters`] set; a
/// job-per-query workload (the engine's serve loop) would otherwise pay
/// those allocations for every single query. A `JobContext` keeps the
/// cleared counter sets of finished tasks and hands them back to the next
/// job's tasks — create it once next to the [`JobRunner`] and pass it to
/// [`JobRunner::run_in`]. Sharing one context from several threads is
/// fine: checkout/recycle go through a mutex and fall back to a fresh
/// allocation when the pool is empty.
#[derive(Debug, Default)]
pub struct JobContext {
    recycled: Mutex<Vec<Counters>>,
}

/// Upper bound on pooled counter sets; beyond this, recycled sets are
/// simply dropped (a safety valve, not a tuning knob — counter sets are a
/// few dozen bytes each).
const MAX_RECYCLED_COUNTERS: usize = 1024;

impl JobContext {
    /// Creates an empty context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Hands out a cleared counter set, reusing a recycled allocation when
    /// one is available.
    pub(crate) fn checkout_counters(&self) -> Counters {
        self.recycled.lock().pop().unwrap_or_default()
    }

    /// Returns a task's counter set to the pool.
    pub(crate) fn recycle_counters(&self, mut counters: Counters) {
        counters.clear();
        let mut pool = self.recycled.lock();
        if pool.len() < MAX_RECYCLED_COUNTERS {
            pool.push(counters);
        }
    }
}

/// Executes [`MapReduceTask`]s over horizontally partitioned input on the
/// in-process [`LocalPool`] backend.
///
/// `JobRunner` is the convenience entry point most callers want: it fixes
/// the backend to the bounded worker pool and keeps the one-shot
/// [`run`](Self::run) / streaming [`run_in`](Self::run_in) API stable.
/// Code that needs to choose *where* tasks run — a different pool, a
/// future remote placement — goes through
/// [`ExecutionBackend`] directly.
#[derive(Debug, Clone, Default)]
pub struct JobRunner {
    backend: LocalPool,
}

impl JobRunner {
    /// Creates a runner with the given cluster configuration.
    pub fn new(config: ClusterConfig) -> Self {
        Self {
            backend: LocalPool::new(config),
        }
    }

    /// The configured cluster.
    pub fn config(&self) -> ClusterConfig {
        self.backend.config()
    }

    /// The [`LocalPool`] backend the runner executes on.
    pub fn backend(&self) -> LocalPool {
        self.backend
    }

    /// Runs one job: each element of `splits` becomes a map task; each of
    /// the task's `num_reducers()` partitions becomes a reduce task.
    ///
    /// The execution is deterministic for a fixed task and input: results
    /// and statistics record-counts do not depend on the number of
    /// workers (only the measured durations do).
    ///
    /// This is the one-shot wrapper over [`run_in`](Self::run_in) with a
    /// fresh [`JobContext`]; callers running a stream of jobs should hold
    /// a context of their own so per-task scratch state is recycled.
    pub fn run<T: MapReduceTask>(
        &self,
        task: &T,
        splits: &[Vec<T::Input>],
    ) -> Result<JobOutput<T::Output>, JobError> {
        self.run_in(&JobContext::new(), task, splits)
    }

    /// [`run`](Self::run) against a reusable [`JobContext`]: identical
    /// semantics and identical (deterministic) output, but the per-task
    /// counter sets are checked out of — and recycled back into — `ctx`
    /// instead of being allocated per job.
    ///
    /// Since the backend split, this is sugar for
    /// `self.backend().execute(ctx, task, splits)` — the map → shuffle →
    /// reduce pipeline itself lives in
    /// [`LocalPool::execute`](crate::backend::LocalPool).
    pub fn run_in<T: MapReduceTask>(
        &self,
        ctx: &JobContext,
        task: &T,
        splits: &[Vec<T::Input>],
    ) -> Result<JobOutput<T::Output>, JobError> {
        self.backend.execute(ctx, task, splits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{GroupValues, MapContext, ReduceContext};
    use std::cmp::Ordering;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    /// Classic word count: natural key = word, no secondary sort.
    struct WordCount {
        reducers: usize,
    }

    impl MapReduceTask for WordCount {
        type Input = String;
        type Key = String;
        type Value = u64;
        type Output = (String, u64);

        fn num_reducers(&self) -> usize {
            self.reducers
        }

        fn map(&self, record: &String, ctx: &mut MapContext<'_, Self>) {
            for word in record.split_whitespace() {
                ctx.emit(self, word.to_owned(), 1);
            }
        }

        fn partition(&self, key: &String) -> usize {
            let mut h = DefaultHasher::new();
            key.hash(&mut h);
            (h.finish() as usize) % self.reducers
        }

        fn sort_cmp(&self, a: &String, b: &String) -> Ordering {
            a.cmp(b)
        }

        fn reduce(
            &self,
            group: &String,
            values: &mut GroupValues<'_, Self>,
            ctx: &mut ReduceContext<'_, (String, u64)>,
        ) {
            let total: u64 = values.map(|(_, v)| v).sum();
            ctx.emit((group.clone(), total));
        }
    }

    fn word_count_input() -> Vec<Vec<String>> {
        vec![
            vec!["a b a".to_owned(), "c".to_owned()],
            vec!["b a".to_owned()],
            vec![],
            vec!["c c c b".to_owned()],
        ]
    }

    fn run_word_count(workers: usize, reducers: usize) -> Vec<(String, u64)> {
        let runner = JobRunner::new(ClusterConfig::with_workers(workers));
        let mut out = runner
            .run(&WordCount { reducers }, &word_count_input())
            .unwrap()
            .into_flat();
        out.sort();
        out
    }

    #[test]
    fn word_count_is_correct() {
        let expected = vec![
            ("a".to_owned(), 3),
            ("b".to_owned(), 3),
            ("c".to_owned(), 4),
        ];
        assert_eq!(run_word_count(1, 1), expected);
        assert_eq!(run_word_count(4, 3), expected);
        assert_eq!(run_word_count(16, 8), expected);
    }

    #[test]
    fn stats_record_counts() {
        let runner = JobRunner::new(ClusterConfig::with_workers(2));
        let out = runner
            .run(&WordCount { reducers: 2 }, &word_count_input())
            .unwrap();
        assert_eq!(out.stats.map_input_records(), 4); // 4 lines
        assert_eq!(out.stats.shuffle_records, 10); // 10 words
        assert_eq!(out.stats.reduce_output_records(), 3);
        assert_eq!(out.stats.counters.get(COUNTER_REDUCE_GROUPS), 3);
        assert_eq!(out.stats.counters.get(COUNTER_REDUCE_SKIPPED), 0);
        assert_eq!(out.stats.map_tasks.len(), 4);
        assert_eq!(out.stats.reduce_tasks.len(), 2);
        assert_eq!(out.len(), 3);
        assert!(!out.is_empty());
    }

    /// Secondary sort: natural key = bucket id, composite key carries a
    /// sequence number; the reducer asserts values arrive ordered and can
    /// stop early.
    struct SecondarySort {
        take: usize,
    }

    impl MapReduceTask for SecondarySort {
        type Input = (u32, i64); // (bucket, sequence)
        type Key = (u32, i64);
        type Value = i64;
        type Output = (u32, Vec<i64>);

        fn num_reducers(&self) -> usize {
            3
        }

        fn map(&self, record: &(u32, i64), ctx: &mut MapContext<'_, Self>) {
            ctx.emit(self, *record, record.1);
        }

        fn partition(&self, key: &(u32, i64)) -> usize {
            key.0 as usize % 3
        }

        fn sort_cmp(&self, a: &(u32, i64), b: &(u32, i64)) -> Ordering {
            a.0.cmp(&b.0).then(a.1.cmp(&b.1))
        }

        fn group_eq(&self, a: &(u32, i64), b: &(u32, i64)) -> bool {
            a.0 == b.0
        }

        fn reduce(
            &self,
            group: &(u32, i64),
            values: &mut GroupValues<'_, Self>,
            ctx: &mut ReduceContext<'_, (u32, Vec<i64>)>,
        ) {
            let taken: Vec<i64> = values.take(self.take).map(|(_, v)| v).collect();
            ctx.emit((group.0, taken));
        }
    }

    fn secondary_sort_input() -> Vec<Vec<(u32, i64)>> {
        vec![
            vec![(1, 5), (2, -1), (1, 3)],
            vec![(1, 9), (2, 8), (1, 1)],
            vec![(7, 0)],
        ]
    }

    #[test]
    fn values_arrive_in_secondary_sort_order() {
        let runner = JobRunner::new(ClusterConfig::with_workers(4));
        let out = runner
            .run(&SecondarySort { take: usize::MAX }, &secondary_sort_input())
            .unwrap();
        let mut flat = out.into_flat();
        flat.sort();
        assert_eq!(
            flat,
            vec![(1, vec![1, 3, 5, 9]), (2, vec![-1, 8]), (7, vec![0]),]
        );
    }

    #[test]
    fn early_termination_counts_skipped_records() {
        let runner = JobRunner::new(ClusterConfig::with_workers(4));
        let out = runner
            .run(&SecondarySort { take: 2 }, &secondary_sort_input())
            .unwrap();
        // Group 1 has 4 values (2 skipped); groups 2 and 7 fit within 2.
        assert_eq!(out.stats.counters.get(COUNTER_REDUCE_SKIPPED), 2);
        let mut flat = out.into_flat();
        flat.sort();
        assert_eq!(flat[0], (1, vec![1, 3]));
    }

    #[test]
    fn deterministic_across_worker_counts() {
        let run = |workers| {
            let runner = JobRunner::new(ClusterConfig::with_workers(workers));
            let out = runner
                .run(&SecondarySort { take: usize::MAX }, &secondary_sort_input())
                .unwrap();
            out.into_per_reducer()
        };
        let base = run(1);
        for workers in [2, 3, 8] {
            assert_eq!(run(workers), base);
        }
    }

    /// Sub-bucketed task shaped like the SPQ jobs: one reducer per cell,
    /// tag-0 records form an unsorted run delivered before the tag-1 run,
    /// which alone is sorted by sequence.
    struct SubBucketed;

    impl MapReduceTask for SubBucketed {
        type Input = (u32, u8, i64); // (cell, tag, seq)
        type Key = (u32, u8, i64);
        type Value = i64;
        type Output = (u32, Vec<(u8, i64)>);

        fn num_reducers(&self) -> usize {
            2
        }

        fn map(&self, record: &(u32, u8, i64), ctx: &mut MapContext<'_, Self>) {
            ctx.emit(self, *record, record.2);
        }

        fn partition(&self, key: &(u32, u8, i64)) -> usize {
            key.0 as usize
        }

        fn sort_cmp(&self, a: &(u32, u8, i64), b: &(u32, u8, i64)) -> Ordering {
            a.cmp(b)
        }

        fn group_eq(&self, a: &(u32, u8, i64), b: &(u32, u8, i64)) -> bool {
            a.0 == b.0
        }

        fn num_subbuckets(&self) -> usize {
            2
        }

        fn subbucket(&self, key: &(u32, u8, i64)) -> usize {
            key.1 as usize
        }

        fn subbucket_needs_sort(&self, sub: usize) -> bool {
            sub == 1
        }

        fn reduce(
            &self,
            group: &(u32, u8, i64),
            values: &mut GroupValues<'_, Self>,
            ctx: &mut ReduceContext<'_, (u32, Vec<(u8, i64)>)>,
        ) {
            let order: Vec<(u8, i64)> = values.map(|(k, v)| (k.1, v)).collect();
            ctx.emit((group.0, order));
        }
    }

    fn subbucket_input() -> Vec<Vec<(u32, u8, i64)>> {
        vec![
            vec![(0, 1, 9), (0, 0, 5), (1, 0, 2)],
            vec![(0, 0, 3), (0, 1, 1), (1, 1, 4)],
        ]
    }

    #[test]
    fn subbucket_runs_are_pre_grouped_and_selectively_sorted() {
        let runner = JobRunner::new(ClusterConfig::sequential());
        let out = runner.run(&SubBucketed, &subbucket_input()).unwrap();
        let mut flat = out.into_flat();
        flat.sort_by_key(|(cell, _)| *cell);
        // Cell 0: tag-0 run in map-task concatenation order (5 from task 0,
        // then 3 from task 1 — NOT sorted), then the tag-1 run sorted by
        // sequence (1 before 9).
        assert_eq!(flat[0], (0, vec![(0, 5), (0, 3), (1, 1), (1, 9)]));
        assert_eq!(flat[1], (1, vec![(0, 2), (1, 4)]));
    }

    #[test]
    fn subbucketed_job_is_worker_count_invariant() {
        let run = |workers| {
            JobRunner::new(ClusterConfig::with_workers(workers))
                .run(&SubBucketed, &subbucket_input())
                .unwrap()
                .into_per_reducer()
        };
        let base = run(1);
        for workers in [2, 4, 8] {
            assert_eq!(run(workers), base);
        }
    }

    #[test]
    fn context_reuse_is_invisible_to_results() {
        let runner = JobRunner::new(ClusterConfig::with_workers(2));
        let ctx = JobContext::new();
        let fresh = runner
            .run(&WordCount { reducers: 2 }, &word_count_input())
            .unwrap();
        for round in 0..3 {
            let out = runner
                .run_in(&ctx, &WordCount { reducers: 2 }, &word_count_input())
                .unwrap();
            assert_eq!(out.per_reducer(), fresh.per_reducer(), "round {round}");
            assert_eq!(out.stats.counters, fresh.stats.counters, "round {round}");
        }
        // The pool actually holds recycled sets after a job.
        assert!(!ctx.recycled.lock().is_empty());
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let runner = JobRunner::new(ClusterConfig::sequential());
        let out = runner.run(&WordCount { reducers: 4 }, &[]).unwrap();
        assert!(out.is_empty());
        assert_eq!(out.stats.map_tasks.len(), 0);
        assert_eq!(out.stats.reduce_tasks.len(), 4);
        assert_eq!(out.stats.counters.get(COUNTER_REDUCE_GROUPS), 0);
    }

    struct PanickyMap;

    impl MapReduceTask for PanickyMap {
        type Input = u32;
        type Key = u32;
        type Value = u32;
        type Output = u32;

        fn num_reducers(&self) -> usize {
            1
        }

        fn map(&self, record: &u32, ctx: &mut MapContext<'_, Self>) {
            if *record == 13 {
                panic!("unlucky record");
            }
            ctx.emit(self, *record, *record);
        }

        fn partition(&self, _: &u32) -> usize {
            0
        }

        fn sort_cmp(&self, a: &u32, b: &u32) -> Ordering {
            a.cmp(b)
        }

        fn reduce(
            &self,
            group: &u32,
            values: &mut GroupValues<'_, Self>,
            ctx: &mut ReduceContext<'_, u32>,
        ) {
            if *group == 99 {
                panic!("bad group");
            }
            for _ in values.by_ref() {}
            ctx.emit(*group);
        }
    }

    #[test]
    fn map_panic_becomes_job_error() {
        let runner = JobRunner::new(ClusterConfig::with_workers(2));
        let err = runner
            .run(&PanickyMap, &[vec![1, 2], vec![13]])
            .unwrap_err();
        match err {
            JobError::TaskPanicked {
                phase,
                task_index,
                ref message,
            } => {
                assert_eq!(phase, Phase::Map);
                assert_eq!(task_index, 1);
                assert!(message.contains("unlucky"));
            }
            ref other => panic!("expected TaskPanicked, got {other:?}"),
        }
        assert!(err.to_string().contains("map task 1"));
    }

    #[test]
    fn reduce_panic_becomes_job_error() {
        let runner = JobRunner::new(ClusterConfig::with_workers(2));
        let err = runner.run(&PanickyMap, &[vec![1, 99]]).unwrap_err();
        match err {
            JobError::TaskPanicked { phase, .. } => assert_eq!(phase, Phase::Reduce),
            other => panic!("expected TaskPanicked, got {other:?}"),
        }
    }

    #[test]
    #[should_panic]
    fn zero_reducers_rejected() {
        struct NoReducers;
        impl MapReduceTask for NoReducers {
            type Input = ();
            type Key = ();
            type Value = ();
            type Output = ();
            fn num_reducers(&self) -> usize {
                0
            }
            fn map(&self, _: &(), _: &mut MapContext<'_, Self>) {}
            fn partition(&self, _: &()) -> usize {
                0
            }
            fn sort_cmp(&self, _: &(), _: &()) -> Ordering {
                Ordering::Equal
            }
            fn reduce(&self, _: &(), _: &mut GroupValues<'_, Self>, _: &mut ReduceContext<'_, ()>) {
            }
        }
        let _ = JobRunner::new(ClusterConfig::sequential()).run(&NoReducers, &[]);
    }
}
