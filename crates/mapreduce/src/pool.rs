//! A bounded worker pool for running numbered tasks.
//!
//! Models the task-slot scheduling of a Hadoop NodeManager: a fixed number
//! of worker threads pull task indices from a shared queue until all tasks
//! of a phase are done. Panics inside a task are captured and surfaced as
//! errors instead of tearing down the process (a crashed task fails the
//! job, it does not hang it).

use parking_lot::Mutex;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A description of a task failure (captured panic payload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskPanic {
    /// Index of the failed task within its phase.
    pub task_index: usize,
    /// Human-readable panic message.
    pub message: String,
}

/// Runs `num_tasks` closures on at most `workers` threads.
///
/// Results are returned in task-index order regardless of which worker ran
/// which task or in what order tasks completed — this is what makes jobs
/// deterministic under any worker count. The first captured panic is
/// reported; remaining queued tasks still run (mirroring Hadoop, where one
/// failed task does not cancel already-queued attempts of others).
pub fn run_tasks<T, F>(workers: usize, num_tasks: usize, f: F) -> Result<Vec<T>, TaskPanic>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(workers > 0, "worker pool needs at least one worker");
    let mut slots: Vec<Option<Result<T, TaskPanic>>> = Vec::with_capacity(num_tasks);
    slots.resize_with(num_tasks, || None);
    let results = Mutex::new(slots);
    let next = AtomicUsize::new(0);

    let worker_count = workers.min(num_tasks.max(1));
    std::thread::scope(|scope| {
        for _ in 0..worker_count {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= num_tasks {
                    break;
                }
                let outcome = catch_unwind(AssertUnwindSafe(|| f(i))).map_err(|payload| {
                    let message = payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_owned())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "task panicked with non-string payload".to_owned());
                    TaskPanic {
                        task_index: i,
                        message,
                    }
                });
                results.lock()[i] = Some(outcome);
            });
        }
    });

    let mut out = Vec::with_capacity(num_tasks);
    for slot in results.into_inner() {
        match slot.expect("every task index was claimed exactly once") {
            Ok(v) => out.push(v),
            Err(p) => return Err(p),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_in_task_order() {
        let got = run_tasks(4, 100, |i| i * 2).unwrap();
        assert_eq!(got, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_worker_matches_many_workers() {
        let a = run_tasks(1, 37, |i| i * i).unwrap();
        let b = run_tasks(16, 37, |i| i * i).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_tasks_is_fine() {
        let got: Vec<u8> = run_tasks(4, 0, |_| 0u8).unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let hits = AtomicU64::new(0);
        run_tasks(8, 1000, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn panic_is_captured_with_index_and_message() {
        let err = run_tasks(4, 10, |i| {
            if i == 7 {
                panic!("boom at {i}");
            }
            i
        })
        .unwrap_err();
        assert_eq!(err.task_index, 7);
        assert!(err.message.contains("boom"), "got: {}", err.message);
    }

    #[test]
    fn static_str_panics_are_captured() {
        let err = run_tasks(2, 3, |i| {
            if i == 1 {
                panic!("static boom");
            }
            i
        })
        .unwrap_err();
        assert_eq!(err.message, "static boom");
    }

    #[test]
    #[should_panic]
    fn zero_workers_rejected() {
        let _ = run_tasks(0, 1, |i| i);
    }

    #[test]
    fn more_workers_than_tasks() {
        let got = run_tasks(64, 3, |i| i + 1).unwrap();
        assert_eq!(got, vec![1, 2, 3]);
    }
}
