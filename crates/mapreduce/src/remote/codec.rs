//! Little-endian byte codec shared by every remote wire structure.
//!
//! The remote protocol is deliberately bincode-shaped — fixed-width
//! little-endian integers, length-prefixed strings and sequences — but
//! hand-rolled so the workspace stays dependency-free. Writers append to a
//! plain `Vec<u8>`; the [`ByteReader`] checks every read against the
//! remaining buffer and returns [`CodecError::Truncated`] instead of
//! panicking, so a torn or hostile payload can never take the process
//! down. (Frame-level FNV checksums catch corruption before decoding; the
//! reader's bounds checks are the second line of defense.)

use crate::counters::Counters;
use crate::stats::{JobStats, TaskStats};
use parking_lot::Mutex;
use std::collections::HashSet;
use std::fmt;
use std::sync::OnceLock;
use std::time::Duration;

/// Decoding failure: the payload was shorter than the structure claims,
/// or a tag/length field held a value the schema does not allow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the structure was complete.
    Truncated,
    /// A field held an out-of-schema value.
    Invalid {
        /// What was being decoded and why it was rejected.
        message: String,
    },
}

impl CodecError {
    /// Convenience constructor for [`CodecError::Invalid`].
    pub fn invalid(message: impl Into<String>) -> Self {
        CodecError::Invalid {
            message: message.into(),
        }
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "payload truncated"),
            CodecError::Invalid { message } => write!(f, "invalid payload: {message}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Appends a `u8`.
#[inline]
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Appends a little-endian `u16`.
#[inline]
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u32`.
#[inline]
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
#[inline]
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as its little-endian IEEE-754 bits.
#[inline]
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Appends a UTF-8 string as `u32` length + bytes.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Appends a raw byte slice as `u32` length + bytes.
pub fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

/// A bounds-checked cursor over an encoded payload.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Wraps a payload for decoding.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when the whole payload has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f64` from its IEEE-754 bits.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, CodecError> {
        let len = self.u32()? as usize;
        std::str::from_utf8(self.take(len)?).map_err(|_| CodecError::invalid("string is not UTF-8"))
    }

    /// Reads a `u32`-length-prefixed byte slice.
    pub fn bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.u32()? as usize;
        self.take(len)
    }
}

/// Interns a decoded counter name so it satisfies the `&'static str`
/// contract of [`Counters`].
///
/// Counter cardinality is tiny (a few dozen distinct names per process),
/// so each distinct name is leaked exactly once and served from a global
/// registry on every later decode.
pub fn intern_counter_name(name: &str) -> &'static str {
    static REGISTRY: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let mut registry = REGISTRY.get_or_init(|| Mutex::new(HashSet::new())).lock();
    match registry.get(name) {
        Some(s) => s,
        None => {
            let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
            registry.insert(leaked);
            leaked
        }
    }
}

/// Encodes a counter set as `(name, value)` pairs in name order.
pub fn encode_counters(counters: &Counters, out: &mut Vec<u8>) {
    let pairs: Vec<_> = counters.iter().collect();
    put_u32(out, pairs.len() as u32);
    for (name, v) in pairs {
        put_str(out, name);
        put_u64(out, v);
    }
}

/// Decodes a counter set, interning each name.
pub fn decode_counters(r: &mut ByteReader<'_>) -> Result<Counters, CodecError> {
    let n = r.u32()?;
    let mut counters = Counters::new();
    for _ in 0..n {
        let name = intern_counter_name(r.str()?);
        let v = r.u64()?;
        counters.add(name, v);
    }
    Ok(counters)
}

fn put_duration(out: &mut Vec<u8>, d: Duration) {
    put_u64(out, d.as_micros() as u64);
}

fn read_duration(r: &mut ByteReader<'_>) -> Result<Duration, CodecError> {
    Ok(Duration::from_micros(r.u64()?))
}

fn encode_task_stats(stats: &TaskStats, out: &mut Vec<u8>) {
    put_duration(out, stats.duration);
    put_u64(out, stats.records_in);
    put_u64(out, stats.records_out);
}

fn decode_task_stats(r: &mut ByteReader<'_>) -> Result<TaskStats, CodecError> {
    Ok(TaskStats {
        duration: read_duration(r)?,
        records_in: r.u64()?,
        records_out: r.u64()?,
    })
}

/// Encodes full job statistics (durations become microseconds).
pub fn encode_job_stats(stats: &JobStats, out: &mut Vec<u8>) {
    put_u32(out, stats.map_tasks.len() as u32);
    for t in &stats.map_tasks {
        encode_task_stats(t, out);
    }
    put_u32(out, stats.reduce_tasks.len() as u32);
    for t in &stats.reduce_tasks {
        encode_task_stats(t, out);
    }
    put_duration(out, stats.map_wall);
    put_duration(out, stats.shuffle_wall);
    put_duration(out, stats.reduce_wall);
    put_duration(out, stats.total_wall);
    put_u64(out, stats.shuffle_records);
    encode_counters(&stats.counters, out);
}

/// Decodes job statistics produced by [`encode_job_stats`].
pub fn decode_job_stats(r: &mut ByteReader<'_>) -> Result<JobStats, CodecError> {
    let n_map = r.u32()?;
    let mut map_tasks = Vec::with_capacity(n_map as usize);
    for _ in 0..n_map {
        map_tasks.push(decode_task_stats(r)?);
    }
    let n_red = r.u32()?;
    let mut reduce_tasks = Vec::with_capacity(n_red as usize);
    for _ in 0..n_red {
        reduce_tasks.push(decode_task_stats(r)?);
    }
    Ok(JobStats {
        map_tasks,
        reduce_tasks,
        map_wall: read_duration(r)?,
        shuffle_wall: read_duration(r)?,
        reduce_wall: read_duration(r)?,
        total_wall: read_duration(r)?,
        shuffle_records: r.u64()?,
        counters: decode_counters(r)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip() {
        let mut out = Vec::new();
        put_u8(&mut out, 7);
        put_u16(&mut out, 1025);
        put_u32(&mut out, 70_000);
        put_u64(&mut out, u64::MAX - 1);
        put_f64(&mut out, -0.25);
        put_str(&mut out, "héllo");
        put_bytes(&mut out, &[1, 2, 3]);
        let mut r = ByteReader::new(&out);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 1025);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.f64().unwrap(), -0.25);
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.bytes().unwrap(), &[1, 2, 3]);
        assert!(r.is_empty());
    }

    #[test]
    fn truncated_reads_error_without_panicking() {
        let mut out = Vec::new();
        put_u32(&mut out, 10); // claims 10 bytes follow
        out.extend_from_slice(&[1, 2]);
        let mut r = ByteReader::new(&out);
        assert_eq!(r.bytes().unwrap_err(), CodecError::Truncated);
        let mut r = ByteReader::new(&[1, 2, 3]);
        assert_eq!(r.u64().unwrap_err(), CodecError::Truncated);
    }

    #[test]
    fn invalid_utf8_is_rejected() {
        let mut out = Vec::new();
        put_u32(&mut out, 2);
        out.extend_from_slice(&[0xff, 0xfe]);
        let mut r = ByteReader::new(&out);
        assert!(matches!(r.str(), Err(CodecError::Invalid { .. })));
    }

    #[test]
    fn counters_round_trip_and_intern() {
        let mut c = Counters::new();
        c.add("map.records", 42);
        c.add("reduce.groups", 7);
        let mut out = Vec::new();
        encode_counters(&c, &mut out);
        let decoded = decode_counters(&mut ByteReader::new(&out)).unwrap();
        assert_eq!(decoded, c);
        // Interning returns pointer-identical names across decodes.
        let a = intern_counter_name("spq.some_counter");
        let b = intern_counter_name("spq.some_counter");
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    fn job_stats_round_trip() {
        let mut counters = Counters::new();
        counters.add("x", 3);
        let stats = JobStats {
            map_tasks: vec![TaskStats {
                duration: Duration::from_micros(12),
                records_in: 4,
                records_out: 9,
            }],
            reduce_tasks: vec![TaskStats::default(), TaskStats::default()],
            map_wall: Duration::from_micros(100),
            shuffle_wall: Duration::from_micros(5),
            reduce_wall: Duration::from_micros(50),
            total_wall: Duration::from_micros(160),
            shuffle_records: 9,
            counters,
        };
        let mut out = Vec::new();
        encode_job_stats(&stats, &mut out);
        let got = decode_job_stats(&mut ByteReader::new(&out)).unwrap();
        assert_eq!(got.map_tasks, stats.map_tasks);
        assert_eq!(got.reduce_tasks, stats.reduce_tasks);
        assert_eq!(got.total_wall, stats.total_wall);
        assert_eq!(got.shuffle_records, 9);
        assert_eq!(got.counters, stats.counters);
    }
}
