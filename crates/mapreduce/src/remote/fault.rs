//! Deterministic fault injection for the remote transport.
//!
//! A [`FaultPlan`] is installed on a worker over the wire
//! ([`OP_SET_FAULT`](super::OP_SET_FAULT)) and drives the worker's
//! *response* path: responses are counted from the moment the plan is
//! installed, and each scheduled fault fires when the count reaches its
//! threshold. This turns the recovery paths — reconnect, retry, worker
//! exclusion, shard failover — into deterministic test subjects instead of
//! things that only happen in production.

use super::codec::{put_u32, put_u64, put_u8, ByteReader, CodecError};

/// A deterministic schedule of transport faults.
///
/// Response indices are 0-based and count every fault-eligible response
/// (everything except the `OP_SET_FAULT`/`OP_SHUTDOWN` acknowledgements)
/// sent by the worker after the plan was installed, across all
/// connections.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Close the connection instead of sending response `n` (one-shot:
    /// the trigger clears itself, so the worker recovers on reconnect).
    pub drop_after_responses: Option<u32>,
    /// Sleep this long before every response — a slow, not dead, worker.
    pub delay_response_ms: Option<u64>,
    /// Corrupt the payload of response `n` after its checksum is computed
    /// (one-shot), so the client observes a checksum mismatch.
    pub corrupt_response: Option<u32>,
    /// Permanently kill the worker before sending response `n`: a real
    /// worker process exits, an in-process worker stops accepting
    /// connections and drops every live one.
    pub kill_after_responses: Option<u32>,
    /// Refuse (close on sight, before reading any frame) the next `n`
    /// connections **accepted after this plan is installed**. Already
    /// established streams keep serving; combine with
    /// [`drop_after_responses`](Self::drop_after_responses) to force the
    /// installer's own connection through the refusal window. The budget
    /// decrements per refused connection and clears at zero, so this
    /// models a worker that is restarting — down for a bounded while,
    /// then healthy — without spawning or killing any real process.
    pub refuse_connections: Option<u32>,
}

impl FaultPlan {
    /// A plan with no scheduled faults (installing it clears faults).
    pub fn none() -> Self {
        Self::default()
    }

    /// True when no fault is scheduled.
    pub fn is_noop(&self) -> bool {
        *self == Self::default()
    }

    fn put_opt_u32(out: &mut Vec<u8>, v: Option<u32>) {
        match v {
            Some(n) => {
                put_u8(out, 1);
                put_u32(out, n);
            }
            None => put_u8(out, 0),
        }
    }

    fn read_opt_u32(r: &mut ByteReader<'_>) -> Result<Option<u32>, CodecError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(r.u32()?)),
            t => Err(CodecError::invalid(format!("bad option tag {t}"))),
        }
    }

    /// Serializes the plan for `OP_SET_FAULT`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        Self::put_opt_u32(out, self.drop_after_responses);
        match self.delay_response_ms {
            Some(ms) => {
                put_u8(out, 1);
                put_u64(out, ms);
            }
            None => put_u8(out, 0),
        }
        Self::put_opt_u32(out, self.corrupt_response);
        Self::put_opt_u32(out, self.kill_after_responses);
        Self::put_opt_u32(out, self.refuse_connections);
    }

    /// Decodes a plan serialized by [`encode`](Self::encode).
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let drop_after_responses = Self::read_opt_u32(r)?;
        let delay_response_ms = match r.u8()? {
            0 => None,
            1 => Some(r.u64()?),
            t => return Err(CodecError::invalid(format!("bad option tag {t}"))),
        };
        Ok(Self {
            drop_after_responses,
            delay_response_ms,
            corrupt_response: Self::read_opt_u32(r)?,
            kill_after_responses: Self::read_opt_u32(r)?,
            refuse_connections: Self::read_opt_u32(r)?,
        })
    }

    /// Consumes one unit of the connection-refusal budget. Returns `true`
    /// when the caller must refuse the connection it just accepted.
    pub(crate) fn take_refusal(&mut self) -> bool {
        match self.refuse_connections {
            Some(0) | None => {
                self.refuse_connections = None;
                false
            }
            Some(n) => {
                self.refuse_connections = Some(n - 1);
                true
            }
        }
    }
}

/// What the worker's response path should do for one response, resolved
/// against the installed plan. Crate-internal: computed by the server.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum FaultAction {
    /// Send the response normally (after an optional delay).
    Deliver {
        /// Milliseconds to sleep before responding.
        delay_ms: Option<u64>,
        /// Whether to corrupt this response's payload.
        corrupt: bool,
    },
    /// Close the connection without responding.
    Drop,
    /// Kill the worker (exit the process / stop the in-process server).
    Kill,
}

/// Resolves the action for the response with 0-based index `n`, applying
/// one-shot semantics (drop and corrupt triggers clear themselves).
pub(crate) fn next_action(plan: &mut FaultPlan, n: u32) -> FaultAction {
    if let Some(k) = plan.kill_after_responses {
        if n >= k {
            return FaultAction::Kill;
        }
    }
    if let Some(d) = plan.drop_after_responses {
        if n >= d {
            plan.drop_after_responses = None;
            return FaultAction::Drop;
        }
    }
    let corrupt = plan.corrupt_response == Some(n);
    if corrupt {
        plan.corrupt_response = None;
    }
    FaultAction::Deliver {
        delay_ms: plan.delay_response_ms,
        corrupt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_fields() {
        let plan = FaultPlan {
            drop_after_responses: Some(3),
            delay_response_ms: Some(250),
            corrupt_response: Some(0),
            kill_after_responses: Some(9),
            refuse_connections: Some(2),
        };
        let mut out = Vec::new();
        plan.encode(&mut out);
        assert_eq!(FaultPlan::decode(&mut ByteReader::new(&out)).unwrap(), plan);

        let mut out = Vec::new();
        FaultPlan::none().encode(&mut out);
        let decoded = FaultPlan::decode(&mut ByteReader::new(&out)).unwrap();
        assert!(decoded.is_noop());
    }

    #[test]
    fn kill_wins_over_drop_and_is_permanent() {
        let mut plan = FaultPlan {
            drop_after_responses: Some(0),
            kill_after_responses: Some(0),
            ..FaultPlan::default()
        };
        assert_eq!(next_action(&mut plan, 0), FaultAction::Kill);
        assert_eq!(next_action(&mut plan, 5), FaultAction::Kill);
    }

    #[test]
    fn drop_and_corrupt_are_one_shot() {
        let mut plan = FaultPlan {
            drop_after_responses: Some(1),
            corrupt_response: Some(0),
            ..FaultPlan::default()
        };
        assert_eq!(
            next_action(&mut plan, 0),
            FaultAction::Deliver {
                delay_ms: None,
                corrupt: true
            }
        );
        assert_eq!(next_action(&mut plan, 1), FaultAction::Drop);
        // Both triggers cleared: later responses deliver cleanly.
        assert_eq!(
            next_action(&mut plan, 2),
            FaultAction::Deliver {
                delay_ms: None,
                corrupt: false
            }
        );
    }

    #[test]
    fn refusal_budget_decrements_and_clears() {
        let mut plan = FaultPlan {
            refuse_connections: Some(2),
            ..FaultPlan::default()
        };
        assert!(plan.take_refusal());
        assert!(plan.take_refusal());
        assert!(!plan.take_refusal());
        assert!(plan.is_noop());
        // Refusals never touch the response-path schedule.
        let mut mixed = FaultPlan {
            refuse_connections: Some(1),
            corrupt_response: Some(0),
            ..FaultPlan::default()
        };
        assert!(mixed.take_refusal());
        assert_eq!(
            next_action(&mut mixed, 0),
            FaultAction::Deliver {
                delay_ms: None,
                corrupt: true
            }
        );
    }

    #[test]
    fn truncated_plan_is_rejected() {
        let plan = FaultPlan {
            delay_response_ms: Some(10),
            ..FaultPlan::default()
        };
        let mut out = Vec::new();
        plan.encode(&mut out);
        out.truncate(out.len() - 1);
        assert!(FaultPlan::decode(&mut ByteReader::new(&out)).is_err());
    }
}
