//! The worker side of the remote protocol: a TCP server that dispatches
//! framed requests to pluggable handlers.
//!
//! A [`WorkerServer`] owns a listener and serves each connection on its
//! own thread. Protocol plumbing — ping, fault installation, shutdown,
//! unknown opcodes — is built in; domain opcodes (jobs, shard queries)
//! are answered by the [`FrameHandler`] chain the server was built with.
//! The [`FaultPlan`] seam sits on the *response* path, so every injected
//! failure mode is downstream of a fully processed request — exactly
//! where real crashes hurt.

use super::client::RemoteError;
use super::codec::{put_str, ByteReader};
use super::fault::{next_action, FaultAction, FaultPlan};
use super::frame::{
    read_frame, write_frame, write_frame_with, FrameError, OP_ERROR, OP_FAULT_OK, OP_PING, OP_PONG,
    OP_SET_FAULT, OP_SHUTDOWN,
};
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

/// Answers one request frame.
///
/// Handlers are chained: the first handler that returns `Ok(Some(_))`
/// produces the response. `Ok(None)` means "not my opcode, ask the next
/// handler"; `Err` becomes a typed [`OP_ERROR`] reply carrying the
/// message.
pub trait FrameHandler: Send + Sync {
    /// Handles `opcode` with `payload`, returning the response frame.
    fn handle(&self, opcode: u16, payload: &[u8]) -> Result<Option<(u16, Vec<u8>)>, String>;
}

/// Exit code a real worker process dies with when a fatal
/// [`FaultPlan::kill_after_responses`] fault fires.
pub const FAULT_EXIT_CODE: i32 = 86;

/// Interval at which blocked server loops wake to check shutdown flags.
const POLL_INTERVAL: Duration = Duration::from_millis(5);

struct ServerState {
    handlers: Vec<Box<dyn FrameHandler>>,
    plan: Mutex<FaultPlan>,
    responses: AtomicU32,
    /// Set by shutdown requests and by non-fatal kill faults.
    stopped: AtomicBool,
    /// Whether a kill fault terminates the process (real worker binary)
    /// or just this server (in-process test worker).
    fatal_faults: bool,
}

impl ServerState {
    fn stop(&self) {
        self.stopped.store(true, Ordering::SeqCst);
    }

    fn is_stopped(&self) -> bool {
        self.stopped.load(Ordering::SeqCst)
    }
}

/// A running worker server. Construct with [`WorkerServer::bind`].
pub struct WorkerServer {
    addr: SocketAddr,
    state: Arc<ServerState>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

/// Encodes the payload of an [`OP_ERROR`] reply.
pub fn encode_error_payload(message: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(message.len() + 5);
    put_str(&mut out, message);
    out
}

/// Decodes an [`OP_ERROR`] payload back into its message.
pub fn decode_error_payload(payload: &[u8]) -> String {
    ByteReader::new(payload)
        .str()
        .map(str::to_owned)
        .unwrap_or_else(|_| "malformed error payload".to_owned())
}

impl WorkerServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving
    /// on background threads.
    ///
    /// `fatal_faults` selects what a kill fault does: `true` exits the
    /// process with [`FAULT_EXIT_CODE`] (the real `spq-worker` binary),
    /// `false` stops this server only (in-process workers in tests).
    pub fn bind(
        addr: &str,
        handlers: Vec<Box<dyn FrameHandler>>,
        fatal_faults: bool,
    ) -> std::io::Result<WorkerServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let state = Arc::new(ServerState {
            handlers,
            plan: Mutex::new(FaultPlan::default()),
            responses: AtomicU32::new(0),
            stopped: AtomicBool::new(false),
            fatal_faults,
        });
        let accept_state = Arc::clone(&state);
        let accept_thread = std::thread::spawn(move || accept_loop(listener, accept_state));
        Ok(WorkerServer {
            addr: local,
            state,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// True once the server has stopped (shutdown request or kill fault).
    pub fn is_stopped(&self) -> bool {
        self.state.is_stopped()
    }

    /// Stops accepting and serving, then joins the accept loop.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    /// Blocks until the server stops (shutdown frame or kill fault).
    pub fn wait(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    fn stop_and_join(&mut self) {
        self.state.stop();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for WorkerServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

impl std::fmt::Debug for WorkerServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerServer")
            .field("addr", &self.addr)
            .field("stopped", &self.is_stopped())
            .finish()
    }
}

fn accept_loop(listener: TcpListener, state: Arc<ServerState>) {
    loop {
        if state.is_stopped() {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let conn_state = Arc::clone(&state);
                std::thread::spawn(move || serve_connection(stream, conn_state));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL_INTERVAL),
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
    // Dropping the listener here closes the port: late connects are
    // refused, which is exactly how a dead worker looks to the manager.
}

fn serve_connection(mut stream: TcpStream, state: Arc<ServerState>) {
    // Connection-refusal seam: a plan with budgeted refusals closes the
    // stream before any frame is read — to the peer this is a worker that
    // accepted and immediately hung up, i.e. one that is mid-restart.
    if state.plan.lock().take_refusal() {
        return;
    }
    let _ = stream.set_nodelay(true);
    // Short read timeout so the loop can observe shutdown/kill promptly.
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    loop {
        if state.is_stopped() {
            return;
        }
        let (opcode, payload) = match read_frame(&mut stream) {
            Ok(frame) => frame,
            Err(FrameError::Io(ErrorKind::WouldBlock | ErrorKind::TimedOut)) => continue,
            Err(_) => return, // peer hung up or lost protocol sync
        };
        match opcode {
            OP_SET_FAULT => {
                // Control plane: installing a plan resets the response
                // counter and is never itself subject to faults.
                let response = match FaultPlan::decode(&mut ByteReader::new(&payload)) {
                    Ok(plan) => {
                        *state.plan.lock() = plan;
                        state.responses.store(0, Ordering::SeqCst);
                        (OP_FAULT_OK, Vec::new())
                    }
                    Err(e) => (
                        OP_ERROR,
                        encode_error_payload(&format!("bad fault plan: {e}")),
                    ),
                };
                if write_frame(&mut stream, response.0, &response.1).is_err() {
                    return;
                }
            }
            OP_SHUTDOWN => {
                state.stop();
                return;
            }
            _ => {
                let response = dispatch(&state, opcode, &payload);
                match respond_with_faults(&state, &mut stream, response.0, &response.1) {
                    Ok(()) => {}
                    Err(()) => return,
                }
            }
        }
    }
}

fn dispatch(state: &ServerState, opcode: u16, payload: &[u8]) -> (u16, Vec<u8>) {
    if opcode == OP_PING {
        return (OP_PONG, payload.to_vec());
    }
    for handler in &state.handlers {
        match handler.handle(opcode, payload) {
            Ok(Some(response)) => return response,
            Ok(None) => continue,
            Err(message) => return (OP_ERROR, encode_error_payload(&message)),
        }
    }
    (
        OP_ERROR,
        encode_error_payload(&format!("unknown opcode {opcode}")),
    )
}

/// Sends a response through the fault seam. `Err(())` means the
/// connection must be closed.
fn respond_with_faults(
    state: &ServerState,
    stream: &mut TcpStream,
    opcode: u16,
    payload: &[u8],
) -> Result<(), ()> {
    let n = state.responses.fetch_add(1, Ordering::SeqCst);
    let action = next_action(&mut state.plan.lock(), n);
    match action {
        FaultAction::Kill => {
            if state.fatal_faults {
                std::process::exit(FAULT_EXIT_CODE);
            }
            state.stop();
            Err(())
        }
        FaultAction::Drop => Err(()),
        FaultAction::Deliver { delay_ms, corrupt } => {
            if let Some(ms) = delay_ms {
                std::thread::sleep(Duration::from_millis(ms));
            }
            write_frame_with(stream, opcode, payload, corrupt).map_err(|_| ())
        }
    }
}

/// Interprets a `(opcode, payload)` reply that should have been `ok_op`,
/// turning [`OP_ERROR`] and unexpected opcodes into [`RemoteError`].
pub fn expect_reply(ok_op: u16, reply: (u16, Vec<u8>)) -> Result<Vec<u8>, RemoteError> {
    let (op, payload) = reply;
    if op == ok_op {
        Ok(payload)
    } else if op == OP_ERROR {
        Err(RemoteError::Protocol {
            message: decode_error_payload(&payload),
        })
    } else {
        Err(RemoteError::Protocol {
            message: format!("unexpected reply opcode {op} (want {ok_op})"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::super::client::{ClientConfig, WorkerClient};
    use super::super::frame::{OP_JOB, OP_PONG};
    use super::*;

    /// Echoes any OP_JOB payload back as OP_JOB_OK.
    struct Echo;

    impl FrameHandler for Echo {
        fn handle(&self, opcode: u16, payload: &[u8]) -> Result<Option<(u16, Vec<u8>)>, String> {
            if opcode == OP_JOB {
                if payload == b"boom" {
                    return Err("echo refused".to_owned());
                }
                Ok(Some((super::super::frame::OP_JOB_OK, payload.to_vec())))
            } else {
                Ok(None)
            }
        }
    }

    fn spawn_echo() -> (WorkerServer, WorkerClient) {
        let server = WorkerServer::bind("127.0.0.1:0", vec![Box::new(Echo)], false).unwrap();
        let client = WorkerClient::new(server.addr().to_string(), ClientConfig::fast());
        (server, client)
    }

    #[test]
    fn ping_pong_and_handler_dispatch() {
        let (server, mut client) = spawn_echo();
        let (op, payload) = client.call(OP_PING, b"hi").unwrap();
        assert_eq!((op, payload.as_slice()), (OP_PONG, b"hi".as_slice()));
        let reply = client.call(OP_JOB, b"work").unwrap();
        assert_eq!(
            expect_reply(super::super::frame::OP_JOB_OK, reply).unwrap(),
            b"work"
        );
        assert!(client.bytes_sent() > 0 && client.bytes_received() > 0);
        server.shutdown();
    }

    #[test]
    fn handler_error_becomes_typed_op_error() {
        let (server, mut client) = spawn_echo();
        let reply = client.call(OP_JOB, b"boom").unwrap();
        match expect_reply(super::super::frame::OP_JOB_OK, reply) {
            Err(RemoteError::Protocol { message }) => assert!(message.contains("echo refused")),
            other => panic!("expected protocol error, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn unknown_opcode_is_reported() {
        let (server, mut client) = spawn_echo();
        let reply = client.call(999, b"").unwrap();
        match expect_reply(OP_PONG, reply) {
            Err(RemoteError::Protocol { message }) => assert!(message.contains("unknown opcode")),
            other => panic!("expected protocol error, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn drop_fault_closes_once_then_recovers() {
        let (server, mut client) = spawn_echo();
        let mut plan_bytes = Vec::new();
        FaultPlan {
            drop_after_responses: Some(0),
            ..FaultPlan::default()
        }
        .encode(&mut plan_bytes);
        let reply = client.call(OP_SET_FAULT, &plan_bytes).unwrap();
        assert_eq!(reply.0, OP_FAULT_OK);
        // First response dropped: the call fails mid-stream.
        assert!(client.call(OP_PING, b"x").is_err());
        // One-shot: the reconnect succeeds and the next response lands.
        let (op, _) = client.call(OP_PING, b"y").unwrap();
        assert_eq!(op, OP_PONG);
        server.shutdown();
    }

    #[test]
    fn corrupt_fault_is_seen_as_checksum_mismatch() {
        let (server, mut client) = spawn_echo();
        let mut plan_bytes = Vec::new();
        FaultPlan {
            corrupt_response: Some(0),
            ..FaultPlan::default()
        }
        .encode(&mut plan_bytes);
        client.call(OP_SET_FAULT, &plan_bytes).unwrap();
        match client.call(OP_PING, b"payload") {
            Err(RemoteError::Frame(FrameError::Corrupt { .. })) => {}
            other => panic!("expected corrupt frame, got {other:?}"),
        }
        // One-shot again.
        assert!(client.call(OP_PING, b"payload").is_ok());
        server.shutdown();
    }

    #[test]
    fn refusal_fault_rejects_new_connections_then_recovers() {
        let (server, mut client) = spawn_echo();
        let mut plan_bytes = Vec::new();
        FaultPlan {
            refuse_connections: Some(2),
            drop_after_responses: Some(0),
            ..FaultPlan::default()
        }
        .encode(&mut plan_bytes);
        client.call(OP_SET_FAULT, &plan_bytes).unwrap();
        // The drop fault evicts the installer's established stream, so
        // every following call goes through the refusal window: two
        // refused reconnects, then the worker is healthy again.
        assert!(client.call(OP_PING, b"dropped").is_err());
        assert!(client.call(OP_PING, b"refused 1").is_err());
        assert!(client.call(OP_PING, b"refused 2").is_err());
        let (op, _) = client.call(OP_PING, b"healed").unwrap();
        assert_eq!(op, OP_PONG);
        server.shutdown();
    }

    #[test]
    fn kill_fault_stops_in_process_worker_permanently() {
        let (server, mut client) = spawn_echo();
        let mut plan_bytes = Vec::new();
        FaultPlan {
            kill_after_responses: Some(1),
            ..FaultPlan::default()
        }
        .encode(&mut plan_bytes);
        client.call(OP_SET_FAULT, &plan_bytes).unwrap();
        assert!(client.call(OP_PING, b"a").is_ok()); // response 0 delivered
        assert!(client.call(OP_PING, b"b").is_err()); // response 1 kills
                                                      // The worker is dead: reconnects are refused.
        assert!(client.call(OP_PING, b"c").is_err());
        assert!(server.is_stopped());
    }

    #[test]
    fn delay_fault_still_delivers() {
        let (server, mut client) = spawn_echo();
        let mut plan_bytes = Vec::new();
        FaultPlan {
            delay_response_ms: Some(30),
            ..FaultPlan::default()
        }
        .encode(&mut plan_bytes);
        client.call(OP_SET_FAULT, &plan_bytes).unwrap();
        let started = std::time::Instant::now();
        assert!(client.call(OP_PING, b"slow").is_ok());
        assert!(started.elapsed() >= Duration::from_millis(25));
        server.shutdown();
    }

    #[test]
    fn shutdown_refuses_new_connections() {
        let (server, mut client) = spawn_echo();
        let addr = server.addr().to_string();
        let _ = client.call(OP_SHUTDOWN, b"");
        server.wait();
        let mut fresh = WorkerClient::new(addr, ClientConfig::fast());
        assert!(fresh.call(OP_PING, b"").is_err());
    }
}
