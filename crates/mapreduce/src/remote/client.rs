//! Manager-side worker client: backoff connect, deadlines, one
//! request/response call at a time.

use super::frame::{read_frame, write_frame, FrameError, HEADER_LEN};
use std::io::ErrorKind;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Connection and deadline policy for a [`WorkerClient`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientConfig {
    /// Per-attempt TCP connect timeout.
    pub connect_timeout: Duration,
    /// Read/write timeout on an established stream — the per-task
    /// deadline: a worker that does not answer within this window counts
    /// as failed.
    pub io_timeout: Duration,
    /// First backoff delay between connect attempts; doubles per attempt.
    pub backoff_base: Duration,
    /// Upper bound on a single backoff delay.
    pub backoff_cap: Duration,
    /// Total connect attempts before the worker counts as unreachable.
    pub connect_attempts: u32,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_millis(500),
            io_timeout: Duration::from_secs(10),
            backoff_base: Duration::from_millis(20),
            backoff_cap: Duration::from_secs(1),
            connect_attempts: 4,
        }
    }
}

impl ClientConfig {
    /// A configuration with tight timeouts for tests: failures are
    /// observed in tens of milliseconds instead of seconds.
    pub fn fast() -> Self {
        Self {
            connect_timeout: Duration::from_millis(200),
            io_timeout: Duration::from_secs(5),
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(40),
            connect_attempts: 3,
        }
    }
}

/// The deterministic exponential backoff schedule between connect
/// attempts: `base, 2·base, 4·base, …`, capped at `cap`. Yields the delay
/// to sleep *after* each failed attempt (one fewer delay than attempts).
#[derive(Debug, Clone)]
pub struct Backoff {
    next: Duration,
    cap: Duration,
    remaining: u32,
}

impl Backoff {
    /// Schedule for `attempts` total attempts.
    pub fn new(base: Duration, cap: Duration, attempts: u32) -> Self {
        Self {
            next: base,
            cap,
            remaining: attempts.saturating_sub(1),
        }
    }
}

impl Iterator for Backoff {
    type Item = Duration;

    fn next(&mut self) -> Option<Duration> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let delay = self.next.min(self.cap);
        self.next = self.next.saturating_mul(2);
        Some(delay)
    }
}

/// Failure of one remote call, as seen by the manager.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RemoteError {
    /// The worker could not be reached within the backoff schedule.
    Connect {
        /// The worker address.
        addr: String,
        /// How many connect attempts were made.
        attempts: u32,
        /// The last connect error observed.
        last: String,
    },
    /// The transport failed mid-call (timeout, hangup, corruption).
    Frame(FrameError),
    /// The worker answered, but not in protocol.
    Protocol {
        /// What went wrong.
        message: String,
    },
}

impl RemoteError {
    /// True when the failure was the per-task deadline expiring.
    pub fn is_deadline(&self) -> bool {
        matches!(
            self,
            RemoteError::Frame(FrameError::Io(ErrorKind::WouldBlock | ErrorKind::TimedOut))
        )
    }
}

impl std::fmt::Display for RemoteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RemoteError::Connect {
                addr,
                attempts,
                last,
            } => write!(
                f,
                "worker {addr} unreachable after {attempts} attempts: {last}"
            ),
            RemoteError::Frame(e)
                if matches!(
                    e,
                    FrameError::Io(ErrorKind::WouldBlock | ErrorKind::TimedOut)
                ) =>
            {
                write!(f, "worker missed the response deadline: {e}")
            }
            RemoteError::Frame(e) => write!(f, "transport failed: {e}"),
            RemoteError::Protocol { message } => write!(f, "protocol violation: {message}"),
        }
    }
}

impl std::error::Error for RemoteError {}

impl From<FrameError> for RemoteError {
    fn from(e: FrameError) -> Self {
        RemoteError::Frame(e)
    }
}

/// A connection to one worker.
///
/// The stream is established lazily (with exponential backoff) on the
/// first call and re-established after any failure — a `WorkerClient`
/// held across a worker restart heals by itself. One call is one
/// request frame followed by one response frame.
#[derive(Debug)]
pub struct WorkerClient {
    addr: String,
    config: ClientConfig,
    stream: Option<TcpStream>,
    bytes_sent: u64,
    bytes_received: u64,
}

impl WorkerClient {
    /// Creates a client for `addr` (`host:port`). No connection is made
    /// until the first call.
    pub fn new(addr: impl Into<String>, config: ClientConfig) -> Self {
        Self {
            addr: addr.into(),
            config,
            stream: None,
            bytes_sent: 0,
            bytes_received: 0,
        }
    }

    /// The worker address this client targets.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Total frame bytes written to this worker (headers included).
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Total frame bytes read from this worker (headers included).
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received
    }

    fn connect(&mut self) -> Result<(), RemoteError> {
        let mut backoff = Backoff::new(
            self.config.backoff_base,
            self.config.backoff_cap,
            self.config.connect_attempts,
        );
        let mut attempts = 0;
        loop {
            attempts += 1;
            let error = match self.try_connect_once() {
                Ok(stream) => {
                    self.stream = Some(stream);
                    return Ok(());
                }
                Err(e) => e,
            };
            match backoff.next() {
                Some(delay) => std::thread::sleep(delay),
                None => {
                    return Err(RemoteError::Connect {
                        addr: self.addr.clone(),
                        attempts,
                        last: error,
                    })
                }
            }
        }
    }

    fn try_connect_once(&self) -> Result<TcpStream, String> {
        let addrs = self
            .addr
            .to_socket_addrs()
            .map_err(|e| format!("cannot resolve: {e}"))?;
        let mut last = format!("no addresses for {}", self.addr);
        for addr in addrs {
            match TcpStream::connect_timeout(&addr, self.config.connect_timeout) {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    stream
                        .set_read_timeout(Some(self.config.io_timeout))
                        .map_err(|e| e.to_string())?;
                    stream
                        .set_write_timeout(Some(self.config.io_timeout))
                        .map_err(|e| e.to_string())?;
                    return Ok(stream);
                }
                Err(e) => last = e.to_string(),
            }
        }
        Err(last)
    }

    /// Sends one request frame and reads the response frame.
    ///
    /// On any failure the stream is dropped, so the next call starts from
    /// a fresh connection.
    pub fn call(&mut self, opcode: u16, payload: &[u8]) -> Result<(u16, Vec<u8>), RemoteError> {
        if self.stream.is_none() {
            self.connect()?;
        }
        let stream = self.stream.as_mut().expect("connected above");
        let result = (|| {
            write_frame(stream, opcode, payload)?;
            read_frame(stream)
        })();
        match result {
            Ok((op, response)) => {
                self.bytes_sent += (HEADER_LEN + payload.len()) as u64;
                self.bytes_received += (HEADER_LEN + response.len()) as u64;
                Ok((op, response))
            }
            Err(e) => {
                self.stream = None;
                Err(e.into())
            }
        }
    }

    /// Drops the current connection (the next call reconnects).
    pub fn disconnect(&mut self) {
        self.stream = None;
    }

    /// One liveness probe: sends [`OP_PING`](super::OP_PING) with `token`
    /// and demands an [`OP_PONG`](super::OP_PONG) echoing it back. Any
    /// transport failure, wrong opcode or wrong echo is an error — the
    /// health-probe scheduler treats all three as "not yet recovered".
    pub fn ping(&mut self, token: &[u8]) -> Result<(), RemoteError> {
        use super::frame::{OP_PING, OP_PONG};
        match self.call(OP_PING, token)? {
            (OP_PONG, echo) if echo == token => Ok(()),
            (OP_PONG, _) => Err(RemoteError::Protocol {
                message: "ping echo mismatch".to_owned(),
            }),
            (op, _) => Err(RemoteError::Protocol {
                message: format!("ping answered with opcode {op}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let delays: Vec<_> =
            Backoff::new(Duration::from_millis(10), Duration::from_millis(35), 5).collect();
        assert_eq!(
            delays,
            vec![
                Duration::from_millis(10),
                Duration::from_millis(20),
                Duration::from_millis(35),
                Duration::from_millis(35),
            ]
        );
        // One attempt means zero sleeps.
        assert_eq!(
            Backoff::new(Duration::from_millis(10), Duration::from_millis(35), 1).count(),
            0
        );
    }

    #[test]
    fn connect_to_dead_port_exhausts_backoff() {
        // Bind a port, then drop the listener so the port is dead.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        drop(listener);
        let mut client = WorkerClient::new(addr.clone(), ClientConfig::fast());
        match client.call(super::super::frame::OP_PING, b"") {
            Err(RemoteError::Connect {
                addr: a, attempts, ..
            }) => {
                assert_eq!(a, addr);
                assert_eq!(attempts, 3);
            }
            other => panic!("expected Connect error, got {other:?}"),
        }
        assert_eq!(client.bytes_sent(), 0);
    }

    #[test]
    fn unresolvable_address_is_a_connect_error() {
        let mut client = WorkerClient::new("not an address", ClientConfig::fast());
        assert!(matches!(
            client.call(super::super::frame::OP_PING, b""),
            Err(RemoteError::Connect { .. })
        ));
    }

    #[test]
    fn deadline_detection() {
        assert!(RemoteError::Frame(FrameError::Io(ErrorKind::TimedOut)).is_deadline());
        assert!(RemoteError::Frame(FrameError::Io(ErrorKind::WouldBlock)).is_deadline());
        assert!(!RemoteError::Frame(FrameError::Truncated).is_deadline());
    }
}
