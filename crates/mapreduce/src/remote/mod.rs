//! Remote execution over TCP: framed protocol, worker server, manager
//! client, fault injection and the remote [`ExecutionBackend`].
//!
//! The module is layered exactly like the wire:
//!
//! * [`codec`] — bounds-checked little-endian primitives shared by every
//!   payload (strings, counters, job statistics).
//! * [`frame`] — the length-delimited, FNV-checksummed frame around each
//!   message, plus the opcode space.
//! * [`fault`] — the [`FaultPlan`] a test installs on a worker to trigger
//!   drops, delays, corruption and kills deterministically.
//! * [`client`] — the manager side: exponential-backoff connect, per-task
//!   deadlines, self-healing reconnects.
//! * [`worker`] — the worker side: a [`WorkerServer`] dispatching frames
//!   to a [`FrameHandler`] chain, with the fault seam on its response
//!   path.
//! * [`job`] — shipping whole map/reduce jobs: request/reply codecs and
//!   the [`WorkerRegistry`] that runs registered task kinds on the
//!   worker's local pool.
//! * [`RemoteBackend`] — the [`ExecutionBackend`] that round-robins jobs
//!   over workers and retries a dead worker's jobs on survivors.
//!
//! [`ExecutionBackend`]: crate::ExecutionBackend

pub mod client;
pub mod codec;
pub mod fault;
pub mod frame;
pub mod job;
pub mod worker;

mod backend_remote;

pub use backend_remote::RemoteBackend;
pub use client::{Backoff, ClientConfig, RemoteError, WorkerClient};
pub use codec::{ByteReader, CodecError};
pub use fault::FaultPlan;
pub use frame::{read_frame, write_frame, FrameError, MAX_FRAME_LEN};
pub use frame::{
    OP_ERROR, OP_FAULT_OK, OP_JOB, OP_JOB_OK, OP_PING, OP_PONG, OP_PROVISION, OP_PROVISION_OK,
    OP_SET_FAULT, OP_SHARD_QUERY, OP_SHARD_RESULT, OP_SHARD_STATUS, OP_SHARD_STATUS_OK,
    OP_SHUTDOWN,
};
pub use job::WorkerRegistry;
pub use worker::{
    decode_error_payload, encode_error_payload, expect_reply, FrameHandler, WorkerServer,
    FAULT_EXIT_CODE,
};
