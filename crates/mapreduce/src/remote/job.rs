//! Shipping whole map/reduce jobs to remote workers.
//!
//! The unit of remote placement is the **job**, not the individual map
//! task: the manager serializes the task spec plus every input split into
//! one [`OP_JOB`] frame, a worker runs the job end-to-end on its own
//! [`LocalPool`](crate::LocalPool) and answers with the per-reducer outputs, counters and
//! statistics. Because the local pipeline is deterministic for a fixed
//! task and input, a job answered by *any* worker — including a retry on
//! a different worker after a failure — returns byte-identical results.
//!
//! A worker-side [`JobError`] (a task panic, say) travels back as a typed
//! [`OP_ERROR`](super::frame::OP_ERROR) payload and is rebuilt verbatim on the manager, so remote
//! execution surfaces the *same* errors local execution would.

use super::codec::{
    decode_job_stats, encode_job_stats, put_str, put_u32, put_u64, put_u8, ByteReader, CodecError,
};
use super::frame::{OP_JOB, OP_JOB_OK};
use super::worker::FrameHandler;
use crate::backend::ExecutionBackend;
use crate::cluster::ClusterConfig;
use crate::job::{JobContext, JobError, JobOutput};
use crate::stats::Phase;
use crate::task::MapReduceTask;
use std::collections::BTreeMap;

/// Encodes one job request: wire kind, task spec, then the input splits.
pub fn encode_job<T: MapReduceTask>(kind: &str, task: &T, splits: &[Vec<T::Input>]) -> Vec<u8> {
    let mut out = Vec::new();
    put_str(&mut out, kind);
    task.encode_spec(&mut out);
    put_u32(&mut out, splits.len() as u32);
    for split in splits {
        put_u32(&mut out, split.len() as u32);
        for record in split {
            T::encode_input(record, &mut out);
        }
    }
    out
}

/// A decoded job request: the task plus its input splits.
pub type DecodedJob<T> = (T, Vec<Vec<<T as MapReduceTask>::Input>>);

/// Decodes the spec + splits part of a job request (the kind string has
/// already been consumed to pick `T`).
pub fn decode_job<T: MapReduceTask>(r: &mut ByteReader<'_>) -> Result<DecodedJob<T>, CodecError> {
    let task = T::decode_spec(r)?;
    let num_splits = r.u32()?;
    let mut splits = Vec::with_capacity(num_splits as usize);
    for _ in 0..num_splits {
        let len = r.u32()?;
        let mut split = Vec::with_capacity(len as usize);
        for _ in 0..len {
            split.push(T::decode_input(r)?);
        }
        splits.push(split);
    }
    Ok((task, splits))
}

/// Encodes a successful job reply: per-reducer outputs + statistics.
pub fn encode_job_output<T: MapReduceTask>(output: &JobOutput<T::Output>) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, output.per_reducer().len() as u32);
    for reducer in output.per_reducer() {
        put_u32(&mut out, reducer.len() as u32);
        for record in reducer {
            T::encode_output(record, &mut out);
        }
    }
    encode_job_stats(&output.stats, &mut out);
    out
}

/// Decodes a job reply produced by [`encode_job_output`].
pub fn decode_job_output<T: MapReduceTask>(
    payload: &[u8],
) -> Result<JobOutput<T::Output>, CodecError> {
    let mut r = ByteReader::new(payload);
    let num_reducers = r.u32()?;
    let mut per_reducer = Vec::with_capacity(num_reducers as usize);
    for _ in 0..num_reducers {
        let len = r.u32()?;
        let mut reducer = Vec::with_capacity(len as usize);
        for _ in 0..len {
            reducer.push(T::decode_output(&mut r)?);
        }
        per_reducer.push(reducer);
    }
    let stats = decode_job_stats(&mut r)?;
    Ok(JobOutput::from_parts(per_reducer, stats))
}

/// Encodes a [`JobError`] for an `OP_ERROR` payload, preserving the typed
/// variants across the wire.
pub fn encode_job_error(error: &JobError, out: &mut Vec<u8>) {
    match error {
        JobError::TaskPanicked {
            phase,
            task_index,
            message,
        } => {
            put_u8(out, 0);
            put_u8(out, matches!(phase, Phase::Reduce) as u8);
            put_u64(out, *task_index as u64);
            put_str(out, message);
        }
        JobError::NotRemotable { task } => {
            put_u8(out, 1);
            put_str(out, task);
        }
        JobError::Remote { message } => {
            put_u8(out, 2);
            put_str(out, message);
        }
    }
}

/// Decodes a [`JobError`] encoded by [`encode_job_error`]. A payload that
/// does not parse becomes `JobError::Remote` carrying the raw text.
pub fn decode_job_error(payload: &[u8]) -> JobError {
    fn parse(payload: &[u8]) -> Result<JobError, CodecError> {
        let mut r = ByteReader::new(payload);
        match r.u8()? {
            0 => Ok(JobError::TaskPanicked {
                phase: if r.u8()? == 1 {
                    Phase::Reduce
                } else {
                    Phase::Map
                },
                task_index: r.u64()? as usize,
                message: r.str()?.to_owned(),
            }),
            1 => Ok(JobError::NotRemotable {
                task: r.str()?.to_owned(),
            }),
            2 => Ok(JobError::Remote {
                message: r.str()?.to_owned(),
            }),
            t => Err(CodecError::invalid(format!("bad job error tag {t}"))),
        }
    }
    parse(payload).unwrap_or_else(|_| JobError::Remote {
        message: String::from_utf8_lossy(payload).into_owned(),
    })
}

type JobFn = Box<dyn Fn(&mut ByteReader<'_>) -> Result<Vec<u8>, JobError> + Send + Sync>;

/// Worker-side dispatch table from wire kind to a job executor.
///
/// Register every remotable task type once; the registry then answers
/// [`OP_JOB`] frames by decoding the matching task, running it on the
/// worker's [`LocalPool`](crate::LocalPool) and encoding the reply.
pub struct WorkerRegistry {
    config: ClusterConfig,
    // BTreeMap so `kinds()` and the Debug listing come out in a
    // stable order — this module answers wire frames, and spq-lint bans
    // hash-order iteration here.
    handlers: BTreeMap<&'static str, JobFn>,
}

impl WorkerRegistry {
    /// Creates a registry whose jobs run on a pool of `config.workers`
    /// threads.
    pub fn new(config: ClusterConfig) -> Self {
        Self {
            config,
            handlers: BTreeMap::new(),
        }
    }

    /// Registers `T` under its [`REMOTE_KIND`](MapReduceTask::REMOTE_KIND).
    ///
    /// # Panics
    ///
    /// Panics if `T` declares no remote kind — that is a build-time
    /// mistake, not a runtime condition.
    pub fn register<T: MapReduceTask + 'static>(&mut self) {
        let kind = T::REMOTE_KIND.unwrap_or_else(|| {
            panic!(
                "task {} declares no REMOTE_KIND",
                std::any::type_name::<T>()
            )
        });
        let pool = crate::backend::LocalPool::new(self.config);
        self.handlers.insert(
            kind,
            Box::new(move |r| {
                let (task, splits) = decode_job::<T>(r).map_err(|e| JobError::Remote {
                    message: format!("job request for kind {kind:?} did not decode: {e}"),
                })?;
                let output = pool.execute(&JobContext::new(), &task, &splits)?;
                Ok(encode_job_output::<T>(&output))
            }),
        );
    }

    /// The registered wire kinds, for diagnostics.
    pub fn kinds(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.handlers.keys().copied()
    }
}

impl std::fmt::Debug for WorkerRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerRegistry")
            .field("config", &self.config)
            .field("kinds", &self.handlers.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl FrameHandler for WorkerRegistry {
    fn handle(&self, opcode: u16, payload: &[u8]) -> Result<Option<(u16, Vec<u8>)>, String> {
        if opcode != OP_JOB {
            return Ok(None);
        }
        let mut r = ByteReader::new(payload);
        let kind = r
            .str()
            .map_err(|e| format!("job frame without kind: {e}"))?;
        let Some(handler) = self.handlers.get(kind) else {
            let mut out = Vec::new();
            encode_job_error(
                &JobError::NotRemotable {
                    task: kind.to_owned(),
                },
                &mut out,
            );
            return Ok(Some((super::frame::OP_ERROR, out)));
        };
        match handler(&mut r) {
            Ok(reply) => Ok(Some((OP_JOB_OK, reply))),
            Err(job_error) => {
                let mut out = Vec::new();
                encode_job_error(&job_error, &mut out);
                Ok(Some((super::frame::OP_ERROR, out)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::backend_remote::RemoteBackend;
    use super::super::client::ClientConfig;
    use super::super::worker::WorkerServer;
    use super::*;
    use crate::task::{GroupValues, MapContext, ReduceContext};
    use crate::JobRunner;
    use std::cmp::Ordering;

    /// A remotable word count: spec = reducer count, records = strings.
    pub(crate) struct RemoteWordCount {
        pub(crate) reducers: usize,
    }

    impl MapReduceTask for RemoteWordCount {
        type Input = String;
        type Key = String;
        type Value = u64;
        type Output = (String, u64);

        const REMOTE_KIND: Option<&'static str> = Some("test.word_count");

        fn encode_spec(&self, out: &mut Vec<u8>) {
            put_u64(out, self.reducers as u64);
        }

        fn decode_spec(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
            Ok(Self {
                reducers: r.u64()? as usize,
            })
        }

        fn encode_input(record: &String, out: &mut Vec<u8>) {
            put_str(out, record);
        }

        fn decode_input(r: &mut ByteReader<'_>) -> Result<String, CodecError> {
            Ok(r.str()?.to_owned())
        }

        fn encode_output(record: &(String, u64), out: &mut Vec<u8>) {
            put_str(out, &record.0);
            put_u64(out, record.1);
        }

        fn decode_output(r: &mut ByteReader<'_>) -> Result<(String, u64), CodecError> {
            Ok((r.str()?.to_owned(), r.u64()?))
        }

        fn num_reducers(&self) -> usize {
            self.reducers
        }

        fn map(&self, record: &String, ctx: &mut MapContext<'_, Self>) {
            for word in record.split_whitespace() {
                if word == "§panic§" {
                    panic!("poisoned word reached the map");
                }
                ctx.emit(self, word.to_owned(), 1);
            }
        }

        fn partition(&self, key: &String) -> usize {
            key.len() % self.reducers
        }

        fn sort_cmp(&self, a: &String, b: &String) -> Ordering {
            a.cmp(b)
        }

        fn reduce(
            &self,
            group: &String,
            values: &mut GroupValues<'_, Self>,
            ctx: &mut ReduceContext<'_, (String, u64)>,
        ) {
            ctx.emit((group.clone(), values.map(|(_, v)| v).sum()));
        }
    }

    pub(crate) fn spawn_job_worker() -> WorkerServer {
        let mut registry = WorkerRegistry::new(ClusterConfig::with_workers(2));
        registry.register::<RemoteWordCount>();
        WorkerServer::bind("127.0.0.1:0", vec![Box::new(registry)], false).unwrap()
    }

    fn splits() -> Vec<Vec<String>> {
        vec![
            vec!["to be or".to_owned(), "not".to_owned()],
            vec![],
            vec!["to be".to_owned()],
        ]
    }

    #[test]
    fn job_payload_round_trip() {
        let task = RemoteWordCount { reducers: 3 };
        let payload = encode_job("test.word_count", &task, &splits());
        let mut r = ByteReader::new(&payload);
        assert_eq!(r.str().unwrap(), "test.word_count");
        let (decoded, decoded_splits) = decode_job::<RemoteWordCount>(&mut r).unwrap();
        assert_eq!(decoded.reducers, 3);
        assert_eq!(decoded_splits, splits());
        assert!(r.is_empty());
    }

    #[test]
    fn job_output_round_trip() {
        let out = JobRunner::new(ClusterConfig::sequential())
            .run(&RemoteWordCount { reducers: 3 }, &splits())
            .unwrap();
        let payload = encode_job_output::<RemoteWordCount>(&out);
        let decoded = decode_job_output::<RemoteWordCount>(&payload).unwrap();
        assert_eq!(decoded.per_reducer(), out.per_reducer());
        assert_eq!(decoded.stats.counters, out.stats.counters);
        assert_eq!(decoded.stats.shuffle_records, out.stats.shuffle_records);
    }

    #[test]
    fn job_error_round_trip() {
        for error in [
            JobError::TaskPanicked {
                phase: Phase::Reduce,
                task_index: 4,
                message: "bad group".to_owned(),
            },
            JobError::NotRemotable {
                task: "nope".to_owned(),
            },
            JobError::Remote {
                message: "socket fell over".to_owned(),
            },
        ] {
            let mut out = Vec::new();
            encode_job_error(&error, &mut out);
            assert_eq!(decode_job_error(&out), error);
        }
        // Garbage degrades to a Remote error, never a panic.
        assert!(matches!(
            decode_job_error(&[9, 9, 9]),
            JobError::Remote { .. }
        ));
    }

    #[test]
    fn remote_backend_matches_local_pool_byte_for_byte() {
        let worker_a = spawn_job_worker();
        let worker_b = spawn_job_worker();
        let backend = RemoteBackend::connect(
            &[worker_a.addr().to_string(), worker_b.addr().to_string()],
            ClientConfig::fast(),
        );
        let task = RemoteWordCount { reducers: 3 };
        let local = JobRunner::new(ClusterConfig::with_workers(2))
            .run(&task, &splits())
            .unwrap();
        for _ in 0..4 {
            let remote = backend
                .execute(&JobContext::new(), &task, &splits())
                .unwrap();
            assert_eq!(remote.per_reducer(), local.per_reducer());
            assert_eq!(remote.stats.counters, local.stats.counters);
        }
        assert_eq!(backend.retries(), 0);
        assert_eq!(backend.descriptor().to_string(), "remotex2");
    }

    #[test]
    fn worker_panic_surfaces_as_the_same_job_error() {
        let worker = spawn_job_worker();
        let backend = RemoteBackend::connect(&[worker.addr().to_string()], ClientConfig::fast());
        let task = RemoteWordCount { reducers: 2 };
        let poisoned = vec![vec!["ok".to_owned()], vec!["§panic§".to_owned()]];
        let local_err = JobRunner::new(ClusterConfig::sequential())
            .run(&task, &poisoned)
            .unwrap_err();
        let remote_err = backend
            .execute(&JobContext::new(), &task, &poisoned)
            .unwrap_err();
        assert_eq!(remote_err, local_err);
    }

    #[test]
    fn unregistered_kind_is_not_remotable() {
        struct NoKind;
        impl MapReduceTask for NoKind {
            type Input = ();
            type Key = u32;
            type Value = ();
            type Output = ();
            fn num_reducers(&self) -> usize {
                1
            }
            fn map(&self, _: &(), _: &mut MapContext<'_, Self>) {}
            fn partition(&self, _: &u32) -> usize {
                0
            }
            fn sort_cmp(&self, _: &u32, _: &u32) -> Ordering {
                Ordering::Equal
            }
            fn reduce(
                &self,
                _: &u32,
                _: &mut GroupValues<'_, Self>,
                _: &mut ReduceContext<'_, ()>,
            ) {
            }
        }
        let worker = spawn_job_worker();
        let backend = RemoteBackend::connect(&[worker.addr().to_string()], ClientConfig::fast());
        assert!(matches!(
            backend.execute(&JobContext::new(), &NoKind, &[]),
            Err(JobError::NotRemotable { .. })
        ));
    }

    #[test]
    fn dead_worker_jobs_are_retried_on_survivors() {
        let dead = {
            // Bind then drop: a refused port standing in for a crashed worker.
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap().to_string()
        };
        let alive = spawn_job_worker();
        let backend =
            RemoteBackend::connect(&[dead, alive.addr().to_string()], ClientConfig::fast());
        let task = RemoteWordCount { reducers: 2 };
        let local = JobRunner::new(ClusterConfig::sequential())
            .run(&task, &splits())
            .unwrap();
        // Several jobs: round-robin would hit the dead worker without the
        // exclusion list.
        for _ in 0..4 {
            let remote = backend
                .execute(&JobContext::new(), &task, &splits())
                .unwrap();
            assert_eq!(remote.per_reducer(), local.per_reducer());
        }
        assert!(backend.retries() >= 1, "the dead worker was never tried");
        assert_eq!(backend.excluded_workers(), 1);
    }

    #[test]
    fn all_workers_dead_is_a_remote_error() {
        let dead = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap().to_string()
        };
        let backend = RemoteBackend::connect(&[dead], ClientConfig::fast());
        let task = RemoteWordCount { reducers: 2 };
        match backend.execute(&JobContext::new(), &task, &splits()) {
            Err(JobError::Remote { message }) => {
                assert!(message.contains("unreachable"), "message: {message}")
            }
            other => panic!("expected Remote error, got {other:?}"),
        }
    }
}
