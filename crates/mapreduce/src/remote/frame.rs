//! Length-delimited, checksummed framing for the worker TCP protocol.
//!
//! Every message on the wire is one frame:
//!
//! ```text
//! ┌────────────┬────────────┬───────────┬──────────┬──────────────┬─────────┐
//! │ magic: u32 │ opcode: u16│ flags: u16│ len: u32 │ checksum: u64│ payload │
//! └────────────┴────────────┴───────────┴──────────┴──────────────┴─────────┘
//!     "SPQF"      dispatch       0        payload     FNV-1a over    len
//!                                          bytes        payload      bytes
//! ```
//!
//! All header fields are little-endian. The checksum lets the receiver
//! reject a corrupted payload *before* any structural decoding happens,
//! and the explicit length (capped at [`MAX_FRAME_LEN`]) bounds the
//! allocation a frame can demand. A short read anywhere — header or
//! payload — surfaces as [`FrameError::Truncated`], which is how a peer
//! hanging up mid-frame is observed.

use std::io::{Read, Write};

/// Frame magic: `"SPQF"` as a little-endian `u32`.
pub const MAGIC: u32 = u32::from_le_bytes(*b"SPQF");

/// Upper bound on a frame payload (64 MiB). A length field above this is
/// treated as corruption, not as a real allocation request.
pub const MAX_FRAME_LEN: u32 = 64 << 20;

/// Size of the fixed frame header in bytes.
pub const HEADER_LEN: usize = 20;

/// Liveness probe; the payload is echoed back in the [`OP_PONG`] reply.
pub const OP_PING: u16 = 1;
/// Reply to [`OP_PING`].
pub const OP_PONG: u16 = 2;
/// A serialized map/reduce job (task spec + input splits).
pub const OP_JOB: u16 = 3;
/// Successful job reply: per-reducer outputs + job statistics.
pub const OP_JOB_OK: u16 = 4;
/// Typed error reply to any request.
pub const OP_ERROR: u16 = 5;
/// Installs a query shard (executor config + data slice + features).
pub const OP_PROVISION: u16 = 6;
/// Acknowledges [`OP_PROVISION`].
pub const OP_PROVISION_OK: u16 = 7;
/// Runs one SPQ query against a provisioned shard.
pub const OP_SHARD_QUERY: u16 = 8;
/// Shard query reply: 12-byte wire records + stats.
pub const OP_SHARD_RESULT: u16 = 9;
/// Installs a [`FaultPlan`](super::FaultPlan) on the worker.
pub const OP_SET_FAULT: u16 = 10;
/// Acknowledges [`OP_SET_FAULT`] (never subject to fault injection).
pub const OP_FAULT_OK: u16 = 11;
/// Asks the worker to stop serving and exit its accept loop.
pub const OP_SHUTDOWN: u16 = 12;
/// Asks a shard host which shards it currently serves (empty payload).
/// A manager re-admitting a recovered worker uses the answer to decide
/// whether the worker's copies are still warm or must be re-provisioned.
pub const OP_SHARD_STATUS: u16 = 13;
/// Reply to [`OP_SHARD_STATUS`]: the hosted shard ids.
pub const OP_SHARD_STATUS_OK: u16 = 14;

/// Transport-level failure while reading or writing a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The header did not start with [`MAGIC`] — the peer is not speaking
    /// this protocol, or the stream lost sync.
    BadMagic {
        /// The four bytes found where the magic was expected.
        found: u32,
    },
    /// The length field exceeded [`MAX_FRAME_LEN`].
    Oversize {
        /// The claimed payload length.
        len: u32,
    },
    /// The payload did not match its checksum.
    Corrupt {
        /// Checksum the header promised.
        expected: u64,
        /// Checksum of the bytes actually received.
        found: u64,
    },
    /// The stream ended (peer hung up) before the frame was complete.
    Truncated,
    /// Any other I/O failure, by kind (timeouts surface here).
    Io(std::io::ErrorKind),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic { found } => {
                write!(f, "bad frame magic {found:#010x} (want {MAGIC:#010x})")
            }
            FrameError::Oversize { len } => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME_LEN} cap")
            }
            FrameError::Corrupt { expected, found } => write!(
                f,
                "frame payload corrupt: checksum {found:#018x}, header says {expected:#018x}"
            ),
            FrameError::Truncated => write!(f, "connection closed mid-frame"),
            FrameError::Io(kind) => write!(f, "frame i/o error: {kind}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::UnexpectedEof => FrameError::Truncated,
            kind => FrameError::Io(kind),
        }
    }
}

/// 64-bit FNV-1a over a byte slice — tiny, dependency-free, and plenty to
/// catch torn or bit-flipped payloads (this is an integrity check against
/// accidents, not an authentication code).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Writes one frame.
pub fn write_frame(w: &mut impl Write, opcode: u16, payload: &[u8]) -> Result<(), FrameError> {
    write_frame_with(w, opcode, payload, false)
}

/// Writes one frame, optionally corrupting the payload *after* the
/// checksum is computed — the fault-injection seam behind
/// [`FaultPlan::corrupt_response`](super::FaultPlan::corrupt_response).
pub(crate) fn write_frame_with(
    w: &mut impl Write,
    opcode: u16,
    payload: &[u8],
    corrupt: bool,
) -> Result<(), FrameError> {
    assert!(
        payload.len() <= MAX_FRAME_LEN as usize,
        "frame payload of {} bytes exceeds the {MAX_FRAME_LEN} cap",
        payload.len()
    );
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len());
    buf.extend_from_slice(&MAGIC.to_le_bytes());
    buf.extend_from_slice(&opcode.to_le_bytes());
    buf.extend_from_slice(&0u16.to_le_bytes()); // flags, reserved
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&fnv1a(payload).to_le_bytes());
    buf.extend_from_slice(payload);
    if corrupt && !payload.is_empty() {
        // Flip every bit of the payload's first byte; the header (and its
        // checksum field) still describe the original bytes.
        let first = HEADER_LEN;
        buf[first] = !buf[first];
    } else if corrupt {
        // An empty payload has no byte to flip; lie in the checksum
        // instead so the receiver still observes corruption.
        buf[12..20].copy_from_slice(&fnv1a(&[0xab]).to_le_bytes());
    }
    w.write_all(&buf)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame, verifying magic, length cap and checksum.
pub fn read_frame(r: &mut impl Read) -> Result<(u16, Vec<u8>), FrameError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    let magic = u32::from_le_bytes(header[0..4].try_into().unwrap());
    if magic != MAGIC {
        return Err(FrameError::BadMagic { found: magic });
    }
    let opcode = u16::from_le_bytes(header[4..6].try_into().unwrap());
    let len = u32::from_le_bytes(header[8..12].try_into().unwrap());
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Oversize { len });
    }
    let expected = u64::from_le_bytes(header[12..20].try_into().unwrap());
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let found = fnv1a(&payload);
    if found != expected {
        return Err(FrameError::Corrupt { expected, found });
    }
    Ok((opcode, payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, OP_PING, b"hello").unwrap();
        let (op, payload) = read_frame(&mut Cursor::new(&buf)).unwrap();
        assert_eq!(op, OP_PING);
        assert_eq!(payload, b"hello");
    }

    #[test]
    fn empty_payload_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, OP_SHUTDOWN, &[]).unwrap();
        let (op, payload) = read_frame(&mut Cursor::new(&buf)).unwrap();
        assert_eq!(op, OP_SHUTDOWN);
        assert!(payload.is_empty());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, OP_PING, b"x").unwrap();
        buf[0] ^= 0xff;
        assert!(matches!(
            read_frame(&mut Cursor::new(&buf)),
            Err(FrameError::BadMagic { .. })
        ));
    }

    #[test]
    fn oversize_length_is_rejected_before_allocating() {
        let mut buf = Vec::new();
        write_frame(&mut buf, OP_PING, b"x").unwrap();
        buf[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            read_frame(&mut Cursor::new(&buf)),
            Err(FrameError::Oversize { len: u32::MAX })
        );
    }

    #[test]
    fn truncation_is_detected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, OP_PING, b"hello world").unwrap();
        buf.truncate(buf.len() - 3); // torn payload
        assert_eq!(
            read_frame(&mut Cursor::new(&buf)),
            Err(FrameError::Truncated)
        );
        // Torn header too.
        assert_eq!(
            read_frame(&mut Cursor::new(&buf[..7])),
            Err(FrameError::Truncated)
        );
    }

    #[test]
    fn corruption_is_detected_by_checksum() {
        let mut buf = Vec::new();
        write_frame_with(&mut buf, OP_JOB_OK, b"payload", true).unwrap();
        assert!(matches!(
            read_frame(&mut Cursor::new(&buf)),
            Err(FrameError::Corrupt { .. })
        ));
        // Even an empty payload can be corrupted (via the checksum field).
        let mut buf = Vec::new();
        write_frame_with(&mut buf, OP_JOB_OK, &[], true).unwrap();
        assert!(matches!(
            read_frame(&mut Cursor::new(&buf)),
            Err(FrameError::Corrupt { .. })
        ));
    }

    #[test]
    fn fnv_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
