//! The remote [`ExecutionBackend`]: jobs placed on worker processes.

use super::client::{ClientConfig, WorkerClient};
use super::frame::{OP_ERROR, OP_JOB, OP_JOB_OK};
use super::job::{decode_job_error, decode_job_output, encode_job};
use crate::backend::{BackendDescriptor, ExecutionBackend};
use crate::job::{JobContext, JobError, JobOutput};
use crate::task::MapReduceTask;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

struct WorkerSlot {
    client: Mutex<WorkerClient>,
    excluded: AtomicBool,
}

/// An [`ExecutionBackend`] that ships whole jobs to remote worker
/// processes over TCP.
///
/// Jobs are assigned round-robin across the live workers. When a call to
/// a worker fails at the transport level — unreachable, hung up, missed
/// its deadline, corrupted a frame — that worker goes on the exclusion
/// list and the job is retried verbatim on the next survivor; because job
/// execution is deterministic, the retried result is byte-identical to
/// what the dead worker would have produced. A worker-side *task* error
/// (a panic inside map or reduce) is **not** retried: it is deterministic
/// and would fail everywhere, so it surfaces immediately as the same
/// [`JobError`] local execution raises.
///
/// Tasks must declare a [`REMOTE_KIND`](MapReduceTask::REMOTE_KIND) and
/// implement the remote codec hooks; the worker must have the same type
/// registered (see [`WorkerRegistry`](super::WorkerRegistry)).
#[derive(Debug)]
pub struct RemoteBackend {
    workers: Vec<WorkerSlot>,
    next: AtomicUsize,
    retries: AtomicU64,
}

impl std::fmt::Debug for WorkerSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerSlot")
            .field("addr", &self.client.lock().addr())
            .field("excluded", &self.excluded.load(Ordering::SeqCst))
            .finish()
    }
}

impl RemoteBackend {
    /// Creates a backend over the given worker addresses. Connections are
    /// opened lazily on first use.
    ///
    /// # Panics
    ///
    /// Panics when `addrs` is empty — a backend needs at least one
    /// worker.
    pub fn connect(addrs: &[String], config: ClientConfig) -> Self {
        assert!(
            !addrs.is_empty(),
            "remote backend needs at least one worker"
        );
        Self {
            workers: addrs
                .iter()
                .map(|addr| WorkerSlot {
                    client: Mutex::new(WorkerClient::new(addr.clone(), config)),
                    excluded: AtomicBool::new(false),
                })
                .collect(),
            next: AtomicUsize::new(0),
            retries: AtomicU64::new(0),
        }
    }

    /// Total failovers: how many times a job bounced off a failing worker
    /// onto the next one.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::SeqCst)
    }

    /// How many workers are currently on the exclusion list.
    pub fn excluded_workers(&self) -> usize {
        self.workers
            .iter()
            .filter(|w| w.excluded.load(Ordering::SeqCst))
            .count()
    }

    /// Total frame bytes exchanged with all workers (headers included).
    pub fn traffic_bytes(&self) -> u64 {
        self.workers
            .iter()
            .map(|w| {
                let c = w.client.lock();
                c.bytes_sent() + c.bytes_received()
            })
            .sum()
    }
}

impl ExecutionBackend for RemoteBackend {
    fn execute<T: MapReduceTask>(
        &self,
        _ctx: &JobContext,
        task: &T,
        splits: &[Vec<T::Input>],
    ) -> Result<JobOutput<T::Output>, JobError> {
        let Some(kind) = T::REMOTE_KIND else {
            return Err(JobError::NotRemotable {
                task: std::any::type_name::<T>().to_owned(),
            });
        };
        let payload = encode_job(kind, task, splits);
        let n = self.workers.len();
        let start = self.next.fetch_add(1, Ordering::Relaxed) % n;
        let mut trail: Vec<String> = Vec::new();
        let mut tried_any = false;
        for offset in 0..n {
            let index = (start + offset) % n;
            let slot = &self.workers[index];
            if slot.excluded.load(Ordering::SeqCst) {
                continue;
            }
            if tried_any {
                // This attempt exists only because a previous worker
                // failed mid-job: account it as a retry.
                self.retries.fetch_add(1, Ordering::SeqCst);
            }
            tried_any = true;
            let reply = slot.client.lock().call(OP_JOB, &payload);
            match reply {
                Ok((OP_JOB_OK, response)) => {
                    return decode_job_output::<T>(&response).map_err(|e| JobError::Remote {
                        message: format!("worker reply did not decode: {e}"),
                    })
                }
                Ok((OP_ERROR, response)) => return Err(decode_job_error(&response)),
                Ok((op, _)) => {
                    slot.excluded.store(true, Ordering::SeqCst);
                    trail.push(format!("worker {index}: unexpected reply opcode {op}"));
                }
                Err(e) => {
                    slot.excluded.store(true, Ordering::SeqCst);
                    trail.push(format!("worker {index}: {e}"));
                }
            }
        }
        Err(JobError::Remote {
            message: if trail.is_empty() {
                "every worker is on the exclusion list".to_owned()
            } else {
                format!(
                    "no surviving worker could run the job: {}",
                    trail.join("; ")
                )
            },
        })
    }

    fn descriptor(&self) -> BackendDescriptor {
        BackendDescriptor {
            name: "remote",
            parallelism: self.workers.len(),
        }
    }
}
