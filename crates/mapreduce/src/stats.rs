//! Job- and task-level execution statistics.

use crate::counters::Counters;
use std::fmt;
use std::time::Duration;

/// Execution phase of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Map phase.
    Map,
    /// Reduce phase.
    Reduce,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Phase::Map => write!(f, "map"),
            Phase::Reduce => write!(f, "reduce"),
        }
    }
}

/// Statistics of a single map or reduce task attempt.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TaskStats {
    /// Wall-clock duration of the task body.
    pub duration: Duration,
    /// Records read by the task.
    pub records_in: u64,
    /// Records written by the task.
    pub records_out: u64,
}

/// Aggregated statistics of one MapReduce job.
#[derive(Debug, Clone, Default)]
pub struct JobStats {
    /// Per-map-task statistics, in split order.
    pub map_tasks: Vec<TaskStats>,
    /// Per-reduce-task statistics, in reducer order.
    pub reduce_tasks: Vec<TaskStats>,
    /// Wall-clock time of the map phase (tasks run on the real pool).
    pub map_wall: Duration,
    /// Wall-clock time of the shuffle (partition + sort).
    pub shuffle_wall: Duration,
    /// Wall-clock time of the reduce phase.
    pub reduce_wall: Duration,
    /// End-to-end job wall-clock time.
    pub total_wall: Duration,
    /// Records that crossed the shuffle (map output records, including
    /// duplicated feature objects).
    pub shuffle_records: u64,
    /// Merged counters from all tasks plus runtime-maintained ones.
    pub counters: Counters,
}

impl JobStats {
    /// Total records consumed by all map tasks.
    pub fn map_input_records(&self) -> u64 {
        self.map_tasks.iter().map(|t| t.records_in).sum()
    }

    /// Total records produced by all reducers.
    pub fn reduce_output_records(&self) -> u64 {
        self.reduce_tasks.iter().map(|t| t.records_out).sum()
    }

    /// The busiest reducer's input size — the load-balance indicator the
    /// paper discusses for the clustered dataset (Section 7.2.4).
    pub fn max_reduce_input(&self) -> u64 {
        self.reduce_tasks
            .iter()
            .map(|t| t.records_in)
            .max()
            .unwrap_or(0)
    }

    /// Ratio of the busiest reducer's input to the mean reducer input — 1.0
    /// is perfectly balanced; large values explain straggler-dominated
    /// makespans on skewed data.
    pub fn reduce_skew(&self) -> f64 {
        let n = self.reduce_tasks.len();
        if n == 0 {
            return 1.0;
        }
        let total: u64 = self.reduce_tasks.iter().map(|t| t.records_in).sum();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / n as f64;
        self.max_reduce_input() as f64 / mean
    }
}

impl fmt::Display for JobStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "job: total {:?} (map {:?}, shuffle {:?}, reduce {:?})",
            self.total_wall, self.map_wall, self.shuffle_wall, self.reduce_wall
        )?;
        writeln!(
            f,
            "  {} map tasks ({} records in, {} shuffled), {} reduce tasks ({} records out, skew {:.2})",
            self.map_tasks.len(),
            self.map_input_records(),
            self.shuffle_records,
            self.reduce_tasks.len(),
            self.reduce_output_records(),
            self.reduce_skew(),
        )?;
        write!(f, "{}", self.counters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(records_in: u64) -> TaskStats {
        TaskStats {
            duration: Duration::from_millis(records_in),
            records_in,
            records_out: records_in / 2,
        }
    }

    #[test]
    fn aggregates_over_tasks() {
        let stats = JobStats {
            map_tasks: vec![task(10), task(30)],
            reduce_tasks: vec![task(8), task(24), task(16)],
            ..Default::default()
        };
        assert_eq!(stats.map_input_records(), 40);
        assert_eq!(stats.reduce_output_records(), 4 + 12 + 8);
        assert_eq!(stats.max_reduce_input(), 24);
        let mean = 48.0 / 3.0;
        assert!((stats.reduce_skew() - 24.0 / mean).abs() < 1e-12);
    }

    #[test]
    fn skew_defaults_to_balanced() {
        let empty = JobStats::default();
        assert_eq!(empty.reduce_skew(), 1.0);
        assert_eq!(empty.max_reduce_input(), 0);
        let zeros = JobStats {
            reduce_tasks: vec![task(0), task(0)],
            ..Default::default()
        };
        assert_eq!(zeros.reduce_skew(), 1.0);
    }

    #[test]
    fn display_mentions_phases() {
        let s = JobStats::default().to_string();
        assert!(s.contains("map"));
        assert!(s.contains("reduce"));
    }
}
