//! Integration tests of the benchmark matrix: the versioned record
//! format (golden file + schema fingerprint + round-trip proptest), a
//! tiny end-to-end matrix run, and the `spq-bench compare` gate driven
//! through the real binary.

use criterion::stats::{Estimate, Outliers};
use proptest::prelude::*;
use spq_bench::matrix::record::{schema_fingerprint, synthetic_fixture, ReportConfig};
use spq_bench::matrix::{
    run_matrix, MatrixConfig, MatrixRecord, MatrixReport, Verdict, SCHEMA_VERSION,
};
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join("bench_matrix_golden.json")
}

/// The serialized shape is frozen: a fixed synthetic report must match
/// the committed fixture byte for byte. Regenerate deliberately with
/// `SPQ_BLESS=1 cargo test -p spq-bench --test matrix` — and bump
/// [`SCHEMA_VERSION`] if the shape (not just values) changed.
#[test]
fn golden_file_matches_the_committed_fixture() {
    let rendered = synthetic_fixture().to_json();
    let path = fixture_path();
    if std::env::var_os("SPQ_BLESS").is_some() {
        std::fs::write(&path, &rendered).expect("bless fixture");
        return;
    }
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "read {}: {e}; run with SPQ_BLESS=1 to create",
            path.display()
        )
    });
    assert_eq!(
        rendered, committed,
        "BENCH_MATRIX.json shape or formatting changed: bump SCHEMA_VERSION if fields \
         changed, then regenerate with SPQ_BLESS=1"
    );
}

/// The schema fingerprint (sorted key paths of a serialized document) is
/// pinned to the current [`SCHEMA_VERSION`]. If this assertion fails you
/// changed the record shape: bump the version, update this constant, and
/// regenerate the golden fixture.
#[test]
fn schema_fingerprint_is_pinned_to_the_version() {
    assert_eq!(SCHEMA_VERSION, 2, "update the fingerprint below on bump");
    assert_eq!(
        schema_fingerprint(),
        "bench;\
         config.batch;config.filter;config.queries;config.scale;config.seed;config.workers;\
         records[].algorithm;records[].backend;records[].corpus;records[].id;\
         records[].identical_to_reference;\
         records[].mean_ms.hi;records[].mean_ms.lo;records[].mean_ms.point;\
         records[].mode;records[].objects;\
         records[].outliers.mild_high;records[].outliers.mild_low;\
         records[].outliers.severe_high;records[].outliers.severe_low;\
         records[].p50_ms.hi;records[].p50_ms.lo;records[].p50_ms.point;\
         records[].p99_ms.hi;records[].p99_ms.lo;records[].p99_ms.point;\
         records[].qps;records[].samples;records[].shed_rate;\
         schema_version"
            .replace(";\n", ";")
            .replace(' ', ""),
        "record shape changed without a SCHEMA_VERSION bump"
    );
}

fn arb_estimate() -> impl Strategy<Value = Estimate> {
    (0.0f64..1e6, 0.0f64..1.0, 0.0f64..1.0).prop_map(|(point, dlo, dhi)| Estimate {
        point,
        lo: point * (1.0 - dlo * 0.5),
        hi: point * (1.0 + dhi * 0.5),
    })
}

fn arb_record() -> impl Strategy<Value = MatrixRecord> {
    (
        (0usize..4, 0usize..3, 0usize..4, 0usize..4),
        (1usize..1_000_000, 1usize..2_000, 0.0f64..1e6),
        arb_estimate(),
        arb_estimate(),
        arb_estimate(),
        (0usize..5, 0usize..5, 0usize..5, 0usize..5),
    )
        .prop_map(|(axes, counts, mean_ms, p50_ms, p99_ms, outl)| {
            let corpora = ["uniform-120k", "clustered-60k", "flickr-40k", "tiny"];
            let algos = ["pSPQ", "eSPQlen", "eSPQsco"];
            let backends = ["local", "sharded:4", "remote:2", "sharded:16"];
            let modes = ["execute", "execute-batch", "serve", "serve-admission"];
            let (c, a, b, m) = axes;
            let (objects, samples, qps) = counts;
            MatrixRecord {
                id: format!("{}/{}/{}/{}", corpora[c], algos[a], backends[b], modes[m]),
                corpus: corpora[c].to_owned(),
                algorithm: algos[a].to_owned(),
                backend: backends[b].to_owned(),
                mode: modes[m].to_owned(),
                objects,
                samples,
                qps,
                shed_rate: if modes[m] == "serve-admission" {
                    0.5
                } else {
                    0.0
                },
                identical_to_reference: true,
                mean_ms,
                p50_ms,
                p99_ms,
                outliers: Outliers {
                    severe_low: outl.0,
                    mild_low: outl.1,
                    mild_high: outl.2,
                    severe_high: outl.3,
                },
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Serde-style round trip: `from_json(to_json(report))` reproduces
    /// every field exactly (floats use shortest round-trip formatting).
    #[test]
    fn prop_report_round_trips_exactly(
        records in proptest::collection::vec(arb_record(), 0..6),
        seed in 0u64..10_000,
        scale in 0.001f64..10.0,
    ) {
        let report = MatrixReport {
            schema_version: SCHEMA_VERSION,
            config: ReportConfig {
                seed,
                scale,
                queries: 24,
                batch: 8,
                workers: 4,
                filter: if seed % 2 == 0 { None } else { Some("remote:*".to_owned()) },
            },
            records,
        };
        let parsed = MatrixReport::from_json(&report.to_json()).unwrap();
        prop_assert_eq!(parsed, report);
    }
}

/// A tiny end-to-end run: 1k-object floor, one corpus via filter, two
/// in-process backends. Exercises the full runner path including the
/// byte-identity asserts.
#[test]
fn tiny_matrix_run_produces_consistent_records() {
    use spq_core::Backend;
    let cfg = MatrixConfig {
        backends: vec![Backend::Local, Backend::Sharded { shards: 2 }],
        filter: Some("uniform-120k/*".to_owned()),
        scale: 1e-9, // clamps to the 1k-object floor
        queries: 6,
        batch: 3,
        workers: 2,
        ..MatrixConfig::default()
    };
    let report = run_matrix(&cfg);
    // 3 algorithms × 2 backends × 4 modes, uniform corpus only.
    assert_eq!(report.records.len(), 24);
    assert_eq!(report.schema_version, SCHEMA_VERSION);
    assert_eq!(report.config.filter.as_deref(), Some("uniform-120k/*"));
    for r in &report.records {
        assert_eq!(r.corpus, "uniform-120k");
        assert_eq!(r.objects, 1_000);
        assert_eq!(r.samples, 6);
        assert!(r.identical_to_reference);
        assert!(r.qps > 0.0, "{}", r.id);
        if r.mode == "serve-admission" {
            // 2× overload against a 1.5× cap: half the offered stream is
            // rejected or shed, deterministically.
            assert_eq!(r.shed_rate, 0.5, "{}", r.id);
        } else {
            assert_eq!(r.shed_rate, 0.0, "{}", r.id);
        }
        for e in [&r.mean_ms, &r.p50_ms, &r.p99_ms] {
            assert!(e.lo <= e.point && e.point <= e.hi, "{}: {:?}", r.id, e);
        }
        assert_eq!(
            r.id,
            format!("{}/{}/{}/{}", r.corpus, r.algorithm, r.backend, r.mode)
        );
    }
    // The document the runner writes parses back to itself.
    let parsed = MatrixReport::from_json(&report.to_json()).unwrap();
    assert_eq!(parsed, report);
}

// ---- the compare gate, driven through the real binary ----------------

fn write_report(dir: &Path, name: &str, report: &MatrixReport) -> PathBuf {
    let path = dir.join(name);
    std::fs::write(&path, report.to_json()).expect("write report");
    path
}

fn run_compare(args: &[&str]) -> (i32, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_spq-bench"))
        .arg("compare")
        .args(args)
        .output()
        .expect("run spq-bench compare");
    (
        output.status.code().expect("exit code"),
        String::from_utf8_lossy(&output.stdout).into_owned(),
    )
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spq-matrix-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

#[test]
fn compare_flags_an_injected_30_percent_slowdown() {
    let dir = temp_dir("slowdown");
    let base = synthetic_fixture();
    let mut slow = base.clone();
    for r in &mut slow.records {
        if r.id.contains("pSPQ/local") {
            for e in [&mut r.mean_ms, &mut r.p50_ms, &mut r.p99_ms] {
                e.point *= 1.3;
                e.lo *= 1.3;
                e.hi *= 1.3;
            }
        }
    }
    let b = write_report(&dir, "base.json", &base);
    let c = write_report(&dir, "slow.json", &slow);
    let (code, stdout) = run_compare(&[b.to_str().unwrap(), c.to_str().unwrap()]);
    assert_eq!(code, 1, "{stdout}");
    assert!(stdout.contains("**regressed**"), "{stdout}");
    assert!(stdout.contains("1 regressed"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn compare_passes_pure_noise_within_the_interval() {
    let dir = temp_dir("noise");
    let base = synthetic_fixture();
    let mut noisy = base.clone();
    // Small point wiggle, intervals still overlapping: noise.
    for r in &mut noisy.records {
        r.mean_ms.point *= 1.02;
        r.mean_ms.lo *= 1.02;
        r.mean_ms.hi *= 1.02;
    }
    let b = write_report(&dir, "base.json", &base);
    let c = write_report(&dir, "noisy.json", &noisy);
    let (code, stdout) = run_compare(&[b.to_str().unwrap(), c.to_str().unwrap()]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("0 regressed"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn compare_reports_disjoint_id_sets_as_added_and_removed() {
    let dir = temp_dir("disjoint");
    let base = synthetic_fixture();
    let mut cand = base.clone();
    let dropped = cand.records.remove(0).id;
    let mut extra = cand.records[0].clone();
    extra.id = "clustered-60k/eSPQsco/local/serve".to_owned();
    cand.records.push(extra.clone());
    let b = write_report(&dir, "base.json", &base);
    let c = write_report(&dir, "cand.json", &cand);
    let (code, stdout) = run_compare(&[b.to_str().unwrap(), c.to_str().unwrap()]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("Added benchmarks"), "{stdout}");
    assert!(stdout.contains(&extra.id), "{stdout}");
    assert!(stdout.contains("Removed benchmarks"), "{stdout}");
    assert!(stdout.contains(&dropped), "{stdout}");
    assert!(stdout.contains("1 added, 1 removed"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn compare_exits_2_on_unreadable_documents() {
    let dir = temp_dir("unreadable");
    let good = write_report(&dir, "good.json", &synthetic_fixture());
    let bad = dir.join("bad.json");
    std::fs::write(&bad, "{ not json").expect("write");
    let (code, _) = run_compare(&[good.to_str().unwrap(), bad.to_str().unwrap()]);
    assert_eq!(code, 2);
    let (code, _) = run_compare(&[
        dir.join("missing.json").to_str().unwrap(),
        good.to_str().unwrap(),
    ]);
    assert_eq!(code, 2);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn compare_verdicts_are_symmetric() {
    // Improvements never fail the gate: compare(slow, fast) exits 0.
    let base = synthetic_fixture();
    let mut fast = base.clone();
    for r in &mut fast.records {
        r.mean_ms.point *= 0.5;
        r.mean_ms.lo *= 0.5;
        r.mean_ms.hi *= 0.5;
    }
    let cmp = spq_bench::matrix::compare_reports(&base, &fast, 0.05);
    assert_eq!(cmp.regressions(), 0);
    assert!(cmp.deltas.iter().all(|d| d.verdict == Verdict::Improved));
}
