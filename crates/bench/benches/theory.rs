//! Section-6 ablation benches: the cost of Lemma-1 duplication-target
//! enumeration across radius/cell ratios, and the df Monte-Carlo check.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spq_core::theory;
use spq_spatial::{Grid, Point, Rect};
use std::hint::black_box;

fn bench_duplication_enumeration(c: &mut Criterion) {
    let grid = Grid::square(Rect::unit(), 50);
    let points: Vec<Point> = (0..20_000)
        .map(|i| {
            let t = i as f64;
            Point::new((t * 0.61803).fract(), (t * 0.75488).fract())
        })
        .collect();
    let mut group = c.benchmark_group("lemma1_enumeration");
    for pct in [5.0, 10.0, 25.0, 50.0, 100.0] {
        let r = grid.cell_width() * pct / 100.0;
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{pct}pct")),
            &r,
            |b, &r| {
                b.iter(|| {
                    let mut dups = 0usize;
                    for p in &points {
                        grid.for_each_duplication_target(black_box(p), r, |_| dups += 1);
                    }
                    dups
                })
            },
        );
    }
    group.finish();
}

fn bench_df_formula(c: &mut Criterion) {
    c.bench_function("df_closed_form", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 1..=100 {
                acc += theory::duplication_factor(1.0, black_box(i as f64 / 250.0));
            }
            acc
        })
    });
}

criterion_group!(benches, bench_duplication_enumeration, bench_df_formula);
criterion_main!(benches);
