//! Figure 6(c) — Twitter-like dataset, job time vs query radius.
//!
//! Expected shape (paper): pSPQ degrades as the radius grows (more
//! duplication, more in-range pairs), the early-termination algorithms
//! stay nearly flat.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spq_bench::params::{
    DEFAULT_GRID_REAL, DEFAULT_KEYWORDS, DEFAULT_SIZE_TW, DEFAULT_TOPK, RADIUS_PCT_SWEEP_REAL,
};
use spq_core::Algorithm;
use spq_core::SpqExecutor;
use spq_data::TwitterLike;
use spq_mapreduce::ClusterConfig;
use spq_spatial::Rect;

fn fig6c(c: &mut Criterion) {
    let inputs = spq_bench::criterion_support::setup_with_selection(
        &TwitterLike,
        DEFAULT_SIZE_TW,
        0.025,
        DEFAULT_GRID_REAL,
        2017,
        spq_data::KeywordSelection::Weighted { exponent: 1.0 },
    );
    let mut group = c.benchmark_group("fig6c_tw_radius");
    group.sample_size(10);
    for pct in RADIUS_PCT_SWEEP_REAL {
        let query = inputs.query(DEFAULT_TOPK, pct, DEFAULT_KEYWORDS, 99);
        for algo in Algorithm::ALL {
            let exec = SpqExecutor::new(Rect::unit())
                .grid_size(DEFAULT_GRID_REAL)
                .algorithm(algo)
                .cluster(ClusterConfig::auto());
            group.bench_with_input(
                BenchmarkId::new(algo.name(), format!("{pct}pct")),
                &query,
                |b, q| {
                    b.iter(|| {
                        exec.run_shared(&inputs.dataset, &inputs.splits, q)
                            .unwrap()
                            .top_k
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, fig6c);
criterion_main!(benches);
