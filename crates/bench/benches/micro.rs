//! Microbenchmarks of the hot primitives: Jaccard scoring, grid routing
//! with Lemma-1 duplication, and the top-k list.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use spq_core::TopKList;
use spq_spatial::{Grid, Point, Rect};
use spq_text::{KeywordSet, Score, SetSimilarity};
use std::hint::black_box;

fn bench_jaccard(c: &mut Criterion) {
    let mut group = c.benchmark_group("jaccard");
    let query = KeywordSet::from_ids([3, 250, 777]);
    for flen in [5usize, 20, 100] {
        let feature = KeywordSet::from_ids((0..flen as u32).map(|i| i * 7 % 1000));
        group.bench_function(format!("q3_f{flen}"), |b| {
            b.iter(|| SetSimilarity::Jaccard.score(black_box(&query), black_box(&feature)))
        });
    }
    group.finish();
}

fn bench_grid_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("grid");
    let grid = Grid::square(Rect::unit(), 50);
    let points: Vec<Point> = (0..10_000)
        .map(|i| {
            let t = i as f64 / 10_000.0;
            Point::new((t * 997.0).fract(), (t * 631.0).fract())
        })
        .collect();
    group.bench_function("cell_of_10k", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for p in &points {
                acc = acc.wrapping_add(grid.cell_of(black_box(p)).0);
            }
            acc
        })
    });
    for pct in [10.0, 50.0] {
        let r = grid.cell_width() * pct / 100.0;
        group.bench_function(format!("duplication_targets_10k_r{pct}pct"), |b| {
            b.iter(|| {
                let mut count = 0usize;
                for p in &points {
                    grid.for_each_duplication_target(black_box(p), r, |_| count += 1);
                }
                count
            })
        });
    }
    group.finish();
}

fn bench_topk(c: &mut Criterion) {
    let offers: Vec<(u64, Score)> = (0..10_000u64)
        .map(|i| (i % 500, Score::ratio((i * 37 % 100) as usize + 1, 101)))
        .collect();
    c.bench_function("topk_update_10k_offers_k10", |b| {
        b.iter_batched(
            || TopKList::new(10),
            |mut list| {
                for &(id, s) in &offers {
                    list.update(id, Point::new(0.0, 0.0), s);
                }
                list
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_jaccard, bench_grid_routing, bench_topk);
criterion_main!(benches);
