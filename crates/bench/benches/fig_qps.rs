//! fig_qps — serving throughput beyond the paper: per-query index
//! rebuild vs the persistent `QueryEngine` (sequential, batched,
//! concurrent) on the fig7-uniform QPS workload.
//!
//! Expected shape: every engine mode beats the rebuild lifecycle, the
//! batched mode leads on a single core (keyword-index candidate pruning
//! shrinks the map pass), and the concurrent mode scales with cores.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spq_bench::params::{scaled, DEFAULT_GRID_SYNTH, DEFAULT_SIZE_UN};
use spq_core::{Algorithm, QueryEngine, QueryExecutor, QueryRequest, SpqExecutor};
use spq_data::{DatasetGenerator, QueryStream, StreamConfig, UniformGen};
use spq_mapreduce::ClusterConfig;
use spq_spatial::Rect;

fn fig_qps(c: &mut Criterion) {
    let dataset = UniformGen.generate(scaled(DEFAULT_SIZE_UN, 0.02), 2017);
    let cell = 1.0 / DEFAULT_GRID_SYNTH as f64;
    let mut stream = QueryStream::new(
        dataset.vocab_size,
        StreamConfig {
            radius_classes: [5.0, 10.0, 25.0]
                .iter()
                .map(|pct| cell * pct / 100.0)
                .collect(),
            hotspot_fraction: 0.5,
            hotspots: 8,
            seed: 2017 ^ 13,
            ..StreamConfig::default()
        },
    );
    let queries = stream.batch(16);
    let requests: Vec<QueryRequest> = queries.iter().cloned().map(QueryRequest::new).collect();
    let owned_splits = dataset.to_splits(8);
    let (shared, _) = dataset.to_shared_splits(8);
    let workers = ClusterConfig::auto().workers;

    let mut group = c.benchmark_group("fig_qps_serving");
    group.sample_size(10);
    for algo in Algorithm::ALL {
        let exec = SpqExecutor::new(Rect::unit())
            .algorithm(algo)
            .grid_size(DEFAULT_GRID_SYNTH)
            .cluster(ClusterConfig::auto());
        let engine = QueryEngine::new(exec.clone(), shared.clone());

        group.bench_with_input(
            BenchmarkId::new(algo.name(), "rebuild"),
            &queries,
            |b, qs| {
                b.iter(|| {
                    qs.iter()
                        .map(|q| exec.run_splits(&owned_splits, q).unwrap().top_k.len())
                        .sum::<usize>()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new(algo.name(), "engine"),
            &requests,
            |b, rs| {
                b.iter(|| {
                    rs.iter()
                        .map(|r| engine.execute(r).unwrap().results.len())
                        .sum::<usize>()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new(algo.name(), "engine-batch"),
            &requests,
            |b, rs| b.iter(|| engine.execute_batch(rs).unwrap().len()),
        );
        group.bench_with_input(
            BenchmarkId::new(algo.name(), "engine-serve"),
            &requests,
            |b, rs| b.iter(|| engine.serve_requests(rs, workers).unwrap().len()),
        );
    }
    group.finish();
}

criterion_group!(benches, fig_qps);
criterion_main!(benches);
