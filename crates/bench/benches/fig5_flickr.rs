//! Figure 5(b) — Flickr-like dataset, job time vs number of query
//! keywords, for all three algorithms.
//!
//! Expected shape (paper): pSPQ grows steeply with |q.W| (more features
//! survive the map-side prune), eSPQlen grows mildly, eSPQsco stays
//! nearly flat. Panels (a), (c), (d) are covered by the `experiments`
//! binary; this bench pins the panel the paper discusses most.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spq_bench::params::{DEFAULT_GRID_REAL, DEFAULT_SIZE_FL, DEFAULT_TOPK, KEYWORD_SWEEP};
use spq_core::Algorithm;
use spq_core::SpqExecutor;
use spq_data::FlickrLike;
use spq_mapreduce::ClusterConfig;
use spq_spatial::Rect;

fn fig5b(c: &mut Criterion) {
    let inputs = spq_bench::criterion_support::setup_with_selection(
        &FlickrLike,
        DEFAULT_SIZE_FL,
        0.05,
        DEFAULT_GRID_REAL,
        2017,
        spq_data::KeywordSelection::Weighted { exponent: 1.0 },
    );
    let mut group = c.benchmark_group("fig5b_fl_keywords");
    group.sample_size(10);
    for kw in KEYWORD_SWEEP {
        let query = inputs.query(DEFAULT_TOPK, 10.0, kw, 99);
        for algo in Algorithm::ALL {
            let exec = SpqExecutor::new(Rect::unit())
                .grid_size(DEFAULT_GRID_REAL)
                .algorithm(algo)
                .cluster(ClusterConfig::auto());
            group.bench_with_input(BenchmarkId::new(algo.name(), kw), &query, |b, q| {
                b.iter(|| {
                    exec.run_shared(&inputs.dataset, &inputs.splits, q)
                        .unwrap()
                        .top_k
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig5b);
criterion_main!(benches);
