//! Figure 9(b) — clustered synthetic dataset, job time vs query keywords,
//! early-termination algorithms only (the paper reports ~48h for pSPQ on
//! CL and omits it; panel (e) of the `experiments` binary demonstrates
//! the blow-up at small scale).
//!
//! Expected shape (paper): eSPQsco stays stable despite the heavy reducer
//! skew; eSPQlen degrades with more keywords.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spq_bench::criterion_support::setup;
use spq_bench::params::{DEFAULT_GRID_SYNTH, DEFAULT_SIZE_CL, DEFAULT_TOPK, KEYWORD_SWEEP};
use spq_core::Algorithm;
use spq_core::SpqExecutor;
use spq_data::ClusteredGen;
use spq_mapreduce::ClusterConfig;
use spq_spatial::Rect;

fn fig9b(c: &mut Criterion) {
    let inputs = setup(
        &ClusteredGen,
        DEFAULT_SIZE_CL,
        0.02,
        DEFAULT_GRID_SYNTH,
        2017,
    );
    let mut group = c.benchmark_group("fig9b_cl_keywords");
    group.sample_size(10);
    for kw in KEYWORD_SWEEP {
        let query = inputs.query(DEFAULT_TOPK, 10.0, kw, 99);
        for algo in [Algorithm::ESpqLen, Algorithm::ESpqSco] {
            let exec = SpqExecutor::new(Rect::unit())
                .grid_size(DEFAULT_GRID_SYNTH)
                .algorithm(algo)
                .cluster(ClusterConfig::auto());
            group.bench_with_input(BenchmarkId::new(algo.name(), kw), &query, |b, q| {
                b.iter(|| {
                    exec.run_shared(&inputs.dataset, &inputs.splits, q)
                        .unwrap()
                        .top_k
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig9b);
criterion_main!(benches);
