//! Figure 7(a) — uniform synthetic dataset, job time vs grid size.
//!
//! Expected shape (paper): finer grids help every algorithm (more
//! parallel units, cheaper reducers — the §6.3 analysis), and eSPQsco
//! beats pSPQ by an order of magnitude on this dataset.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spq_bench::criterion_support::setup;
use spq_bench::params::{
    DEFAULT_GRID_SYNTH, DEFAULT_KEYWORDS, DEFAULT_SIZE_UN, DEFAULT_TOPK, GRID_SWEEP_SYNTH,
};
use spq_core::Algorithm;
use spq_core::SpqExecutor;
use spq_data::UniformGen;
use spq_mapreduce::ClusterConfig;
use spq_spatial::Rect;

fn fig7a(c: &mut Criterion) {
    let inputs = setup(&UniformGen, DEFAULT_SIZE_UN, 0.02, DEFAULT_GRID_SYNTH, 2017);
    // Radius fixed in absolute terms while the grid varies.
    let query = inputs.query(DEFAULT_TOPK, 10.0, DEFAULT_KEYWORDS, 99);
    let mut group = c.benchmark_group("fig7a_un_grid");
    group.sample_size(10);
    for n in GRID_SWEEP_SYNTH {
        for algo in Algorithm::ALL {
            let exec = SpqExecutor::new(Rect::unit())
                .grid_size(n)
                .algorithm(algo)
                .cluster(ClusterConfig::auto());
            group.bench_with_input(
                BenchmarkId::new(algo.name(), format!("{n}x{n}")),
                &query,
                |b, q| {
                    b.iter(|| {
                        exec.run_shared(&inputs.dataset, &inputs.splits, q)
                            .unwrap()
                            .top_k
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, fig7a);
criterion_main!(benches);
