//! Figure 8 — scalability with dataset size (uniform synthetic data).
//!
//! Expected shape (paper): pSPQ scales linearly with the dataset; the
//! early-termination algorithms barely move, so their advantage *grows*
//! with size. Sizes follow the paper's 64:128:256:512 ratios at bench
//! scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spq_bench::params::{
    scaled, DEFAULT_GRID_SYNTH, DEFAULT_KEYWORDS, DEFAULT_SIZE_UN, DEFAULT_TOPK, FIG8_PAPER_SIZES,
    FIG8_SIZE_RATIOS,
};
use spq_core::Algorithm;
use spq_core::SpqExecutor;
use spq_data::{DatasetGenerator, KeywordSelection, QueryGenerator, UniformGen};
use spq_mapreduce::ClusterConfig;
use spq_spatial::Rect;

fn fig8(c: &mut Criterion) {
    let full = UniformGen.generate(scaled(DEFAULT_SIZE_UN, 0.02), 2017);
    let cell = 1.0 / DEFAULT_GRID_SYNTH as f64;
    let query = QueryGenerator::new(full.vocab_size, KeywordSelection::Random, 99).generate(
        DEFAULT_TOPK,
        cell * 10.0 / 100.0,
        DEFAULT_KEYWORDS,
    );
    let mut group = c.benchmark_group("fig8_un_scalability");
    group.sample_size(10);
    for (ratio, label) in FIG8_SIZE_RATIOS.into_iter().zip(FIG8_PAPER_SIZES) {
        let subset = full.truncated(
            (full.data.len() as f64 * ratio) as usize,
            (full.features.len() as f64 * ratio) as usize,
        );
        let (shared, splits) = subset.to_shared_splits(8);
        for algo in Algorithm::ALL {
            let exec = SpqExecutor::new(Rect::unit())
                .grid_size(DEFAULT_GRID_SYNTH)
                .algorithm(algo)
                .cluster(ClusterConfig::auto());
            group.bench_with_input(
                BenchmarkId::new(algo.name(), format!("{label}M")),
                &query,
                |b, q| b.iter(|| exec.run_shared(&shared, &splits, q).unwrap().top_k),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, fig8);
criterion_main!(benches);
